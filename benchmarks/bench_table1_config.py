"""Table I: microprocessor configurations of the two simulated cores."""

from repro.experiments import render_table1, table1_configurations

from conftest import emit


def test_table1_configurations(benchmark) -> None:
    data = benchmark(table1_configurations)
    assert set(data) == {"cortex-a15", "cortex-a72"}
    emit("table1_config", render_table1(data))
