"""Platform benchmark: early trial termination via golden digests.

Not a paper figure -- this guards the trial early-exit engine stacked
on top of the sharded campaign path:

* **static pruning** classifies flips into provably dead storage
  without building a simulator,
* **unchanged-flip splicing** returns the golden outcome when every
  flip bounced off invalid storage, and
* **digest reconvergence** stops a trial the first post-injection
  cycle its architectural state digest matches the golden trace.

All three are outcome-equivalent by construction (DESIGN.md), so
the per-outcome counts must be bit-identical with the engine on or
off; the aggregate wall-clock over a mix of fields must improve by at
least 3x.
"""

from __future__ import annotations

import time

from conftest import emit
from repro.gefin import run_campaign, run_golden_auto
from repro.microarch import CORTEX_A15
from repro.workloads import build_program

N = 40
SEED = 5
#: One field per termination tier's sweet spot: ROB flags/pc are
#: mostly dead slots (static pruning), L1D data flips mostly land on
#: invalid lines (unchanged splice), PRF flips mostly wash out
#: (reconvergence).
FIELDS = ("rob.flags", "rob.pc", "l1d.data", "prf")


def test_early_exit_speedup_and_equivalence() -> None:
    program = build_program("qsort", "micro", "O1", "armlet32")
    golden = run_golden_auto(program, CORTEX_A15)

    fast_time = slow_time = 0.0
    lines = [f"trial early termination ({N} injections/field, "
             "qsort micro O1, cortex-a15)"]
    for field in FIELDS:
        start = time.perf_counter()
        fast = run_campaign(program, CORTEX_A15, field, n=N, seed=SEED,
                            mode="uniform", golden=golden)
        t_fast = time.perf_counter() - start

        start = time.perf_counter()
        slow = run_campaign(program, CORTEX_A15, field, n=N, seed=SEED,
                            mode="uniform", golden=golden,
                            early_exit=False)
        t_slow = time.perf_counter() - start

        # The engine may only change wall clock, never the physics:
        # identical per-outcome counts, AVF, and (compare=False on the
        # pruning stats) full CampaignResult equality.
        assert fast.counts == slow.counts, field
        assert fast.avf_by_class == slow.avf_by_class, field
        assert fast == slow, field
        assert slow.pruning["full"] == N

        fast_time += t_fast
        slow_time += t_slow
        p = fast.pruning
        lines.append(
            f"  {field:<10} {t_slow:6.2f}s -> {t_fast:6.2f}s "
            f"({t_slow / t_fast:4.1f}x)  static={p['static']:2d} "
            f"unchanged={p['unchanged']:2d} converged={p['converged']:2d}"
            f" full={p['full']:2d} mean_window={p['mean_window']:.1f}")

    speedup = slow_time / fast_time
    lines.append(f"  aggregate  {slow_time:6.2f}s -> {fast_time:6.2f}s "
                 f"({speedup:4.2f}x)")
    emit("trial_early_exit", "\n".join(lines))
    assert speedup >= 3.0
