"""Fig. 10: whole-CPU FIT rates per benchmark and level, stacked by
fault class, for both cores.

Paper shape: the A72's per-bit FIT advantage (9.39e-6 vs 2.59e-5) gives
it lower absolute FIT for most benchmarks despite larger structures, and
its failure mix shifts toward SDC relative to the A15's AppCrash.
"""

from repro.experiments import fig10_fit_rates, render_fig10

from conftest import emit


def test_fig10_fit_rates(benchmark, full_grid) -> None:
    data = benchmark(fig10_fit_rates, full_grid)
    emit("fig10_fit", render_fig10(data))
    for core, benches in data.items():
        for bench, levels in benches.items():
            for level, classes in levels.items():
                assert all(v >= 0 for v in classes.values())
    # aggregate FIT comparison across cores
    totals = {
        core: sum(sum(classes.values())
                  for levels in benches.values()
                  for classes in levels.values())
        for core, benches in data.items()
    }
    assert totals["cortex-a15"] > 0 and totals["cortex-a72"] > 0
