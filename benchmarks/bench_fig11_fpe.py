"""Fig. 11: Failures per Execution normalized to O0.

Paper shape: optimized levels land below 1.0 for most benchmarks -- the
speedup pays back the vulnerability increase -- with O3 showing the worst
trade-off among the optimizing levels.
"""

from repro.experiments import fig11_fpe, render_fig11

from conftest import emit


def test_fig11_fpe(benchmark, full_grid) -> None:
    data = benchmark(fig11_fpe, full_grid)
    emit("fig11_fpe", render_fig11(data))
    below_one = 0
    total = 0
    for core, benches in data.items():
        for bench, levels in benches.items():
            assert levels["O0"] == 1.0
            for level in ("O1", "O2", "O3"):
                total += 1
                if levels[level] < 1.0:
                    below_one += 1
    # the paper's headline: optimization usually wins on FPE
    assert below_one >= total // 2, (below_one, total)
