"""Fig. 6: load queue and store queue AVF.

Paper shape: Assert is the leading failure class (corrupted register
operands / addresses produce unhandled microarchitectural states).
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig6_lq_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[6]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig06_lq_avf",
         render_avf_figure(data, 6, "Load and Store Queues"))

    for core in data:
        for field in data[core]:
            wavf = data[core][field]["wAVF"]
            assert all(sum(c.values()) <= 1.0 for c in wavf.values())
