"""Shared fixtures for the figure/table benchmarks.

Every bench consumes the shared campaign grid. With a warm cache
(``python -m repro.experiments.run_grid``) the benches are fast analysis
passes over cached JSON; with a cold cache the first bench to need a cell
runs its injections inline (slow but correct, and incremental).

Each bench renders its figure's rows to stdout and to
``benchmarks/output/<name>.txt`` so the regenerated series are captured
as artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import CampaignGrid, GridSpec

_REPO_ROOT = Path(__file__).resolve().parent.parent
_OUTPUT_DIR = Path(__file__).resolve().parent / "output"

os.environ.setdefault("REPRO_CACHE_DIR",
                      str(_REPO_ROOT / ".repro_cache"))


@pytest.fixture(scope="session")
def grid() -> CampaignGrid:
    return CampaignGrid(GridSpec.from_env())


@pytest.fixture(scope="session")
def full_grid(grid: CampaignGrid) -> CampaignGrid:
    """The grid with every campaign cell materialized."""
    grid.ensure_all()
    return grid


@pytest.fixture(scope="session")
def goldens_ready(grid: CampaignGrid) -> CampaignGrid:
    """The grid with golden cycle counts available (no injections)."""
    for core in grid.spec.cores:
        for bench in grid.spec.benchmarks:
            for level in grid.spec.levels:
                grid.golden_cycles(core, bench, level)
    return grid


def emit(name: str, text: str) -> None:
    """Print a rendered figure and persist it as an artifact."""
    print(f"\n{text}\n")
    _OUTPUT_DIR.mkdir(exist_ok=True)
    (_OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
