"""Extension bench: single-bit vs multi-bit upsets (paper ref. [39]).

Runs matched campaigns with burst sizes 1, 2, and 4 against the physical
register file and the L1D, reporting how the AVF grows with the blast
radius -- the motivation for the authors' multi-bit follow-up study.
"""

import pytest

from repro.gefin import run_campaign, run_golden
from repro.microarch import CONFIGS
from repro.workloads import build_program

from conftest import emit

N = 10


@pytest.fixture(scope="module")
def setup():
    program = build_program("fft", "micro", "O2", "armlet32")
    config = CONFIGS["cortex-a15"]
    golden = run_golden(program, config, snapshot_every=1500)
    return program, config, golden


def test_multibit_blast_radius(benchmark, setup) -> None:
    program, config, golden = setup

    def campaign_matrix():
        out = {}
        for field in ("prf", "l1d.data"):
            out[field] = {
                burst: run_campaign(program, config, field, n=N, seed=6,
                                    golden=golden, burst=burst).avf
                for burst in (1, 2, 4)
            }
        return out

    data = benchmark.pedantic(campaign_matrix, rounds=1, iterations=1)
    lines = [f"Multi-bit upsets: fft (micro) O2, cortex-a15, n={N}",
             f"{'field':10s} {'burst=1':>8s} {'burst=2':>8s} "
             f"{'burst=4':>8s}"]
    for field, row in data.items():
        lines.append(f"{field:10s} {row[1]:8.3f} {row[2]:8.3f} "
                     f"{row[4]:8.3f}")
    emit("ext_multibit", "\n".join(lines))
    for field, row in data.items():
        # identical fault sites, wider bursts: AVF is monotone up to noise
        assert row[4] >= row[1] - 1e-9, field
