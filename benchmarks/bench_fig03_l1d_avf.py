"""Fig. 3: L1D AVF (Data + Tag fields), stacked by fault class.

Paper shape: SDC is the dominant failure class (faults corrupt the
application's data words).
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig3_l1d_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[3]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig03_l1d_avf",
         render_avf_figure(data, 3, "L1 Data Cache"))

    for core in data:
        wavf = data[core]["l1d.data"]["wAVF"]
        sdc = sum(classes.get("sdc", 0) for classes in wavf.values())
        others = sum(sum(v for c, v in classes.items() if c != "sdc")
                     for classes in wavf.values())
        if sdc + others > 0:
            assert sdc >= others * 0.5, core
