"""Extension bench: ACE analysis vs statistical fault injection.

The paper dismisses ACE-style estimation as pessimistic (Section II-B,
refs [11][23]); this bench quantifies that pessimism on our platform by
comparing the occupancy-based ACE upper bound against SFI-measured AVF
for representative structures.
"""

import pytest

from repro.avf import ace_estimate
from repro.gefin import run_campaign, run_golden
from repro.microarch import CONFIGS
from repro.workloads import build_program

from conftest import emit

FIELDS = ("rob.seq", "prf", "iq.src", "l1d.data")
N = 12


@pytest.fixture(scope="module")
def setup():
    program = build_program("qsort", "micro", "O1", "armlet32")
    config = CONFIGS["cortex-a15"]
    golden = run_golden(program, config, snapshot_every=1500)
    return program, config, golden


def test_ace_vs_sfi_pessimism(benchmark, setup) -> None:
    program, config, golden = setup

    def compare():
        ace = ace_estimate(program, config, fields=FIELDS,
                           sample_every=25)
        sfi = {
            field: run_campaign(program, config, field, n=N, seed=9,
                                golden=golden).avf
            for field in FIELDS
        }
        return ace, sfi

    ace, sfi = benchmark.pedantic(compare, rounds=1, iterations=1)
    lines = ["ACE upper bound vs SFI-measured AVF (qsort O1, A15)",
             f"{'field':10s} {'ACE':>7s} {'SFI':>7s} {'gap':>7s}"]
    for field in FIELDS:
        gap = ace.estimates[field] - sfi[field]
        lines.append(f"{field:10s} {ace.estimates[field]:7.3f} "
                     f"{sfi[field]:7.3f} {gap:+7.3f}")
    emit("ext_ace_vs_sfi", "\n".join(lines))
