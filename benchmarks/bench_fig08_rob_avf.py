"""Fig. 8: reorder buffer AVF (all four fields).

Paper shape: assert-only failure profile; the ROB is among the most
vulnerable structures; O0 is the most vulnerable level.
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig8_rob_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[8]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig08_rob_avf",
         render_avf_figure(data, 8, "Reorder Buffer"))

    for core in data:
        for field in data[core]:
            wavf = data[core][field]["wAVF"]
            for classes in wavf.values():
                failures = {c: v for c, v in classes.items() if v > 0}
                if failures:
                    assert failures.get("assert", 0) == max(
                        failures.values()), (core, field, failures)
