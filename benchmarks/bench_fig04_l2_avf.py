"""Fig. 4: L2 AVF (Data + Tag fields), stacked by fault class.

Paper shape: SDC-dominated like the L1D; absolute AVF small (the
array is huge relative to any workload footprint).
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig4_l2_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[4]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig04_l2_avf",
         render_avf_figure(data, 4, "L2 Cache"))

    for core in data:
        for field in data[core]:
            for classes in data[core][field]["wAVF"].values():
                assert sum(classes.values()) <= 0.5, (core, field)
