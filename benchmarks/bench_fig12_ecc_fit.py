"""Fig. 12: whole-CPU FIT per optimization level under three protection
configurations (no ECC, ECC on L1D+L2, ECC on L2 only), both cores.

Paper shape: protecting the caches removes most of the FIT budget (they
hold ~90-95% of the bits); with ECC on, the pipeline structures dominate
and O2 becomes the consistently robust level.
"""

from repro.experiments import fig12_ecc_fit, render_fig12

from conftest import emit


def test_fig12_ecc_fit(benchmark, full_grid) -> None:
    data = benchmark(fig12_ecc_fit, full_grid)
    emit("fig12_ecc_fit", render_fig12(data))
    for core, schemes in data.items():
        for level in full_grid.spec.levels:
            no_ecc = schemes["no-ecc"][level]
            l2 = schemes["ecc-l2"][level]
            full = schemes["ecc-l1d-l2"][level]
            assert no_ecc >= l2 >= full >= 0, (core, level)
