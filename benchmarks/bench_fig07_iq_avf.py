"""Fig. 7: issue queue AVF (Source and Dest fields).

Paper shape: the only structure with substantial Timeout rates
(lost wake-ups), roughly balanced with Assert.
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig7_iq_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[7]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig07_iq_avf",
         render_avf_figure(data, 7, "Issue Queue"))

    for core in data:
        wavf = data[core]["iq.src"]["wAVF"]
        timeout = sum(classes.get("timeout", 0)
                      for classes in wavf.values())
        assert timeout > 0, core
