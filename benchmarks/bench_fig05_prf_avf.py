"""Fig. 5: physical register file AVF.

Paper shape: optimized code is MORE vulnerable than O0 (higher
register utilization and residency); SDC and Crash are balanced.
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig5_prf_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[5]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig05_prf_avf",
         render_avf_figure(data, 5, "Physical Register File"))

    for core in data:
        wavf = data[core]["prf"]["wAVF"]
        o0 = sum(wavf["O0"].values())
        optimized = max(sum(wavf[lvl].values())
                        for lvl in ("O1", "O2", "O3"))
        assert optimized >= o0 * 0.8, core  # optimization not protective
