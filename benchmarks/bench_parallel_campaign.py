"""Platform benchmark: trial-sharded parallel campaigns.

Not a paper figure -- this guards the two throughput mechanisms the
campaign engine stacks on top of the serial seed path:

* **trial sharding** across a process pool (near-linear scaling with
  workers, bit-exact results for any worker count), and
* **snapshot warm-starts** (auto-checkpointed golden runs let every
  trial resume from the nearest snapshot instead of booting from
  cycle 0).

The scaling assertion only fires when the machine actually has >= 4
usable cores; the bit-exactness assertions always fire.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import emit
from repro.gefin import run_campaign, run_golden, run_golden_auto
from repro.microarch import CORTEX_A15
from repro.workloads import build_program

N = 48
SEED = 17
FIELD = "rob.flags"


def _program():
    return build_program("qsort", "micro", "O1", "armlet32")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def test_parallel_campaign_scaling() -> None:
    program = _program()
    golden = run_golden_auto(program, CORTEX_A15)

    timings: dict[int, float] = {}
    results = {}
    for workers in (1, 2, 4):
        start = time.perf_counter()
        results[workers] = run_campaign(program, CORTEX_A15, FIELD, n=N,
                                        seed=SEED, golden=golden,
                                        workers=workers, shard_size=3)
        timings[workers] = time.perf_counter() - start

    assert results[2] == results[1]
    assert results[4] == results[1]

    cpus = _usable_cpus()
    lines = [f"parallel campaign scaling ({N} injections, qsort micro O1, "
             f"{cpus} usable cpus)"]
    for workers, elapsed in timings.items():
        lines.append(f"  workers={workers}  {elapsed:6.2f}s  "
                     f"{N / elapsed:7.1f} inj/s  "
                     f"speedup {timings[1] / elapsed:4.2f}x")
    emit("parallel_campaign_scaling", "\n".join(lines))

    if cpus < 4:
        pytest.skip(f"scaling assertion needs >= 4 cpus, have {cpus}")
    assert timings[1] / timings[4] >= 2.0


def test_snapshot_warm_start() -> None:
    program = _program()

    start = time.perf_counter()
    cold_golden = run_golden(program, CORTEX_A15)  # no snapshots
    cold = run_campaign(program, CORTEX_A15, FIELD, n=24, seed=SEED,
                        golden=cold_golden)
    cold_time = time.perf_counter() - start

    start = time.perf_counter()
    warm_golden = run_golden_auto(program, CORTEX_A15)
    warm = run_campaign(program, CORTEX_A15, FIELD, n=24, seed=SEED,
                        golden=warm_golden)
    warm_time = time.perf_counter() - start

    # Warm-starting must not change the physics, only the wall clock.
    assert warm == cold
    speedup = cold_time / warm_time
    emit("parallel_campaign_warmstart",
         "snapshot warm-start (24 injections incl. golden run)\n"
         f"  cold (boot from cycle 0)   {cold_time:6.2f}s\n"
         f"  warm ({len(warm_golden.snapshots)} auto-snapshots)"
         f"       {warm_time:6.2f}s\n"
         f"  speedup {speedup:4.2f}x")
    assert speedup >= 1.1