"""Fig. 9: weighted-AVF difference of O1/O2/O3 relative to O0, for every
structure field on both cores.

Paper shape: the RF (and LQ) trend positive (optimization raises their
vulnerability), the ROB trends negative on every field; on the A72 the
large cache arrays trend negative too.
"""

from repro.experiments import fig9_wavf_difference, render_fig9

from conftest import emit


def test_fig9_wavf_difference(benchmark, full_grid) -> None:
    data = benchmark(fig9_wavf_difference, full_grid)
    emit("fig09_wavf_diff", render_fig9(data))
    for core, fields in data.items():
        assert set(fields) == set(full_grid.spec.fields)
        for field, levels in fields.items():
            for value in levels.values():
                assert -1.0 <= value <= 1.0, (core, field)
