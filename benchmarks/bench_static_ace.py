"""Extension bench: static vulnerability bounds vs dynamic ACE cost.

The point of the static analyzer is that it prices a campaign gate at
compile time: no simulation, so it must be dramatically cheaper than
even one dynamic ACE pass while still dominating it. This bench times
both on the same program and asserts a >= 10x speedup, then renders the
bound-vs-estimate table the speedup buys.
"""

import time

import pytest

from repro.avf import ace_estimate, static_ace_estimate
from repro.microarch import CONFIGS
from repro.workloads import build_program

from conftest import emit

FIELDS = ("rob.seq", "prf", "iq.src", "lq", "l1i.data", "l1d.data")


@pytest.fixture(scope="module")
def setup():
    program = build_program("sha", "micro", "O2", "armlet32")
    return program, CONFIGS["cortex-a15"]


def test_static_analysis_speedup(benchmark, setup) -> None:
    program, config = setup

    static = benchmark.pedantic(
        lambda: static_ace_estimate(program, config),
        rounds=3, iterations=1)

    started = time.perf_counter()
    static_elapsed = 0.0
    for _ in range(3):
        t0 = time.perf_counter()
        static_ace_estimate(program, config)
        static_elapsed = max(static_elapsed, time.perf_counter() - t0)
    t0 = time.perf_counter()
    dynamic = ace_estimate(program, config)
    dynamic_elapsed = time.perf_counter() - t0
    total = time.perf_counter() - started

    speedup = dynamic_elapsed / max(static_elapsed, 1e-9)
    assert speedup >= 10.0, (
        f"static analysis only {speedup:.1f}x faster than one dynamic "
        f"ACE pass ({static_elapsed * 1e3:.1f} ms vs "
        f"{dynamic_elapsed * 1e3:.1f} ms)")

    lines = [
        "static AVF bound vs dynamic ACE estimate (sha O2, A15)",
        f"static {static_elapsed * 1e3:8.2f} ms   "
        f"dynamic {dynamic_elapsed * 1e3:8.2f} ms   "
        f"speedup {speedup:7.1f}x   (wall {total:.2f} s)",
        f"{'field':10s} {'static':>8s} {'dynamic':>8s} {'slack':>8s}",
    ]
    for field in FIELDS:
        bound = static.estimates[field]
        est = dynamic.estimates[field]
        assert bound >= est - 1e-12
        lines.append(f"{field:10s} {bound:8.4f} {est:8.4f} "
                     f"{bound - est:+8.4f}")
    emit("static_ace_speedup", "\n".join(lines))
