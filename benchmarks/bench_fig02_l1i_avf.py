"""Fig. 2: L1I AVF (Data + Tag fields), stacked by fault class.

Paper shape: Crash is the dominant failure class for the L1I in every
benchmark and level (instruction/immediate corruption).
"""

from repro.experiments import FIGURE_FIELDS, avf_figure, render_avf_figure

from conftest import emit


def test_fig2_l1i_avf(benchmark, full_grid) -> None:
    fields = FIGURE_FIELDS[2]
    data = benchmark(avf_figure, full_grid, fields)
    emit("fig02_l1i_avf",
         render_avf_figure(data, 2, "L1 Instruction Cache"))

    # Crash should dominate the aggregated (wAVF) failure mix
    for core in data:
        for field in data[core]:
            wavf = data[core][field]["wAVF"]
            crash = sum(classes.get("crash_process", 0)
                        + classes.get("crash_system", 0)
                        for classes in wavf.values())
            sdc = sum(classes.get("sdc", 0) for classes in wavf.values())
            if crash + sdc > 0:
                assert crash >= sdc * 0.5, (core, field)
