"""Platform performance benchmarks: compiler and simulator throughput.

Not a paper figure -- these track the reproduction platform itself, so
regressions in simulation speed (which bounds campaign sizes) are
caught. pytest-benchmark statistics are meaningful here, unlike the
figure benches which are one-shot analyses.
"""

import pytest

from repro.compiler import ARMLET32, compile_source
from repro.microarch import CORTEX_A15, CORTEX_A72, Simulator
from repro.workloads import get_workload

SOURCE = get_workload("qsort").source("micro")


def test_compile_o2_throughput(benchmark) -> None:
    program = benchmark(compile_source, SOURCE, "O2", ARMLET32)
    assert len(program.text) > 50


def test_compile_o0_throughput(benchmark) -> None:
    program = benchmark(compile_source, SOURCE, "O0", ARMLET32)
    assert len(program.text) > 50


@pytest.mark.parametrize("core", [CORTEX_A15, CORTEX_A72],
                         ids=lambda c: c.name)
def test_simulator_cycles_per_second(benchmark, core) -> None:
    target = "armlet32" if core.xlen == 32 else "armlet64"
    from repro.workloads import build_program

    program = build_program("qsort", "micro", "O2", target)

    def run_1k_cycles():
        sim = Simulator(program, core)
        sim.run_until(1000)
        return sim.cycle

    cycles = benchmark(run_1k_cycles)
    assert cycles >= 1000


def test_snapshot_save_restore_cost(benchmark) -> None:
    from repro.workloads import build_program

    program = build_program("qsort", "micro", "O2", "armlet32")
    sim = Simulator(program, CORTEX_A15)
    sim.run_until(1000)

    def roundtrip():
        blob = sim.save_state()
        sim.load_state(blob)
        return len(blob)

    size = benchmark(roundtrip)
    assert size > 1000


@pytest.mark.parametrize("core", [CORTEX_A15, CORTEX_A72],
                         ids=lambda c: c.name)
def test_digest_pair_cost(benchmark, core) -> None:
    """Cost of one quick+full state digest (the golden-trace recorder
    and the convergence check both pay this per compared cycle)."""
    target = "armlet32" if core.xlen == 32 else "armlet64"
    from repro.workloads import build_program

    program = build_program("qsort", "micro", "O2", target)
    sim = Simulator(program, core)
    sim.run_until(1000)

    quick, full = benchmark(sim.digest_pair)
    assert quick == sim.quick_digest()
    assert full == sim.state_digest()


def test_recording_golden_cycles_per_second(benchmark) -> None:
    """Golden-run throughput with per-cycle trace recording enabled.

    The digest tax on the (run-once) golden reference is the price of
    early trial termination; track it next to the raw simulator
    cycles/sec so a digest regression is visible in the same report.
    """
    from repro.gefin import run_golden_auto
    from repro.workloads import build_program

    program = build_program("qsort", "micro", "O2", "armlet32")

    def record_golden():
        golden = run_golden_auto(program, CORTEX_A15)
        assert golden.trace is not None
        return len(golden.trace)

    recorded = benchmark(record_golden)
    assert recorded > 0
