"""Extension bench: selective-protection planning from measured AVFs.

Uses the suite-weighted AVFs of the cached grid to answer the design
question behind the paper's Section VII: which structures must be
protected, and in what order, to remove 50% / 90% / 99% of the CPU's
failure rate at O2?
"""

import pytest

from repro.avf import fit_contributions, plan_protection
from repro.experiments import weighted_field_avf
from repro.microarch import CONFIGS

from conftest import emit

TARGETS = (0.5, 0.9, 0.99)


@pytest.fixture(scope="module")
def wavfs(full_grid):
    return {
        core: {
            field: weighted_field_avf(full_grid, core, field, "O2")
            for field in full_grid.spec.fields
        }
        for core in full_grid.spec.cores
    }


def test_protection_plans(benchmark, full_grid, wavfs) -> None:
    def plans():
        out = {}
        for core, avfs in wavfs.items():
            config = CONFIGS[core]
            out[core] = {
                target: plan_protection(config, avfs, target)
                for target in TARGETS
            }
        return out

    data = benchmark(plans)
    lines = ["Selective protection at O2 (suite-weighted AVFs)"]
    for core, by_target in data.items():
        config = CONFIGS[core]
        top = list(fit_contributions(config, wavfs[core]))[:3]
        lines.append(f"\n{core}: top FIT contributors: {', '.join(top)}")
        for target, plan in by_target.items():
            lines.append(
                f"  target {target:.0%}: protect {len(plan.protected)} "
                f"fields ({plan.protected_bits} bits) -> residual FIT "
                f"{plan.residual_fit:.3f} of {plan.baseline_fit:.3f} "
                f"({plan.fit_reduction:.0%} removed)")
            lines.append(f"    order: {', '.join(plan.protected[:6])}"
                         + (" ..." if len(plan.protected) > 6 else ""))
    emit("ext_protection", "\n".join(lines))
    for by_target in data.values():
        for target, plan in by_target.items():
            assert plan.fit_reduction >= target - 1e-9 or \
                plan.residual_fit == 0.0
