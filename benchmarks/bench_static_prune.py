"""Platform benchmark: bit-level PRF pruning (tier 3) uplift.

Not a paper figure -- this guards the third pruning tier: uniform-mode
physical-register-file flips classified Masked *before a simulator is
booted*, because the struck register is provably free, awaiting a
full-width writeback, or an architectural value whose flipped bits the
bit-level propagation analysis proves dead.

The comparison point is the same early-exit engine with tier 3
disabled -- the engine exactly as it stood before the propagation
analysis landed, when every one of these trials had to be simulated
until digest reconvergence (or completion). Tier 3 must only change
wall clock, never physics: per-outcome counts and per-class AVF are
asserted identical across every MiBench workload.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.gefin import run_campaign, run_golden_auto
from repro.gefin.prune import StaticPruner
from repro.microarch import CORTEX_A15
from repro.workloads import BENCHMARKS, build_program

N = 50
SEED = 11
LEVEL = "O2"


def test_static_bit_prune_uplift() -> None:
    lines = [f"tier-3 bit-level PRF pruning ({N} uniform injections "
             f"per workload, micro {LEVEL}, cortex-a15)"]
    fast_time = base_time = 0.0
    pruned_total = 0
    for name in BENCHMARKS:
        program = build_program(name, "micro", LEVEL, "armlet32")
        golden = run_golden_auto(program, CORTEX_A15)

        start = time.perf_counter()
        fast = run_campaign(program, CORTEX_A15, "prf", n=N, seed=SEED,
                            mode="uniform", golden=golden)
        t_fast = time.perf_counter() - start

        original = StaticPruner._prune_prf
        StaticPruner._prune_prf = lambda self, spec: None  # tier 3 off
        try:
            start = time.perf_counter()
            base = run_campaign(program, CORTEX_A15, "prf", n=N,
                                seed=SEED, mode="uniform", golden=golden)
            t_base = time.perf_counter() - start
        finally:
            StaticPruner._prune_prf = original

        # Pruning may only change wall clock, never the physics.
        assert fast.counts == base.counts, name
        assert fast.avf_by_class == base.avf_by_class, name

        pruned = fast.pruning.get("static-bit", 0)
        assert pruned > 0, f"tier 3 never fired on {name}"
        assert base.pruning.get("static-bit", 0) == 0, name
        pruned_total += pruned
        fast_time += t_fast
        base_time += t_base
        lines.append(
            f"  {name:<9} {t_base:6.2f}s -> {t_fast:6.2f}s "
            f"({t_base / t_fast:4.1f}x)  prune-rate {pruned / N:4.0%}  "
            f"{N / t_base:6.1f} -> {N / t_fast:6.1f} inj/s")

    speedup = base_time / fast_time
    lines.append(
        f"  aggregate {base_time:6.2f}s -> {fast_time:6.2f}s "
        f"({speedup:4.2f}x)  prune-rate "
        f"{pruned_total / (N * len(BENCHMARKS)):4.0%}")
    emit("static_prune", "\n".join(lines))
    assert speedup >= 1.2
