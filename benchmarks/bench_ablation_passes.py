"""Ablation bench: individual optimization passes (paper future work).

Compiles one benchmark with O2-minus-one-pass pipelines and reports the
cycle cost of dropping each transform, regenerating the data behind the
design choices DESIGN.md calls out (which passes buy the O2 speedup).
"""

import pytest

from repro.compiler import TARGETS, compile_custom
from repro.gefin import run_golden
from repro.microarch import CONFIGS
from repro.workloads import get_workload

from conftest import emit

O2_PASSES = ["constfold", "copyprop", "cse", "licm", "strength",
             "addrfold", "dce", "simplify_cfg", "schedule"]


@pytest.fixture(scope="module")
def ablation_rows():
    source = get_workload("dijkstra").source("micro")
    config = CONFIGS["cortex-a15"]
    target = TARGETS["armlet32"]

    def cycles_for(passes):
        result = compile_custom(source, passes, target)
        return (run_golden(result.program, config).cycles,
                result.text_size)

    rows = {"full-O2-set": cycles_for(O2_PASSES)}
    for dropped in O2_PASSES:
        remaining = [p for p in O2_PASSES if p != dropped]
        rows[f"minus-{dropped}"] = cycles_for(remaining)
    return rows


def test_ablation_pass_contributions(benchmark, ablation_rows) -> None:
    def analyze():
        base_cycles, _ = ablation_rows["full-O2-set"]
        return {
            tag: (cycles, cycles / base_cycles)
            for tag, (cycles, _text) in ablation_rows.items()
        }

    data = benchmark(analyze)
    lines = ["Ablation: dijkstra (micro), cortex-a15 cycles",
             f"{'variant':22s} {'cycles':>8s} {'vs full O2':>11s}"]
    for tag, (cycles, ratio) in data.items():
        lines.append(f"{tag:22s} {cycles:8d} {ratio:10.3f}x")
    emit("ablation_passes", "\n".join(lines))
    # dropping any single pass never *helps* by more than noise
    for tag, (_cycles, ratio) in data.items():
        assert ratio >= 0.9, tag
