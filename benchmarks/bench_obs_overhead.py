"""Platform benchmark: observability overhead on the cycle loop.

Not a paper figure -- this pins down the cost contract of the
instrumentation layer (``repro.obs``):

* **detached** (the default): the core pays one attribute load plus an
  ``is None`` test per 16-cycle stats window -- nothing measurable;
* **null observer**: a :class:`SimObserver` over the null-object
  metrics backend samples occupancies into shared no-op instruments --
  still within noise of detached;
* **live metrics**: a full :class:`MetricsRegistry` with histogram
  updates every sample window must stay under a 5% cycle-loop
  slowdown.

Configurations are interleaved round-robin and the per-config minimum
over the rounds is compared, so machine-load drift cannot masquerade
as observer overhead.
"""

from __future__ import annotations

import time

from conftest import emit
from repro.microarch import CORTEX_A15, Simulator
from repro.obs import MetricsRegistry, SimObserver
from repro.workloads import build_program

ROUNDS = 7
MAX_NULL_OVERHEAD = 1.03
MAX_LIVE_OVERHEAD = 1.05


def _run_once(program, make_observer) -> float:
    sim = Simulator(program, CORTEX_A15)
    observer = make_observer()
    if observer is not None:
        sim.attach_observer(observer)
    start = time.perf_counter()
    sim.run(50_000_000)
    elapsed = time.perf_counter() - start
    if observer is not None:
        observer.finish(sim)
    return elapsed


def test_observer_overhead_bounds() -> None:
    program = build_program("qsort", "small", "O1", "armlet32")
    configs = {
        "detached": lambda: None,
        "null": lambda: SimObserver(None),
        "live": lambda: SimObserver(MetricsRegistry()),
    }
    best = dict.fromkeys(configs, float("inf"))
    for _ in range(ROUNDS):
        for name, make_observer in configs.items():
            best[name] = min(best[name], _run_once(program, make_observer))

    base = best["detached"]
    null_ratio = best["null"] / base
    live_ratio = best["live"] / base
    emit("obs_overhead", "\n".join([
        f"observer overhead (qsort small O1, cortex-a15, "
        f"min of {ROUNDS} interleaved rounds)",
        f"  detached {base:7.3f}s  1.000x (baseline)",
        f"  null     {best['null']:7.3f}s  {null_ratio:5.3f}x "
        f"(budget {MAX_NULL_OVERHEAD:.2f}x)",
        f"  live     {best['live']:7.3f}s  {live_ratio:5.3f}x "
        f"(budget {MAX_LIVE_OVERHEAD:.2f}x)",
    ]))
    assert null_ratio < MAX_NULL_OVERHEAD, null_ratio
    assert live_ratio < MAX_LIVE_OVERHEAD, live_ratio


def test_live_metrics_actually_sampled() -> None:
    """The live configuration is not vacuous: the registry fills up."""
    program = build_program("qsort", "micro", "O1", "armlet32")
    registry = MetricsRegistry()
    observer = SimObserver(registry)
    sim = Simulator(program, CORTEX_A15)
    sim.attach_observer(observer)
    sim.run(50_000_000)
    observer.finish(sim)
    snap = registry.snapshot()
    assert snap["rob.occupancy"]["count"] == observer.samples > 0
    assert snap["cycles"]["value"] == sim.cycle
