"""Fig. 1: relative performance of O0-O3 per benchmark, both cores.

Paper shape: O1 captures most of the speedup; O3 is marginally worse
than O1/O2 for most benchmarks; the relative ordering is the same on
both microarchitectures.
"""

from repro.experiments import fig1_performance, render_fig1

from conftest import emit


def test_fig1_relative_performance(benchmark, goldens_ready) -> None:
    data = benchmark(fig1_performance, goldens_ready)
    emit("fig01_performance", render_fig1(data))
    for core, rows in data.items():
        for bench, levels in rows.items():
            assert levels["O0"] == 1.0
            # optimization never slows a benchmark below O0
            assert all(v >= 0.95 for v in levels.values()), (core, bench)
