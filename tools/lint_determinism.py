#!/usr/bin/env python3
"""AST lint enforcing determinism in the measurement core.

Campaign results must be a pure function of ``(program, config, field,
n, seed, mode, burst)``: the paper's statistical argument, the shard
bit-exactness guarantee, resumable checkpoints, and the pruner's
differential soundness tests all assume a re-run reproduces every trial
bit for bit. This lint bans the three ways nondeterminism usually
sneaks in, for every Python file under ``src/repro/gefin`` and
``src/repro/compiler``:

DET001  unseeded randomness -- calls through the ``random`` module's
        hidden global generator (``random.randrange(...)``) or
        ``random.Random()`` with no seed. Derive a seeded generator
        instead (see ``gefin.parallel.derive_rng``).
DET002  wall-clock reads -- ``time.time()``, ``time.monotonic()``,
        ``time.perf_counter()``, ``datetime.now()`` and friends.
        Timing may drive *observability* (shard spans, watchdogs) but
        never results; legitimate sites carry a pragma.
DET003  iteration over an unordered set -- ``for x in {a, b}``,
        ``for x in set(...)`` or ``frozenset(...)`` directly in a
        ``for``/comprehension. Sort first, or iterate an ordered
        container (dicts preserve insertion order; sets do not).

A finding is suppressed by a trailing ``# det: allow`` comment on the
offending line, which doubles as in-source documentation that the site
was audited. Exit status is 1 when findings remain, 0 otherwise;
``--json`` emits a machine-readable findings document for CI.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import asdict, dataclass
from pathlib import Path

#: Directories linted by default (relative to the repository root).
DEFAULT_SCOPE = ("src/repro/gefin", "src/repro/compiler")

PRAGMA = "# det: allow"

#: ``module.attr`` call targets that read the wall clock.
WALLCLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "localtime"),
    ("time", "gmtime"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: ``random`` module members that are *not* the global-RNG trap.
RANDOM_OK = {"Random", "SystemRandom", "getstate", "setstate"}


@dataclass(frozen=True)
class Finding:
    """One determinism violation."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _call_target(node: ast.Call) -> tuple[str, str] | None:
    """``("module", "attr")`` for a ``module.attr(...)`` call shape."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def _is_set_valued(node: ast.expr) -> bool:
    """Syntactically set-valued: a set display/comprehension or a call
    to the ``set``/``frozenset`` builtins."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[Finding] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(self.path, node.lineno, code, message))

    # -- DET001 / DET002 --------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        target = _call_target(node)
        if target is not None:
            module, attr = target
            if module == "random" and attr not in RANDOM_OK:
                self._flag(node, "DET001",
                           f"random.{attr}() uses the unseeded global "
                           "generator; derive a seeded random.Random")
            elif (module == "random" and attr == "Random"
                    and not node.args and not node.keywords):
                self._flag(node, "DET001",
                           "random.Random() without a seed is "
                           "nondeterministic; pass an explicit seed")
            elif target in WALLCLOCK_CALLS:
                self._flag(node, "DET002",
                           f"{module}.{attr}() reads the wall clock; "
                           "results must not depend on time "
                           f"(audited sites: '{PRAGMA}')")
        elif (isinstance(node.func, ast.Name)
                and node.func.id == "Random" and not node.args
                and not node.keywords):
            self._flag(node, "DET001",
                       "Random() without a seed is nondeterministic; "
                       "pass an explicit seed")
        self.generic_visit(node)

    # -- DET003 -----------------------------------------------------

    def _check_iter(self, iterable: ast.expr) -> None:
        if _is_set_valued(iterable):
            self._flag(iterable, "DET003",
                       "iterating a set has no defined order; sort it "
                       "or use an ordered container")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def scan_source(source: str, path: str) -> list[Finding]:
    """Lint one module's source text."""
    tree = ast.parse(source, filename=path)
    visitor = _Visitor(path)
    visitor.visit(tree)
    lines = source.splitlines()
    return [finding for finding in visitor.findings
            if PRAGMA not in lines[finding.line - 1]]


def scan_file(path: Path, root: Path | None = None) -> list[Finding]:
    """Lint one file; paths in findings are relative to ``root``."""
    shown = str(path.relative_to(root) if root else path)
    return scan_source(path.read_text(), shown)


def scan_tree(root: Path, scope: tuple[str, ...] = DEFAULT_SCOPE,
              ) -> list[Finding]:
    """Lint every ``.py`` file under ``root``'s scope directories."""
    findings: list[Finding] = []
    for rel in scope:
        base = root / rel
        for path in sorted(base.rglob("*.py")):
            findings.extend(scan_file(path, root))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint (default: "
                             "the gefin + compiler measurement core)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root for the default scope")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON document on stdout")
    args = parser.parse_args(argv)

    findings: list[Finding] = []
    if args.paths:
        for path in args.paths:
            if path.is_dir():
                for file in sorted(path.rglob("*.py")):
                    findings.extend(scan_file(file))
            else:
                findings.extend(scan_file(path))
    else:
        findings = scan_tree(args.root)

    if args.json:
        json.dump({"findings": [asdict(f) for f in findings],
                   "count": len(findings)},
                  sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        for finding in findings:
            print(finding.render())
        print(f"{len(findings)} determinism finding(s)"
              if findings else "determinism lint clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
