"""Language-construct execution semantics, via compile-and-run at O0.

Each test compiles a small MinC program and checks its output on the
functional reference CPU -- this is the ground-truth suite for the
AST -> IR lowering.
"""

from __future__ import annotations

import pytest

from .conftest import run_minc

C = "int main() { %s }"


def out(body: str, level: str = "O0") -> bytes:
    return run_minc(C % body, level).output.data


class TestArithmetic:
    def test_operator_basics(self) -> None:
        assert out("putint(7 + 3 * 2 - 1); return 0;") == b"12\n"
        assert out("putint((7 ^ 2) & 6); return 0;") == b"4\n"
        assert out("putint(1 << 5 | 3); return 0;") == b"35\n"

    def test_division_truncates_toward_zero(self) -> None:
        body = ("putint(-7 / 2); putint(7 / -2); putint(-7 %% 2);"
                .replace("%%", "%") + " return 0;")
        assert out(body) == b"-3\n-3\n-1\n"

    def test_unary_operators(self) -> None:
        assert out("int x = 5; putint(-x); putint(~x); putint(!x);"
                   " putint(!0); return 0;") == b"-5\n-6\n0\n1\n"

    def test_comparisons_as_values(self) -> None:
        assert out("putint(3 < 4); putint(4 <= 3); putint(5 == 5);"
                   " putint(5 != 5); putint(4 > 3); putint(3 >= 4);"
                   " return 0;") == b"1\n0\n1\n0\n1\n0\n"

    def test_signed_shift_right(self) -> None:
        assert out("putint(-8 >> 1); putint(ushr(8, 1)); return 0;") \
            == b"-4\n4\n"

    def test_ushr_is_logical(self) -> None:
        result = run_minc(C % "putint(ushr(-1, 28)); return 0;", "O0")
        assert result.output.data == b"15\n"


class TestControlFlow:
    def test_if_else_chain(self) -> None:
        source = """
        int grade(int x) {
            if (x > 90) { return 1; }
            else if (x > 50) { return 2; }
            else { return 3; }
        }
        int main() {
            putint(grade(95)); putint(grade(70)); putint(grade(10));
            return 0;
        }
        """
        assert run_minc(source).output.data == b"1\n2\n3\n"

    def test_while_break_continue(self) -> None:
        body = """
        int i = 0; int s = 0;
        while (1) {
            i++;
            if (i > 10) { break; }
            if (i % 2 == 0) { continue; }
            s += i;
        }
        putint(s); return 0;
        """
        assert out(body) == b"25\n"

    def test_do_while_runs_once(self) -> None:
        assert out("int i = 9; do { putint(i); i++; } while (i < 5);"
                   " return 0;") == b"9\n"

    def test_for_all_parts_optional(self) -> None:
        assert out("int i = 0; for (;;) { if (i == 3) { break; } i++; }"
                   " putint(i); return 0;") == b"3\n"

    def test_short_circuit_effects(self) -> None:
        source = """
        int calls = 0;
        int bump() { calls++; return 1; }
        int main() {
            if (0 && bump()) { }
            if (1 || bump()) { }
            putint(calls);
            if (1 && bump()) { }
            if (0 || bump()) { }
            putint(calls);
            return 0;
        }
        """
        assert run_minc(source).output.data == b"0\n2\n"

    def test_ternary(self) -> None:
        assert out("int x = 4; putint(x > 2 ? x * 10 : x - 1);"
                   " return 0;") == b"40\n"

    def test_nested_loops(self) -> None:
        body = """
        int s = 0;
        for (int i = 0; i < 4; i++) {
            for (int j = 0; j < i; j++) { s += i * j; }
        }
        putint(s); return 0;
        """
        assert out(body) == b"11\n"


class TestVariablesAndMemory:
    def test_incdec_semantics(self) -> None:
        body = """
        int a = 5;
        putint(a++); putint(a); putint(++a);
        putint(a--); putint(--a);
        return 0;
        """
        assert out(body) == b"5\n6\n7\n7\n5\n"

    def test_compound_assignment(self) -> None:
        body = """
        int a = 10;
        a += 5; a -= 2; a *= 3; a /= 2; a %= 7; a <<= 2; a |= 1;
        a ^= 3; a &= 14;
        putint(a); return 0;
        """
        assert out(body) == b"6\n"

    def test_local_array_init_list(self) -> None:
        assert out("int a[4] = {5, 6, 7, 8}; putint(a[0] + a[3]);"
                   " return 0;") == b"13\n"

    def test_global_scalar_and_array(self) -> None:
        source = """
        int counter = 41;
        int table[3] = {10, 20, 30};
        int main() {
            counter++;
            putint(counter);
            putint(table[1]);
            table[1] = 99;
            putint(table[1]);
            return 0;
        }
        """
        assert run_minc(source).output.data == b"42\n20\n99\n"

    def test_char_arrays_are_bytes(self) -> None:
        source = """
        char buf[4];
        int main() {
            buf[0] = 300;       // truncated to a byte
            putint(buf[0]);
            buf[1] = 'z';
            putint(buf[1]);
            return 0;
        }
        """
        assert run_minc(source).output.data == b"44\n122\n"

    def test_pointer_params_alias_arrays(self) -> None:
        source = """
        int data[5];
        void fill(int* p, int n) {
            for (int i = 0; i < n; i++) { p[i] = i * i; }
        }
        int sum(int* p, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) { s += p[i]; }
            return s;
        }
        int main() {
            fill(data, 5);
            putint(sum(data, 5));
            putint(sum(data + 1, 3));
            return 0;
        }
        """
        assert run_minc(source).output.data == b"30\n14\n"

    def test_pointer_increment_scaling(self) -> None:
        source = """
        int data[4] = {1, 2, 3, 4};
        int main() {
            int* p = data;
            p++;
            putint(p[0]);
            p += 2;
            putint(p[0]);
            return 0;
        }
        """
        assert run_minc(source).output.data == b"2\n4\n"


class TestFunctions:
    def test_recursion(self) -> None:
        source = """
        int fact(int n) {
            if (n < 2) { return 1; }
            return n * fact(n - 1);
        }
        int main() { putint(fact(7)); return 0; }
        """
        assert run_minc(source).output.data == b"5040\n"

    def test_mutual_recursion(self) -> None:
        source = """
        int is_odd(int n);
        """
        # MinC has no prototypes; use a driver pattern instead.
        source = """
        int parity(int n, int which) {
            if (n == 0) { return which; }
            return parity(n - 1, 1 - which);
        }
        int main() { putint(parity(9, 0)); return 0; }
        """
        assert run_minc(source).output.data == b"1\n"

    def test_eight_arguments(self) -> None:
        source = """
        int add8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b + c + d + e + f + g + h;
        }
        int main() { putint(add8(1, 2, 3, 4, 5, 6, 7, 8)); return 0; }
        """
        assert run_minc(source).output.data == b"36\n"

    def test_void_function(self) -> None:
        source = """
        int total = 0;
        void bump(int by) { total += by; }
        int main() { bump(3); bump(4); putint(total); return 0; }
        """
        assert run_minc(source).output.data == b"7\n"

    def test_exit_builtin(self) -> None:
        result = run_minc("int main() { exit(7); putint(1); return 0; }")
        assert result.exit_code == 7
        assert result.output.data == b""

    def test_implicit_return_zero(self) -> None:
        result = run_minc("int main() { putint(1); }")
        assert result.exit_code == 0


@pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3"])
def test_wide_constants(level: str) -> None:
    body = "putint(123456789 % 1000); puthex(0x7abcdef0); return 0;"
    assert out(body, level) == b"789\n7abcdef0\n"
