"""Estimator soundness: the occupancy-weighted importance sampler must
agree with the textbook uniform sampler within statistical error, and
checkpoint selection must be exact."""

from __future__ import annotations

import pytest

from repro.compiler import ARMLET32, compile_source
from repro.gefin import run_campaign, run_golden
from repro.gefin.fault import FaultSpec
from repro.gefin.injector import _restore_nearest
from repro.microarch import CORTEX_A15, Simulator

SOURCE = """
int data[32];
int main() {
    for (int i = 0; i < 32; i++) { data[i] = i * 5 % 17; }
    int s = 0;
    for (int i = 0; i < 32; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32, name="estimator")


@pytest.fixture(scope="module")
def golden(program):
    return run_golden(program, CORTEX_A15, snapshot_every=100)


@pytest.mark.slow
def test_occupancy_estimator_agrees_with_uniform(program, golden) -> None:
    """Both samplers estimate the same quantity: AVF over the full
    (bit x cycle) population. rob.flags is small and busy enough that
    n=60 gives overlapping confidence intervals."""
    uniform = run_campaign(program, CORTEX_A15, "rob.flags", n=60,
                           seed=21, mode="uniform", golden=golden)
    occupancy = run_campaign(program, CORTEX_A15, "rob.flags", n=60,
                             seed=22, mode="occupancy", golden=golden)
    # 99% margins of each estimate must overlap
    gap = abs(uniform.avf - occupancy.avf)
    assert gap <= uniform.margin() + occupancy.margin() + 0.05, (
        uniform.avf, occupancy.avf)


def test_occupancy_weights_shrink_variance_for_sparse_arrays(
        program, golden) -> None:
    """For the near-empty L2 the uniform sampler sees only masked runs
    at small n, while occupancy sampling still resolves the tiny AVF
    scale through its weights."""
    occupancy = run_campaign(program, CORTEX_A15, "l2.data", n=10,
                             seed=3, golden=golden, keep_results=True)
    summary, results = occupancy
    weights = [r.weight for r in results]
    assert all(0.0 <= w < 0.05 for w in weights)  # live/total tiny
    assert summary.avf <= max(weights)


def test_restore_nearest_picks_latest_checkpoint(program, golden) -> None:
    assert len(golden.snapshots) >= 2
    target = golden.snapshots[1][0] + 1  # just past the second snapshot
    sim = Simulator(program, CORTEX_A15)
    _restore_nearest(sim, golden, target)
    assert sim.cycle == golden.snapshots[1][0]
    # restoring for a cycle before any snapshot leaves the boot state
    sim2 = Simulator(program, CORTEX_A15)
    _restore_nearest(sim2, golden, golden.snapshots[0][0])
    assert sim2.cycle == 0


def test_injection_before_first_snapshot_still_exact(program,
                                                     golden) -> None:
    """A fault cycle below the first checkpoint replays from boot and
    must classify identically to a checkpoint-free golden run."""
    from repro.gefin import inject_one, run_golden as rg

    plain = rg(program, CORTEX_A15)
    early = max(1, golden.snapshots[0][0] // 2)
    spec = FaultSpec(field="prf", cycle=early, bit_index=40,
                     mode="uniform")
    a = inject_one(program, CORTEX_A15, golden, spec)
    b = inject_one(program, CORTEX_A15, plain, spec)
    assert a.outcome == b.outcome and a.cycles == b.cycles
