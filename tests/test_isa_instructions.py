"""Instruction metadata: formats, source/dest reporting, classification."""

from __future__ import annotations

from repro.isa import Instruction, Opcode, registers
from repro.isa.instructions import Format


def test_dest_reg_zero_register_discarded() -> None:
    assert Instruction(Opcode.ADD, rd=0, rs1=1, rs2=2).dest_reg() is None
    assert Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2).dest_reg() == 3


def test_bl_writes_link_register() -> None:
    assert Instruction(Opcode.BL, imm=4).dest_reg() == registers.LR


def test_store_has_no_dest() -> None:
    assert Instruction(Opcode.STR, rs2=3, rs1=2).dest_reg() is None


def test_src_regs_by_format() -> None:
    assert Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).src_regs() == (2, 3)
    assert Instruction(Opcode.ADDI, rd=1, rs1=2).src_regs() == (2,)
    assert Instruction(Opcode.LDR, rd=1, rs1=2).src_regs() == (2,)
    assert Instruction(Opcode.STR, rs2=3, rs1=2).src_regs() == (2, 3)
    assert Instruction(Opcode.BEQ, rs1=4, rs2=5).src_regs() == (4, 5)
    assert Instruction(Opcode.BR, rs1=30).src_regs() == (30,)
    assert Instruction(Opcode.MOVW, rd=7).src_regs() == ()
    # MOVT merges into the old value, so it reads its own destination.
    assert Instruction(Opcode.MOVT, rd=7).src_regs() == (7,)
    assert Instruction(Opcode.B).src_regs() == ()


def test_exec_classes() -> None:
    assert Instruction(Opcode.ADD).exec_class == "alu"
    assert Instruction(Opcode.MUL).exec_class == "mul"
    assert Instruction(Opcode.DIV).exec_class == "div"
    assert Instruction(Opcode.REM).exec_class == "div"
    assert Instruction(Opcode.LDR).exec_class == "mem"
    assert Instruction(Opcode.STR).exec_class == "mem"
    assert Instruction(Opcode.BEQ).exec_class == "branch"
    assert Instruction(Opcode.SVC).exec_class == "system"


def test_classification_flags() -> None:
    load = Instruction(Opcode.LDRB, rd=1, rs1=2)
    assert load.is_load and load.is_mem and not load.is_store
    store = Instruction(Opcode.STRB, rs2=1, rs1=2)
    assert store.is_store and store.is_mem and not store.is_load
    assert Instruction(Opcode.BEQ).is_cond_branch
    assert Instruction(Opcode.B).is_jump
    assert Instruction(Opcode.BL).is_call
    assert Instruction(Opcode.BR).is_control
    assert Instruction(Opcode.SVC).is_syscall


def test_format_coverage() -> None:
    # Every opcode has a format and a string rendering.
    for opcode in Opcode:
        instr = Instruction(opcode, rd=1, rs1=2, rs2=3)
        assert isinstance(instr.format, Format)
        assert str(instr)


def test_register_names_roundtrip() -> None:
    for number in range(registers.NUM_REGS):
        assert registers.reg_number(registers.reg_name(number)) == number
    assert registers.reg_name(registers.SP) == "sp"
    assert registers.reg_number("r17") == 17
