"""MinC front end: lexer, parser, semantic analysis."""

from __future__ import annotations

import pytest

from repro.errors import CompileError
from repro.lang import analyze, ast_nodes as ast, parse, tokenize
from repro.lang.tokens import TokenKind


class TestLexer:
    def test_numbers(self) -> None:
        tokens = tokenize("123 0x1F 'a' '\\n'")
        values = [t.value for t in tokens if t.kind is TokenKind.NUMBER]
        assert values == [123, 31, 97, 10]

    def test_keywords_vs_identifiers(self) -> None:
        tokens = tokenize("int inty for fortune")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [(TokenKind.KEYWORD, "int"),
                         (TokenKind.IDENT, "inty"),
                         (TokenKind.KEYWORD, "for"),
                         (TokenKind.IDENT, "fortune")]

    def test_longest_match_punctuation(self) -> None:
        tokens = tokenize("a <<= b << c < d")
        puncts = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert puncts == ["<<=", "<<", "<"]

    def test_comments(self) -> None:
        tokens = tokenize("1 // line\n/* block\nstill */ 2")
        values = [t.value for t in tokens if t.kind is TokenKind.NUMBER]
        assert values == [1, 2]

    def test_line_numbers(self) -> None:
        tokens = tokenize("a\nb\n\nc")
        lines = [t.line for t in tokens if t.kind is TokenKind.IDENT]
        assert lines == [1, 2, 4]

    def test_errors(self) -> None:
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a @ b")
        with pytest.raises(CompileError, match="unterminated block"):
            tokenize("/* nope")


class TestParser:
    def test_precedence(self) -> None:
        module = parse("int main() { return 1 + 2 * 3; }")
        ret = module.functions[0].body.stmts[0]
        assert isinstance(ret, ast.Return)
        add = ret.value
        assert isinstance(add, ast.Binary) and add.op == "+"
        assert isinstance(add.right, ast.Binary) and add.right.op == "*"

    def test_assignment_right_associative(self) -> None:
        module = parse("int main() { int a; int b; a = b = 1; return a; }")
        stmt = module.functions[0].body.stmts[2]
        assert isinstance(stmt, ast.ExprStmt)
        outer = stmt.expr
        assert isinstance(outer, ast.Assign)
        assert isinstance(outer.value, ast.Assign)

    def test_global_array_with_init(self) -> None:
        module = parse("int t[] = {1, 2, -3}; int main() { return 0; }")
        gvar = module.globals[0]
        assert gvar.ty.kind == "array" and gvar.ty.size == 3
        assert gvar.init == [1, 2, -3]

    def test_char_pointer_param_forms(self) -> None:
        module = parse("""
        int f(char* p, char q[]) { return p[0] + q[0]; }
        int main() { return 0; }
        """)
        params = module.functions[0].params
        assert all(p.ty.kind == "ptr" and p.ty.base == "char"
                   for p in params)

    def test_for_with_decl(self) -> None:
        module = parse(
            "int main() { for (int i = 0; i < 4; i++) { } return 0; }")
        loop = module.functions[0].body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)

    def test_dangling_else(self) -> None:
        module = parse("""
        int main() {
            if (1) if (2) return 1; else return 2;
            return 3;
        }
        """)
        outer = module.functions[0].body.stmts[0]
        assert isinstance(outer, ast.If)
        assert outer.other is None
        inner = outer.then
        assert isinstance(inner, ast.If) and inner.other is not None

    def test_ternary(self) -> None:
        module = parse("int main() { return 1 ? 2 : 3; }")
        ret = module.functions[0].body.stmts[0]
        assert isinstance(ret.value, ast.Cond)

    @pytest.mark.parametrize("bad", [
        "int main() { return 1 }",
        "int main() { int 3x; }",
        "int main( {}",
        "void main() {} extra",
    ])
    def test_syntax_errors(self, bad: str) -> None:
        with pytest.raises(CompileError):
            parse(bad)


class TestSema:
    def _analyze(self, body: str, prelude: str = ""):
        return analyze(parse(f"{prelude}\nint main() {{ {body} }}"))

    def test_undefined_variable(self) -> None:
        with pytest.raises(CompileError, match="undefined variable"):
            self._analyze("return missing;")

    def test_undefined_function(self) -> None:
        with pytest.raises(CompileError, match="undefined function"):
            self._analyze("frob(1); return 0;")

    def test_arg_count(self) -> None:
        with pytest.raises(CompileError, match="expects 1 argument"):
            self._analyze("putint(1, 2); return 0;")

    def test_pointer_type_mismatch(self) -> None:
        with pytest.raises(CompileError, match="type mismatch"):
            self._analyze("f(c); return 0;",
                          prelude="char c[4];\n"
                                  "int f(int* p) { return p[0]; }")

    def test_array_not_assignable(self) -> None:
        with pytest.raises(CompileError, match="cannot assign"):
            self._analyze("int a[4]; a = 0; return 0;")

    def test_index_requires_pointer(self) -> None:
        with pytest.raises(CompileError, match="cannot index"):
            self._analyze("int x; return x[0];")

    def test_break_outside_loop(self) -> None:
        with pytest.raises(CompileError, match="break outside loop"):
            self._analyze("break; return 0;")

    def test_void_return_rules(self) -> None:
        with pytest.raises(CompileError, match="returns a value"):
            analyze(parse(
                "void f() { return 1; } int main() { return 0; }"))
        with pytest.raises(CompileError, match="returns nothing"):
            analyze(parse("int main() { return; }"))

    def test_shadowing_allowed_in_nested_scope(self) -> None:
        info = self._analyze(
            "int x = 1; { int x = 2; putint(x); } return x;")
        assert len(info.locals["main"]) == 2

    def test_redeclaration_same_scope_rejected(self) -> None:
        with pytest.raises(CompileError, match="redeclaration"):
            self._analyze("int x; int x; return 0;")

    def test_requires_main(self) -> None:
        with pytest.raises(CompileError, match="no main"):
            analyze(parse("int f() { return 0; }"))

    def test_duplicate_function(self) -> None:
        with pytest.raises(CompileError, match="duplicate function"):
            analyze(parse(
                "int main() { return 0; } int main() { return 1; }"))

    def test_pointer_arithmetic_types(self) -> None:
        info = analyze(parse("""
        int g[8];
        int f(int* p) { return (p + 1)[0]; }
        int main() { return f(g + 2); }
        """))
        assert info.functions["f"].params[0].kind == "ptr"
