"""Assembler: syntax, labels, pseudo-instructions, data directives."""

from __future__ import annotations

import pytest

from repro.errors import AssemblyError
from repro.isa import Instruction, Opcode, assemble, expand_li, registers
from repro.kernel import MainMemory, load, run_functional


def test_basic_program_runs() -> None:
    program = assemble("""
    _start:
        li a0, 6
        li a1, 7
        mul a0, a0, a1
        svc 1
        movw a0, 0
        svc 0
    """)
    memory = MainMemory(4 * 1024 * 1024)
    result = run_functional(load(program, memory), memory)
    assert result.output.data == b"42\n"
    assert result.exit_code == 0


def test_labels_and_branches() -> None:
    program = assemble("""
    _start:
        movw a0, 0
        movw t0, 5
    loop:
        add a0, a0, t0
        addi t0, t0, -1
        bne t0, zero, loop
        svc 1
        movw a0, 0
        svc 0
    """)
    memory = MainMemory(4 * 1024 * 1024)
    result = run_functional(load(program, memory), memory)
    assert result.output.data == b"15\n"


def test_branch_displacement_resolution() -> None:
    program = assemble("""
    _start:
        b skip
        svc 0
    skip:
        movw a0, 0
        svc 0
    """)
    assert program.text[0] == Instruction(Opcode.B, imm=2)


def test_data_directives() -> None:
    program = assemble("""
    _start:
        svc 0
    .data
    buf: .space 8
    tbl: .word 1, -2, 3
    raw: .byte 10, 20
    """, xlen=32)
    assert program.data_symbols == {"buf": 0, "tbl": 8, "raw": 20}
    assert len(program.data) == 22
    assert int.from_bytes(program.data[12:16], "little") == (1 << 32) - 2


def test_memory_operands() -> None:
    program = assemble("""
    _start:
        ldr a0, [sp, 8]
        str a1, [sp]
        ldrb a2, [a0, -1]
        svc 0
    """)
    assert program.text[0] == Instruction(Opcode.LDR, rd=1,
                                          rs1=registers.SP, imm=8)
    assert program.text[1] == Instruction(Opcode.STR, rs2=2,
                                          rs1=registers.SP, imm=0)
    assert program.text[2].imm == -1


def test_ret_pseudo() -> None:
    program = assemble("_start: ret")
    assert program.text[0] == Instruction(Opcode.BR, rs1=registers.LR)


def test_comments_and_blank_lines() -> None:
    program = assemble("""
    ; full line comment
    _start:            # another
        nop            ; trailing
    """)
    assert program.text == [Instruction(Opcode.NOP)]


@pytest.mark.parametrize("bad, message", [
    ("_start: frob a0, a1", "unknown mnemonic"),
    ("_start: add a0, a1", "expects 3 operands"),
    ("_start: b nowhere", "undefined label"),
    ("_start: ldr a0, [sp", "bad memory operand"),
    ("x: x: nop", "duplicate label"),
])
def test_errors(bad: str, message: str) -> None:
    with pytest.raises(AssemblyError, match=message):
        assemble(bad)


@pytest.mark.parametrize("value, count", [
    (0, 1), (0xFFFF, 1), (0x10000, 2), (0xFFFF_FFFF, 2),
])
def test_expand_li_32(value: int, count: int) -> None:
    seq = expand_li(5, value, 32)
    assert len(seq) == count


def test_expand_li_64_wide() -> None:
    seq = expand_li(5, 0x1234_5678_9ABC_DEF0, 64)
    assert [i.opcode for i in seq] == [Opcode.MOVW, Opcode.MOVT,
                                       Opcode.MOVT2, Opcode.MOVT3]


def test_expand_li_64_sparse_halves() -> None:
    # zero 16-bit chunks are skipped
    seq = expand_li(5, 0x1234_0000_0000_5678, 64)
    assert [i.opcode for i in seq] == [Opcode.MOVW, Opcode.MOVT3]


def test_entry_defaults_to_zero_without_start() -> None:
    program = assemble("nop\nnop")
    assert program.entry == 0
