"""Property-based tests on the fault-injection surface.

Key invariants:

* **involution** -- flipping the same bit twice restores the exact
  machine state (byte-identical snapshot);
* **geometry stability** -- bit counts never change during a run;
* **live-index consistency** -- occupancy-mode flips address the same
  storage the uniform flips do.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compiler import ARMLET32, compile_source
from repro.microarch import ALL_FIELDS, CORTEX_A15, Simulator

SOURCE = """
int data[40];
int main() {
    for (int i = 0; i < 40; i++) { data[i] = i * 3 + 1; }
    int s = 0;
    for (int i = 0; i < 40; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32)


@pytest.fixture(scope="module")
def warm_state(program):
    sim = Simulator(program, CORTEX_A15)
    sim.run_until(400)
    return sim.save_state()


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_double_flip_is_identity(program, warm_state, data) -> None:
    field = data.draw(st.sampled_from(ALL_FIELDS))
    sim = Simulator(program, CORTEX_A15)
    sim.load_state(warm_state)
    baseline = sim.save_state()
    bit = data.draw(st.integers(min_value=0,
                                max_value=sim.bit_count(field) - 1))
    changed_first = sim.flip(field, bit)
    changed_second = sim.flip(field, bit)
    assert changed_first == changed_second
    assert sim.save_state() == baseline


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_live_flip_double_is_identity(program, warm_state, data) -> None:
    field = data.draw(st.sampled_from(ALL_FIELDS))
    sim = Simulator(program, CORTEX_A15)
    sim.load_state(warm_state)
    live = sim.catalog.live_bit_count(field)
    if live == 0:
        return
    baseline = sim.save_state()
    bit = data.draw(st.integers(min_value=0, max_value=live - 1))
    assert sim.catalog.flip_live(field, bit)
    assert sim.catalog.flip_live(field, bit)
    assert sim.save_state() == baseline


def test_bit_counts_constant_during_run(program) -> None:
    sim = Simulator(program, CORTEX_A15)
    before = {f: sim.bit_count(f) for f in ALL_FIELDS}
    sim.run_until(600)
    after = {f: sim.bit_count(f) for f in ALL_FIELDS}
    assert before == after


def test_live_never_exceeds_total(program) -> None:
    sim = Simulator(program, CORTEX_A15)
    for _ in range(12):
        sim.run_until(sim.cycle + 100)
        for field in ALL_FIELDS:
            live = sim.catalog.live_bit_count(field)
            assert 0 <= live <= sim.bit_count(field), field


def test_out_of_range_flip_rejected(program) -> None:
    sim = Simulator(program, CORTEX_A15)
    with pytest.raises(ValueError, match="out of range"):
        sim.flip("prf", sim.bit_count("prf"))
    with pytest.raises(ValueError, match="unknown fault field"):
        sim.flip("tlb", 0)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_flip_then_continue_is_deterministic(program, warm_state,
                                             data) -> None:
    """Two simulators given the same flip diverge identically."""
    field = data.draw(st.sampled_from(
        ["prf", "rob.pc", "iq.src", "l1d.data"]))
    outcomes = []
    for _ in range(2):
        sim = Simulator(program, CORTEX_A15)
        sim.load_state(warm_state)
        bit = 5 % sim.bit_count(field)
        sim.flip(field, bit)
        try:
            result = sim.run(6000)
            outcomes.append(("done", result.output.data))
        except Exception as exc:  # noqa: BLE001 - compare any outcome
            outcomes.append((type(exc).__name__, str(exc)))
    assert outcomes[0] == outcomes[1]
