"""Static-analysis gate: every bundled workload must verify at every
O-level, and the static AVF bounds must dominate the dynamic ACE
estimates (the ``static >= dynamic-ACE`` leg of the pessimism chain)."""

from __future__ import annotations

import pytest

from repro import api, cli
from repro.avf import ace_estimate, instruction_report, static_ace_estimate
from repro.compiler import TARGETS, compile_module, ir, verify_module
from repro.compiler.lifetimes import analyze_program
from repro.errors import IRVerificationError
from repro.microarch import CONFIGS
from repro.workloads import BENCHMARKS, build_program, get_workload

LEVELS = ("O0", "O1", "O2", "O3")
GRID = [(name, level) for name in BENCHMARKS for level in LEVELS]


# ------------------------------------------------------------ verify gate

@pytest.mark.parametrize("name,level", GRID,
                         ids=[f"{n}-{o}" for n, o in GRID])
def test_workload_verifies_after_every_pass(name, level) -> None:
    source = get_workload(name).source("micro")
    for target_name in ("armlet32", "armlet64"):
        compile_module(source, level, TARGETS[target_name],
                       name=name, verify_ir=True)


def test_api_verify_workload() -> None:
    result = api.verify_workload("sha", opt_level="O3", core="cortex-a72")
    assert "main" in result.module.functions


def test_corrupted_cfg_rejected_with_location() -> None:
    """A dangling successor injected into compiled IR must be rejected
    naming the rule and the offending block."""
    source = get_workload("fft").source("micro")
    module = compile_module(source, "O2", TARGETS["armlet32"]).module
    func = module.functions["main"]
    victim = next(b for b in func.blocks if b.terminator.successors())
    term = victim.terminator
    if isinstance(term, ir.Jump):
        term.target = "no_such_block"
    else:
        term.if_true = "no_such_block"
    with pytest.raises(IRVerificationError) as excinfo:
        verify_module(module)
    err = excinfo.value
    assert err.rule == "dangling-successor"
    assert err.block == victim.name
    assert victim.name in str(err)
    assert "no_such_block" in str(err)


# ----------------------------------------------------- pessimism ordering

@pytest.mark.slow
@pytest.mark.parametrize("name,level", GRID,
                         ids=[f"{n}-{o}" for n, o in GRID])
def test_static_bound_dominates_dynamic_ace_a15(name, level) -> None:
    program = build_program(name, "micro", level, "armlet32")
    config = CONFIGS["cortex-a15"]
    static = static_ace_estimate(program, config)
    dynamic = ace_estimate(program, config)
    for field_name, dyn in dynamic.estimates.items():
        assert field_name in static.estimates, field_name
        bound = static.estimates[field_name]
        assert bound >= dyn - 1e-12, (
            f"{name}@{level}: static bound {bound:.4f} below dynamic "
            f"ACE {dyn:.4f} for {field_name} "
            f"[{static.derivations[field_name]}]")
    slack = static.pessimism_vs(dynamic.estimates)
    assert all(gap >= -1e-12 for gap in slack.values())


@pytest.mark.slow
def test_static_bound_dominates_dynamic_ace_a72() -> None:
    program = build_program("qsort", "micro", "O3", "armlet64")
    config = CONFIGS["cortex-a72"]
    static = static_ace_estimate(program, config)
    dynamic = ace_estimate(program, config)
    for field_name, dyn in dynamic.estimates.items():
        assert static.estimates[field_name] >= dyn - 1e-12, field_name


# ----------------------------------------------------- analysis sanity

def test_static_estimate_covers_all_injectable_fields() -> None:
    program = build_program("sha", "micro", "O2", "armlet32")
    static = static_ace_estimate(program, CONFIGS["cortex-a15"])
    expected = {"rob.pc", "rob.seq", "rob.dest", "rob.flags",
                "iq.src", "iq.dst", "lq", "sq", "prf",
                "l1i.data", "l1i.tag", "l1d.data", "l1d.tag",
                "l2.data", "l2.tag"}
    assert set(static.estimates) == expected
    assert set(static.derivations) == expected
    assert all(0.0 <= v <= 1.0 for v in static.estimates.values())


def test_prf_bound_tightens_with_larger_regfile() -> None:
    p32 = build_program("sha", "micro", "O2", "armlet32")
    p64 = build_program("sha", "micro", "O2", "armlet64")
    a15 = static_ace_estimate(p32, CONFIGS["cortex-a15"])
    a72 = static_ace_estimate(p64, CONFIGS["cortex-a72"])
    # A15: (32+40)/128; A72: (32+128)/192 -- both strictly below 1
    assert a15.estimates["prf"] == pytest.approx(72 / 128)
    assert a72.estimates["prf"] == pytest.approx(160 / 192)


def test_recursion_widens_data_footprint() -> None:
    """qsort recurses, so its stack depth is statically unbounded and
    the data-side footprint must cover the whole user region."""
    qsort = build_program("qsort", "micro", "O2", "armlet32")
    crc = build_program("sha", "micro", "O2", "armlet32")
    q_life = analyze_program(qsort)
    c_life = analyze_program(crc)
    assert q_life.stack.recursive
    assert q_life.stack.bound_bytes is None
    assert not c_life.stack.recursive
    assert c_life.stack.bound_bytes is not None
    assert c_life.stack.bound_bytes > 0
    config = CONFIGS["cortex-a15"]
    q = static_ace_estimate(qsort, config).estimates
    c = static_ace_estimate(crc, config).estimates
    assert q["l1d.data"] >= c["l1d.data"]


def test_instruction_report_covers_program() -> None:
    program = build_program("blowfish", "micro", "O1", "armlet32")
    life = analyze_program(program)
    rows = instruction_report(life)
    assert len(rows) == len(program.text)
    assert any("main" in row.labels for row in rows)
    assert max(row.live_count for row in rows) == life.max_pressure
    entry_live = set(rows[program.entry].live_regs)
    assert all(0 < r < 32 for row in rows for r in row.live_regs)
    assert entry_live == set(life.live_regs_at(program.entry))


def test_api_static_ace_roundtrip() -> None:
    program = api.compile_workload("patricia", opt_level="O1")
    result = api.static_ace(program, core="cortex-a15")
    assert result.program_name == program.name
    assert result.config_name == "cortex-a15"
    assert result.lifetimes is not None


# --------------------------------------------------------------- CLI

def test_cli_verify_exit_zero() -> None:
    assert cli.main(["verify", "sha", "-O3"]) == 0


def test_cli_verify_long_opt(capsys) -> None:
    assert cli.main(["verify", "dijkstra", "--opt", "O1"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("OK dijkstra at O1")
    assert "verified after every pass" in out


def test_cli_lint_exit_zero(capsys) -> None:
    assert cli.main(["lint", "qsort", "-O2", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "static AVF upper bounds" in out
    assert "prf" in out
    assert "stack: recursive call graph" in out
