"""Out-of-order core: equivalence with the functional reference, timing
sanity, snapshot determinism, and fault-surface consistency."""

from __future__ import annotations

import pytest

from repro.avf import field_bit_counts
from repro.compiler import ARMLET32, ARMLET64, compile_source
from repro.kernel import MainMemory, load, run_functional
from repro.microarch import (
    ALL_FIELDS,
    COMPONENT_FIELDS,
    CORTEX_A15,
    CORTEX_A72,
    Simulator,
)

SOURCE = """
int table[32];
int scale(int x) { return x * 3 - 1; }
int main() {
    for (int i = 0; i < 32; i++) { table[i] = scale(i) % 19; }
    int best = 0;
    for (int i = 1; i < 32; i++) {
        if (table[i] > table[best]) { best = i; }
    }
    putint(best);
    putint(table[best]);
    int acc = 0;
    int x = 200;
    while (x > 0) { acc += x / 3; x -= 7; }
    putint(acc);
    return 0;
}
"""


@pytest.mark.parametrize("core,target", [(CORTEX_A15, ARMLET32),
                                         (CORTEX_A72, ARMLET64)])
@pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3"])
def test_matches_functional_reference(core, target, level) -> None:
    program = compile_source(SOURCE, level, target)
    memory = MainMemory(4 * 1024 * 1024)
    functional = run_functional(load(program, memory), memory)
    result = Simulator(program, core).run(5_000_000)
    assert result.output.data == functional.output.data
    assert result.exit_code == functional.exit_code == 0
    assert result.stats["committed"] >= functional.instructions


def test_core_program_width_mismatch_rejected() -> None:
    program = compile_source(SOURCE, "O1", ARMLET32)
    with pytest.raises(ValueError, match="32-bit"):
        Simulator(program, CORTEX_A72)


def test_o0_slower_than_o2() -> None:
    cycles = {}
    for level in ("O0", "O2"):
        program = compile_source(SOURCE, level, ARMLET32)
        cycles[level] = Simulator(program, CORTEX_A15).run(5_000_000).cycles
    assert cycles["O0"] > 2 * cycles["O2"]


def test_deterministic_runs() -> None:
    program = compile_source(SOURCE, "O2", ARMLET32)
    first = Simulator(program, CORTEX_A15).run(5_000_000)
    second = Simulator(program, CORTEX_A15).run(5_000_000)
    assert first.cycles == second.cycles
    assert first.stats == second.stats


def test_snapshot_restore_resumes_identically() -> None:
    program = compile_source(SOURCE, "O2", ARMLET32)
    reference = Simulator(program, CORTEX_A15).run(5_000_000)

    sim = Simulator(program, CORTEX_A15)
    assert sim.run_until(reference.cycles // 2)
    blob = sim.save_state()

    resumed = Simulator(program, CORTEX_A15)
    resumed.load_state(blob)
    result = resumed.run(5_000_000)
    assert result.cycles == reference.cycles
    assert result.output.data == reference.output.data


def test_snapshot_restore_midway_equals_straight_run() -> None:
    program = compile_source(SOURCE, "O1", ARMLET32)
    sim = Simulator(program, CORTEX_A15)
    sim.run_until(100)
    blob = sim.save_state()
    sim.run_until(200)
    state_a = sim.core.stats.committed

    sim2 = Simulator(program, CORTEX_A15)
    sim2.load_state(blob)
    sim2.run_until(200)
    assert sim2.core.stats.committed == state_a


def test_fault_field_catalog_matches_analytics() -> None:
    """The simulator's injectable bit counts must equal the analytic
    bit counts FIT computations use."""
    for core, target in ((CORTEX_A15, ARMLET32), (CORTEX_A72, ARMLET64)):
        program = compile_source(SOURCE, "O1", target)
        sim = Simulator(program, core)
        analytic = field_bit_counts(core)
        assert set(sim.fault_fields()) == set(ALL_FIELDS)
        for field in ALL_FIELDS:
            assert sim.bit_count(field) == analytic[field], field


def test_component_field_grouping_covers_all() -> None:
    grouped = [f for fields in COMPONENT_FIELDS.values() for f in fields]
    assert sorted(grouped) == sorted(ALL_FIELDS)
    assert len(grouped) == 15  # the paper's 960 = 64 programs x 15 fields


def test_stats_populated() -> None:
    program = compile_source(SOURCE, "O1", ARMLET32)
    stats = Simulator(program, CORTEX_A15).run(5_000_000).stats
    assert stats["loads"] > 0
    assert stats["stores"] > 0
    assert stats["branches"] > 0
    assert stats["syscalls"] == 4  # 3 putint + exit
    assert 0 < stats["ipc"] < 6


def test_timeout_raised_at_cycle_limit() -> None:
    from repro.errors import SimTimeoutError

    source = "int main() { while (1) { } return 0; }"
    program = compile_source(source, "O0", ARMLET32)
    with pytest.raises(SimTimeoutError):
        Simulator(program, CORTEX_A15).run(3000)
