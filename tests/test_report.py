"""EXPERIMENTS.md report generation from a tiny grid."""

from __future__ import annotations

import pytest

from repro.experiments import CampaignGrid, GridSpec
from repro.experiments.report import generate


@pytest.fixture(scope="module")
def tiny_grid(tmp_path_factory) -> CampaignGrid:
    spec = GridSpec(
        benchmarks=("qsort",),
        levels=("O0", "O1", "O2", "O3"),
        cores=("cortex-a15",),
        fields=("rob.flags", "prf", "l1d.data", "l1i.data", "iq.src",
                "lq", "sq", "l1d.tag", "l1i.tag", "l2.data", "l2.tag",
                "iq.dst", "rob.pc", "rob.dest", "rob.seq"),
        scale="micro",
        injections=2,
        seed=13,
    )
    grid = CampaignGrid(spec, tmp_path_factory.mktemp("report-grid"))
    grid.ensure_all()
    return grid


@pytest.mark.bench
def test_report_contains_every_section(tiny_grid) -> None:
    text = generate(tiny_grid)
    assert "# EXPERIMENTS" in text
    assert "## Table I" in text
    for figure in range(1, 13):
        assert f"## Fig. {figure} " in text, figure
    assert "Paper shape:" in text
    assert "Headline observations" in text


def test_report_records_grid_parameters(tiny_grid) -> None:
    text = generate(tiny_grid)
    assert "injections per cell=2" in text
    assert "seed=13" in text
    assert "scale=micro" in text


def test_report_headlines_mention_rob_and_rf(tiny_grid) -> None:
    text = generate(tiny_grid)
    assert "ROB(flags) wAVF" in text
    assert "RF wAVF" in text
