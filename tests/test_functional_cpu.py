"""Functional reference CPU: direct interpreter-level checks."""

from __future__ import annotations

import pytest

from repro.errors import SimTimeoutError
from repro.isa import assemble
from repro.kernel import (
    FunctionalCPU,
    MainMemory,
    load,
    run_functional,
)


def _boot(source: str):
    program = assemble(source, xlen=32)
    memory = MainMemory(4 * 1024 * 1024)
    image = load(program, memory)
    return FunctionalCPU(image, memory, 32), memory


def test_register_zero_is_hardwired() -> None:
    cpu, _ = _boot("""
    _start:
        movw zero, 55
        add a0, zero, zero
        svc 1
        movw a0, 0
        svc 0
    """)
    result = cpu.run()
    assert result.output.data == b"0\n"


def test_instruction_mix_counted() -> None:
    cpu, _ = _boot("""
    _start:
        movw t0, 3
        movw t1, 4
        mul a0, t0, t1
        li t2, 0x00100000
        str a0, [t2, 0]
        ldr a1, [t2, 0]
        beq a0, a1, ok
    ok:
        svc 1
        movw a0, 0
        svc 0
    """)
    result = cpu.run()
    assert result.output.data == b"12\n"
    assert result.mix["mul"] == 1
    assert result.mix["mem"] == 2
    assert result.mix["branch"] >= 1


def test_instruction_budget_enforced() -> None:
    cpu, _ = _boot("_start: b _start")
    with pytest.raises(SimTimeoutError):
        cpu.run(max_instructions=500)


def test_xlen_mismatch_rejected() -> None:
    program = assemble("_start: svc 0", xlen=64)
    memory = MainMemory(4 * 1024 * 1024)
    image = load(program, memory)
    with pytest.raises(ValueError, match="xlen"):
        FunctionalCPU(image, memory, 32)


def test_call_and_return_stack_discipline() -> None:
    cpu, _ = _boot("""
    _start:
        movw a0, 2
        bl double
        bl double
        bl double
        svc 1
        movw a0, 0
        svc 0
    double:
        add a0, a0, a0
        br lr
    """)
    result = cpu.run()
    assert result.output.data == b"16\n"


def test_run_functional_wrapper() -> None:
    program = assemble("""
    _start:
        movw a0, 65
        svc 2
        movw a0, 10
        svc 2
        movw a0, 0
        svc 0
    """, xlen=32)
    memory = MainMemory(4 * 1024 * 1024)
    result = run_functional(load(program, memory), memory)
    assert result.output.data == b"A\n"
