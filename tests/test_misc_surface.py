"""Small public-surface checks: errors, Program container, IR cloning."""

from __future__ import annotations

import pytest

from repro.compiler import ir
from repro.errors import (
    CompileError,
    SimCrashError,
    SimTimeoutError,
)
from repro.isa import Instruction, Opcode, Program, encode


class TestErrors:
    def test_compile_error_line_prefix(self) -> None:
        assert "line 7" in str(CompileError("bad", line=7))
        assert CompileError("bad").line is None

    def test_crash_kinds(self) -> None:
        assert SimCrashError("x").kind == "process"
        assert SimCrashError("x", kind="system").kind == "system"
        with pytest.raises(ValueError):
            SimCrashError("x", kind="alien")

    def test_timeout_records_limit(self) -> None:
        assert SimTimeoutError(500).limit == 500


class TestProgram:
    def _program(self) -> Program:
        return Program(
            text=[Instruction(Opcode.MOVW, rd=1, imm=5),
                  Instruction(Opcode.SVC, imm=0)],
            text_symbols={"_start": 0},
            xlen=32,
        )

    def test_encoded_text(self) -> None:
        program = self._program()
        words = program.encoded_text()
        assert words == [encode(i) for i in program.text]

    def test_listing_marks_entry_and_labels(self) -> None:
        listing = self._program().listing()
        assert "_start:" in listing
        assert "<- entry" in listing

    def test_len_and_bytes(self) -> None:
        program = self._program()
        assert len(program) == 2
        assert program.text_bytes == 8

    def test_bad_xlen_rejected(self) -> None:
        with pytest.raises(ValueError):
            Program(xlen=48)


class TestIrCloning:
    def test_clone_call_copies_args_list(self) -> None:
        call = ir.Call(ir.VReg(1), "f", [ir.Const(1), ir.VReg(2)])
        clone = ir.clone_instr(call)
        clone.args.append(ir.Const(9))
        assert len(call.args) == 2

    def test_clone_terminator_independent(self) -> None:
        term = ir.CondJump("lt", ir.VReg(1), ir.Const(0), "a", "b")
        clone = ir.clone_terminator(term)
        clone.if_true = "elsewhere"
        assert term.if_true == "a"

    def test_instr_str_forms(self) -> None:
        samples = [
            ir.BinOp(ir.VReg(1), "add", ir.VReg(2), ir.Const(3)),
            ir.Move(ir.VReg(1), ir.Const(0)),
            ir.Load(ir.VReg(1), ir.VReg(2), 4, "byte"),
            ir.Store(ir.Const(7), ir.VReg(2), 0),
            ir.La(ir.VReg(1), "table"),
            ir.SlotAddr(ir.VReg(1), 0),
            ir.Call(None, "f", []),
            ir.Syscall(1, ir.VReg(1)),
        ]
        for instr in samples:
            assert str(instr)

    def test_value_str(self) -> None:
        assert str(ir.VReg(3, "acc")) == "%3.acc"
        assert str(ir.Const(-5)) == "-5"


def test_uop_repr() -> None:
    from repro.microarch.uop import MicroOp

    uop = MicroOp(7, 0x1000, 0)
    assert "#7" in repr(uop)
    uop.instr = Instruction(Opcode.NOP)
    assert "nop" in repr(uop)


def test_version_exposed() -> None:
    import repro

    assert repro.__version__
