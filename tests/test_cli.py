"""CLI surface: run/inject/trace/stats/verify golden checks.

Each command is driven through ``repro.cli.main`` with capsys: stdout
must carry the result (exactly one parseable JSON document under
``--json``), stderr all the diagnostics -- progress lines, golden-run
notices, file-write notes -- so piped output stays machine-readable.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SOURCE = """
int data[48];
int main() {
    for (int i = 0; i < 48; i++) { data[i] = i * 11 % 31; }
    int s = 0;
    for (int i = 0; i < 48; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def src(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("cli") / "tiny.c"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture(autouse=True)
def _serial(monkeypatch) -> None:
    monkeypatch.delenv("REPRO_WORKERS", raising=False)


def _json_doc(captured) -> dict:
    """stdout must be exactly one JSON document."""
    return json.loads(captured.out)


class TestVerify:
    def test_clean_compile_reports_ok(self, src, capsys) -> None:
        assert main(["verify", src, "-O2"]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("OK tiny at O2")
        assert "verified after every pass" in captured.out

    def test_unknown_program_rejected(self, capsys) -> None:
        with pytest.raises(SystemExit, match="neither a benchmark"):
            main(["verify", "no-such-benchmark"])


class TestRun:
    def test_human_output(self, src, capsys) -> None:
        assert main(["run", src, "-O1"]) == 0
        captured = capsys.readouterr()
        assert "cycles:" in captured.out
        assert "exit code: 0" in captured.out
        assert captured.err == ""

    def test_json_mode_is_one_clean_document(self, src, capsys) -> None:
        assert main(["run", src, "-O1", "--json"]) == 0
        captured = capsys.readouterr()
        doc = _json_doc(captured)
        assert doc["program"].startswith("tiny")
        assert doc["core"] == "cortex-a15"
        assert doc["exit_code"] == 0
        assert doc["cycles"] > 0
        assert doc["stats"]["committed"] > 0
        assert "metrics" not in doc
        assert captured.err == ""

    def test_metrics_flag_samples_the_run(self, src, capsys) -> None:
        assert main(["run", src, "-O1", "--metrics", "--json"]) == 0
        doc = _json_doc(capsys.readouterr())
        metrics = doc["metrics"]
        assert metrics["rob.occupancy"]["count"] > 0
        assert metrics["cycles"]["value"] == doc["cycles"]
        assert metrics["l1d.hits"]["type"] == "counter"
        assert 0.0 <= metrics["ipc"]["value"] <= 8.0

    def test_metrics_human_report(self, src, capsys) -> None:
        assert main(["run", src, "-O1", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "metrics:" in captured.out
        assert "rob.occupancy: mean=" in captured.out

    def test_trace_out_writes_chrome_trace(self, src, tmp_path,
                                           capsys) -> None:
        out = tmp_path / "pipeline.trace.json"
        assert main(["run", src, "-O1", "--json",
                     "--trace-out", str(out)]) == 0
        captured = capsys.readouterr()
        _json_doc(captured)  # stdout still exactly one JSON document
        assert "wrote chrome trace" in captured.err
        trace = json.loads(out.read_text())
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert any(e["name"] == "occupancy" for e in counters)
        assert any(e["name"] == "l1d.hit_rate" for e in counters)


class TestInject:
    ARGS = ["--field", "rob.flags", "-n", "6", "--seed", "3", "-O1"]

    def test_human_output_with_progress_on_stderr(self, src,
                                                  capsys) -> None:
        assert main(["inject", src, *self.ARGS]) == 0
        captured = capsys.readouterr()
        assert "AVF(rob.flags) = " in captured.out
        assert "6 injections" in captured.out
        # non-TTY progress: newline-terminated stderr lines, no \r
        assert "/6 injections" in captured.err
        assert "\r" not in captured.err

    def test_json_mode(self, src, capsys) -> None:
        assert main(["inject", src, *self.ARGS, "--json"]) == 0
        captured = capsys.readouterr()
        doc = _json_doc(captured)
        assert doc["n"] == 6
        assert doc["field"] == "rob.flags"
        assert sum(doc["counts"].values()) == 6
        assert doc["elapsed_seconds"] > 0
        assert 0.0 <= doc["avf"] <= 1.0

    def test_trace_and_events_out(self, src, tmp_path, capsys) -> None:
        trace_out = tmp_path / "campaign.trace.json"
        events_out = tmp_path / "campaign.events.jsonl"
        assert main(["inject", src, *self.ARGS, "--json",
                     "--trace-out", str(trace_out),
                     "--events-out", str(events_out)]) == 0
        captured = capsys.readouterr()
        doc = _json_doc(captured)
        assert "wrote chrome trace" in captured.err
        assert "wrote campaign events" in captured.err

        trace = json.loads(trace_out.read_text())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert sum(e["args"]["trials"] for e in slices) == 6

        lines = [json.loads(line)
                 for line in events_out.read_text().splitlines()]
        kinds = [line["kind"] for line in lines]
        assert kinds[0] == "campaign"
        assert kinds.count("trial") == 6
        assert kinds.count("shard-span") == len(slices)
        assert lines[0]["counts"] == doc["counts"]
        trials = [line for line in lines if line["kind"] == "trial"]
        for trial in trials:
            trail = trial["trail"]
            assert trail[0]["kind"] == "injected"
            assert trail[-1]["kind"] in ("masked", "reached_output",
                                         "exception")


class TestTrace:
    def test_writes_combined_trace(self, src, tmp_path, capsys) -> None:
        out = tmp_path / "combined.trace.json"
        assert main(["trace", src, "-O1", "--field", "rob.flags",
                     "-n", "4", "--seed", "3", "--out", str(out),
                     "--json"]) == 0
        captured = capsys.readouterr()
        doc = _json_doc(captured)
        assert doc["trace"] == str(out)
        assert doc["campaign"]["n"] == 4
        assert sum(doc["terminal_events"].values()) == 4
        assert "open at https://ui.perfetto.dev" in captured.err

        trace = json.loads(out.read_text())
        events = trace["traceEvents"]
        assert doc["events"] == len(events)
        # pipeline counters AND campaign slices live in one file
        assert any(e["ph"] == "C" for e in events)
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "i" for e in events)

    def test_human_summary(self, src, tmp_path, capsys) -> None:
        out = tmp_path / "t.trace.json"
        assert main(["trace", src, "-O1", "-n", "2", "--seed", "3",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert f"wrote {out}" in captured.out
        assert "2 traced injections" in captured.out
        assert out.exists()


class TestStats:
    def test_json_metrics_snapshot(self, src, capsys) -> None:
        assert main(["stats", src, "-O1", "--json"]) == 0
        doc = _json_doc(capsys.readouterr())
        assert doc["samples"] > 0
        assert doc["metrics"]["rob.occupancy"]["count"] == doc["samples"]
        assert doc["metrics"]["committed"]["value"] > 0
        assert doc["cycles"] > 0

    def test_interval_decimates_sampling(self, src, capsys) -> None:
        assert main(["stats", src, "-O1", "--json"]) == 0
        dense = _json_doc(capsys.readouterr())
        assert main(["stats", src, "-O1", "--json",
                     "--interval", "64"]) == 0
        sparse = _json_doc(capsys.readouterr())
        assert sparse["samples"] < dense["samples"]
        assert sparse["metrics"]["committed"] == \
            dense["metrics"]["committed"]

    def test_human_report(self, src, capsys) -> None:
        assert main(["stats", src, "-O1"]) == 0
        captured = capsys.readouterr()
        assert "samples" in captured.out
        assert "ipc:" in captured.out
        assert captured.err == ""
