"""Cache addressing and replacement properties."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.kernel import MainMemory
from repro.microarch import CORTEX_A15, CORTEX_A72, SetAssocCache
from repro.microarch.caches import CacheHierarchy
from repro.microarch.config import CacheGeometry


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_split_line_address_roundtrip(addr: int) -> None:
    cache = SetAssocCache("t", CacheGeometry("t", 32 * 1024, 2), 32)
    tag, index, offset = cache.split(addr)
    assert cache.line_address(tag, index) + offset == addr
    assert 0 <= index < cache.geometry.num_sets
    assert 0 <= offset < cache.line_bytes


@given(st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                min_size=1, max_size=40))
def test_reads_always_return_memory_contents(addresses) -> None:
    """Whatever the access pattern, a read returns what was last written
    to that address through the hierarchy (coherence of one master)."""
    memory = MainMemory(4 * 1024 * 1024)
    hierarchy = CacheHierarchy(CORTEX_A15, memory)
    shadow: dict[int, int] = {}
    for i, raw in enumerate(addresses):
        addr = 0x10_0000 + (raw & ~3)
        if i % 2 == 0:
            value = (i * 2654435761) & 0xFFFF_FFFF
            hierarchy.write(addr, value, 4)
            shadow[addr] = value
        else:
            value, _ = hierarchy.read(addr, 4)
            assert value == shadow.get(addr, memory.read_word(addr, 4))


def test_lru_evicts_least_recently_used() -> None:
    memory = MainMemory(4 * 1024 * 1024)
    hierarchy = CacheHierarchy(CORTEX_A15, memory)
    l1d = hierarchy.l1d
    base = 0x10_0000
    stride = l1d.geometry.num_sets * l1d.line_bytes  # same set
    hierarchy.read(base, 4)                 # way A
    hierarchy.read(base + stride, 4)        # way B (set now full: 2-way)
    hierarchy.read(base, 4)                 # touch A again
    hierarchy.read(base + 2 * stride, 4)    # evicts B, not A
    _, index, _ = l1d.split(base)
    tags = {line.tag for (idx, _), line in l1d.lines.items()
            if idx == index}
    assert l1d.split(base)[0] in tags
    assert l1d.split(base + stride)[0] not in tags


def test_a72_l1i_three_way_geometry() -> None:
    memory = MainMemory(4 * 1024 * 1024)
    hierarchy = CacheHierarchy(CORTEX_A72, memory)
    l1i = hierarchy.l1i
    assert l1i.ways == 3
    base = 0x1000
    stride = l1i.geometry.num_sets * l1i.line_bytes
    for way in range(3):
        hierarchy.fetch_word(base + way * stride)
    _, index, _ = l1i.split(base)
    resident = [line for (idx, _), line in l1i.lines.items()
                if idx == index]
    assert len(resident) == 3


def test_dirty_data_survives_through_l2_eviction_chain() -> None:
    memory = MainMemory(4 * 1024 * 1024)
    hierarchy = CacheHierarchy(CORTEX_A15, memory)
    l1d = hierarchy.l1d
    base = 0x10_0000
    stride = l1d.geometry.num_sets * l1d.line_bytes
    hierarchy.write(base, 0xFEEDFACE, 4)
    # force eviction of the dirty line by filling its set: the dirty
    # data must be written back into L2, not dropped
    for way in range(1, l1d.ways + 1):
        hierarchy.read(base + way * stride, 4)
    assert l1d.lookup(base) is None          # really evicted from L1
    value, latency = hierarchy.read(base, 4)
    assert value == 0xFEEDFACE
    assert latency == CORTEX_A15.l2_hit_latency  # served by L2

    # RAM may still be stale: the write-back chain stops at L2
    assert memory.read_word(base, 4) in (0, 0xFEEDFACE)


def test_fetch_and_data_paths_are_separate_l1s() -> None:
    memory = MainMemory(4 * 1024 * 1024)
    hierarchy = CacheHierarchy(CORTEX_A15, memory)
    memory.write_word(0x1000, 0x12345678, 4)
    hierarchy.fetch_word(0x1000)
    assert hierarchy.l1i.lines and not hierarchy.l1d.lines
    hierarchy.read(0x10_0000, 4)
    assert hierarchy.l1d.lines
