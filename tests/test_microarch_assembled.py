"""Directed core tests with hand-assembled programs -- covers paths the
typed MinC front end cannot produce (mixed-width aliasing, indirect
jumps, deliberately odd code)."""

from __future__ import annotations

import pytest

from repro.errors import SimCrashError
from repro.isa import assemble
from repro.kernel import MainMemory, load, run_functional
from repro.microarch import CORTEX_A15, Simulator


def _run_both(source: str):
    """Run assembled source functionally and on the OoO core; compare."""
    program = assemble(source, xlen=32)
    memory = MainMemory(4 * 1024 * 1024)
    functional = run_functional(load(program, memory), memory)
    ooo = Simulator(program, CORTEX_A15).run(2_000_000)
    assert ooo.output.data == functional.output.data
    assert ooo.exit_code == functional.exit_code
    return ooo


def test_byte_store_word_load_partial_overlap() -> None:
    """STRB into the middle of a word, then LDR of the word: the load
    partially overlaps the store and must wait for the drain."""
    result = _run_both("""
    _start:
        li t0, 0x00100000      ; data base
        li t1, 0x11223344
        str t1, [t0, 0]
        movw t2, 0xaa
        strb t2, [t0, 1]       ; overwrite byte 1
        ldr a0, [t0, 0]        ; must see 0x1122aa44
        svc 3
        movw a0, 0
        svc 0
    """)
    assert result.output.data == b"1122aa44\n"


def test_word_store_byte_load_contained_forwarding() -> None:
    result = _run_both("""
    _start:
        li t0, 0x00100000
        li t1, 0xcafebabe
        str t1, [t0, 0]
        ldrb a0, [t0, 2]       ; contained: forwardable byte 0xfe
        svc 3
        movw a0, 0
        svc 0
    """)
    assert result.output.data == b"fe\n"


def test_indirect_jump_through_register() -> None:
    result = _run_both("""
    _start:
        bl get_pc              ; lr points after this call
    after:
        movw a0, 7
        svc 1
        movw a0, 0
        svc 0
    get_pc:
        br lr                  ; indirect return, BTB-predicted
    """)
    assert result.output.data == b"7\n"


def test_jump_to_unmapped_address_crashes() -> None:
    program = assemble("""
    _start:
        li t0, 0x00300000      ; valid RAM, but outside the text segment
        br t0
    """, xlen=32)
    with pytest.raises(SimCrashError, match="outside text"):
        Simulator(program, CORTEX_A15).run(100_000)


def test_misaligned_load_crashes() -> None:
    program = assemble("""
    _start:
        li t0, 0x00100002
        ldr a0, [t0, 0]
        svc 0
    """, xlen=32)
    with pytest.raises(SimCrashError, match="misaligned"):
        Simulator(program, CORTEX_A15).run(100_000)


def test_division_by_zero_crashes_at_commit() -> None:
    program = assemble("""
    _start:
        movw t0, 10
        movw t1, 0
        div a0, t0, t1
        svc 1
        svc 0
    """, xlen=32)
    with pytest.raises(SimCrashError, match="division by zero"):
        Simulator(program, CORTEX_A15).run(100_000)


def test_wrong_path_division_by_zero_is_squashed() -> None:
    """A div-by-zero on the mispredicted path must vanish with the
    squash instead of crashing the run."""
    result = _run_both("""
    _start:
        movw t0, 0
        movw t1, 5
        beq t1, zero, poison   ; never taken, predicted unknown
        movw a0, 42
        svc 1
        movw a0, 0
        svc 0
    poison:
        div a0, t1, t0         ; would trap if (mis)executed to commit
        svc 1
        movw a0, 0
        svc 0
    """)
    assert result.output.data == b"42\n"


def test_store_to_kernel_region_crashes() -> None:
    program = assemble("""
    _start:
        li t0, 0x00080000      ; kernel block
        movw t1, 1
        str t1, [t0, 0]
        svc 0
    """, xlen=32)
    with pytest.raises(SimCrashError, match="kernel memory"):
        Simulator(program, CORTEX_A15).run(100_000)


def test_tight_self_loop_hits_timeout() -> None:
    from repro.errors import SimTimeoutError

    program = assemble("_start: b _start", xlen=32)
    with pytest.raises(SimTimeoutError):
        Simulator(program, CORTEX_A15).run(5_000)
