"""Campaign resilience: retry policy, watchdog, quarantine, recovery.

Three layers of coverage:

* unit tests of :class:`ShardSupervisor` against a synchronous fake
  pool (no processes), exercising retry, bisection, quarantine,
  broken-pool recovery, watchdog expiry, and fail-fast;
* end-to-end chaos campaigns through real worker pools, with
  ``REPRO_CHAOS`` making chosen trials kill or hang their worker --
  the campaign must complete, quarantine exactly the poison trials,
  and stay bit-exact with the fault-free run everywhere else;
* the degraded-statistics contract: quarantined trials leave the
  estimator denominator and widen the reported error margin.
"""

from __future__ import annotations

import json
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.compiler import ARMLET32, compile_source
from repro.gefin import (
    CampaignCheckpoint,
    Degradation,
    Outcome,
    RetryPolicy,
    Shard,
    ShardSupervisor,
    aggregate,
    default_shard_timeout,
    derive_rng,
    error_margin,
    fault_population,
    quarantined_result,
    run_campaign,
    run_golden_auto,
    sample_cycle,
)
from repro.gefin.resilience import MIN_SHARD_TIMEOUT
from repro.microarch import CORTEX_A15
from repro.obs import (
    EVENT_INJECTED,
    EVENT_QUARANTINED,
    MetricsRegistry,
    trail_is_consistent,
)

SOURCE = """
int data[48];
int main() {
    for (int i = 0; i < 48; i++) { data[i] = i * 11 % 31; }
    int s = 0;
    for (int i = 0; i < 48; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""

FIELD = "rob.flags"

#: Near-zero backoff so unit tests never actually sleep.
FAST = dict(base_delay=0.0001, max_delay=0.0002)


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32, name="resilience-test")


@pytest.fixture(scope="module")
def golden(program):
    return run_golden_auto(program, CORTEX_A15)


@pytest.fixture(scope="module")
def serial(program, golden):
    summary, results = run_campaign(program, CORTEX_A15, FIELD, n=8,
                                    seed=3, golden=golden,
                                    keep_results=True, shard_size=2)
    return summary, results


# ------------------------------------------------------------ retry policy


class TestRetryPolicy:
    def test_deterministic_schedule(self) -> None:
        policy = RetryPolicy()
        a = [policy.delay(7, "shard:0:4", k) for k in range(1, 5)]
        b = [policy.delay(7, "shard:0:4", k) for k in range(1, 5)]
        assert a == b
        # distinct attempts draw distinct jitter
        assert len(set(a)) == len(a)

    def test_exponential_cap_with_jitter_bounds(self) -> None:
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0)
        for attempt in range(1, 8):
            cap = min(1.0, 0.1 * 2 ** (attempt - 1))
            delay = policy.delay(0, "t", attempt)
            assert 0.5 * cap <= delay <= cap

    def test_seed_and_token_vary_schedule(self) -> None:
        policy = RetryPolicy()
        assert policy.delay(1, "a", 1) != policy.delay(2, "a", 1)
        assert policy.delay(1, "a", 1) != policy.delay(1, "b", 1)


class TestDefaultShardTimeout:
    def test_floor(self) -> None:
        assert default_shard_timeout(1, 1) == MIN_SHARD_TIMEOUT

    def test_scales_with_work(self) -> None:
        small = default_shard_timeout(10_000_000, 4)
        large = default_shard_timeout(10_000_000, 8)
        assert large == 2 * small > MIN_SHARD_TIMEOUT


# ------------------------------------------------------- quarantine record


class TestQuarantinedResult:
    def test_spec_matches_run_shard_draw_order(self) -> None:
        seed, cycles, bits = 11, 5000, 4096
        for trial in range(4):
            rng = derive_rng(seed, FIELD, trial)
            cycle = sample_cycle(rng, cycles)
            bit = rng.randrange(bits)
            got = quarantined_result(FIELD, trial, seed, cycles,
                                     "uniform", 1, bits, "died")
            assert got.spec.cycle == cycle
            assert got.spec.bit_index == bit
            assert got.outcome is Outcome.INFRASTRUCTURE
            assert got.weight == 0.0
            assert not got.failed

    def test_round_trips_through_checkpoint_format(self) -> None:
        from repro.gefin.injector import InjectionResult

        record = quarantined_result(FIELD, 3, 0, 100, "occupancy", 1,
                                    64, "worker died")
        clone = InjectionResult.from_dict(
            json.loads(json.dumps(record.to_dict())))
        assert clone == record
        assert clone.outcome is Outcome.INFRASTRUCTURE

    def test_traced_trail_is_consistent(self) -> None:
        record = quarantined_result(FIELD, 0, 0, 100, "occupancy", 1,
                                    64, "hung", trace=True)
        kinds = [event.kind for event in record.trail]
        assert kinds == [EVENT_INJECTED, EVENT_QUARANTINED]
        assert trail_is_consistent(record.trail, "infrastructure")


# ------------------------------------------------- estimator interactions


class TestDegradedStatistics:
    def _results(self, quarantined: set[int], n: int = 10):
        from repro.gefin.fault import FaultSpec
        from repro.gefin.injector import InjectionResult

        out = []
        for trial in range(n):
            spec = FaultSpec(field=FIELD, cycle=trial + 1,
                             mode="occupancy")
            if trial in quarantined:
                out.append(InjectionResult(spec, Outcome.INFRASTRUCTURE,
                                           0.0, None, "died", 0,
                                           early="quarantine"))
            elif trial % 2:
                out.append(InjectionResult(spec, Outcome.SDC, 1.0, 4))
            else:
                out.append(InjectionResult(spec, Outcome.MASKED, 0.0, 4))
        return out

    def test_quarantined_trials_leave_the_denominator(self) -> None:
        clean = aggregate(FIELD, "p", "c", "occupancy", 0, 100, 64,
                          self._results(set()))
        degraded = aggregate(FIELD, "p", "c", "occupancy", 0, 100, 64,
                             self._results({0, 2}))
        assert degraded.counts["infrastructure"] == 2
        assert degraded.completed_n == 8
        # the two quarantined trials were both masked: removing them
        # from the denominator raises the weighted failure mean
        assert degraded.avf == pytest.approx(
            clean.avf * clean.n / degraded.completed_n)

    def test_margin_widens_with_quarantine(self) -> None:
        degraded = aggregate(FIELD, "p", "c", "occupancy", 0, 100, 64,
                             self._results({1}))
        population = fault_population(64, 100)
        assert degraded.margin() == pytest.approx(
            error_margin(population, 9, 0.99))
        assert degraded.margin() > error_margin(population, 10, 0.99)

    def test_infrastructure_outcome_vocabulary(self) -> None:
        outcome = Outcome("infrastructure")
        assert outcome is Outcome.INFRASTRUCTURE
        assert not outcome.is_failure

    def test_degradation_report_margins(self) -> None:
        degradation = Degradation(retries=3, quarantined=[
            {"trial": 5, "key": None, "reason": "died", "attempts": 3}])
        report = degradation.report(10, 64, 100)
        population = fault_population(64, 100)
        assert report["completed_n"] == 9
        assert report["requested_margin99"] == pytest.approx(
            error_margin(population, 10, 0.99))
        assert report["achieved_margin99"] == pytest.approx(
            error_margin(population, 9, 0.99))
        assert report["achieved_margin99"] > report["requested_margin99"]

    def test_clean_degradation_is_not_dirty(self) -> None:
        assert not Degradation().dirty
        assert Degradation(retries=1).dirty


# ------------------------------------------------- supervisor (fake pool)


class FakePool:
    """Synchronous stand-in for a ProcessPoolExecutor."""

    def shutdown(self, wait: bool = True,
                 cancel_futures: bool = False) -> None:
        pass


def run_supervised(behavior, jobs, *, max_retries=2, workers=2,
                   shard_timeout=None, fail_fast=False, metrics=None):
    """Drive a ShardSupervisor whose tasks run synchronously.

    ``behavior(key, shard, attempt)`` returns the shard's records, or
    raises; returning ``None`` leaves the future unresolved (a hang).
    """
    attempts: dict[tuple, int] = {}
    done: dict = {}

    def submit(pool, key, shard):
        token = (key, shard.start, shard.stop)
        attempts[token] = attempts.get(token, 0) + 1
        future: Future = Future()
        try:
            value = behavior(key, shard, attempts[token])
        except Exception as exc:  # noqa: BLE001 - test double
            future.set_exception(exc)
        else:
            if value is not None:
                future.set_result(value)
        return future

    def quarantine(key, trial, reason):
        return {"trial": trial, "quarantined": True, "reason": reason}

    def on_shard(key, shard, value, records):
        done[key] = (shard, value, records)

    supervisor = ShardSupervisor(
        workers, submit=submit,
        records_of=lambda _key, _shard, value: value,
        quarantine=quarantine, on_shard=on_shard, seed=1,
        policy=RetryPolicy(max_retries=max_retries, **FAST),
        shard_timeout=shard_timeout, fail_fast=fail_fast,
        metrics=metrics, make_pool=lambda _workers: FakePool())
    degradation = supervisor.run(jobs)
    return degradation, done, attempts


def records_for(shard: Shard) -> list[dict]:
    return [{"trial": trial} for trial in range(shard.start, shard.stop)]


class TestShardSupervisor:
    def test_happy_path_assembles_every_shard(self) -> None:
        jobs = [("a", Shard(0, 0, 4)), ("b", Shard(1, 4, 8))]
        degradation, done, attempts = run_supervised(
            lambda _key, shard, _attempt: records_for(shard), jobs)
        assert not degradation.dirty
        assert set(done) == {"a", "b"}
        _shard, value, records = done["a"]
        assert records == value == records_for(Shard(0, 0, 4))
        assert all(count == 1 for count in attempts.values())

    def test_transient_failure_retries_then_succeeds(self) -> None:
        def behavior(_key, shard, attempt):
            if shard.start == 0 and attempt == 1:
                raise RuntimeError("transient")
            return records_for(shard)

        degradation, done, attempts = run_supervised(
            behavior, [("a", Shard(0, 0, 4))])
        assert degradation.retries == 1
        assert not degradation.quarantined
        assert done["a"][2] == records_for(Shard(0, 0, 4))
        assert attempts[("a", 0, 4)] == 2

    def test_poison_trial_bisected_and_quarantined(self) -> None:
        metrics = MetricsRegistry()

        def behavior(_key, shard, _attempt):
            if shard.start <= 6 < shard.stop:
                raise RuntimeError("trial 6 is poison")
            return records_for(shard)

        degradation, done, _attempts = run_supervised(
            behavior, [("a", Shard(0, 4, 8))], max_retries=1,
            metrics=metrics)
        assert [q["trial"] for q in degradation.quarantined] == [6]
        shard, value, records = done["a"]
        assert shard == Shard(0, 4, 8)
        # every healthy trial present, in order; the poison slot holds
        # the quarantine record
        assert [r["trial"] for r in records] == [4, 5, 6, 7]
        assert records[2]["quarantined"] is True
        assert value is not None  # from a successful sub-shard
        snapshot = metrics.snapshot()
        assert snapshot["campaign.quarantined_trials"]["value"] == 1
        assert snapshot["campaign.shard_retries"]["value"] >= 2

    def test_fully_poisoned_shard_yields_none_value(self) -> None:
        degradation, done, _attempts = run_supervised(
            lambda *_: (_ for _ in ()).throw(RuntimeError("all dead")),
            [("a", Shard(0, 0, 2))], max_retries=0)
        assert len(degradation.quarantined) == 2
        shard, value, records = done["a"]
        assert value is None
        assert all(r["quarantined"] for r in records)

    def test_broken_pool_restarts_and_recovers(self) -> None:
        def behavior(_key, shard, attempt):
            if shard.start == 0 and attempt == 1:
                raise BrokenProcessPool("worker killed")
            return records_for(shard)

        degradation, done, _attempts = run_supervised(
            behavior, [("a", Shard(0, 0, 4)), ("b", Shard(1, 4, 8))])
        assert degradation.pool_restarts >= 1
        assert set(done) == {"a", "b"}
        assert done["a"][2] == records_for(Shard(0, 0, 4))

    def test_fail_fast_reraises_task_failure(self) -> None:
        with pytest.raises(RuntimeError, match="boom"):
            run_supervised(
                lambda *_: (_ for _ in ()).throw(RuntimeError("boom")),
                [("a", Shard(0, 0, 2))], fail_fast=True)

    def test_watchdog_expires_hung_future(self) -> None:
        def behavior(_key, shard, _attempt):
            if shard.start == 0:
                return None  # never resolves
            return records_for(shard)

        degradation, done, _attempts = run_supervised(
            behavior, [("a", Shard(0, 0, 1)), ("b", Shard(1, 1, 2))],
            max_retries=0, shard_timeout=0.01)
        assert degradation.watchdog_kills >= 1
        assert [q["trial"] for q in degradation.quarantined] == [0]
        assert done["b"][2] == records_for(Shard(1, 1, 2))

    def test_watchdog_fail_fast_raises_timeout(self) -> None:
        with pytest.raises(TimeoutError, match="watchdog"):
            run_supervised(lambda *_: None, [("a", Shard(0, 0, 1))],
                           shard_timeout=0.01, fail_fast=True)

    def test_empty_job_list(self) -> None:
        degradation, done, _attempts = run_supervised(
            lambda *_: [], [])
        assert not degradation.dirty and not done


# --------------------------------------------------- end-to-end chaos runs


class TestChaosCampaigns:
    """Real worker pools, real crashes: REPRO_CHAOS kills or hangs the
    worker at chosen trials. The campaign must survive, quarantine
    exactly the poison trials, and match the fault-free run elsewhere.
    """

    def test_crash_campaign_quarantines_and_stays_bit_exact(
            self, program, golden, serial, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_CHAOS", "crash@5")
        metrics = MetricsRegistry()
        summary, results = run_campaign(
            program, CORTEX_A15, FIELD, n=8, seed=3, golden=golden,
            keep_results=True, shard_size=2, workers=2, max_retries=1,
            metrics=metrics)
        clean_summary, clean_results = serial

        assert summary.counts["infrastructure"] == 1
        assert results[5].outcome is Outcome.INFRASTRUCTURE
        for trial, result in enumerate(results):
            if trial != 5:
                assert result == clean_results[trial], trial
        assert summary.completed_n == 7
        degradation = summary.degradation
        assert [q["trial"] for q in degradation["quarantined"]] == [5]
        assert degradation["achieved_margin99"] > \
            degradation["requested_margin99"]
        assert summary.margin() == pytest.approx(
            degradation["achieved_margin99"])
        snapshot = metrics.snapshot()
        assert snapshot["campaign.quarantined_trials"]["value"] == 1
        assert snapshot["campaign.pool_restarts"]["value"] >= 1
        # the healthy-trial estimator is untouched by the machinery:
        # re-aggregating the clean outcomes over the shrunk denominator
        clean_weighted = {
            cls: avf * clean_summary.n
            for cls, avf in clean_summary.avf_by_class.items()
        }
        masked_5 = clean_results[5].outcome is Outcome.MASKED
        for cls, avf in summary.avf_by_class.items():
            expect = clean_weighted.get(cls, 0.0)
            if not masked_5 and clean_results[5].outcome.value == cls:
                expect -= clean_results[5].weight
            assert avf == pytest.approx(expect / 7), cls

    def test_crash_and_hang_campaign_completes(
            self, program, golden, serial, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_CHAOS", "crash@1,hang@5")
        # a crash poisons every in-flight future, but the supervisor
        # only charges a shard that breaks the pool while running
        # alone, so innocent shards caught in the blast radius are
        # isolated and cleared rather than charged
        summary, results = run_campaign(
            program, CORTEX_A15, FIELD, n=8, seed=3, golden=golden,
            keep_results=True, shard_size=2, workers=2, max_retries=1,
            shard_timeout=2.0)
        _clean_summary, clean_results = serial

        assert summary.counts["infrastructure"] == 2
        quarantined = {trial for trial, result in enumerate(results)
                       if result.outcome is Outcome.INFRASTRUCTURE}
        assert quarantined == {1, 5}
        for trial, result in enumerate(results):
            if trial not in quarantined:
                assert result == clean_results[trial], trial
        # the hang may be charged either by its watchdog expiry or by a
        # concurrent crash breaking the pool under it; either way the
        # supervisor restarted the pool and accounted the damage
        assert summary.degradation["pool_restarts"] >= 1
        assert summary.degradation["completed_n"] == 6

    def test_hang_campaign_trips_the_watchdog(
            self, program, golden, serial, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_CHAOS", "hang@5")
        summary, results = run_campaign(
            program, CORTEX_A15, FIELD, n=8, seed=3, golden=golden,
            keep_results=True, shard_size=2, workers=2, max_retries=0,
            shard_timeout=2.0)
        _clean_summary, clean_results = serial

        assert summary.counts["infrastructure"] == 1
        assert results[5].outcome is Outcome.INFRASTRUCTURE
        for trial, result in enumerate(results):
            if trial != 5:
                assert result == clean_results[trial], trial
        assert summary.degradation["watchdog_kills"] >= 1

    def test_fail_fast_hang_raises_timeout(self, program, golden,
                                           monkeypatch) -> None:
        monkeypatch.setenv("REPRO_CHAOS", "hang@0")
        with pytest.raises(TimeoutError, match="watchdog"):
            run_campaign(program, CORTEX_A15, FIELD, n=4, seed=3,
                         golden=golden, shard_size=2, workers=2,
                         shard_timeout=1.0, fail_fast=True)

    def test_resume_after_fail_fast_crash_matches_serial(
            self, program, golden, serial, tmp_path, monkeypatch) -> None:
        checkpoint = CampaignCheckpoint(tmp_path / "resume.ckpt.jsonl")
        monkeypatch.setenv("REPRO_CHAOS", "crash@5")
        with pytest.raises(BrokenProcessPool):
            run_campaign(program, CORTEX_A15, FIELD, n=8, seed=3,
                         golden=golden, shard_size=2, workers=2,
                         checkpoint=checkpoint, fail_fast=True)
        assert checkpoint.path.exists()

        monkeypatch.delenv("REPRO_CHAOS")
        summary, results = run_campaign(
            program, CORTEX_A15, FIELD, n=8, seed=3, golden=golden,
            keep_results=True, shard_size=2, workers=2,
            checkpoint=checkpoint)
        clean_summary, clean_results = serial
        assert results == clean_results
        assert summary == clean_summary
        assert not summary.degradation
        assert not checkpoint.path.exists()  # cleared on completion

    def test_healthy_campaign_byte_identical_to_serial(
            self, program, golden, serial, monkeypatch) -> None:
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        summary, results = run_campaign(
            program, CORTEX_A15, FIELD, n=8, seed=3, golden=golden,
            keep_results=True, shard_size=2, workers=3)
        clean_summary, clean_results = serial
        assert results == clean_results
        assert json.dumps(summary.to_dict(), sort_keys=True) == \
            json.dumps(clean_summary.to_dict(), sort_keys=True)

    def test_chaos_hook_inert_in_parent(self, monkeypatch) -> None:
        from repro.gefin.parallel import _chaos_plan, maybe_chaos

        monkeypatch.setenv("REPRO_CHAOS", "crash@0,hang@1,junk,bad@x")
        assert _chaos_plan() == {0: "crash", 1: "hang"}
        maybe_chaos(0)  # must be a no-op outside worker processes
        maybe_chaos(1)
        monkeypatch.setenv("REPRO_CHAOS", "")
        assert _chaos_plan() == {}


class TestGridResilience:
    def test_grid_quarantines_poison_trial_per_cell(
            self, tmp_path, monkeypatch) -> None:
        from repro.experiments import CampaignGrid, GridSpec

        spec = GridSpec(benchmarks=("qsort",), cores=("cortex-a15",),
                        levels=("O1",), fields=("rob.flags", "prf"),
                        injections=4, scale="micro", seed=13)
        # trial 2 kills its worker in *every* cell's campaign: both
        # cells must quarantine exactly that trial and complete.
        # max_retries=0 is the sharpest test of crash attribution:
        # single-trial shards have no bisection backstop and no retry
        # budget, so only isolation (run pool-break suspects alone)
        # keeps innocent trials out of quarantine.
        monkeypatch.setenv("REPRO_CHAOS", "crash@2")
        grid = CampaignGrid(spec, tmp_path / "chaos")
        assert grid.ensure_all(workers=2, max_retries=0) == 2
        assert grid.degradation.dirty
        assert [q["trial"] for q in grid.degradation.quarantined] \
            == [2, 2]

        monkeypatch.delenv("REPRO_CHAOS")
        serial = CampaignGrid(spec, tmp_path / "ser")
        serial.ensure_all()
        for field in spec.fields:
            cell = grid.result("cortex-a15", "qsort", "O1", field)
            clean = serial.result("cortex-a15", "qsort", "O1", field)
            assert cell.counts["infrastructure"] == 1
            assert cell.completed_n == 3
            assert cell.n == clean.n == 4
            # outside the quarantined trial the outcome census agrees
            lost = {o: clean.counts[o] - cell.counts[o]
                    for o in clean.counts
                    if o != "infrastructure"
                    and clean.counts[o] != cell.counts[o]}
            assert sum(lost.values()) == 1
        # everything is cached now; a re-run simulates nothing
        assert grid.ensure_all(workers=2) == 0


# -------------------------------------------------------- storage checksum


class TestStorageChecksum:
    def test_corrupt_payload_reads_as_miss(self, tmp_path) -> None:
        from repro.gefin.storage import CHECKSUM_KEY, ResultStore

        store = ResultStore(tmp_path)
        store.save_extra("cell", {"cycles": 123, "stats": {"ipc": 1.0}})
        assert store.load_extra("cell") == {"cycles": 123,
                                            "stats": {"ipc": 1.0}}
        path = tmp_path / "cell.json"
        doc = json.loads(path.read_text())
        assert CHECKSUM_KEY in doc
        doc["cycles"] = 999  # valid JSON, wrong content
        path.write_text(json.dumps(doc))
        assert store.load_extra("cell") is None

    def test_legacy_document_without_checksum_accepted(
            self, tmp_path) -> None:
        from repro.gefin.storage import ResultStore

        store = ResultStore(tmp_path)
        (tmp_path / "old.json").write_text(json.dumps({"cycles": 5}))
        assert store.load_extra("old") == {"cycles": 5}

    def test_campaign_result_round_trip(self, tmp_path, serial) -> None:
        from repro.gefin.storage import ResultStore

        store = ResultStore(tmp_path)
        summary, _results = serial
        store.save("key", summary)
        assert store.load("key") == summary
        # flip one byte of the stored counts: must read as a miss, not
        # as a silently different result
        path = tmp_path / "key.json"
        text = path.read_text().replace('"masked": ', '"masked": 1')
        path.write_text(text)
        assert store.load("key") is None

    def test_checksum_independent_of_formatting(self) -> None:
        from repro.gefin.storage import payload_checksum

        a = payload_checksum({"b": 1, "a": [1, 2]})
        b = payload_checksum({"a": [1, 2], "b": 1})
        assert a == b
        assert a != payload_checksum({"a": [2, 1], "b": 1})


# ------------------------------------------------------------ CLI behavior


class TestCliInterrupt:
    def test_inject_sigint_exits_130_with_resume_hint(
            self, tmp_path, monkeypatch, capsys) -> None:
        import repro.cli as cli

        source = tmp_path / "tiny.c"
        source.write_text("int main() { putint(7); return 0; }\n")

        def interrupted(*_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "run_campaign", interrupted)
        code = cli.main(["inject", str(source), "-n", "4"])
        assert code == 130
        assert "--resume" in capsys.readouterr().err

    def test_grid_sigint_exits_130(self, tmp_path, monkeypatch,
                                   capsys) -> None:
        from repro.experiments import run_grid
        from repro.experiments.grid import CampaignGrid

        def interrupted(self, *_args, **_kwargs):
            raise KeyboardInterrupt

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(CampaignGrid, "ensure_all", interrupted)
        code = run_grid.main([])
        assert code == 130
        assert "resume" in capsys.readouterr().err
