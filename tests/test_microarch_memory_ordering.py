"""Memory ordering in the OoO core: store-to-load forwarding, partial
overlaps, and commit-order draining -- checked end to end via programs
whose results depend on correct ordering."""

from __future__ import annotations

import pytest

from repro.compiler import ARMLET32, compile_source
from repro.microarch import CORTEX_A15, Simulator

from .conftest import run_minc


def _run_ooo(source: str, level: str = "O2"):
    program = compile_source(source, level, ARMLET32)
    return Simulator(program, CORTEX_A15).run(5_000_000)


def test_store_then_load_same_address() -> None:
    source = """
    int slot[1];
    int main() {
        for (int i = 0; i < 20; i++) {
            slot[0] = i * 3;
            putint(slot[0]);     // must observe the store just above
        }
        return 0;
    }
    """
    expected = run_minc(source).output.data
    assert _run_ooo(source).output.data == expected


def test_byte_store_word_load_overlap() -> None:
    # partial overlap: the load must wait for the store to drain
    source = """
    int words[2];
    int main() {
        words[0] = 0x01020304;
        for (int i = 0; i < 8; i++) {
            words[0] = words[0] + 0x01010101;
            words[1] = words[0];
            putint(words[1] & 0xffff);
        }
        return 0;
    }
    """
    expected = run_minc(source).output.data
    assert _run_ooo(source).output.data == expected


def test_word_store_byte_load_forwarding() -> None:
    source = """
    int words[4];
    int main() {
        int s = 0;
        for (int i = 0; i < 4; i++) { words[i] = i * 0x11223344; }
        for (int i = 0; i < 4; i++) { s ^= words[i]; }
        putint(s & 0x7fffffff);
        return 0;
    }
    """
    expected = run_minc(source, "O2").output.data
    assert _run_ooo(source).output.data == expected


def test_store_queue_pressure() -> None:
    # more stores in flight than SQ entries: dispatch must stall, not drop
    writes = "\n".join(f"buf[{i}] = {i * 7};" for i in range(24))
    reads = "\n".join(f"s += buf[{i}];" for i in range(24))
    source = f"""
    int buf[24];
    int main() {{
        int s = 0;
        {writes}
        {reads}
        putint(s);
        return 0;
    }}
    """
    expected = run_minc(source).output.data
    for level in ("O0", "O2"):
        result = _run_ooo(source, level)
        assert result.output.data == expected


def test_load_queue_pressure() -> None:
    loads = " + ".join(f"buf[{i}]" for i in range(20))
    source = f"""
    int buf[20];
    int main() {{
        for (int i = 0; i < 20; i++) {{ buf[i] = i + 1; }}
        putint({loads});
        return 0;
    }}
    """
    expected = run_minc(source).output.data
    assert _run_ooo(source).output.data == expected


def test_aliased_pointers_agree_with_functional() -> None:
    source = """
    int data[8];
    void bump(int* p, int k) { p[k] = p[k] + 1; }
    int main() {
        for (int i = 0; i < 8; i++) { data[i] = i; }
        for (int round = 0; round < 5; round++) {
            bump(data, round % 8);
            bump(data + 1, round % 7);
        }
        int s = 0;
        for (int i = 0; i < 8; i++) { s = s * 10 + data[i]; }
        putint(s);
        return 0;
    }
    """
    expected = run_minc(source).output.data
    for level in ("O0", "O1", "O2", "O3"):
        assert _run_ooo(source, level).output.data == expected


def test_kernel_syscall_sees_committed_stores() -> None:
    # the syscall's cached kernel port shares L1D with the program; the
    # putint argument must reflect all older committed stores
    source = """
    int flag[1];
    int main() {
        for (int i = 0; i < 10; i++) {
            flag[0] = i;
            if (flag[0] != i) { putint(-1); }
        }
        putint(flag[0]);
        return 0;
    }
    """
    assert _run_ooo(source).output.data == b"9\n"


@pytest.mark.parametrize("level", ["O0", "O2"])
def test_mispredict_squash_preserves_memory_state(level: str) -> None:
    # data-dependent branches force mispredicts; squashed wrong-path
    # stores must never reach memory
    source = """
    int data[32];
    int hits[1];
    int main() {
        for (int i = 0; i < 32; i++) { data[i] = (i * 17) % 13; }
        for (int i = 0; i < 32; i++) {
            if (data[i] > 6) { hits[0] = hits[0] + 1; }
        }
        putint(hits[0]);
        return 0;
    }
    """
    expected = run_minc(source, level).output.data
    result = _run_ooo(source, level)
    assert result.output.data == expected
    assert result.stats["mispredicts"] > 0
