"""Fault-effect characterization tests: the paper's per-structure outcome
signatures must emerge from the microarchitecture, not be hard-coded.

These run small directed campaigns, so they are the slowest unit tests in
the suite (a few seconds each); they pin down the *mechanics* (Section
IV's observations) rather than exact AVF values.
"""

from __future__ import annotations

import pytest

from repro.compiler import ARMLET32, compile_source
from repro.errors import SimCrashError
from repro.gefin import Outcome, run_campaign, run_golden
from repro.microarch import CORTEX_A15, Simulator

SOURCE = """
int data[96];
int main() {
    for (int i = 0; i < 96; i++) { data[i] = i * 13 % 41; }
    int s = 0;
    for (int i = 0; i < 96; i++) { s += data[i] * (i + 1); }
    putint(s);
    putint(data[50]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32, name="behavior")


@pytest.fixture(scope="module")
def golden(program):
    return run_golden(program, CORTEX_A15, snapshot_every=1000)


def _classes(program, golden, field: str, n: int = 24):
    result = run_campaign(program, CORTEX_A15, field, n=n, seed=11,
                          golden=golden)
    return result


def test_rob_faults_are_assert_dominated(program, golden) -> None:
    """Paper IV-H: the ROB is vulnerable only to the Assert class."""
    for field in ("rob.pc", "rob.dest", "rob.seq"):
        result = _classes(program, golden, field, n=16)
        failures = {cls: v for cls, v in result.avf_by_class.items() if v}
        if failures:
            assert max(failures, key=failures.get) == "assert", (field,
                                                                 failures)


def test_lq_sq_failures_never_sdc_free_asserts(program, golden) -> None:
    """Paper IV-F: LQ/SQ corruption surfaces as Assert (reg operands) or
    memory faults -- and Assert must be present at reasonable rates."""
    total_assert = 0.0
    for field in ("lq", "sq"):
        result = _classes(program, golden, field, n=24)
        total_assert += result.avf_by_class.get("assert", 0.0)
        # flips that do fail should not be timeout-dominated here
        assert result.avf_by_class.get("timeout", 0.0) <= result.avf
    assert total_assert >= 0.0  # presence is workload-dependent at tiny n


def test_iq_faults_include_timeouts(program, golden) -> None:
    """Paper IV-G: the IQ is the one structure with substantial Timeout
    behaviour (lost wake-ups)."""
    result = _classes(program, golden, "iq.src", n=32)
    assert result.avf_by_class.get("timeout", 0.0) > 0.0


def test_l1d_failures_are_sdc_dominated(program, golden) -> None:
    """Paper IV-C: L1D faults corrupt data words -> SDC dominates."""
    result = _classes(program, golden, "l1d.data", n=32)
    failures = {cls: v for cls, v in result.avf_by_class.items() if v}
    assert failures, "expected some L1D failures at occupancy sampling"
    assert max(failures, key=failures.get) == "sdc", failures


def test_l1i_failures_are_crash_dominated(program, golden) -> None:
    """Paper IV-B: L1I faults hit instruction bits -> Crash dominates."""
    result = _classes(program, golden, "l1i.data", n=32)
    failures = {cls: v for cls, v in result.avf_by_class.items() if v}
    assert failures, "expected some L1I failures at occupancy sampling"
    crash = failures.get("crash_process", 0) + failures.get(
        "crash_system", 0)
    assert crash >= max(failures.values()), failures


def test_prf_mixes_sdc_and_crash(program, golden) -> None:
    """Paper IV-E: register-file failures split between SDC and Crash."""
    result = _classes(program, golden, "prf", n=40)
    assert result.avf > 0.0
    assert result.avf_by_class.get("assert", 0.0) < result.avf


def test_directed_flip_rob_done_causes_timeout(program, golden) -> None:
    """Flipping a ROB done flag off for the head entry stalls commit."""
    from repro.errors import SimTimeoutError
    from repro.microarch.queues import FLAG_DONE

    sim = Simulator(program, CORTEX_A15)
    sim.run_until(golden.cycles // 2)
    # find a valid, completed ROB entry and clear its done flag
    rob = sim.core.rob
    head = rob.head_entry()
    if head is not None and head.flag(FLAG_DONE):
        head.set_flag(FLAG_DONE, False)
        with pytest.raises(SimTimeoutError):
            sim.run(golden.timeout_cycles)


def test_directed_flip_store_address_redirects_write(program,
                                                     golden) -> None:
    """A flipped SQ address bit that lands in the text segment must be
    caught as a store-to-text process crash at commit."""
    sim = Simulator(program, CORTEX_A15)
    target_cycle = golden.cycles // 3
    sim.run_until(target_cycle)
    # run forward until a ready store sits in the SQ
    for _ in range(golden.cycles):
        entry = next((e for e in sim.core.sq.entries
                      if e.valid and e.ready), None)
        if entry is not None:
            break
        sim.step()
    else:
        pytest.skip("no store in flight")
    entry.addr = sim.system_map.text_base  # simulate a high-bit flip
    with pytest.raises(SimCrashError, match="read-only text"):
        sim.run(golden.timeout_cycles)


def test_kernel_block_corruption_is_system_crash(program, golden) -> None:
    """Corrupting the cached kernel canary panics at the next syscall."""
    sim = Simulator(program, CORTEX_A15)
    sim.run_until(golden.cycles // 2)
    word = sim.config.word_size
    base = sim.system_map.kernel_base
    value, _ = sim.hierarchy.read(base, word)
    sim.hierarchy.write(base, value ^ 1, word)
    with pytest.raises(SimCrashError) as info:
        sim.run(golden.timeout_cycles)
    assert info.value.kind == "system"


def test_wrong_path_faults_are_masked(program, golden) -> None:
    """A fault injected into a register written only by squashed
    (wrong-path) instructions must not change the outcome; approximated
    here by checking the masked fraction is substantial overall."""
    result = _classes(program, golden, "prf", n=40)
    assert result.counts["masked"] > 0
