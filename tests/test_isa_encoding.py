"""Encoding/decoding: roundtrips, illegal-word rejection, field limits."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError, IllegalInstructionError
from repro.isa import Instruction, Opcode, decode, encode
from repro.isa.instructions import Format

_R_OPS = [op for op in Opcode if Instruction(op).format is Format.R]
_I_OPS = [op for op in Opcode if Instruction(op).format is Format.I]
_BC_OPS = [op for op in Opcode if Instruction(op).format is Format.BC]

regs = st.integers(min_value=0, max_value=31)
imm16 = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
imm26 = st.integers(min_value=-(1 << 25), max_value=(1 << 25) - 1)
uimm16 = st.integers(min_value=0, max_value=0xFFFF)


@st.composite
def instructions(draw) -> Instruction:
    opcode = draw(st.sampled_from(list(Opcode)))
    fmt = Instruction(opcode).format
    if fmt is Format.R:
        return Instruction(opcode, rd=draw(regs), rs1=draw(regs),
                           rs2=draw(regs))
    if fmt in (Format.I, Format.LOAD):
        return Instruction(opcode, rd=draw(regs), rs1=draw(regs),
                           imm=draw(imm16))
    if fmt is Format.LI:
        return Instruction(opcode, rd=draw(regs), imm=draw(uimm16))
    if fmt is Format.STORE:
        return Instruction(opcode, rs2=draw(regs), rs1=draw(regs),
                           imm=draw(imm16))
    if fmt is Format.BC:
        return Instruction(opcode, rs1=draw(regs), rs2=draw(regs),
                           imm=draw(imm16))
    if fmt is Format.J:
        return Instruction(opcode, imm=draw(imm26))
    if fmt is Format.JR:
        return Instruction(opcode, rs1=draw(regs))
    if opcode is Opcode.SVC:
        return Instruction(opcode, imm=draw(imm16))
    return Instruction(opcode)


@given(instructions())
def test_roundtrip(instr: Instruction) -> None:
    assert decode(encode(instr)) == instr


@given(st.integers(min_value=0, max_value=0xFFFF_FFFF))
def test_decode_total(word: int) -> None:
    """decode either returns an Instruction or raises the illegal error --
    never anything else -- and legal decodes re-encode to the same word."""
    try:
        instr = decode(word)
    except IllegalInstructionError:
        return
    assert encode(instr) == word


def test_all_zero_word_is_illegal() -> None:
    with pytest.raises(IllegalInstructionError):
        decode(0)


def test_unknown_opcode_is_illegal() -> None:
    with pytest.raises(IllegalInstructionError):
        decode(63 << 26)


def test_r_format_must_be_zero_padded() -> None:
    word = encode(Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3))
    with pytest.raises(IllegalInstructionError):
        decode(word | 1)


def test_imm_overflow_rejected() -> None:
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.ADDI, rd=1, rs1=1, imm=1 << 20))
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.MOVW, rd=1, imm=-1))


def test_register_out_of_range_rejected() -> None:
    with pytest.raises(EncodingError):
        encode(Instruction(Opcode.ADD, rd=32, rs1=0, rs2=0))


def test_negative_branch_displacement() -> None:
    instr = Instruction(Opcode.BEQ, rs1=1, rs2=2, imm=-5)
    assert decode(encode(instr)).imm == -5


def test_jump_displacement_26_bits() -> None:
    instr = Instruction(Opcode.B, imm=-(1 << 25))
    assert decode(encode(instr)).imm == -(1 << 25)


def test_pc_attached_to_error() -> None:
    with pytest.raises(IllegalInstructionError) as info:
        decode(0, pc=0x1234)
    assert info.value.pc == 0x1234
    assert "0x1234" in str(info.value)
