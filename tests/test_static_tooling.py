"""Static tooling surface added with the propagation analysis.

Covers the `repro slice` CLI, lint/verify exit-code contracts, the
determinism linter (tools/lint_determinism.py), `instruction_report`
edge cases the MinC front end cannot produce, and the static SDC/DUE
calibration report (the acceptance bar: >= 4 workloads)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.avf.static_ace import instruction_report
from repro.avf.static_sdc import (
    calibration_report,
    outcome_group,
    score_pairs,
)
from repro.cli import main
from repro.compiler.lifetimes import _RETURN_LIVE_MASK, analyze_program
from repro.gefin.outcomes import Outcome
from repro.isa import assemble, registers
from repro.kernel import MainMemory, load, run_functional

REPO_ROOT = Path(__file__).resolve().parents[1]

SOURCE = """
int g[12];
int main() {
    for (int i = 0; i < 12; i++) { g[i] = i * 7 % 13; }
    int s = 0;
    for (int i = 0; i < 12; i++) { s += g[i]; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def src(tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("tooling") / "tiny.c"
    path.write_text(SOURCE)
    return str(path)


def _json_doc(captured) -> dict:
    return json.loads(captured.out)


# ------------------------------------------------------- slice CLI

class TestSliceCli:
    def test_census_human(self, src, capsys) -> None:
        assert main(["slice", src, "-O2"]) == 0
        out = capsys.readouterr().out
        assert "provably masked" in out
        assert "dead frame stores" in out

    def test_point_slice_json(self, src, capsys) -> None:
        assert main(["slice", src, "-O2", "--pc", "0x1000",
                     "--reg", "sp", "--json"]) == 0
        doc = _json_doc(capsys.readouterr())
        assert doc["slot"] == 0 and doc["pc"] == 0x1000
        piece = doc["slice"]
        assert piece["reg_name"] == "sp"
        masks = (piece["dead_mask"] | piece["control_mask"]
                 | piece["address_mask"] | piece["data_mask"])
        assert masks == (1 << doc["xlen"]) - 1  # verdicts partition bits
        assert len(piece["verdicts"]) == doc["xlen"]

    def test_point_slice_all_regs(self, src, capsys) -> None:
        assert main(["slice", src, "-O2", "--pc", "0x1004"]) == 0
        out = capsys.readouterr().out
        assert "per-bit verdicts" in out

    def test_bad_pc_exits_nonzero(self, src, capsys) -> None:
        assert main(["slice", src, "-O2", "--pc", "0x2"]) == 1
        captured = capsys.readouterr()
        assert captured.err.strip()
        assert not captured.out.strip()


# ------------------------------------------- lint/verify exit codes

class TestLintExitCodes:
    def test_clean_program_exits_zero(self, src, capsys) -> None:
        assert main(["lint", src, "-O2", "--json"]) == 0
        doc = _json_doc(capsys.readouterr())
        assert doc["findings"] == []
        assert doc["estimates"]  # informational report still present

    def test_findings_exit_nonzero(self, src, capsys,
                                   monkeypatch) -> None:
        # No MinC program currently compiles to a dead frame store
        # (the O0 frame-pointer setup defeats the privacy proof and
        # O1+ allocation removes dead spills), so fake the analysis
        # result to pin the exit-code contract.
        monkeypatch.setattr("repro.compiler.propagation.dead_frame_stores",
                            lambda program: frozenset({2}))
        assert main(["lint", src, "-O2", "--json"]) == 1
        doc = _json_doc(capsys.readouterr())
        assert [f["kind"] for f in doc["findings"]] == ["dead-store"]
        assert doc["findings"][0]["slot"] == 2

    def test_findings_human_exit_nonzero(self, src, capsys,
                                         monkeypatch) -> None:
        monkeypatch.setattr("repro.compiler.propagation.dead_frame_stores",
                            lambda program: frozenset({2}))
        assert main(["lint", src, "-O2"]) == 1
        assert "dead-store" in capsys.readouterr().out

    def test_verify_json_ok(self, src, capsys) -> None:
        assert main(["verify", src, "-O2", "--json"]) == 0
        doc = _json_doc(capsys.readouterr())
        assert doc["ok"] is True
        assert doc["functions"] >= 1 and doc["ir_instructions"] > 0


# ---------------------------------------------- determinism linter

@pytest.fixture(scope="module")
def det_lint():
    spec = importlib.util.spec_from_file_location(
        "lint_determinism", REPO_ROOT / "tools" / "lint_determinism.py")
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves string annotations through sys.modules, so
    # the module must be registered before its body executes.
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestDeterminismLint:
    def _codes(self, det_lint, source: str) -> list[str]:
        return [f.code for f in det_lint.scan_source(source, "x.py")]

    def test_unseeded_random_flagged(self, det_lint) -> None:
        assert self._codes(det_lint,
                           "import random\nx = random.random()\n") \
            == ["DET001"]
        assert self._codes(det_lint,
                           "import random\nr = random.Random()\n") \
            == ["DET001"]

    def test_seeded_random_clean(self, det_lint) -> None:
        assert self._codes(det_lint,
                           "import random\nr = random.Random(7)\n") == []

    def test_wall_clock_flagged(self, det_lint) -> None:
        assert self._codes(det_lint, "import time\nt = time.time()\n") \
            == ["DET002"]
        assert self._codes(
            det_lint,
            "from datetime import datetime\nd = datetime.now()\n") \
            == ["DET002"]

    def test_set_iteration_flagged(self, det_lint) -> None:
        assert self._codes(det_lint,
                           "for x in {1, 2}:\n    print(x)\n") \
            == ["DET003"]
        assert self._codes(det_lint, "y = [v for v in set(q)]\n") \
            == ["DET003"]

    def test_sorted_set_iteration_clean(self, det_lint) -> None:
        assert self._codes(det_lint,
                           "for x in sorted({1, 2}):\n    print(x)\n") \
            == []

    def test_pragma_suppresses(self, det_lint) -> None:
        src = "import time\nt = time.time()  # det: allow (span)\n"
        assert self._codes(det_lint, src) == []

    def test_repo_scope_is_clean(self, det_lint, capsys) -> None:
        assert det_lint.main(["--root", str(REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, det_lint, tmp_path,
                                   capsys) -> None:
        bad = tmp_path / "mod.py"
        bad.write_text("import random\nx = random.random()\n")
        assert det_lint.main([str(bad), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["count"] == 1
        assert doc["findings"][0]["code"] == "DET001"


# --------------------------------- instruction_report edge cases

def _report(source: str):
    program = assemble(source, xlen=32)
    memory = MainMemory(4 * 1024 * 1024)
    result = run_functional(load(program, memory), memory)
    assert result.exit_code == 0
    return program, instruction_report(analyze_program(program))


def test_instruction_report_empty_function() -> None:
    """A `br lr`-only function must get the conservative ABI live set."""
    program, rows = _report("""
    _start:
        bl noop
        movw a0, 0
        svc 0
    noop:
        br lr
    """)
    assert len(rows) == len(program.text)
    (entry,) = [r for r in rows if "noop" in r.labels]
    assert entry.text == "br lr"
    live_mask = sum(1 << r for r in entry.live_regs)
    assert live_mask & _RETURN_LIVE_MASK == _RETURN_LIVE_MASK
    assert registers.LR in entry.live_regs


def test_instruction_report_indirect_jump_fallback() -> None:
    """A computed `br` through a scratch register: the analysis cannot
    resolve the target and must fall back to the conservative
    return-live mask, plus the jump's own base register."""
    program, rows = _report("""
    _start:
        bl helper
        movw a0, 0
        svc 0
    helper:
        addi t0, lr, 0
        br t0
    """)
    (jump,) = [r for r in rows if r.text == "br t0"]
    live_mask = sum(1 << r for r in jump.live_regs)
    assert live_mask & _RETURN_LIVE_MASK == _RETURN_LIVE_MASK
    assert registers.reg_number("t0") in jump.live_regs


# ------------------------------------------- static SDC calibration

class TestCalibration:
    def test_score_pairs_exact(self) -> None:
        pairs = [("masked", "masked")] * 3 + [("masked", "sdc"),
                                             ("sdc", "sdc"),
                                             ("due", "sdc")]
        report = score_pairs(pairs, "w", "c", "O2")
        assert report.n == 6
        assert report.accuracy == pytest.approx(4 / 6)
        assert report.confusion["masked"]["sdc"] == 1
        assert report.precision["masked"] == pytest.approx(3 / 4)
        assert report.recall["sdc"] == pytest.approx(1 / 3)
        assert report.precision["due"] == 0.0
        doc = report.to_dict()
        assert doc["n"] == 6 and doc["workload"] == "w"

    def test_outcome_grouping(self) -> None:
        assert outcome_group(Outcome.MASKED.value) == "masked"
        assert outcome_group(Outcome.SDC.value) == "sdc"
        for outcome in (Outcome.TIMEOUT, Outcome.CRASH_PROCESS,
                        Outcome.CRASH_SYSTEM, Outcome.ASSERT):
            assert outcome_group(outcome.value) == "due"
        assert outcome_group(Outcome.INFRASTRUCTURE.value) is None

    @pytest.mark.slow
    def test_calibration_report_four_workloads(self) -> None:
        """Acceptance bar: calibration across >= 4 workloads, with the
        static predictor clearly better than chance and its masked
        verdicts precise (those are backed by the soundness theorem)."""
        workloads = ("qsort", "dijkstra", "sha", "fft")
        doc = calibration_report(workloads, core="cortex-a15",
                                 opt_levels=("O2",), n=60, seed=2021)
        assert set(doc["cells"]) == set(workloads)
        overall = doc["overall"]
        assert overall["n"] >= 4 * 60 * 0.9  # few infrastructure drops
        assert overall["accuracy"] >= 0.6
        assert overall["precision"]["masked"] >= 0.8
        for workload in workloads:
            cell = doc["cells"][workload]["O2"]
            total = sum(sum(row.values())
                        for row in cell["confusion"].values())
            assert total == cell["n"]
