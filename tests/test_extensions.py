"""Extension features: ACE analytic estimates, multi-bit upsets, pass
ablation, and the command-line interface."""

from __future__ import annotations

import pytest

from repro.avf import ace_estimate
from repro.cli import main as cli_main
from repro.compiler import ARMLET32, PASS_REGISTRY, compile_custom, \
    compile_source
from repro.gefin import FaultSpec, run_campaign, run_golden
from repro.kernel import MainMemory, load, run_functional
from repro.microarch import CORTEX_A15, Simulator

SOURCE = """
int data[64];
int main() {
    for (int i = 0; i < 64; i++) { data[i] = i * 9 % 29; }
    int s = 0;
    for (int i = 0; i < 64; i++) { s += data[i] * 2; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32, name="ext")


@pytest.fixture(scope="module")
def golden(program):
    return run_golden(program, CORTEX_A15)


class TestAce:
    def test_estimates_bounded(self, program) -> None:
        result = ace_estimate(program, CORTEX_A15, sample_every=20)
        assert result.samples > 0
        for name, value in result.estimates.items():
            assert 0.0 <= value <= 1.0, name

    def test_ace_pessimistic_for_rob(self, program, golden) -> None:
        """ACE counts every live ROB bit as vulnerable; SFI observes
        masking (squashed entries, never-read fields) -- so ACE >= SFI
        minus sampling noise, usually by a wide margin for rob.seq."""
        ace = ace_estimate(program, CORTEX_A15,
                           fields=("rob.seq",), sample_every=20)
        sfi = run_campaign(program, CORTEX_A15, "rob.seq", n=20,
                           seed=4, golden=golden)
        assert ace.estimates["rob.seq"] >= sfi.avf - sfi.margin()

    def test_pessimism_report(self, program) -> None:
        ace = ace_estimate(program, CORTEX_A15, fields=("prf", "lq"),
                           sample_every=20)
        gap = ace.pessimism_vs({"prf": 0.0, "lq": 0.0})
        assert gap == ace.estimates

    def test_validation(self, program) -> None:
        with pytest.raises(ValueError):
            ace_estimate(program, CORTEX_A15, sample_every=0)


class TestMultiBit:
    def test_burst_spec_validation(self) -> None:
        with pytest.raises(ValueError):
            FaultSpec(field="prf", cycle=1, burst=0)
        assert FaultSpec(field="prf", cycle=1, burst=2).burst == 2

    def test_double_bit_flip_mutates_two_bits(self, program) -> None:
        sim = Simulator(program, CORTEX_A15)
        sim.run_until(50)
        before = list(sim.core.prf.values)
        from repro.gefin.injector import inject_one

        # directly flip two adjacent PRF bits and check the register
        sim.flip("prf", 64)
        sim.flip("prf", 65)
        after = sim.core.prf.values
        changed = [i for i, (a, b) in enumerate(zip(before, after))
                   if a != b]
        assert changed == [2]
        assert before[2] ^ after[2] == 0b11

    def test_burst_campaign_runs(self, program, golden) -> None:
        single = run_campaign(program, CORTEX_A15, "prf", n=12, seed=8,
                              golden=golden, burst=1)
        double = run_campaign(program, CORTEX_A15, "prf", n=12, seed=8,
                              golden=golden, burst=2)
        assert single.n == double.n == 12
        # same sampled (cycle, bit) stream, wider blast radius: the
        # double-bit campaign can only fail at least as often here
        assert double.avf >= single.avf - 1e-9


class TestPassAblation:
    def test_single_pass_pipelines_are_sound(self) -> None:
        reference = None
        for name in sorted(PASS_REGISTRY):
            result = compile_custom(SOURCE, [name], ARMLET32)
            memory = MainMemory(4 * 1024 * 1024)
            run = run_functional(load(result.program, memory), memory)
            assert run.exit_code == 0, name
            if reference is None:
                reference = run.output.data
            assert run.output.data == reference, name

    def test_inline_position_respected(self) -> None:
        result = compile_custom(
            "int sq(int v) { return v * v; }"
            "int main() { putint(sq(7)); return 0; }",
            ["constfold", "inline", "copyprop", "dce"], ARMLET32)
        assert "custom" in result.opt_level
        memory = MainMemory(4 * 1024 * 1024)
        run = run_functional(load(result.program, memory), memory)
        assert run.output.data == b"49\n"
        assert "sq" not in result.module.functions

    def test_empty_pass_list_is_o0_like(self) -> None:
        result = compile_custom(SOURCE, [], ARMLET32,
                                regalloc_mode="O0")
        memory = MainMemory(4 * 1024 * 1024)
        run = run_functional(load(result.program, memory), memory)
        assert run.exit_code == 0

    def test_unknown_pass_rejected(self) -> None:
        with pytest.raises(ValueError, match="unknown passes"):
            compile_custom(SOURCE, ["vectorize"], ARMLET32)

    def test_scheduling_only_ablation_changes_order_not_semantics(
            self) -> None:
        baseline = compile_custom(SOURCE, [], ARMLET32)
        scheduled = compile_custom(SOURCE, ["schedule"], ARMLET32)
        memory = MainMemory(4 * 1024 * 1024)
        a = run_functional(load(baseline.program, memory), memory)
        memory2 = MainMemory(4 * 1024 * 1024)
        b = run_functional(load(scheduled.program, memory2), memory2)
        assert a.output.data == b.output.data


class TestCli:
    def test_compile_command(self, capsys) -> None:
        assert cli_main(["compile", "qsort", "--opt", "O1"]) == 0
        out = capsys.readouterr().out
        assert "instructions" in out

    def test_run_command(self, capsys) -> None:
        assert cli_main(["run", "qsort", "--opt", "O2"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out and "exit code: 0" in out

    def test_fields_command(self, capsys) -> None:
        assert cli_main(["fields", "qsort"]) == 0
        out = capsys.readouterr().out
        assert "rob.pc" in out and "total" in out

    def test_inject_command(self, capsys) -> None:
        assert cli_main(["inject", "qsort", "--field", "rob.flags",
                         "-n", "4", "--no-snapshots"]) == 0
        out = capsys.readouterr().out
        assert "AVF(rob.flags)" in out

    def test_ace_command(self, capsys) -> None:
        assert cli_main(["ace", "qsort", "--sample-every", "200"]) == 0
        out = capsys.readouterr().out
        assert "ACE-AVF" in out

    def test_minc_file_input(self, tmp_path, capsys) -> None:
        path = tmp_path / "prog.mc"
        path.write_text("int main() { putint(11); return 0; }")
        assert cli_main(["run", str(path)]) == 0
        assert "11" in capsys.readouterr().out

    def test_bad_program_rejected(self) -> None:
        with pytest.raises(SystemExit):
            cli_main(["run", "not-a-benchmark"])
