"""Fault-propagation provenance trails: outcome consistency over both
core models, traced/untraced equivalence, and parallel transport.

The ISSUE-level contract: tracing is a pure observer. A traced campaign
must produce the exact ``CampaignResult`` of the untraced one, and every
trial's trail must terminate consistently with its outcome label --
every SDC trail reaches output, every masked trail ends masked, every
crash/timeout/assert trail ends in an exception event.
"""

from __future__ import annotations

import pytest

from repro.compiler import ARMLET32, ARMLET64, compile_source
from repro.gefin import run_campaign, run_golden_auto
from repro.gefin.injector import InjectionResult, synthetic_trail
from repro.gefin.outcomes import Outcome
from repro.microarch import CORTEX_A15, CORTEX_A72
from repro.obs import (
    EVENT_EXCEPTION,
    EVENT_INJECTED,
    EVENT_MASKED,
    EVENT_REACHED_OUTPUT,
    TERMINAL_KINDS,
    campaign_trace,
    trail_is_consistent,
)

SOURCE = """
int data[48];
int main() {
    for (int i = 0; i < 48; i++) { data[i] = i * 11 % 31; }
    int s = 0;
    for (int i = 0; i < 48; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""

#: rob.flags exercises the exception terminals (timeout/assert),
#: l1d.data the SDC terminal; both produce masked trials too (the seed
#: is pinned, and the coverage test below fails if the mix degenerates).
FIELDS = ("rob.flags", "l1d.data")
N = 12
SEED = 3

CORES = {
    "cortex-a15": (CORTEX_A15, ARMLET32),
    "cortex-a72": (CORTEX_A72, ARMLET64),
}


@pytest.fixture(scope="module", params=sorted(CORES))
def rig(request):
    """(config, program, golden, {field: (summary, results)}) per core."""
    config, target = CORES[request.param]
    program = compile_source(SOURCE, "O1", target, name="trace-test")
    golden = run_golden_auto(program, config)
    traced = {
        field: run_campaign(program, config, field, n=N, seed=SEED,
                            golden=golden, keep_results=True, trace=True)
        for field in FIELDS
    }
    return config, program, golden, traced


class TestTrailConsistency:
    def test_every_trail_consistent_with_outcome(self, rig) -> None:
        _config, _program, _golden, traced = rig
        for field, (_summary, results) in traced.items():
            for trial, result in enumerate(results):
                assert result.trail, (field, trial)
                assert trail_is_consistent(result.trail, result.outcome), \
                    (field, trial, result.outcome,
                     [e.kind for e in result.trail])

    def test_terminal_event_matches_outcome_class(self, rig) -> None:
        _config, _program, _golden, traced = rig
        for field, (_summary, results) in traced.items():
            for result in results:
                last = result.trail[-1]
                if result.outcome is Outcome.MASKED:
                    assert last.kind == EVENT_MASKED, field
                elif result.outcome is Outcome.SDC:
                    assert last.kind == EVENT_REACHED_OUTPUT, field
                    assert EVENT_REACHED_OUTPUT in \
                        {e.kind for e in result.trail}
                else:
                    assert last.kind == EVENT_EXCEPTION, field
                # exactly one terminal event, and it is the last
                kinds = [e.kind for e in result.trail]
                assert sum(k in TERMINAL_KINDS for k in kinds) == 1

    def test_all_three_terminals_exercised(self, rig) -> None:
        """Guard against a degenerate sample: the pinned seed must keep
        producing masked, SDC, and exception trails on this core.
        (``quarantined`` is excluded: only the campaign supervisor emits
        it, never a healthy traced run.)"""
        _config, _program, _golden, traced = rig
        terminals = {
            result.trail[-1].kind
            for _summary, results in traced.values()
            for result in results
        }
        assert terminals == {
            EVENT_MASKED, EVENT_REACHED_OUTPUT, EVENT_EXCEPTION,
        }

    def test_trail_opens_at_injection_cycle(self, rig) -> None:
        _config, _program, _golden, traced = rig
        for _summary, results in traced.values():
            for result in results:
                first = result.trail[0]
                assert first.kind == EVENT_INJECTED
                assert first.cycle == result.spec.cycle


class TestTracedUntracedEquivalence:
    def test_tracing_never_changes_the_physics(self, rig) -> None:
        config, program, golden, traced = rig
        for field, (summary, results) in traced.items():
            plain_summary, plain_results = run_campaign(
                program, config, field, n=N, seed=SEED, golden=golden,
                keep_results=True)
            assert summary == plain_summary, field
            assert results == plain_results, field  # trail: compare=False
            assert all(r.trail is None for r in plain_results)

    def test_parallel_transports_trails_and_spans(self, rig) -> None:
        config, program, golden, traced = rig
        field = FIELDS[0]
        summary, results = traced[field]
        par_summary, par_results = run_campaign(
            program, config, field, n=N, seed=SEED, golden=golden,
            keep_results=True, trace=True, workers=2, shard_size=4)
        assert par_summary == summary
        # trails cross process boundaries intact (to_dict round trip)
        par_trails = [r.trail for r in par_results]
        assert par_trails == [r.trail for r in results]
        spans = par_summary.timeline
        assert [span["shard"] for span in spans] == [0, 1, 2]
        for span in spans:
            assert span["start"] <= span["end"]
            assert span["trials"] == span["stop_trial"] - \
                span["first_trial"]
            assert span["worker"] > 0


class TestTrailSerialization:
    def test_json_round_trip(self, rig) -> None:
        _config, _program, _golden, traced = rig
        for _summary, results in traced.values():
            for result in results:
                clone = InjectionResult.from_dict(result.to_dict())
                assert clone.trail == result.trail
                assert clone == result

    def test_untraced_result_omits_trail_key(self, rig) -> None:
        config, program, golden, _traced = rig
        _summary, results = run_campaign(
            program, config, FIELDS[0], n=2, seed=SEED, golden=golden,
            keep_results=True)
        for result in results:
            assert "trail" not in result.to_dict()

    def test_synthetic_trail_is_consistent(self, rig) -> None:
        _config, _program, _golden, traced = rig
        for _summary, results in traced.values():
            for result in results:
                if result.outcome is Outcome.MASKED:
                    trail = synthetic_trail(result)
                    assert trail_is_consistent(trail, result.outcome)
                    assert trail[0].cycle == result.spec.cycle


class TestCampaignChromeExport:
    def test_trace_covers_shards_and_trails(self, rig) -> None:
        config, program, golden, traced = rig
        field = FIELDS[1]
        summary, results = run_campaign(
            program, config, field, n=N, seed=SEED, golden=golden,
            keep_results=True, trace=True, shard_size=6)
        trace = campaign_trace(summary, results)
        slices = [e for e in trace.events if e["ph"] == "X"]
        assert len(slices) == len(summary.timeline) == 2
        instants = [e for e in trace.events if e["ph"] == "i"]
        assert len(instants) == sum(len(r.trail) for r in results)
        # each traced trial gets a named provenance row
        rows = [e for e in trace.events
                if e["ph"] == "M" and e["name"] == "thread_name"
                and e["args"]["name"].startswith("trial ")]
        assert len(rows) == len(results)
        per_kind = {}
        for event in instants:
            per_kind[event["name"]] = per_kind.get(event["name"], 0) + 1
        terminal_total = sum(per_kind.get(kind, 0)
                             for kind in TERMINAL_KINDS)
        assert terminal_total == len(results)
