"""CFG analyses: reachability, dominators, liveness, natural loops."""

from __future__ import annotations

from repro.compiler import analysis, ir


def _diamond() -> ir.Function:
    """entry -> (left | right) -> join -> exit"""
    func = ir.Function("f", [ir.VReg(0)], True)
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    entry.terminator = ir.CondJump("eq", ir.VReg(0), ir.Const(0),
                                   left.name, right.name)
    left.instrs = [ir.Move(ir.VReg(1), ir.Const(1))]
    left.terminator = ir.Jump(join.name)
    right.instrs = [ir.Move(ir.VReg(1), ir.Const(2))]
    right.terminator = ir.Jump(join.name)
    join.terminator = ir.Ret(ir.VReg(1))
    func._next_vreg = 10
    return func


def _loop() -> ir.Function:
    """entry -> head <-> body; head -> exit"""
    func = ir.Function("f", [ir.VReg(0)], True)
    entry = func.new_block("entry")
    head = func.new_block("head")
    body = func.new_block("body")
    done = func.new_block("done")
    entry.instrs = [ir.Move(ir.VReg(1), ir.Const(0))]
    entry.terminator = ir.Jump(head.name)
    head.terminator = ir.CondJump("lt", ir.VReg(1), ir.VReg(0),
                                  body.name, done.name)
    body.instrs = [ir.BinOp(ir.VReg(1), "add", ir.VReg(1), ir.Const(1))]
    body.terminator = ir.Jump(head.name)
    done.terminator = ir.Ret(ir.VReg(1))
    func._next_vreg = 10
    return func


class TestReachability:
    def test_all_reachable_in_diamond(self) -> None:
        func = _diamond()
        assert analysis.reachable_blocks(func) == \
            {b.name for b in func.blocks}

    def test_orphan_excluded(self) -> None:
        func = _diamond()
        orphan = func.new_block("orphan")
        orphan.terminator = ir.Ret(ir.Const(9))
        assert orphan.name not in analysis.reachable_blocks(func)

    def test_postorder_entry_last(self) -> None:
        func = _diamond()
        order = analysis.postorder(func)
        assert order[-1] == func.blocks[0].name
        assert len(order) == 4


class TestDominators:
    def test_diamond(self) -> None:
        func = _diamond()
        dom = analysis.dominators(func)
        entry, left, right, join = [b.name for b in func.blocks]
        assert dom[entry] == {entry}
        assert dom[left] == {entry, left}
        assert dom[join] == {entry, join}  # neither branch dominates

    def test_loop_header_dominates_body(self) -> None:
        func = _loop()
        dom = analysis.dominators(func)
        entry, head, body, done = [b.name for b in func.blocks]
        assert head in dom[body]
        assert head in dom[done]


class TestLoops:
    def test_natural_loop_found(self) -> None:
        func = _loop()
        loops = analysis.find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == func.blocks[1].name
        assert loop.body == {func.blocks[1].name, func.blocks[2].name}
        assert loop.latches == [func.blocks[2].name]

    def test_no_loops_in_diamond(self) -> None:
        assert analysis.find_loops(_diamond()) == []

    def test_nested_loops_sorted_innermost_first(self) -> None:
        from repro.compiler import ARMLET32, compile_module

        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) { s += i * j; }
            }
            putint(s);
            return 0;
        }
        """
        result = compile_module(source, "O0", ARMLET32)
        loops = analysis.find_loops(result.module.functions["main"])
        assert len(loops) == 2
        assert loops[0].size <= loops[1].size
        assert loops[0].body < loops[1].body  # inner nested in outer


class TestLiveness:
    def test_branch_operand_live_into_block(self) -> None:
        func = _loop()
        live_in, live_out = analysis.liveness(func)
        head = func.blocks[1].name
        body = func.blocks[2].name
        assert ir.VReg(0) in live_in[head]   # loop bound
        assert ir.VReg(1) in live_in[head]   # induction variable
        assert ir.VReg(1) in live_out[body]

    def test_dead_after_last_use(self) -> None:
        func = _diamond()
        live_in, live_out = analysis.liveness(func)
        join = func.blocks[3].name
        assert ir.VReg(0) not in live_in[join]  # condition not used again

    def test_single_def_detection(self) -> None:
        func = _diamond()
        singles = analysis.single_def_vregs(func)
        assert ir.VReg(0) in singles      # param, never redefined
        assert ir.VReg(1) not in singles  # defined in both arms
