"""CFG analyses: reachability, dominators, liveness, natural loops."""

from __future__ import annotations

from repro.compiler import analysis, ir


def _diamond() -> ir.Function:
    """entry -> (left | right) -> join -> exit"""
    func = ir.Function("f", [ir.VReg(0)], True)
    entry = func.new_block("entry")
    left = func.new_block("left")
    right = func.new_block("right")
    join = func.new_block("join")
    entry.terminator = ir.CondJump("eq", ir.VReg(0), ir.Const(0),
                                   left.name, right.name)
    left.instrs = [ir.Move(ir.VReg(1), ir.Const(1))]
    left.terminator = ir.Jump(join.name)
    right.instrs = [ir.Move(ir.VReg(1), ir.Const(2))]
    right.terminator = ir.Jump(join.name)
    join.terminator = ir.Ret(ir.VReg(1))
    func._next_vreg = 10
    return func


def _loop() -> ir.Function:
    """entry -> head <-> body; head -> exit"""
    func = ir.Function("f", [ir.VReg(0)], True)
    entry = func.new_block("entry")
    head = func.new_block("head")
    body = func.new_block("body")
    done = func.new_block("done")
    entry.instrs = [ir.Move(ir.VReg(1), ir.Const(0))]
    entry.terminator = ir.Jump(head.name)
    head.terminator = ir.CondJump("lt", ir.VReg(1), ir.VReg(0),
                                  body.name, done.name)
    body.instrs = [ir.BinOp(ir.VReg(1), "add", ir.VReg(1), ir.Const(1))]
    body.terminator = ir.Jump(head.name)
    done.terminator = ir.Ret(ir.VReg(1))
    func._next_vreg = 10
    return func


class TestReachability:
    def test_all_reachable_in_diamond(self) -> None:
        func = _diamond()
        assert analysis.reachable_blocks(func) == \
            {b.name for b in func.blocks}

    def test_orphan_excluded(self) -> None:
        func = _diamond()
        orphan = func.new_block("orphan")
        orphan.terminator = ir.Ret(ir.Const(9))
        assert orphan.name not in analysis.reachable_blocks(func)

    def test_postorder_entry_last(self) -> None:
        func = _diamond()
        order = analysis.postorder(func)
        assert order[-1] == func.blocks[0].name
        assert len(order) == 4


class TestDominators:
    def test_diamond(self) -> None:
        func = _diamond()
        dom = analysis.dominators(func)
        entry, left, right, join = [b.name for b in func.blocks]
        assert dom[entry] == {entry}
        assert dom[left] == {entry, left}
        assert dom[join] == {entry, join}  # neither branch dominates

    def test_loop_header_dominates_body(self) -> None:
        func = _loop()
        dom = analysis.dominators(func)
        entry, head, body, done = [b.name for b in func.blocks]
        assert head in dom[body]
        assert head in dom[done]


class TestLoops:
    def test_natural_loop_found(self) -> None:
        func = _loop()
        loops = analysis.find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == func.blocks[1].name
        assert loop.body == {func.blocks[1].name, func.blocks[2].name}
        assert loop.latches == [func.blocks[2].name]

    def test_no_loops_in_diamond(self) -> None:
        assert analysis.find_loops(_diamond()) == []

    def test_nested_loops_sorted_innermost_first(self) -> None:
        from repro.compiler import ARMLET32, compile_module

        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 4; i++) {
                for (int j = 0; j < 4; j++) { s += i * j; }
            }
            putint(s);
            return 0;
        }
        """
        result = compile_module(source, "O0", ARMLET32)
        loops = analysis.find_loops(result.module.functions["main"])
        assert len(loops) == 2
        assert loops[0].size <= loops[1].size
        assert loops[0].body < loops[1].body  # inner nested in outer


class TestLoopEdgeCases:
    def test_empty_function_body_has_no_loops(self) -> None:
        func = ir.Function("f", [], False)
        block = func.new_block("entry")
        block.terminator = ir.Ret()
        assert analysis.find_loops(func) == []
        assert analysis.reachable_blocks(func) == {block.name}

    def test_function_without_blocks(self) -> None:
        func = ir.Function("f", [], False)
        assert analysis.reachable_blocks(func) == set()

    def test_self_loop_block(self) -> None:
        func = ir.Function("f", [ir.VReg(0)], False)
        entry = func.new_block("entry")
        spin = func.new_block("spin")
        entry.terminator = ir.Jump(spin.name)
        spin.terminator = ir.CondJump("lt", ir.VReg(0), ir.Const(3),
                                      spin.name, entry.name + "_done")
        done = func.new_block("entry_done")
        done.name = entry.name + "_done"
        done.terminator = ir.Ret()
        loops = analysis.find_loops(func)
        self_loops = [lp for lp in loops if lp.header == spin.name]
        assert len(self_loops) == 1
        assert self_loops[0].body == {spin.name}
        assert self_loops[0].latches == [spin.name]

    def test_shared_header_loops_merged(self) -> None:
        """Two back edges to the same header yield ONE merged loop with
        both latches, not two separate loops."""
        func = ir.Function("f", [ir.VReg(0)], False)
        entry = func.new_block("entry")
        head = func.new_block("head")
        latch_a = func.new_block("latch_a")
        latch_b = func.new_block("latch_b")
        done = func.new_block("done")
        entry.terminator = ir.Jump(head.name)
        head.terminator = ir.CondJump("eq", ir.VReg(0), ir.Const(0),
                                      latch_a.name, latch_b.name)
        latch_a.terminator = ir.CondJump("lt", ir.VReg(0), ir.Const(9),
                                         head.name, done.name)
        latch_b.terminator = ir.Jump(head.name)
        done.terminator = ir.Ret()
        loops = analysis.find_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header == head.name
        assert set(loop.latches) == {latch_a.name, latch_b.name}
        assert loop.body == {head.name, latch_a.name, latch_b.name}


class TestSingleDefEdgeCases:
    def test_empty_function_only_params_single_def(self) -> None:
        func = ir.Function("f", [ir.VReg(0), ir.VReg(1)], False)
        block = func.new_block("entry")
        block.terminator = ir.Ret()
        assert analysis.single_def_vregs(func) == {ir.VReg(0), ir.VReg(1)}

    def test_param_redefined_in_body_is_multi_def(self) -> None:
        func = ir.Function("f", [ir.VReg(0)], False)
        block = func.new_block("entry")
        block.instrs = [ir.Move(ir.VReg(0), ir.Const(7))]
        block.terminator = ir.Ret()
        assert ir.VReg(0) not in analysis.single_def_vregs(func)

    def test_self_loop_redefinition_is_multi_def(self) -> None:
        func = ir.Function("f", [], False)
        block = func.new_block("entry")
        block.instrs = [
            ir.Move(ir.VReg(1), ir.Const(0)),
            ir.BinOp(ir.VReg(1), "add", ir.VReg(1), ir.Const(1)),
        ]
        block.terminator = ir.Ret()
        singles = analysis.single_def_vregs(func)
        assert ir.VReg(1) not in singles

    def test_hint_does_not_affect_identity(self) -> None:
        """VReg equality is by id+hint (frozen dataclass); the analysis
        must treat %1 defined twice under the same hint as multi-def."""
        func = ir.Function("f", [], False)
        block = func.new_block("entry")
        block.instrs = [
            ir.Move(ir.VReg(2, "x"), ir.Const(0)),
            ir.Move(ir.VReg(3, "y"), ir.VReg(2, "x")),
        ]
        block.terminator = ir.Ret()
        singles = analysis.single_def_vregs(func)
        assert ir.VReg(2, "x") in singles
        assert ir.VReg(3, "y") in singles


class TestLiveness:
    def test_branch_operand_live_into_block(self) -> None:
        func = _loop()
        live_in, live_out = analysis.liveness(func)
        head = func.blocks[1].name
        body = func.blocks[2].name
        assert ir.VReg(0) in live_in[head]   # loop bound
        assert ir.VReg(1) in live_in[head]   # induction variable
        assert ir.VReg(1) in live_out[body]

    def test_dead_after_last_use(self) -> None:
        func = _diamond()
        live_in, live_out = analysis.liveness(func)
        join = func.blocks[3].name
        assert ir.VReg(0) not in live_in[join]  # condition not used again

    def test_single_def_detection(self) -> None:
        func = _diamond()
        singles = analysis.single_def_vregs(func)
        assert ir.VReg(0) in singles      # param, never redefined
        assert ir.VReg(1) not in singles  # defined in both arms
