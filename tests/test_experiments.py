"""Experiments harness: grid caching, figure data generators, rendering.

Uses a deliberately tiny grid (1-2 benchmarks, few injections) so the
full figure pipeline is exercised quickly; the real campaign runs behind
the benchmarks.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    CampaignGrid,
    FIGURE_FIELDS,
    GridSpec,
    avf_figure,
    fig1_performance,
    fig9_wavf_difference,
    fig10_fit_rates,
    fig11_fpe,
    fig12_ecc_fit,
    format_table,
    render_avf_figure,
    render_fig1,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
    table1_configurations,
)


@pytest.fixture(scope="module")
def grid(tmp_path_factory) -> CampaignGrid:
    spec = GridSpec(
        benchmarks=("qsort", "dijkstra"),
        levels=("O0", "O2"),
        cores=("cortex-a15",),
        fields=("rob.flags", "prf", "l1d.data"),
        scale="micro",
        injections=3,
        seed=5,
    )
    return CampaignGrid(spec, tmp_path_factory.mktemp("grid"))


@pytest.mark.bench
def test_grid_caches_cells(grid) -> None:
    ran = grid.ensure_all()
    assert ran == grid.spec.cells == 12
    assert grid.ensure_all() == 0  # everything cached now
    assert grid.is_cached("cortex-a15", "qsort", "O0", "prf")


def test_grid_results_are_stable_across_instances(grid) -> None:
    grid.ensure_all()
    clone = CampaignGrid(grid.spec, grid.store.root)
    a = grid.result("cortex-a15", "qsort", "O2", "prf")
    b = clone.result("cortex-a15", "qsort", "O2", "prf")
    assert a.avf == b.avf and a.counts == b.counts


def test_golden_cycles_cached(grid) -> None:
    grid.ensure_all()
    clone = CampaignGrid(grid.spec, grid.store.root)
    cycles = clone.golden_cycles("cortex-a15", "qsort", "O0")
    assert cycles > 0
    assert not clone._golden  # answered from the JSON cache


def test_table1(grid) -> None:
    data = table1_configurations()
    assert data["cortex-a15"]["Reorder Buffer"] == "40 entries"
    assert data["cortex-a72"]["L2 Cache"].startswith("2 MB (16-way)")
    text = render_table1(data)
    assert "cortex-a15" in text and "Physical Register File" in text


def test_fig1(grid) -> None:
    grid.ensure_all()
    data = fig1_performance(grid)
    row = data["cortex-a15"]["qsort"]
    assert row["O0"] == pytest.approx(1.0)
    assert row["O2"] > 1.5  # optimization must actually speed things up
    assert "qsort" in render_fig1(data)


def test_avf_figures(grid) -> None:
    grid.ensure_all()
    data = avf_figure(grid, ("prf",))
    panel = data["cortex-a15"]["prf"]
    assert set(panel) == {"qsort", "dijkstra", "wAVF"}
    for level_map in panel.values():
        for classes in level_map.values():
            for value in classes.values():
                assert 0.0 <= value <= 1.0
    text = render_avf_figure(data, 5, "Physical Register File")
    assert "prf" in text and "wAVF" in text


def test_fig9(grid) -> None:
    grid.ensure_all()
    data = fig9_wavf_difference(grid)
    diffs = data["cortex-a15"]
    assert set(diffs) == set(grid.spec.fields)
    assert set(diffs["prf"]) == {"O2"}  # levels minus O0
    assert "wAVF difference" in render_fig9(data)


def test_fig10_fig11(grid) -> None:
    grid.ensure_all()
    fit = fig10_fit_rates(grid)
    for bench_rows in fit["cortex-a15"].values():
        for classes in bench_rows.values():
            assert all(v >= 0 for v in classes.values())
    fpe = fig11_fpe(grid)
    for rows in fpe["cortex-a15"].values():
        assert rows["O0"] == pytest.approx(1.0)
    assert "FIT" in render_fig10(fit)
    assert "failures per execution" in render_fig11(fpe)


def test_fig12(grid) -> None:
    grid.ensure_all()
    data = fig12_ecc_fit(grid)
    schemes = data["cortex-a15"]
    for level in ("O0", "O2"):
        assert schemes["no-ecc"][level] >= schemes["ecc-l2"][level]
        assert schemes["ecc-l2"][level] >= schemes["ecc-l1d-l2"][level]
    assert "ECC" in render_fig12(data)


def test_figure_fields_cover_paper_structures() -> None:
    shown = [f for fields in FIGURE_FIELDS.values() for f in fields]
    assert len(shown) == 15
    assert len(set(shown)) == 15


def test_format_table_alignment() -> None:
    text = format_table("t", ["a", "long"], [["xxxx", "1"]])
    lines = text.splitlines()
    assert lines[0] == "t"
    assert len({len(line) for line in lines[1:]}) == 1


def test_parallel_ensure_matches_serial(tmp_path) -> None:
    spec = GridSpec(benchmarks=("qsort",), cores=("cortex-a15",),
                    levels=("O1",), fields=("rob.flags", "prf"),
                    injections=2, scale="micro", seed=31)
    parallel = CampaignGrid(spec, tmp_path / "par")
    assert parallel.ensure_all(workers=2) == 2
    assert parallel.ensure_all(workers=2) == 0
    serial = CampaignGrid(spec, tmp_path / "ser")
    serial.ensure_all()
    for field in spec.fields:
        a = parallel.result("cortex-a15", "qsort", "O1", field)
        b = serial.result("cortex-a15", "qsort", "O1", field)
        assert a.counts == b.counts


def test_cache_dir_env_resolved_lazily(monkeypatch, tmp_path) -> None:
    """REPRO_CACHE_DIR is read at CampaignGrid construction, not frozen
    at import time, so test monkeypatching and CLI overrides work."""
    from repro.experiments.grid import default_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "late"))
    assert default_cache_dir() == tmp_path / "late"
    grid = CampaignGrid(GridSpec(benchmarks=("qsort",),
                                 cores=("cortex-a15",), levels=("O0",),
                                 fields=("prf",), injections=1))
    assert grid.store.root == tmp_path / "late"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.chdir(tmp_path)
    assert default_cache_dir() == tmp_path / ".repro_cache"


def test_grid_spec_from_env(monkeypatch) -> None:
    monkeypatch.setenv("REPRO_SCALE", "small")
    monkeypatch.setenv("REPRO_INJECTIONS", "44")
    monkeypatch.setenv("REPRO_SEED", "9")
    spec = GridSpec.from_env()
    assert spec.scale == "small"
    assert spec.injections == 44
    assert spec.seed == 9
