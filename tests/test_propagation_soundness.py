"""Soundness of the bit-level propagation verdicts and tier-3 pruning.

Two layers of evidence:

* **Architectural**: hypothesis-generated MinC programs where every
  statically-DEAD (pc, reg, bit) verdict sampled is checked by actually
  flipping those bits in a functional simulation and demanding the
  golden output. Because every transfer rule in the analysis is
  per-use positional, all dead bits of one register are jointly dead,
  so one run flipping the register's whole dead mask checks each of
  its dead-bit verdicts at once.

* **Microarchitectural**: the tier-3 PRF pruner's verdicts are
  replayed against full out-of-order simulation across every workload,
  both cores, and O0-O3 -- each pruned fault must fully simulate to
  the same (outcome, weight, bit index) triple, i.e. Masked.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings

from repro.compiler import ARMLET32, ARMLET64, compile_source
from repro.compiler.propagation import analyze_propagation
from repro.gefin.fault import FaultSpec, run_golden_auto
from repro.gefin.injector import inject_one
from repro.gefin.outcomes import Outcome
from repro.gefin.prune import StaticPruner
from repro.isa import registers
from repro.kernel import MainMemory, load
from repro.kernel.functional import FunctionalCPU
from repro.microarch.config import CONFIGS
from repro.workloads.registry import BENCHMARKS, build_program

from .test_compiler_differential import minc_programs

MAX_STEPS = 200_000


def _boot(program) -> FunctionalCPU:
    memory = MainMemory(4 * 1024 * 1024)
    image = load(program, memory)
    return FunctionalCPU(image, memory, program.xlen)


def _advance(cpu: FunctionalCPU, steps: int) -> None:
    """Single-step ``cpu`` forward ``steps`` instructions."""
    text = cpu.image.program.text
    base = cpu.image.system_map.text_base
    for _ in range(steps):
        cpu.image.system_map.check_fetch(cpu.pc, cpu.image.text_bytes)
        cpu.step(text[(cpu.pc - base) >> 2])
        cpu.instructions += 1


def _finish(cpu: FunctionalCPU) -> tuple[bytes, int | None]:
    result = cpu.run(MAX_STEPS)
    return result.output.data, result.exit_code


# ------------------------------------------- architectural flip checks

def _check_dead_verdicts(source: str, level: str, target) -> None:
    program = compile_source(source, level, target)
    golden = _boot(program)
    golden_output, golden_exit = _finish(golden)
    assert golden_exit == 0
    total_steps = golden.instructions
    prop = analyze_propagation(program)
    rng = random.Random(0xD15EA5E)
    steps = sorted({rng.randrange(total_steps)
                    for _ in range(min(4, total_steps))})
    for step in steps:
        probe = _boot(program)
        _advance(probe, step)
        slot = (probe.pc
                - probe.image.system_map.text_base) >> 2
        saved_regs = list(probe.regs)
        saved_pc = probe.pc
        for reg in range(1, registers.NUM_REGS):
            dead = prop.dead_mask(slot, reg)
            if not dead:
                continue
            # One run per register flips its whole dead mask: the
            # transfer rules are positional, so the bits are jointly
            # dead and each per-bit verdict is covered by this run.
            cpu = _boot(program)
            _advance(cpu, step)
            assert cpu.regs == saved_regs and cpu.pc == saved_pc
            cpu.regs[reg] ^= dead
            try:
                output, exit_code = _finish(cpu)
            except Exception as exc:
                raise AssertionError(
                    f"flip at step {step} slot {slot} reg "
                    f"{registers.reg_name(reg)} mask {dead:#x} crashed "
                    f"({level}, {target.name}): {exc!r}") from exc
            assert (output, exit_code) == (golden_output, golden_exit), (
                f"DEAD verdict violated at step {step} slot {slot} "
                f"reg {registers.reg_name(reg)} mask {dead:#x} "
                f"({level}, {target.name})")


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(minc_programs())
def test_dead_verdicts_survive_architectural_flips(source) -> None:
    _check_dead_verdicts(source, "O2", ARMLET32)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(minc_programs())
def test_dead_verdicts_survive_flips_64(source) -> None:
    _check_dead_verdicts(source, "O1", ARMLET64)


def test_dead_verdicts_fixed_program_all_levels() -> None:
    source = """
    int g[8];
    int main() {
        int acc = 0;
        for (int i = 0; i < 20; i++) {
            g[i % 8] = i * 3;
            acc += g[(i + 1) % 8] & 255;
        }
        putint(acc & 65535);
        return 0;
    }
    """
    for level in ("O0", "O1", "O2", "O3"):
        _check_dead_verdicts(source, level, ARMLET32)
        _check_dead_verdicts(source, level, ARMLET64)


# --------------------------------------- tier-3 differential soundness

_CORE_TO_TARGET = {"cortex-a15": "armlet32", "cortex-a72": "armlet64"}
_LEVELS = ("O0", "O1", "O2", "O3")

#: Uniform-mode PRF faults sampled per (workload, core, level) cell,
#: and how many of the pruned ones are replayed in full simulation.
_N_SPECS = 60
_N_VERIFY = 4


def _tier3_differential(workload: str, core: str, level: str) -> None:
    config = CONFIGS[core]
    program = build_program(workload, "micro", level,
                            _CORE_TO_TARGET[core])
    golden = run_golden_auto(program, config)
    pruner = StaticPruner(program, config, golden)
    bits = config.phys_regs * config.xlen
    rng = random.Random(20210213)
    pruned = []
    for _ in range(_N_SPECS):
        spec = FaultSpec(field="prf",
                         cycle=rng.randrange(1, golden.cycles + 1),
                         bit_index=rng.randrange(bits), mode="uniform")
        result = pruner.prune(spec)
        if result is not None:
            assert result.outcome is Outcome.MASKED
            assert result.early == "static-bit"
            pruned.append((spec, result))
    # Bit-level pruning should fire on a healthy fraction of uniform
    # PRF faults (most of a large PRF is unallocated or dead).
    assert len(pruned) >= _N_SPECS // 4, (workload, core, level)
    for spec, claimed in pruned[:_N_VERIFY]:
        full = inject_one(program, config, golden, spec, early_exit=True)
        assert full.outcome is Outcome.MASKED, (spec, full.detail)
        assert (full.outcome, full.weight, full.bit_index) == \
            (claimed.outcome, claimed.weight, claimed.bit_index)


@pytest.mark.parametrize("core", sorted(CONFIGS))
@pytest.mark.parametrize("level", _LEVELS)
def test_tier3_differential_qsort(core, level) -> None:
    _tier3_differential("qsort", core, level)


@pytest.mark.slow
@pytest.mark.parametrize("workload", sorted(set(BENCHMARKS) - {"qsort"}))
@pytest.mark.parametrize("core", sorted(CONFIGS))
@pytest.mark.parametrize("level", _LEVELS)
def test_tier3_differential_matrix(workload, core, level) -> None:
    """Full soundness matrix: all workloads x both cores x O0-O3."""
    _tier3_differential(workload, core, level)
