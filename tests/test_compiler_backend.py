"""Back end: register allocation and code generation specifics."""

from __future__ import annotations

import pytest

from repro.compiler import ARMLET32, ARMLET64, compile_module, \
    compile_source
from repro.compiler import ir
from repro.compiler.regalloc import (
    CALLEE_SAVED_POOL,
    CALLER_SAVED_POOL,
    SCRATCH,
    allocate_linear,
    allocate_stack,
)
from repro.isa import Opcode, registers

from .conftest import run_minc


def _linear_function() -> ir.Function:
    """a small function with a call-crossing value."""
    func = ir.Function("f", [ir.VReg(0)], True)
    block = func.new_block("entry")
    v1, v2, v3 = ir.VReg(1), ir.VReg(2), ir.VReg(3)
    block.instrs = [
        ir.BinOp(v1, "add", ir.VReg(0), ir.Const(1)),
        ir.Call(v2, "g", [v1]),
        ir.BinOp(v3, "add", v1, v2),   # v1 lives across the call
    ]
    block.terminator = ir.Ret(v3)
    func._next_vreg = 10
    return func


class TestRegalloc:
    def test_stack_mode_homes_everything(self) -> None:
        func = _linear_function()
        alloc = allocate_stack(func)
        assert alloc.mode == "stack"
        assert not alloc.assignment
        assert set(alloc.spill_slots) >= {ir.VReg(0), ir.VReg(1),
                                          ir.VReg(2), ir.VReg(3)}

    def test_call_crossing_value_gets_callee_saved(self) -> None:
        func = _linear_function()
        alloc = allocate_linear(func)
        v1 = ir.VReg(1)
        location = alloc.location(v1)
        if location[0] == "reg":
            assert location[1] in CALLEE_SAVED_POOL, location
        assert alloc.has_calls

    def test_short_lived_values_prefer_caller_saved(self) -> None:
        func = ir.Function("f", [ir.VReg(0)], True)
        block = func.new_block("entry")
        block.instrs = [ir.BinOp(ir.VReg(1), "add", ir.VReg(0),
                                 ir.Const(1))]
        block.terminator = ir.Ret(ir.VReg(1))
        func._next_vreg = 5
        alloc = allocate_linear(func)
        assert alloc.assignment[ir.VReg(1)] in CALLER_SAVED_POOL

    def test_pools_disjoint_from_scratch(self) -> None:
        overlap = set(SCRATCH) & (set(CALLER_SAVED_POOL)
                                  | set(CALLEE_SAVED_POOL))
        assert not overlap
        assert registers.ZERO not in CALLER_SAVED_POOL
        assert not set(registers.ARG_REGS) & set(CALLER_SAVED_POOL)

    def test_spilling_under_pressure(self) -> None:
        # more simultaneously-live values than registers
        func = ir.Function("f", [], True)
        block = func.new_block("entry")
        vregs = [ir.VReg(i + 1) for i in range(30)]
        for v in vregs:
            block.instrs.append(ir.Move(v, ir.Const(v.id)))
        total = ir.VReg(100)
        block.instrs.append(ir.Move(total, ir.Const(0)))
        for v in vregs:
            nxt = ir.VReg(100 + v.id)
            block.instrs.append(ir.BinOp(nxt, "add", total, v))
            total = nxt
        block.terminator = ir.Ret(total)
        func._next_vreg = 200
        alloc = allocate_linear(func)
        assert alloc.spill_slots  # something spilled
        # every vreg has exactly one location
        for v in vregs:
            in_reg = v in alloc.assignment
            in_slot = v in alloc.spill_slots
            assert in_reg != in_slot


class TestCodegen:
    def test_o0_uses_frame_pointer_and_saves_lr(self) -> None:
        program = compile_source("int main() { return 0; }", "O0",
                                 ARMLET32)
        text = [str(i) for i in program.text]
        assert any("str fp" in t for t in text)
        assert any("str lr" in t for t in text)

    def test_o1_leaf_omits_lr_save(self) -> None:
        program = compile_source("int main() { return 3; }", "O1",
                                 ARMLET32)
        text = [str(i) for i in program.text]
        assert not any("str lr" in t for t in text)

    def test_start_stub_calls_main_then_exits(self) -> None:
        program = compile_source("int main() { return 5; }", "O1",
                                 ARMLET32)
        assert program.entry == program.text_symbols["_start"]
        start = program.text[program.entry]
        assert start.opcode is Opcode.BL
        assert program.text[program.entry + 1].opcode is Opcode.SVC

    def test_immediate_forms_used(self) -> None:
        program = compile_source(
            "int main() { int a = 5; return a + 3; }", "O1", ARMLET32)
        opcodes = [i.opcode for i in program.text]
        assert Opcode.ADDI in opcodes

    def test_large_data_segment_addressing(self) -> None:
        # data offsets beyond imm16 force the movw/movt + add gp path
        source = """
        int big_a[9000];
        int big_b[9000];
        int main() {
            big_a[0] = 7;
            big_b[8999] = big_a[0] + 1;
            putint(big_b[8999]);
            return 0;
        }
        """
        for level in ("O0", "O2"):
            result = run_minc(source, level)
            assert result.output.data == b"8\n"

    def test_frame_sizes_16_byte_aligned(self) -> None:
        source = """
        int f(int a) { int local[5]; local[0] = a; return local[0]; }
        int main() { return f(0); }
        """
        result = compile_module(source, "O1", ARMLET32)
        addi_sp = [i for i in result.program.text
                   if i.opcode is Opcode.ADDI and i.rd == registers.SP
                   and i.imm < 0]
        assert addi_sp and all(i.imm % 16 == 0 for i in addi_sp)

    def test_zero_register_for_zero_constants(self) -> None:
        program = compile_source(
            "int main() { putint(0); return 0; }", "O1", ARMLET32)
        # moving 0 into a0 uses the zero register as source
        assert any(i.opcode is Opcode.ADDI and i.rs1 == registers.ZERO
                   for i in program.text)

    def test_too_many_call_args_rejected(self) -> None:
        from repro.errors import CompileError

        args = ", ".join(f"int a{i}" for i in range(9))
        vals = ", ".join(str(i) for i in range(9))
        source = (f"int f({args}) {{ return a0; }}"
                  f"int main() {{ return f({vals}); }}")
        with pytest.raises(CompileError, match="parameters"):
            compile_source(source, "O0", ARMLET32)

    def test_64bit_constants_materialized(self) -> None:
        source = """
        int main() {
            puthex(0x12345678 * 65536);
            return 0;
        }
        """
        from repro.kernel import MainMemory, load, run_functional

        program = compile_source(source, "O0", ARMLET64)
        memory = MainMemory(4 * 1024 * 1024)
        result = run_functional(load(program, memory), memory)
        assert result.output.data == b"123456780000\n"

    def test_text_symbols_include_functions(self) -> None:
        source = """
        int helper(int x) { return x; }
        int main() { return helper(0); }
        """
        program = compile_source(source, "O0", ARMLET32)
        assert "helper" in program.text_symbols
        assert "main" in program.text_symbols
        listing = program.listing()
        assert "helper:" in listing


class TestIRContainers:
    def test_dump_readable(self) -> None:
        result = compile_module(
            "int main() { return 1 + 2; }", "O0", ARMLET32)
        dump = result.module.dump()
        assert "func main" in dump and "ret" in dump

    def test_predecessors(self) -> None:
        func = ir.Function("f", [], True)
        a = func.new_block("a")
        b = func.new_block("b")
        c = func.new_block("c")
        a.terminator = ir.CondJump("eq", ir.Const(0), ir.Const(0),
                                   b.name, c.name)
        b.terminator = ir.Jump(c.name)
        c.terminator = ir.Ret(ir.Const(0))
        preds = func.predecessors()
        assert preds[c.name] == [a.name, b.name]
        assert preds[a.name] == []

    def test_cond_ops_tables_consistent(self) -> None:
        assert set(ir.NEGATED_COND) == ir.COND_OPS
        assert set(ir.SWAPPED_COND) == ir.COND_OPS
        for op, negated in ir.NEGATED_COND.items():
            assert ir.NEGATED_COND[negated] == op
        for op, swapped in ir.SWAPPED_COND.items():
            assert ir.SWAPPED_COND[swapped] == op
