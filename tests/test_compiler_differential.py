"""Differential testing: every optimization level and both targets must
produce observably identical programs.

Includes a hypothesis-driven generator of small MinC programs
(expressions, loops, arrays, calls) -- the strongest compiler-correctness
net in the suite.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.compiler import ARMLET32, ARMLET64, compile_source
from repro.kernel import MainMemory, load, run_functional

from .conftest import run_minc, run_minc_all_levels

LEVELS = ("O0", "O1", "O2", "O3")


def _run_everywhere(source: str) -> bytes:
    """Run on all 4 levels x 2 targets; outputs must agree within a
    target.  Cross-target agreement is NOT asserted: ``int`` is the
    native word, so a generated program whose intermediates overflow 32
    bits legitimately wraps differently on armlet32 and armlet64."""
    last = b""
    for target in (ARMLET32, ARMLET64):
        outputs = set()
        for level in LEVELS:
            program = compile_source(source, level, target)
            memory = MainMemory(4 * 1024 * 1024)
            result = run_functional(load(program, memory), memory,
                                    max_instructions=3_000_000)
            assert result.exit_code == 0
            outputs.add(result.output.data)
        assert len(outputs) == 1, (target.name, outputs)
        last = outputs.pop()
    return last


# ------------------------------------------------------ hypothesis grammar

_SMALL = st.integers(min_value=0, max_value=999)
_VARS = ("a", "b", "c")


@st.composite
def _expr(draw, depth: int = 0) -> str:
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return str(draw(_SMALL))
        if choice == 1:
            return draw(st.sampled_from(_VARS))
        return f"g[{draw(st.integers(min_value=0, max_value=7))}]"
    op = draw(st.sampled_from(
        ["+", "-", "*", "&", "|", "^", "<", "==", ">>"]))
    left = draw(_expr(depth + 1))
    right = draw(_expr(depth + 1))
    if op == ">>":
        return f"(({left}) >> ({draw(st.integers(0, 7))}))"
    return f"(({left}) {op} ({right}))"


@st.composite
def _stmt(draw, depth: int = 0) -> str:
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        var = draw(st.sampled_from(_VARS))
        return f"{var} = {draw(_expr())};"
    if choice == 1:
        index = draw(st.integers(min_value=0, max_value=7))
        return f"g[{index}] = {draw(_expr())};"
    if choice == 2:
        return f"putint(({draw(_expr())}) & 65535);"
    if choice == 3 and depth < 2:
        body = " ".join(draw(st.lists(_stmt(depth + 1), min_size=1,
                                      max_size=3)))
        return f"if ({draw(_expr())}) {{ {body} }}"
    if choice == 4 and depth < 2:
        var = draw(st.sampled_from(_VARS))
        body = " ".join(draw(st.lists(_stmt(depth + 1), min_size=1,
                                      max_size=3)))
        bound = draw(st.integers(min_value=1, max_value=6))
        return (f"for (int k{depth} = 0; k{depth} < {bound}; k{depth}++)"
                f" {{ {body} {var} = {var} + k{depth}; }}")
    var = draw(st.sampled_from(_VARS))
    return f"{var} += {draw(_expr())};"


@st.composite
def minc_programs(draw) -> str:
    stmts = draw(st.lists(_stmt(), min_size=2, max_size=8))
    body = "\n    ".join(stmts)
    return f"""
int g[8];
int main() {{
    int a = {draw(_SMALL)};
    int b = {draw(_SMALL)};
    int c = {draw(_SMALL)};
    {body}
    putint(a & 65535); putint(b & 65535); putint(c & 65535);
    int gs = 0;
    for (int i = 0; i < 8; i++) {{ gs += g[i] & 255; }}
    putint(gs);
    return 0;
}}
"""


@settings(max_examples=25, deadline=None)
@given(minc_programs())
def test_random_programs_agree_across_levels_and_targets(source) -> None:
    _run_everywhere(source)


# -------------------------------------------------------- fixed stress set

def test_struct_of_loops() -> None:
    run_minc_all_levels("""
    int hist[16];
    int main() {
        for (int i = 0; i < 100; i++) { hist[i * 7 % 16]++; }
        int mode = 0;
        for (int i = 1; i < 16; i++) {
            if (hist[i] > hist[mode]) { mode = i; }
        }
        putint(mode); putint(hist[mode]);
        return 0;
    }
    """)


def test_deep_expression_pressure() -> None:
    # more live values than allocatable registers: forces spilling at O1+
    terms = " + ".join(f"v{i}" for i in range(24))
    decls = "\n".join(f"int v{i} = {i * 3 + 1};" for i in range(24))
    source = f"""
    int main() {{
        {decls}
        putint({terms});
        return 0;
    }}
    """
    assert run_minc_all_levels(source) == b"852\n"


def test_call_heavy_register_saving() -> None:
    run_minc_all_levels("""
    int mix(int a, int b) { return a * 3 + b; }
    int main() {
        int x = 1; int y = 2; int z = 3; int w = 4;
        for (int i = 0; i < 10; i++) {
            x = mix(y, z);
            y = mix(z, w);
            z = mix(w, x) & 4095;
            w = mix(x, y) & 4095;
        }
        putint(x & 65535); putint(y & 65535);
        putint(z); putint(w);
        return 0;
    }
    """)


def test_byte_and_word_mixing() -> None:
    run_minc_all_levels("""
    char bytes[32];
    int words[8];
    int main() {
        for (int i = 0; i < 32; i++) { bytes[i] = i * 37; }
        for (int i = 0; i < 8; i++) {
            words[i] = (bytes[4 * i] << 8) | bytes[4 * i + 1];
        }
        int s = 0;
        for (int i = 0; i < 8; i++) { s ^= words[i]; }
        putint(s);
        return 0;
    }
    """)


def test_o0_vs_o3_memory_traffic_contrast() -> None:
    """The O0/O3 contrast the study depends on: O0 must execute many more
    instructions (stack-homed locals) than O3 for the same semantics."""
    source = """
    int main() {
        int s = 0;
        for (int i = 0; i < 64; i++) { s += i * 5 + 2; }
        putint(s);
        return 0;
    }
    """
    o0 = run_minc(source, "O0")
    o3 = run_minc(source, "O3")
    assert o0.output.data == o3.output.data
    assert o0.instructions > 2 * o3.instructions
    assert o0.mix["mem"] > 3 * o3.mix["mem"]
