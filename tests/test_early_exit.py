"""Early trial termination: digests, golden traces, pruning.

Covers the three termination tiers (static pruning, unchanged-flip
splice, digest reconvergence) plus the machinery they rest on:

- the deterministic digest primitives (``repro.digest``),
- halted-simulator idempotence (``run``/``run_until`` after exit),
- digest-accumulator survival across ``save_state``/``load_state``,
- golden-trace recording in :func:`run_golden_auto`,
- bit-exact outcome equivalence between early-exit and full campaigns
  on both core models, which is the contract the whole optimization
  stands on (see DESIGN.md).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import ARMLET32, ARMLET64, compile_source
from repro.digest import M64, fold, mix64, opt_int
from repro.gefin import FaultSpec, inject_one, run_golden_auto
from repro.gefin.campaign import run_campaign
from repro.gefin.outcomes import Outcome
from repro.gefin.parallel import Shard, run_shard
from repro.gefin.prune import StaticPruner
from repro.microarch import CORTEX_A15, CORTEX_A72, Simulator

SOURCE = """
int main() {
    int a[16];
    for (int i = 0; i < 16; i++) { a[i] = i * 3 + 1; }
    int s = 0;
    for (int i = 0; i < 16; i++) { s += a[i]; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program32():
    return compile_source(SOURCE, "O1", ARMLET32, name="early-exit-32")


@pytest.fixture(scope="module")
def program64():
    return compile_source(SOURCE, "O1", ARMLET64, name="early-exit-64")


@pytest.fixture(scope="module")
def golden32(program32):
    return run_golden_auto(program32, CORTEX_A15)


@pytest.fixture(scope="module")
def golden64(program64):
    return run_golden_auto(program64, CORTEX_A72)


# --------------------------------------------------- digest primitives


class TestDigestPrimitives:
    def test_mix64_deterministic_and_bounded(self):
        assert mix64(3, 17) == mix64(3, 17)
        assert 0 <= mix64(3, 17) <= M64
        assert mix64(3, 17) != mix64(4, 17)
        assert mix64(3, 17) != mix64(3, 18)

    def test_mix64_xor_accumulator_cancels(self):
        # remove-by-XOR then add-by-XOR restores the accumulator
        acc = mix64(0, 5) ^ mix64(1, 9)
        acc ^= mix64(1, 9)   # remove
        acc ^= mix64(1, 11)  # mutate
        acc ^= mix64(1, 11)
        acc ^= mix64(1, 9)
        assert acc == mix64(0, 5) ^ mix64(1, 9)

    def test_fold_order_sensitive(self):
        assert fold(0, [1, 2]) != fold(0, [2, 1])
        assert fold(0, []) == fold(0, [])
        assert fold(0, [7]) != fold(1, [7])

    def test_fold_keeps_high_bits(self):
        # Values wider than 64 bits must not silently collapse: a
        # queue's packed valid mask can exceed one machine word.
        assert fold(0, [1 << 64]) != fold(0, [0])
        assert fold(0, [(1 << 200) | 5]) != fold(0, [5])

    def test_opt_int_collision_free(self):
        encoded = {opt_int(v) for v in (None, 0, 1, 2, 3)}
        assert len(encoded) == 5

    def test_pending_exceptions_pickle_exactly(self):
        # Snapshots pickle uops with pending exceptions; a lossy round
        # trip would shift the post-restore digest stream (and, worse,
        # reclassify a system crash as a process crash).
        import pickle

        from repro.errors import SimCrashError, SimTimeoutError
        for exc in (SimCrashError("jump outside text", kind="system"),
                    SimCrashError("bad store"),
                    SimTimeoutError(5000)):
            clone = pickle.loads(pickle.dumps(exc))
            assert type(clone) is type(exc)
            assert str(clone) == str(exc)
            assert getattr(clone, "kind", None) == \
                getattr(exc, "kind", None)


# ------------------------------------------- satellite 1: halted runs


class TestHaltedSimulator:
    def test_run_until_after_completion_is_noop(self, program32):
        sim = Simulator(program32, CORTEX_A15)
        result = sim.run(1_000_000)
        assert sim.finished
        end_cycle = sim.cycle
        assert sim.run_until(end_cycle + 500) is False
        assert sim.cycle == end_cycle

        again = sim.run(1_000_000)
        assert sim.cycle == end_cycle
        assert again.cycles == result.cycles
        assert again.output.data == result.output.data
        assert again.exit_code == result.exit_code


# ------------------------------------- satellite 2: digest round-trip


class TestDigestStateRoundTrip:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=1, max_value=2_000),
           st.integers(min_value=1, max_value=40))
    def test_load_save_preserves_digest_stream(self, program32, golden32,
                                               mid, extra):
        """load(save(s)) yields identical digests now and after stepping.

        The digest accumulators (dirty-page RAM digest, cache line XOR
        accumulators, PRF accumulator) are incremental state: if
        ``load_state`` failed to rebuild any of them, the restored
        simulator would report a different digest stream and every
        convergence comparison after a warm start would be garbage.
        """
        mid = min(mid, golden32.cycles - 1)
        sim = Simulator(program32, CORTEX_A15)
        assert sim.run_until(mid)
        state = sim.save_state()

        twin = Simulator(program32, CORTEX_A15)
        twin.load_state(state)
        assert twin.digest_pair() == sim.digest_pair()

        for _ in range(min(extra, golden32.cycles - 1 - mid)):
            sim.step()
            twin.step()
            assert twin.digest_pair() == sim.digest_pair()

    def test_save_state_includes_digest_section(self, program32):
        import pickle
        sim = Simulator(program32, CORTEX_A15)
        sim.run_until(10)
        assert "memory" in pickle.loads(sim.save_state())["digest"]


# ------------------------------------------------ golden trace record


class TestGoldenTrace:
    def test_trace_spans_run_minus_final_cycle(self, golden32):
        # The cycle the program exits on never reaches the digest
        # recorder (ProgramExit unwinds first), so the trace holds
        # exactly cycles-1 entries: index c-1 = state after cycle c.
        trace = golden32.trace
        assert trace is not None
        assert len(trace) == golden32.cycles - 1
        assert len(trace.full) == len(trace.quick) == len(trace)
        assert len(trace.rob) == len(trace)

    def test_trace_matches_live_replay(self, program32, golden32):
        trace = golden32.trace
        sim = Simulator(program32, CORTEX_A15)
        rob = sim.core.rob
        for c in range(1, len(trace) + 1):
            sim.step()
            quick, full = sim.digest_pair()
            assert quick == trace.quick[c - 1], f"quick digest, cycle {c}"
            assert full == trace.full[c - 1], f"full digest, cycle {c}"
            assert trace.rob[c - 1] == (rob.head << 16) | rob.count
            assert trace.iq[c - 1] == sim.core.iq.valid_mask
            assert trace.lq[c - 1] == sim.core.lq.valid_mask


# ------------------------------------------------------ static pruner


class TestStaticPruner:
    @pytest.fixture(scope="class")
    def pruner(self, program32, golden32):
        return StaticPruner(program32, CORTEX_A15, golden32)

    def test_final_and_past_end_cycles_not_pruned(self, pruner, golden32):
        for cycle in (golden32.cycles, golden32.cycles + 7):
            spec = FaultSpec(field="rob.flags", cycle=cycle, bit_index=0)
            assert pruner.prune(spec) is None

    def test_live_slot_not_pruned(self, pruner, golden32):
        trace = golden32.trace
        cycle = next(c for c in range(1, len(trace) + 1)
                     if trace.rob[c - 1] & 0xFFFF)
        head = trace.rob[cycle - 1] >> 16
        from repro.microarch.queues import NUM_FLAGS
        spec = FaultSpec(field="rob.flags", cycle=cycle,
                         bit_index=head * NUM_FLAGS)
        assert pruner.prune(spec) is None

    def test_free_slot_pruned_and_matches_full_run(
            self, pruner, program32, golden32):
        # Cycle 1: nothing has dispatched into the load queue yet.
        trace = golden32.trace
        cycle = next(c for c in range(1, len(trace) + 1)
                     if trace.lq[c - 1] == 0)
        spec = FaultSpec(field="lq", cycle=cycle, bit_index=0)
        pruned = pruner.prune(spec)
        assert pruned is not None
        assert pruned.early == "static"
        full = inject_one(program32, CORTEX_A15, golden32, spec,
                          early_exit=False)
        assert (pruned.outcome, pruned.weight, pruned.bit_index) == \
            (full.outcome, full.weight, full.bit_index)
        assert pruned.outcome is Outcome.MASKED

    def test_occupancy_zero_live_replicated(
            self, pruner, program32, golden32):
        trace = golden32.trace
        cycle = next(c for c in range(1, len(trace) + 1)
                     if trace.lq[c - 1] == 0)
        spec = FaultSpec(field="lq", cycle=cycle, mode="occupancy")
        pruned = pruner.prune(spec)
        assert pruned is not None
        assert (pruned.outcome, pruned.weight, pruned.bit_index) == \
            (Outcome.MASKED, 0.0, None)
        full = inject_one(program32, CORTEX_A15, golden32, spec,
                          early_exit=False)
        assert (full.outcome, full.weight, full.bit_index) == \
            (Outcome.MASKED, 0.0, None)

    def test_occupied_queue_occupancy_not_pruned(self, pruner, golden32):
        trace = golden32.trace
        cycle = next(c for c in range(1, len(trace) + 1)
                     if trace.lq[c - 1] != 0)
        spec = FaultSpec(field="lq", cycle=cycle, mode="occupancy")
        assert pruner.prune(spec) is None


# --------------------------- satellite 3: outcome equivalence, 2 cores


CASES = [
    ("a15", CORTEX_A15, "rob.flags", "uniform"),
    ("a15", CORTEX_A15, "lq", "uniform"),
    ("a15", CORTEX_A15, "prf", "occupancy"),
    ("a72", CORTEX_A72, "rob.pc", "uniform"),
    ("a72", CORTEX_A72, "iq.src", "occupancy"),
]


class TestOutcomeEquivalence:
    @pytest.mark.parametrize("core_key,config,field,mode",
                             CASES, ids=[f"{c[0]}-{c[2]}-{c[3]}"
                                         for c in CASES])
    def test_early_exit_matches_full_run(self, core_key, config, field,
                                         mode, program32, program64,
                                         golden32, golden64):
        """Every sampled trial classifies identically with and without
        early exit -- same outcome, same weight, same flipped bit."""
        program = program32 if core_key == "a15" else program64
        golden = golden32 if core_key == "a15" else golden64
        shard = Shard(0, 0, 8)
        fast = run_shard(program, config, golden, field, shard, seed=11,
                         mode=mode, early_exit=True)
        slow = run_shard(program, config, golden, field, shard, seed=11,
                         mode=mode, early_exit=False)
        assert len(fast) == len(slow) == 8
        for quick, full in zip(fast, slow):
            assert quick.spec == full.spec
            assert (quick.outcome, quick.weight, quick.bit_index) == \
                (full.outcome, full.weight, full.bit_index)
        assert all(r.early == "" for r in slow)

    def test_horizon_zero_disables_convergence_only(
            self, program32, golden32):
        """convergence_horizon=0 forces full runs but never changes the
        classification of a trial that would have converged."""
        # Tier-3 bit-level pruning now classifies most uniform PRF
        # flips before simulation; this (seed, n) leaves several
        # trials that reach the digest-reconvergence path.
        shard = Shard(0, 0, 60)
        fast = run_shard(program32, CORTEX_A15, golden32, "prf", shard,
                         seed=5, mode="uniform", early_exit=True)
        converged = [r for r in fast if r.early == "converged"]
        assert converged, "expected at least one digest-converged trial"
        for r in converged:
            assert r.window >= 1
            full = inject_one(program32, CORTEX_A15, golden32, r.spec,
                              early_exit=True, convergence_horizon=0)
            assert full.early == ""
            assert (full.outcome, full.weight, full.bit_index) == \
                (r.outcome, r.weight, r.bit_index)


# --------------------------------- satellite 6: campaign pruning stats


class TestCampaignPruningStats:
    def test_tiers_partition_the_sample(self, program32, golden32):
        result = run_campaign(program32, CORTEX_A15, "rob.flags", 12,
                              seed=3, mode="uniform", golden=golden32)
        tiers = result.pruning
        assert set(tiers) == {"static", "unchanged", "converged", "full",
                              "mean_window"}
        assert (tiers["static"] + tiers["unchanged"]
                + tiers["converged"] + tiers["full"]) == 12
        assert tiers["mean_window"] >= 0.0

    def test_disabled_early_exit_runs_everything_full(
            self, program32, golden32):
        fast = run_campaign(program32, CORTEX_A15, "rob.flags", 12,
                            seed=3, mode="uniform", golden=golden32)
        slow = run_campaign(program32, CORTEX_A15, "rob.flags", 12,
                            seed=3, mode="uniform", golden=golden32,
                            early_exit=False)
        assert slow.pruning["full"] == 12
        assert slow.pruning["static"] == 0
        # pruning is bookkeeping, not outcome: the results are equal
        # (CampaignResult.pruning carries compare=False) and the counts
        # agree bit-for-bit.
        assert fast == slow
        assert fast.counts == slow.counts
        assert fast.avf_by_class == slow.avf_by_class

    def test_round_trip_preserves_pruning(self, program32, golden32):
        result = run_campaign(program32, CORTEX_A15, "rob.flags", 6,
                              seed=9, mode="uniform", golden=golden32)
        from repro.gefin.campaign import CampaignResult
        clone = CampaignResult.from_dict(result.to_dict())
        assert clone.pruning == result.pruning
        assert clone == result
