"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.compiler import ARMLET32, ARMLET64, Target, compile_source
from repro.kernel import MainMemory, load, run_functional
from repro.microarch import CORTEX_A15, CORTEX_A72, Simulator


def run_minc(source: str, opt_level: str = "O0", target: Target = ARMLET32,
             max_instructions: int = 20_000_000):
    """Compile and run MinC source on the functional reference CPU."""
    program = compile_source(source, opt_level, target)
    memory = MainMemory(4 * 1024 * 1024)
    image = load(program, memory)
    return run_functional(image, memory, max_instructions)


def run_minc_all_levels(source: str, target: Target = ARMLET32):
    """Run source at every optimization level; assert outputs agree.

    Returns the common output bytes.
    """
    results = {
        level: run_minc(source, level, target)
        for level in ("O0", "O1", "O2", "O3")
    }
    outputs = {level: r.output.data for level, r in results.items()}
    assert len(set(outputs.values())) == 1, outputs
    exit_codes = {r.exit_code for r in results.values()}
    assert exit_codes == {0}, exit_codes
    return outputs["O0"]


def run_ooo(source: str, opt_level: str = "O1", core=CORTEX_A15,
            target: Target = ARMLET32, max_cycles: int = 5_000_000):
    """Compile and run MinC source on the out-of-order simulator."""
    program = compile_source(source, opt_level, target)
    sim = Simulator(program, core)
    return sim.run(max_cycles)


@pytest.fixture(scope="session")
def armlet32() -> Target:
    return ARMLET32


@pytest.fixture(scope="session")
def armlet64() -> Target:
    return ARMLET64


@pytest.fixture(scope="session")
def cortex_a15():
    return CORTEX_A15


@pytest.fixture(scope="session")
def cortex_a72():
    return CORTEX_A72


SUM_LOOP = """
int main() {
    int s = 0;
    for (int i = 0; i < 10; i++) { s += i * i; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="session")
def sum_loop_source() -> str:
    return SUM_LOOP
