"""AVF analytics: weighted AVF (eq. 1), FIT (eq. 2), FPE (eq. 3), ECC."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.avf import (
    ECC_L1D_L2,
    ECC_L2_ONLY,
    ECC_NONE,
    BenchmarkAVF,
    cpu_fit,
    cpu_fit_by_class,
    execution_hours,
    failures_per_execution,
    field_bit_counts,
    normalized_fpe,
    structure_fit,
    weighted_avf,
    weighted_class_avf,
)
from repro.microarch import ALL_FIELDS, CORTEX_A15, CORTEX_A72


class TestWeightedAVF:
    def test_equation_one(self) -> None:
        samples = [
            BenchmarkAVF("a", 0.10, 100.0),
            BenchmarkAVF("b", 0.30, 300.0),
        ]
        # (0.1*100 + 0.3*300) / 400 = 0.25
        assert weighted_avf(samples) == pytest.approx(0.25)

    def test_short_benchmarks_matter_less(self) -> None:
        long_low = [BenchmarkAVF("long", 0.0, 1000.0),
                    BenchmarkAVF("short", 1.0, 1.0)]
        assert weighted_avf(long_low) < 0.01

    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=1),
                  st.floats(min_value=0.1, max_value=1e6)),
        min_size=1, max_size=10))
    def test_bounded_by_extremes(self, rows) -> None:
        samples = [BenchmarkAVF(f"b{i}", avf, t)
                   for i, (avf, t) in enumerate(rows)]
        value = weighted_avf(samples)
        avfs = [s.avf for s in samples]
        assert min(avfs) - 1e-12 <= value <= max(avfs) + 1e-12

    def test_class_weighting_sums_to_total(self) -> None:
        samples = {
            "a": ({"sdc": 0.1, "assert": 0.2}, 100.0),
            "b": ({"sdc": 0.3}, 300.0),
        }
        by_class = weighted_class_avf(samples)
        totals = [BenchmarkAVF("a", 0.3, 100.0),
                  BenchmarkAVF("b", 0.3, 300.0)]
        assert sum(by_class.values()) == pytest.approx(
            weighted_avf(totals))

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            weighted_avf([])
        with pytest.raises(ValueError):
            BenchmarkAVF("x", 1.5, 10.0)
        with pytest.raises(ValueError):
            BenchmarkAVF("x", 0.5, 0.0)


class TestFIT:
    def test_equation_two(self) -> None:
        bits = field_bit_counts(CORTEX_A15)["prf"]
        assert bits == 128 * 32
        fit = structure_fit(CORTEX_A15, "prf", 0.25)
        assert fit == pytest.approx(2.59e-5 * 128 * 32 * 0.25)

    def test_bit_counts_cover_all_fields(self) -> None:
        for config in (CORTEX_A15, CORTEX_A72):
            counts = field_bit_counts(config)
            assert set(counts) == set(ALL_FIELDS)
            assert all(v > 0 for v in counts.values())

    def test_cache_dominates_bit_budget(self) -> None:
        counts = field_bit_counts(CORTEX_A15)
        cache_bits = sum(v for k, v in counts.items()
                         if k.startswith(("l1", "l2")))
        # paper: caches are ~90-95% of the memory cells
        assert cache_bits / sum(counts.values()) > 0.9

    def test_cpu_fit_additive(self) -> None:
        avfs = {field: 0.1 for field in ALL_FIELDS}
        total = cpu_fit(CORTEX_A15, avfs)
        assert total == pytest.approx(sum(
            structure_fit(CORTEX_A15, f, 0.1) for f in ALL_FIELDS))

    def test_ecc_removes_protected_contribution(self) -> None:
        avfs = {field: 0.2 for field in ALL_FIELDS}
        no_ecc = cpu_fit(CORTEX_A15, avfs, ECC_NONE)
        l2_only = cpu_fit(CORTEX_A15, avfs, ECC_L2_ONLY)
        full = cpu_fit(CORTEX_A15, avfs, ECC_L1D_L2)
        assert no_ecc > l2_only > full
        l2_bits = sum(field_bit_counts(CORTEX_A15)[f]
                      for f in ("l2.data", "l2.tag"))
        assert no_ecc - l2_only == pytest.approx(
            2.59e-5 * l2_bits * 0.2)

    def test_fit_by_class_sums_to_total(self) -> None:
        field_class = {
            field: {"sdc": 0.05, "assert": 0.02}
            for field in ALL_FIELDS
        }
        by_class = cpu_fit_by_class(CORTEX_A15, field_class)
        total = cpu_fit(CORTEX_A15, {f: 0.07 for f in ALL_FIELDS})
        assert sum(by_class.values()) == pytest.approx(total)

    def test_a72_lower_raw_fit(self) -> None:
        avfs = {field: 0.1 for field in ALL_FIELDS}
        # per *bit* the A72's newer process is less fault-prone even
        # though it has more bits overall
        a15 = cpu_fit(CORTEX_A15, avfs)
        bits_a15 = sum(field_bit_counts(CORTEX_A15).values())
        bits_a72 = sum(field_bit_counts(CORTEX_A72).values())
        a72 = cpu_fit(CORTEX_A72, avfs)
        assert a72 / bits_a72 < a15 / bits_a15


class TestFPE:
    def test_equation_three(self) -> None:
        # FIT x hours / 1e9
        fpe = failures_per_execution(fit=1000.0, cycles=3_600 * 10 ** 9,
                                     clock_hz=1e9)
        assert fpe == pytest.approx(1000.0 * 1.0 / 1e9)

    def test_execution_hours(self) -> None:
        assert execution_hours(3.6e12, 1e9) == pytest.approx(1.0)

    def test_normalization(self) -> None:
        fits = {"O0": 100.0, "O2": 150.0}
        cycles = {"O0": 1000, "O2": 400}
        norm = normalized_fpe(fits, cycles)
        assert norm["O0"] == pytest.approx(1.0)
        # O2: 1.5x FIT but 2.5x faster => wins
        assert norm["O2"] == pytest.approx(150 * 400 / (100 * 1000))
        assert norm["O2"] < 1.0

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            normalized_fpe({"O1": 1.0}, {"O1": 10})
        with pytest.raises(ValueError):
            execution_hours(-1)
