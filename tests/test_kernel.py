"""Kernel substrate: system map crash semantics, RAM, loader, syscalls."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, SimCrashError
from repro.isa import Instruction, Opcode, Program
from repro.kernel import (
    MainMemory,
    OutputCapture,
    ProgramExit,
    SyscallHandler,
    SystemMap,
    load,
)
from repro.kernel.functional import DirectDataPort
from repro.kernel.syscalls import KERNEL_MAGIC


@pytest.fixture
def system_map() -> SystemMap:
    return SystemMap()


class TestSystemMap:
    def test_regions(self, system_map: SystemMap) -> None:
        assert system_map.region_of(0) == "null"
        assert system_map.region_of(system_map.text_base) == "text"
        assert system_map.region_of(system_map.kernel_base) == "kernel"
        assert system_map.region_of(system_map.data_base) == "user"
        assert system_map.region_of(system_map.stack_top) == "user"
        assert system_map.region_of(system_map.ram_size) == "unmapped"
        assert system_map.region_of(-1) == "unmapped"

    def test_null_deref_is_segfault(self, system_map: SystemMap) -> None:
        with pytest.raises(SimCrashError, match="segmentation fault"):
            system_map.check_data_access(0, 4, store=False)

    def test_misaligned_access(self, system_map: SystemMap) -> None:
        with pytest.raises(SimCrashError, match="misaligned"):
            system_map.check_data_access(system_map.data_base + 2, 4,
                                         store=False)

    def test_store_to_text_crashes(self, system_map: SystemMap) -> None:
        with pytest.raises(SimCrashError, match="read-only text"):
            system_map.check_data_access(system_map.text_base, 4,
                                         store=True)
        # loads from text are fine (constant pools)
        system_map.check_data_access(system_map.text_base, 4, store=False)

    def test_kernel_memory_protected(self, system_map: SystemMap) -> None:
        addr = system_map.kernel_base
        with pytest.raises(SimCrashError, match="kernel memory"):
            system_map.check_data_access(addr, 4, store=False)
        system_map.check_data_access(addr, 4, store=False, mode="kernel")

    def test_bus_error_past_ram(self, system_map: SystemMap) -> None:
        with pytest.raises(SimCrashError, match="bus error"):
            system_map.check_data_access(system_map.ram_size, 4,
                                         store=False)

    def test_fetch_checks(self, system_map: SystemMap) -> None:
        system_map.check_fetch(system_map.text_base, 8)
        with pytest.raises(SimCrashError, match="misaligned fetch"):
            system_map.check_fetch(system_map.text_base + 2, 8)
        with pytest.raises(SimCrashError, match="outside text"):
            system_map.check_fetch(system_map.text_base + 8, 8)
        with pytest.raises(SimCrashError, match="outside text"):
            system_map.check_fetch(0, 8)

    def test_bad_layout_rejected(self) -> None:
        with pytest.raises(ValueError):
            SystemMap(text_base=0x2000, kernel_base=0x1000)


class TestMainMemory:
    def test_word_roundtrip(self) -> None:
        memory = MainMemory(4096)
        memory.write_word(16, 0xDEADBEEF, 4)
        assert memory.read_word(16, 4) == 0xDEADBEEF
        assert memory.read_bytes(16, 4) == b"\xef\xbe\xad\xde"

    def test_bounds(self) -> None:
        memory = MainMemory(4096)
        with pytest.raises(SimCrashError, match="bus error"):
            memory.read_word(4096, 4)
        with pytest.raises(SimCrashError, match="bus error"):
            memory.write_word(-4, 0, 4)

    def test_snapshot_restore(self) -> None:
        memory = MainMemory(4096)
        memory.write_word(0, 123, 4)
        image = memory.snapshot()
        memory.write_word(0, 456, 4)
        memory.restore(image)
        assert memory.read_word(0, 4) == 123

    def test_size_validation(self) -> None:
        with pytest.raises(ValueError):
            MainMemory(1000)


def _tiny_program(xlen: int = 32) -> Program:
    return Program(text=[Instruction(Opcode.SVC, imm=0)], xlen=xlen)


class TestLoader:
    def test_load_places_segments(self) -> None:
        program = _tiny_program()
        program.data.extend(b"\x01\x02\x03\x04")
        memory = MainMemory(4 * 1024 * 1024)
        image = load(program, memory)
        sm = image.system_map
        assert memory.read_word(sm.text_base, 4) == \
            program.encoded_text()[0]
        assert memory.read_bytes(sm.data_base, 4) == b"\x01\x02\x03\x04"
        assert memory.read_word(sm.kernel_base, 4) == KERNEL_MAGIC
        assert image.entry_pc == sm.text_base

    def test_initial_registers(self) -> None:
        from repro.isa import registers

        memory = MainMemory(4 * 1024 * 1024)
        image = load(_tiny_program(), memory)
        assert registers.SP in image.initial_regs
        assert image.initial_regs[registers.GP] == \
            image.system_map.data_base

    def test_oversized_text_rejected(self) -> None:
        program = Program(
            text=[Instruction(Opcode.NOP)] * (0x80000 // 4), xlen=32)
        memory = MainMemory(4 * 1024 * 1024)
        with pytest.raises(ReproError, match="text segment too large"):
            load(program, memory)


class TestSyscalls:
    def _handler(self, memory: MainMemory, sm: SystemMap):
        handler = SyscallHandler(sm, 32)
        port = DirectDataPort(memory, sm, 4)
        memory.write_word(sm.kernel_base, KERNEL_MAGIC, 4)
        memory.write_word(sm.kernel_base + 4, 0, 4)
        memory.write_word(sm.kernel_base + 8, 0, 4)
        return handler, port

    def test_putint_and_exit(self) -> None:
        sm = SystemMap()
        memory = MainMemory(sm.ram_size)
        handler, port = self._handler(memory, sm)
        handler.handle(1, (-7) & 0xFFFF_FFFF, port)
        assert handler.output.data == b"-7\n"
        with pytest.raises(ProgramExit) as info:
            handler.handle(0, 3, port)
        assert info.value.code == 3
        assert handler.output.exit_code == 3

    def test_puthex_putchar(self) -> None:
        sm = SystemMap()
        memory = MainMemory(sm.ram_size)
        handler, port = self._handler(memory, sm)
        handler.handle(3, 0xBEEF, port)
        handler.handle(2, ord("A"), port)
        assert handler.output.data == b"beef\nA"

    def test_unknown_syscall_crashes(self) -> None:
        sm = SystemMap()
        memory = MainMemory(sm.ram_size)
        handler, port = self._handler(memory, sm)
        with pytest.raises(SimCrashError, match="bad syscall"):
            handler.handle(99, 0, port)

    def test_corrupted_canary_is_kernel_panic(self) -> None:
        sm = SystemMap()
        memory = MainMemory(sm.ram_size)
        handler, port = self._handler(memory, sm)
        memory.write_word(sm.kernel_base, KERNEL_MAGIC ^ 1, 4)
        with pytest.raises(SimCrashError) as info:
            handler.handle(1, 5, port)
        assert info.value.kind == "system"

    def test_corrupted_ledger_is_kernel_panic(self) -> None:
        sm = SystemMap()
        memory = MainMemory(sm.ram_size)
        handler, port = self._handler(memory, sm)
        handler.handle(1, 5, port)
        memory.write_word(sm.kernel_base + 8, 77, 4)
        with pytest.raises(SimCrashError) as info:
            handler.handle(1, 6, port)
        assert info.value.kind == "system"

    def test_syscall_counter_increments(self) -> None:
        sm = SystemMap()
        memory = MainMemory(sm.ram_size)
        handler, port = self._handler(memory, sm)
        handler.handle(1, 1, port)
        handler.handle(1, 2, port)
        assert memory.read_word(sm.kernel_base + 4, 4) == 2


def test_output_capture_equality() -> None:
    a, b = OutputCapture(), OutputCapture()
    a.append_int(5)
    b.append_int(5)
    assert a == b
    b.append_byte(0)
    assert a != b
