"""Selective-protection planning over measured AVFs."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.avf import (
    fit_contributions,
    plan_protection,
    structure_fit,
)
from repro.microarch import ALL_FIELDS, CORTEX_A15


def _avfs(value: float = 0.1) -> dict[str, float]:
    return {field: value for field in ALL_FIELDS}


def test_contributions_sorted_descending() -> None:
    contributions = fit_contributions(CORTEX_A15, _avfs())
    values = list(contributions.values())
    assert values == sorted(values, reverse=True)
    assert set(contributions) == set(ALL_FIELDS)
    # equal AVFs: the biggest array contributes the most
    assert next(iter(contributions)) == "l2.data"


def test_full_reduction_protects_everything_contributing() -> None:
    plan = plan_protection(CORTEX_A15, _avfs(), target_reduction=1.0)
    assert plan.residual_fit == pytest.approx(0.0)
    assert plan.fit_reduction == pytest.approx(1.0)
    assert set(plan.protected) == set(ALL_FIELDS)


def test_partial_target_reached_minimally() -> None:
    avfs = _avfs(0.0)
    avfs["l1d.data"] = 0.5   # dominant contributor
    avfs["prf"] = 0.5
    plan = plan_protection(CORTEX_A15, avfs, target_reduction=0.5)
    assert plan.fit_reduction >= 0.5
    # only contributing fields get protected
    assert set(plan.protected) <= {"l1d.data", "prf"}


def test_default_costs_rank_by_avf_density() -> None:
    """With cost = bit count, FIT-per-cost reduces to raw_fit x AVF, so
    the densest-vulnerability field is protected first regardless of
    its size."""
    avfs = _avfs(0.0)
    avfs["prf"] = 0.6
    avfs["l1d.data"] = 0.4
    plan = plan_protection(CORTEX_A15, avfs, target_reduction=0.01)
    assert plan.protected[0] == "prf"


def test_cost_aware_choice() -> None:
    """Explicit costs redirect the greedy pick toward cheap fields."""
    avfs = _avfs(0.0)
    avfs["prf"] = 0.4
    avfs["l1d.data"] = 0.4
    costs = {field: 1000 for field in ALL_FIELDS}
    costs["prf"] = 10          # prf is cheap to protect
    plan = plan_protection(CORTEX_A15, avfs, target_reduction=0.01,
                           costs=costs)
    assert plan.protected[0] == "prf"


def test_zero_baseline() -> None:
    plan = plan_protection(CORTEX_A15, _avfs(0.0), target_reduction=0.9)
    assert plan.protected == ()
    assert plan.baseline_fit == 0.0


def test_validation() -> None:
    with pytest.raises(ValueError):
        plan_protection(CORTEX_A15, _avfs(), target_reduction=0.0)
    with pytest.raises(ValueError):
        plan_protection(CORTEX_A15, _avfs(), target_reduction=1.5)


@given(st.dictionaries(st.sampled_from(ALL_FIELDS),
                       st.floats(min_value=0, max_value=1),
                       min_size=1))
def test_residual_plus_removed_equals_baseline(avfs) -> None:
    plan = plan_protection(CORTEX_A15, avfs, target_reduction=0.7)
    removed = sum(structure_fit(CORTEX_A15, f, avfs[f])
                  for f in plan.protected)
    assert plan.residual_fit + removed == pytest.approx(plan.baseline_fit)
    assert plan.residual_fit >= -1e-12
