"""Observability layer units: metrics registry, trail events, Chrome
exporter, JSONL sinks, structured logging, and progress rendering."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import (
    EVENT_COMMIT_DIVERGENCE,
    EVENT_EXCEPTION,
    EVENT_INJECTED,
    EVENT_MASKED,
    EVENT_QUARANTINED,
    EVENT_REACHED_OUTPUT,
    NULL_METRICS,
    TERMINAL_KINDS,
    ChromeTrace,
    Counter,
    Gauge,
    Histogram,
    JsonlSink,
    MetricsRegistry,
    ProgressRenderer,
    StructuredLogger,
    Timer,
    TraceEvent,
    terminal_kinds,
    trail_is_consistent,
)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self) -> None:
        registry = MetricsRegistry()
        registry.counter("committed").inc()
        registry.counter("committed").inc(4)
        registry.gauge("ipc").set(1.25)
        hist = registry.histogram("rob.occupancy")
        for value in (4, 10, 7):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["committed"] == {"type": "counter", "value": 5}
        assert snap["ipc"] == {"type": "gauge", "value": 1.25}
        assert snap["rob.occupancy"]["count"] == 3
        assert snap["rob.occupancy"]["min"] == 4
        assert snap["rob.occupancy"]["max"] == 10
        assert snap["rob.occupancy"]["mean"] == pytest.approx(7.0)
        assert snap["rob.occupancy"]["last"] == 7

    def test_instruments_interned_by_name(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self) -> None:
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_snapshot_sorted(self) -> None:
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name)
        assert list(registry.snapshot()) == ["alpha", "mid", "zeta"]

    def test_timer_context_manager(self) -> None:
        ticks = iter([10.0, 10.5])
        timer = Timer("t", clock=lambda: next(ticks))
        with timer.time():
            pass
        snap = timer.snapshot()
        assert snap["type"] == "timer"
        assert snap["count"] == 1
        assert snap["sum"] == pytest.approx(0.5)

    def test_standalone_instruments(self) -> None:
        counter = Counter("c")
        counter.inc(2)
        assert counter.value == 2
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.value == 3.5
        hist = Histogram("h")
        assert hist.mean == 0.0

    def test_null_backend_absorbs_everything(self) -> None:
        assert NULL_METRICS.enabled is False
        assert MetricsRegistry().enabled is True
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(1.0)
        NULL_METRICS.histogram("z").observe(2.0)
        with NULL_METRICS.timer("t").time():
            pass
        assert NULL_METRICS.snapshot() == {}
        assert list(NULL_METRICS) == []
        # shared no-op instrument: no per-callsite allocation
        assert NULL_METRICS.counter("a") is NULL_METRICS.gauge("b")


class TestTrailEvents:
    def test_event_round_trip(self) -> None:
        event = TraceEvent(EVENT_INJECTED, 42, "prf bit 3")
        assert TraceEvent.from_dict(event.to_dict()) == event
        assert TraceEvent.from_dict({"kind": "masked", "cycle": 1}) == \
            TraceEvent("masked", 1, "")

    def test_terminal_kinds_by_outcome(self) -> None:
        assert terminal_kinds("masked") == {EVENT_MASKED}
        assert terminal_kinds("sdc") == {EVENT_REACHED_OUTPUT}
        for failure in ("timeout", "crash_process", "crash_system",
                        "assert"):
            assert terminal_kinds(failure) == {EVENT_EXCEPTION}

    def test_terminal_kinds_accepts_outcome_enum(self) -> None:
        from repro.gefin.outcomes import Outcome

        assert terminal_kinds(Outcome.MASKED) == {EVENT_MASKED}
        assert terminal_kinds(Outcome.SDC) == {EVENT_REACHED_OUTPUT}
        assert terminal_kinds(Outcome.INFRASTRUCTURE) == \
            {EVENT_QUARANTINED}
        assert TERMINAL_KINDS == {EVENT_MASKED, EVENT_REACHED_OUTPUT,
                                  EVENT_EXCEPTION, EVENT_QUARANTINED}

    def test_consistent_trail(self) -> None:
        trail = [TraceEvent(EVENT_INJECTED, 10),
                 TraceEvent(EVENT_COMMIT_DIVERGENCE, 15),
                 TraceEvent(EVENT_REACHED_OUTPUT, 90)]
        assert trail_is_consistent(trail, "sdc")
        assert not trail_is_consistent(trail, "masked")

    def test_inconsistent_shapes_rejected(self) -> None:
        injected = TraceEvent(EVENT_INJECTED, 5)
        masked = TraceEvent(EVENT_MASKED, 9)
        assert not trail_is_consistent(None, "masked")
        assert not trail_is_consistent([], "masked")
        # must open with the injection
        assert not trail_is_consistent([masked], "masked")
        # terminal kinds may only appear last
        assert not trail_is_consistent(
            [injected, masked, TraceEvent(EVENT_MASKED, 9)], "masked")
        # cycles must be non-decreasing
        assert not trail_is_consistent(
            [TraceEvent(EVENT_INJECTED, 10), TraceEvent(EVENT_MASKED, 4)],
            "masked")
        assert trail_is_consistent([injected, masked], "masked")


class TestChromeTrace:
    def test_counter_complete_instant_shapes(self) -> None:
        trace = ChromeTrace()
        trace.counter("occupancy", 32.0, {"rob": 10, "iq": 3})
        trace.complete("shard 0", ts=0.0, dur=125.0, tid=1,
                       args={"trials": 5})
        trace.instant("injected", 7.0, tid=2)
        phases = [event["ph"] for event in trace.events]
        assert phases == ["C", "X", "i"]
        counter, complete, instant = trace.events
        assert counter["args"] == {"rob": 10, "iq": 3}
        assert complete["dur"] == 125.0
        assert instant["s"] == "t"

    def test_metadata_and_serialization(self, tmp_path) -> None:
        trace = ChromeTrace()
        trace.process_name(1, "pipeline")
        trace.thread_name(2, 0, "worker 123")
        doc = trace.to_dict()
        assert doc["displayTimeUnit"] == "ms"
        assert all(event["ph"] == "M" for event in doc["traceEvents"])
        path = trace.write(tmp_path / "out.trace.json")
        loaded = json.loads(path.read_text())
        assert loaded == doc


class TestJsonlSink:
    def test_path_sink_lazy_truncating(self, tmp_path) -> None:
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # opened lazily on first emit
        with sink:
            sink.emit({"kind": "trial", "n": 1})
            sink.emit({"b": 2, "a": 1})
        lines = path.read_text().splitlines()
        assert json.loads(lines[0]) == {"kind": "trial", "n": 1}
        assert lines[1] == '{"a":1,"b":2}'  # compact, sorted keys
        with JsonlSink(path) as fresh:
            fresh.emit({"x": 0})
        assert len(path.read_text().splitlines()) == 1  # truncated

    def test_borrowed_stream_not_closed(self) -> None:
        stream = io.StringIO()
        with JsonlSink(stream) as sink:
            sink.emit({"kind": "campaign"})
        assert not stream.closed
        assert json.loads(stream.getvalue()) == {"kind": "campaign"}


class TestStructuredLogger:
    def test_logfmt_lines(self) -> None:
        stream = io.StringIO()
        log = StructuredLogger(stream=stream)
        log.info("golden run complete", cycles=1234, resumed=True)
        log.warning("slow shard", path="/tmp/a b.json")
        log.error("boom")
        lines = stream.getvalue().splitlines()
        assert lines[0] == "repro: golden run complete cycles=1234 " \
                           "resumed=true"
        assert lines[1] == 'repro: [warn] slow shard path="/tmp/a b.json"'
        assert lines[2] == "repro: [error] boom"

    def test_default_stream_is_current_stderr(self, capsys) -> None:
        StructuredLogger().info("note", n=1)
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == "repro: note n=1\n"


class _FakeStream(io.StringIO):
    def __init__(self, tty: bool) -> None:
        super().__init__()
        self._tty = tty

    def isatty(self) -> bool:
        return self._tty


class TestProgressRenderer:
    class _Clock:
        """Manually advanced monotonic clock."""

        def __init__(self) -> None:
            self.now = 0.0

        def __call__(self) -> float:
            return self.now

    def test_non_tty_rate_limited_newlines(self) -> None:
        stream = _FakeStream(tty=False)
        clock = self._Clock()
        progress = ProgressRenderer(10, stream=stream, min_interval=2.0,
                                    clock=clock)
        clock.now = 1.0
        progress.update(2)   # first emit always renders
        clock.now = 1.5
        progress.update(4)   # within min_interval, suppressed
        clock.now = 9.0
        progress.update(10)  # final state always renders
        progress.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("    2/10 injections")
        assert lines[1].startswith("   10/10 injections")
        assert "\r" not in stream.getvalue()

    def test_tty_rewrites_one_line(self) -> None:
        stream = _FakeStream(tty=True)
        clock = self._Clock()
        with ProgressRenderer(4, stream=stream, clock=clock) as progress:
            clock.now = 1.0
            progress.update(1)
            clock.now = 2.0
            progress.update(4)
        text = stream.getvalue()
        assert text.count("\r") >= 2  # in-place rewrites
        assert text.endswith("\n")    # close() terminates the line

    def test_close_idempotent(self) -> None:
        stream = _FakeStream(tty=False)
        clock = self._Clock()
        progress = ProgressRenderer(2, stream=stream, clock=clock)
        clock.now = 1.0
        progress.update(2)
        progress.close()
        progress.close()
        assert len(stream.getvalue().splitlines()) == 1
