"""GeFIN framework: outcome classification, statistics, injections,
campaigns, and result storage."""

from __future__ import annotations

import math

import pytest

from repro.compiler import ARMLET32, compile_source
from repro.errors import (
    SimAssertError,
    SimCrashError,
    SimTimeoutError,
)
from repro.gefin import (
    CampaignResult,
    FaultSpec,
    Outcome,
    ResultStore,
    classify_completion,
    classify_exception,
    derive_rng,
    error_margin,
    fault_population,
    inject_one,
    required_sample_size,
    result_key,
    run_campaign,
    run_golden,
    z_score,
)
from repro.microarch import CORTEX_A15

SOURCE = """
int data[48];
int main() {
    for (int i = 0; i < 48; i++) { data[i] = i * 11 % 31; }
    int s = 0;
    for (int i = 0; i < 48; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32, name="gefin-test")


@pytest.fixture(scope="module")
def golden(program):
    return run_golden(program, CORTEX_A15)


class TestOutcomes:
    def test_exception_mapping(self) -> None:
        assert classify_exception(SimCrashError("x")) is \
            Outcome.CRASH_PROCESS
        assert classify_exception(SimCrashError("x", kind="system")) is \
            Outcome.CRASH_SYSTEM
        assert classify_exception(SimAssertError("x")) is Outcome.ASSERT
        assert classify_exception(SimTimeoutError(5)) is Outcome.TIMEOUT

    def test_completion_classification(self, program, golden) -> None:
        from repro.microarch import Simulator

        result = Simulator(program, CORTEX_A15).run(golden.timeout_cycles)
        assert classify_completion(result, golden.output_data,
                                   golden.exit_code) is Outcome.MASKED
        assert classify_completion(result, b"other",
                                   golden.exit_code) is Outcome.SDC

    def test_masked_not_failure(self) -> None:
        assert not Outcome.MASKED.is_failure
        assert Outcome.SDC.is_failure


class TestSampling:
    def test_paper_setting(self) -> None:
        """2,000 faults => ~2.88% margin at 99% confidence (paper III-A)."""
        population = 10 ** 12
        margin = error_margin(population, 2000, confidence=0.99)
        assert margin == pytest.approx(0.0288, abs=0.0002)

    def test_inverse_consistency(self) -> None:
        population = 10 ** 9
        n = required_sample_size(population, 0.05, 0.99)
        achieved = error_margin(population, n, 0.99)
        assert achieved <= 0.05
        assert error_margin(population, n - 50, 0.99) > 0.049

    def test_z_scores(self) -> None:
        assert z_score(0.99) == pytest.approx(2.5758, abs=1e-3)
        assert z_score(0.95) == pytest.approx(1.96, abs=1e-3)
        # arbitrary level via scipy
        assert z_score(0.98) == pytest.approx(2.326, abs=1e-2)

    def test_full_census_has_no_error(self) -> None:
        assert error_margin(100, 100) == 0.0

    def test_population(self) -> None:
        assert fault_population(1000, 5000) == 5_000_000

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            required_sample_size(0, 0.05)
        with pytest.raises(ValueError):
            error_margin(100, 0)
        with pytest.raises(ValueError):
            z_score(1.5)


class TestGolden:
    def test_golden_run_properties(self, golden) -> None:
        assert golden.cycles > 0
        assert golden.exit_code == 0
        assert golden.output_data.endswith(b"\n")
        assert golden.timeout_cycles == 2 * golden.cycles

    def test_snapshots(self, program) -> None:
        golden = run_golden(program, CORTEX_A15, snapshot_every=500)
        assert len(golden.snapshots) >= 1
        assert all(cycle % 500 == 0 for cycle, _ in golden.snapshots)

    def test_nonzero_exit_rejected(self) -> None:
        bad = compile_source("int main() { return 3; }", "O0", ARMLET32)
        with pytest.raises(Exception, match="exited with 3"):
            run_golden(bad, CORTEX_A15)


class TestInjection:
    def test_known_bit_flip_reproducible(self, program, golden) -> None:
        spec = FaultSpec(field="prf", cycle=golden.cycles // 2,
                         bit_index=100, mode="uniform")
        first = inject_one(program, CORTEX_A15, golden, spec)
        second = inject_one(program, CORTEX_A15, golden, spec)
        assert first.outcome == second.outcome
        assert first.cycles == second.cycles

    def test_snapshot_acceleration_equivalent(self, program) -> None:
        plain = run_golden(program, CORTEX_A15)
        fast = run_golden(program, CORTEX_A15,
                          snapshot_every=max(200, plain.cycles // 4))
        spec = FaultSpec(field="rob.flags", cycle=plain.cycles * 3 // 4,
                         bit_index=7, mode="uniform")
        slow_result = inject_one(program, CORTEX_A15, plain, spec)
        fast_result = inject_one(program, CORTEX_A15, fast, spec)
        assert slow_result.outcome == fast_result.outcome
        assert slow_result.cycles == fast_result.cycles

    def test_occupancy_weight_bounds(self, program, golden) -> None:
        rng = derive_rng(1, "l1d.data", 0)
        spec = FaultSpec(field="l1d.data", cycle=golden.cycles // 2,
                         mode="occupancy")
        result = inject_one(program, CORTEX_A15, golden, spec, rng)
        assert 0.0 <= result.weight <= 1.0

    def test_bad_spec_rejected(self) -> None:
        with pytest.raises(ValueError):
            FaultSpec(field="prf", cycle=0)
        with pytest.raises(ValueError):
            FaultSpec(field="prf", cycle=1, mode="weird")


class TestCampaign:
    def test_reproducible(self, program, golden) -> None:
        a = run_campaign(program, CORTEX_A15, "rob.flags", n=6, seed=3,
                         golden=golden)
        b = run_campaign(program, CORTEX_A15, "rob.flags", n=6, seed=3,
                         golden=golden)
        assert a.counts == b.counts
        assert a.avf_by_class == b.avf_by_class

    def test_seed_changes_sample(self, program, golden) -> None:
        a = run_campaign(program, CORTEX_A15, "rob.flags", n=8, seed=1,
                         golden=golden, keep_results=True)
        b = run_campaign(program, CORTEX_A15, "rob.flags", n=8, seed=2,
                         golden=golden, keep_results=True)
        bits_a = [r.bit_index for r in a[1]]
        bits_b = [r.bit_index for r in b[1]]
        assert bits_a != bits_b

    def test_avf_is_sum_of_classes(self, program, golden) -> None:
        result = run_campaign(program, CORTEX_A15, "iq.src", n=10,
                              golden=golden)
        assert result.avf == pytest.approx(
            sum(result.avf_by_class.values()))
        assert 0.0 <= result.avf <= 1.0
        assert sum(result.counts.values()) == result.n == 10

    def test_uniform_mode_weights_are_one(self, program, golden) -> None:
        summary, results = run_campaign(
            program, CORTEX_A15, "rob.pc", n=5, golden=golden,
            mode="uniform", keep_results=True)
        assert all(r.weight == 1.0 for r in results)
        failures = sum(1 for r in results if r.failed)
        assert summary.avf == pytest.approx(failures / 5)

    def test_margin_decreases_with_n(self, program, golden) -> None:
        small = run_campaign(program, CORTEX_A15, "rob.pc", n=4,
                             golden=golden)
        assert small.margin(0.99) > 0
        assert small.margin(0.99) > error_margin(
            fault_population(small.bit_count, golden.cycles), 100)

    def test_serialization_roundtrip(self, program, golden) -> None:
        result = run_campaign(program, CORTEX_A15, "lq", n=4,
                              golden=golden)
        clone = CampaignResult.from_dict(result.to_dict())
        assert clone.avf == result.avf
        assert clone.counts == result.counts
        assert clone.margin() == result.margin()


class TestStorage:
    def test_store_roundtrip(self, tmp_path, program, golden) -> None:
        store = ResultStore(tmp_path)
        result = run_campaign(program, CORTEX_A15, "sq", n=3,
                              golden=golden)
        key = result_key("cortex-a15", "t", "O1", "sq", "micro", 3, 0,
                         "occupancy")
        assert store.load(key) is None
        store.save(key, result)
        assert key in store
        loaded = store.load(key)
        assert loaded is not None and loaded.avf == result.avf

    def test_extra_payloads(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        store.save_extra("golden__x", {"cycles": 123})
        assert store.load_extra("golden__x") == {"cycles": 123}
        assert store.load_extra("missing") is None

    def test_torn_file_is_cache_miss(self, tmp_path, program,
                                     golden) -> None:
        """A partial/corrupt JSON file (interrupted writer) must read as
        a miss -- and must not count as cached -- so it gets rerun."""
        store = ResultStore(tmp_path)
        key = result_key("cortex-a15", "t", "O1", "sq", "micro", 3, 0,
                         "occupancy")
        (tmp_path / f"{key}.json").write_text('{"field": "sq", "n"')
        assert store.load(key) is None
        assert key not in store
        assert store.load_extra(key) is None
        # a fresh save repairs the torn cell
        result = run_campaign(program, CORTEX_A15, "sq", n=3,
                              golden=golden)
        store.save(key, result)
        loaded = store.load(key)
        assert loaded is not None and loaded.counts == result.counts

    def test_wrong_shape_json_is_cache_miss(self, tmp_path) -> None:
        store = ResultStore(tmp_path)
        (tmp_path / "weird.json").write_text('[1, 2, 3]')
        assert store.load("weird") is None
        (tmp_path / "partial.json").write_text('{"field": "sq"}')
        assert store.load("partial") is None  # valid JSON, missing keys

    def test_atomic_writes_leave_no_temp_files(self, tmp_path, program,
                                               golden) -> None:
        """Temp names are per-process unique (no shared ``<key>.tmp``
        for two writers to interleave into) and always renamed away."""
        store = ResultStore(tmp_path)
        result = run_campaign(program, CORTEX_A15, "sq", n=3,
                              golden=golden)
        for index in range(3):
            store.save(f"k{index}", result)
            store.save_extra(f"extra{index}", {"cycles": index})
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []


def test_derive_rng_stable() -> None:
    a = derive_rng(7, "prf", 3).random()
    b = derive_rng(7, "prf", 3).random()
    c = derive_rng(7, "prf", 4).random()
    assert a == b != c
    assert not math.isnan(a)
