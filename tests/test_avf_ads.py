"""ADS metric (Jones et al. [11]): AVF-delay-square product."""

from __future__ import annotations

import pytest

from repro.avf import ads, ads_ranking, normalized_ads


def test_ads_formula() -> None:
    assert ads(0.5, 10.0) == pytest.approx(50.0)
    assert ads(0.0, 100.0) == 0.0


def test_ranking_prefers_fast_even_if_more_vulnerable() -> None:
    # 2x AVF but 3x faster wins under delay-squared weighting
    avfs = {"O0": 0.1, "O2": 0.2}
    cycles = {"O0": 3000, "O2": 1000}
    assert ads_ranking(avfs, cycles) == ["O2", "O0"]


def test_ranking_penalizes_slow_more_than_fpe_would() -> None:
    # equal AVF x delay product (same FPE), different delays:
    # ADS prefers the faster one strictly
    avfs = {"a": 0.1, "b": 0.2}
    cycles = {"a": 2000, "b": 1000}
    # FPE equal: 0.1*2000 == 0.2*1000; ADS: 0.1*4e6 > 0.2*1e6
    assert ads_ranking(avfs, cycles) == ["b", "a"]


def test_normalized_ads() -> None:
    avfs = {"O0": 0.1, "O1": 0.1}
    cycles = {"O0": 1000, "O1": 500}
    norm = normalized_ads(avfs, cycles)
    assert norm["O0"] == pytest.approx(1.0)
    assert norm["O1"] == pytest.approx(0.25)


def test_validation() -> None:
    with pytest.raises(ValueError):
        ads(1.5, 10)
    with pytest.raises(ValueError):
        ads(0.5, 0)
    with pytest.raises(ValueError):
        ads_ranking({"O0": 0.1}, {"O1": 10})
    with pytest.raises(ValueError):
        normalized_ads({"O1": 0.1}, {"O1": 10}, baseline="O0")
