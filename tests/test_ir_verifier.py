"""IR verifier: every invariant rule, pass attribution, and a
hypothesis net checking that real compilations stay verified after
every pass at all O-levels."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.compiler import (
    ARMLET32,
    ARMLET64,
    compile_module,
    ir,
    pipeline,
    verify_function,
    verify_module,
)
from repro.errors import IRVerificationError

from .test_compiler_differential import minc_programs

LEVELS = ("O0", "O1", "O2", "O3")


def _module(word_size: int = 4) -> ir.Module:
    return ir.Module("test", word_size)


def _simple_func(name: str = "f") -> ir.Function:
    """ret 0 -- the smallest verifiable value-returning function."""
    func = ir.Function(name, [], True)
    block = func.new_block("entry")
    block.terminator = ir.Ret(ir.Const(0))
    return func


def _verify(func: ir.Function,
            module: ir.Module | None = None) -> IRVerificationError:
    """Run the verifier expecting a failure; return the error."""
    module = module or _module()
    module.functions.setdefault(func.name, func)
    with pytest.raises(IRVerificationError) as excinfo:
        verify_function(func, module)
    return excinfo.value


class TestStructureRules:
    def test_valid_function_passes(self) -> None:
        module = _module()
        func = _simple_func()
        module.functions["f"] = func
        verify_function(func, module)  # should not raise

    def test_no_blocks(self) -> None:
        err = _verify(ir.Function("f", [], True))
        assert err.rule == "entry"

    def test_missing_terminator(self) -> None:
        func = ir.Function("f", [], True)
        func.new_block("entry")  # terminator left None
        err = _verify(func)
        assert err.rule == "cfg"
        assert err.function == "f"
        assert "entry" in err.block

    def test_duplicate_block_names(self) -> None:
        func = ir.Function("f", [], True)
        a = func.new_block("entry")
        b = func.new_block("dup")
        b.name = a.name
        a.terminator = ir.Jump(a.name)
        b.terminator = ir.Ret(ir.Const(0))
        err = _verify(func)
        assert err.rule == "cfg"
        assert "duplicate" in err.detail

    def test_terminator_in_block_body(self) -> None:
        func = _simple_func()
        func.blocks[0].instrs = [ir.Ret(ir.Const(1))]
        err = _verify(func)
        assert err.rule == "cfg"
        assert err.instr_index == 0

    def test_dangling_successor_named(self) -> None:
        func = ir.Function("f", [], True)
        block = func.new_block("entry")
        block.terminator = ir.Jump("nowhere")
        err = _verify(func)
        assert err.rule == "dangling-successor"
        assert "nowhere" in err.detail
        assert err.block == block.name

    def test_dangling_condjump_arm(self) -> None:
        func = ir.Function("f", [ir.VReg(0)], True)
        entry = func.new_block("entry")
        done = func.new_block("done")
        entry.terminator = ir.CondJump("eq", ir.VReg(0), ir.Const(0),
                                       done.name, "missing_arm")
        done.terminator = ir.Ret(ir.Const(0))
        err = _verify(func)
        assert err.rule == "dangling-successor"
        assert "missing_arm" in err.detail


class TestOperandRules:
    def test_const_too_wide_for_32(self) -> None:
        func = _simple_func()
        func.blocks[0].instrs = [
            ir.Move(ir.VReg(1), ir.Const(1 << 40))]
        err = _verify(func)
        assert err.rule == "const-width"

    def test_wide_const_fine_at_64(self) -> None:
        module = _module(word_size=8)
        func = _simple_func()
        func.blocks[0].instrs = [
            ir.Move(ir.VReg(1), ir.Const(1 << 40))]
        module.functions["f"] = func
        verify_function(func, module)

    def test_unknown_binop(self) -> None:
        func = _simple_func()
        func.blocks[0].instrs = [
            ir.BinOp(ir.VReg(1), "frobnicate", ir.Const(1), ir.Const(2))]
        err = _verify(func)
        assert err.rule == "operand"
        assert "frobnicate" in err.detail

    def test_unknown_cond_op(self) -> None:
        func = ir.Function("f", [ir.VReg(0)], True)
        entry = func.new_block("entry")
        done = func.new_block("done")
        entry.terminator = ir.CondJump("approx", ir.VReg(0), ir.Const(0),
                                       done.name, done.name)
        done.terminator = ir.Ret(ir.Const(0))
        err = _verify(func)
        assert err.rule == "operand"

    def test_bad_mem_size(self) -> None:
        func = ir.Function("f", [ir.VReg(0)], True)
        block = func.new_block("entry")
        block.instrs = [ir.Load(ir.VReg(1), ir.VReg(0), 0, "dword")]
        block.terminator = ir.Ret(ir.VReg(1))
        err = _verify(func)
        assert err.rule == "mem-size"

    def test_unknown_global(self) -> None:
        func = _simple_func()
        func.blocks[0].instrs = [ir.La(ir.VReg(1), "ghost")]
        err = _verify(func)
        assert err.rule == "unknown-global"

    def test_declared_global_ok(self) -> None:
        module = _module()
        module.add_global("table", 32, b"\0" * 32, 4)
        func = _simple_func()
        func.blocks[0].instrs = [ir.La(ir.VReg(1), "table")]
        module.functions["f"] = func
        verify_function(func, module)

    def test_stack_slot_out_of_range(self) -> None:
        func = _simple_func()
        func.blocks[0].instrs = [ir.SlotAddr(ir.VReg(1), 3)]
        err = _verify(func)
        assert err.rule == "stack-slot"


class TestCallRules:
    def test_unknown_callee(self) -> None:
        func = _simple_func()
        func.blocks[0].instrs = [ir.Call(None, "phantom", [])]
        err = _verify(func)
        assert err.rule == "unknown-callee"

    def test_call_arity_mismatch(self) -> None:
        module = _module()
        callee = ir.Function("callee", [ir.VReg(0), ir.VReg(1)], True)
        cb = callee.new_block("entry")
        cb.terminator = ir.Ret(ir.Const(0))
        module.functions["callee"] = callee
        func = _simple_func()
        func.blocks[0].instrs = [
            ir.Call(ir.VReg(1), "callee", [ir.Const(1)])]
        module.functions["f"] = func
        with pytest.raises(IRVerificationError) as excinfo:
            verify_function(func, module)
        assert excinfo.value.rule == "call-arity"

    def test_result_from_void_callee(self) -> None:
        module = _module()
        callee = ir.Function("callee", [], False)
        cb = callee.new_block("entry")
        cb.terminator = ir.Ret()
        module.functions["callee"] = callee
        func = _simple_func()
        func.blocks[0].instrs = [ir.Call(ir.VReg(1), "callee", [])]
        module.functions["f"] = func
        with pytest.raises(IRVerificationError) as excinfo:
            verify_function(func, module)
        assert excinfo.value.rule == "call-result"

    def test_bare_ret_in_value_function(self) -> None:
        func = ir.Function("f", [], True)
        block = func.new_block("entry")
        block.terminator = ir.Ret()
        err = _verify(func)
        assert err.rule == "ret-value"

    def test_valued_ret_in_void_function(self) -> None:
        func = ir.Function("f", [], False)
        block = func.new_block("entry")
        block.terminator = ir.Ret(ir.Const(1))
        err = _verify(func)
        assert err.rule == "ret-value"


class TestDefiniteAssignment:
    def test_use_before_def_straightline(self) -> None:
        func = ir.Function("f", [], True)
        block = func.new_block("entry")
        block.instrs = [ir.Move(ir.VReg(2), ir.VReg(1))]
        block.terminator = ir.Ret(ir.VReg(2))
        err = _verify(func)
        assert err.rule == "use-before-def"
        assert err.instr_index == 0

    def test_one_armed_definition_rejected(self) -> None:
        """%1 is defined on only one path into the join -- the classic
        dominance violation in non-SSA form."""
        func = ir.Function("f", [ir.VReg(0)], True)
        entry = func.new_block("entry")
        left = func.new_block("left")
        join = func.new_block("join")
        entry.terminator = ir.CondJump("eq", ir.VReg(0), ir.Const(0),
                                       left.name, join.name)
        left.instrs = [ir.Move(ir.VReg(1), ir.Const(1))]
        left.terminator = ir.Jump(join.name)
        join.terminator = ir.Ret(ir.VReg(1))
        err = _verify(func)
        assert err.rule == "use-before-def"
        assert err.block == join.name

    def test_both_arms_definition_accepted(self) -> None:
        module = _module()
        func = ir.Function("f", [ir.VReg(0)], True)
        entry = func.new_block("entry")
        left = func.new_block("left")
        right = func.new_block("right")
        join = func.new_block("join")
        entry.terminator = ir.CondJump("eq", ir.VReg(0), ir.Const(0),
                                       left.name, right.name)
        left.instrs = [ir.Move(ir.VReg(1), ir.Const(1))]
        left.terminator = ir.Jump(join.name)
        right.instrs = [ir.Move(ir.VReg(1), ir.Const(2))]
        right.terminator = ir.Jump(join.name)
        join.terminator = ir.Ret(ir.VReg(1))
        module.functions["f"] = func
        verify_function(func, module)

    def test_loop_carried_definition_accepted(self) -> None:
        module = _module()
        func = ir.Function("f", [ir.VReg(0)], True)
        entry = func.new_block("entry")
        head = func.new_block("head")
        body = func.new_block("body")
        done = func.new_block("done")
        entry.instrs = [ir.Move(ir.VReg(1), ir.Const(0))]
        entry.terminator = ir.Jump(head.name)
        head.terminator = ir.CondJump("lt", ir.VReg(1), ir.VReg(0),
                                      body.name, done.name)
        body.instrs = [
            ir.BinOp(ir.VReg(1), "add", ir.VReg(1), ir.Const(1))]
        body.terminator = ir.Jump(head.name)
        done.terminator = ir.Ret(ir.VReg(1))
        module.functions["f"] = func
        verify_function(func, module)

    def test_unreachable_block_not_checked(self) -> None:
        """Dead code may use undefined vregs (DCE will drop it); the
        definite-assignment check is scoped to reachable blocks."""
        module = _module()
        func = _simple_func()
        orphan = func.new_block("orphan")
        orphan.instrs = [ir.Move(ir.VReg(5), ir.VReg(4))]
        orphan.terminator = ir.Ret(ir.VReg(5))
        module.functions["f"] = func
        verify_function(func, module)

    def test_param_use_accepted(self) -> None:
        module = _module()
        func = ir.Function("f", [ir.VReg(0)], True)
        block = func.new_block("entry")
        block.terminator = ir.Ret(ir.VReg(0))
        module.functions["f"] = func
        verify_function(func, module)


class TestModuleRules:
    def test_duplicate_global(self) -> None:
        module = _module()
        module.add_global("g", 4, b"\0" * 4, 4)
        module.add_global("g", 8, b"\0" * 8, 4)
        with pytest.raises(IRVerificationError) as excinfo:
            verify_module(module)
        assert "duplicate" in excinfo.value.detail

    def test_name_mapping_mismatch(self) -> None:
        module = _module()
        module.functions["alias"] = _simple_func("actual")
        with pytest.raises(IRVerificationError) as excinfo:
            verify_module(module)
        assert excinfo.value.rule == "cfg"


class TestPassAttribution:
    def test_broken_pass_named_in_error(self) -> None:
        """pipeline._apply must re-raise the violation attributed to the
        pass that produced the broken IR."""
        module = _module()
        func = _simple_func()
        module.functions["f"] = func

        def run(func: ir.Function, module: ir.Module) -> bool:
            func.blocks[0].terminator = ir.Jump("gone")
            return True

        with pytest.raises(IRVerificationError) as excinfo:
            pipeline._apply(run, func, module, verify_each_pass=True)
        err = excinfo.value
        assert err.rule == "dangling-successor"
        assert err.pass_name is not None
        assert err.pass_name in str(err)

    def test_real_pass_label_is_module_basename(self) -> None:
        from repro.compiler.passes import cse
        from repro.compiler.passes.common import pass_label

        assert pass_label(cse.run) == "cse"

    def test_with_pass_preserves_location(self) -> None:
        err = IRVerificationError("cfg", "boom", function="f",
                                  block="bb1", instr_index=3)
        attributed = err.with_pass("dce")
        assert attributed.pass_name == "dce"
        assert attributed.function == "f"
        assert attributed.block == "bb1"
        assert attributed.instr_index == 3
        assert "after pass 'dce'" in str(attributed)


# --------------------------------------------------------- property net

@settings(max_examples=20, deadline=None)
@given(minc_programs())
def test_random_programs_verify_after_every_pass(source) -> None:
    """Whatever the generator produces must stay invariant-clean after
    every optimization pass at every level on both targets."""
    for target in (ARMLET32, ARMLET64):
        for level in LEVELS:
            compile_module(source, level, target, verify_ir=True)
