"""Microarchitectural structures: configs, caches, PRF, queues, predictor."""

from __future__ import annotations

import pytest

from repro.errors import SimAssertError
from repro.kernel import MainMemory
from repro.microarch import (
    CORTEX_A15,
    CORTEX_A72,
    BranchPredictor,
    CacheHierarchy,
    FieldCatalog,
    PhysRegFile,
)
from repro.microarch.config import CacheGeometry
from repro.microarch.queues import (
    IssueQueue,
    LoadQueue,
    ReorderBuffer,
    StoreQueue,
)
from repro.microarch.uop import MicroOp


class TestConfig:
    def test_table1_geometries(self) -> None:
        a15, a72 = CORTEX_A15, CORTEX_A72
        assert a15.l1d.size_bytes == 32 * 1024 and a15.l1d.ways == 2
        assert a72.l1i.size_bytes == 48 * 1024 and a72.l1i.ways == 3
        assert a15.l2.size_bytes == 1024 * 1024 and a15.l2.ways == 8
        assert a72.l2.size_bytes == 2 * 1024 * 1024 and a72.l2.ways == 16
        assert (a15.phys_regs, a72.phys_regs) == (128, 192)
        assert (a15.iq_entries, a72.iq_entries) == (32, 64)
        assert (a15.rob_entries, a72.rob_entries) == (40, 128)
        assert a15.fetch_width == a72.fetch_width == 3
        assert a15.execute_width == a72.execute_width == 6
        assert a15.writeback_width == a72.writeback_width == 8

    def test_raw_fit_constants(self) -> None:
        assert CORTEX_A15.raw_fit_per_bit == pytest.approx(2.59e-5)
        assert CORTEX_A72.raw_fit_per_bit == pytest.approx(9.39e-6)

    def test_geometry_validation(self) -> None:
        with pytest.raises(ValueError):
            CacheGeometry("bad", 1000, 3)

    def test_tag_bits(self) -> None:
        geometry = CacheGeometry("l1", 32 * 1024, 2, 64)
        # 32KB/2-way/64B => 256 sets => 8 index + 6 offset bits
        assert geometry.num_sets == 256
        assert geometry.tag_bits(32) == 32 - 8 - 6 + 2


def _hierarchy(config=CORTEX_A15):
    memory = MainMemory(4 * 1024 * 1024)
    catalog = FieldCatalog()
    return CacheHierarchy(config, memory, catalog), memory, catalog


class TestCaches:
    def test_read_miss_then_hit(self) -> None:
        hierarchy, memory, _ = _hierarchy()
        memory.write_word(0x10_0000, 0xABCD, 4)
        value, latency = hierarchy.read(0x10_0000, 4)
        assert value == 0xABCD
        assert latency == CORTEX_A15.memory_latency
        value, latency = hierarchy.read(0x10_0000, 4)
        assert latency == CORTEX_A15.l1_hit_latency
        # second miss in the same region hits L2
        _, latency = hierarchy.read(0x10_0000 + 64 * 1024, 4)
        assert latency == CORTEX_A15.memory_latency
        hierarchy.l1d.invalidate_all()
        _, latency = hierarchy.read(0x10_0000, 4)
        assert latency == CORTEX_A15.l2_hit_latency

    def test_write_back_on_eviction(self) -> None:
        hierarchy, memory, _ = _hierarchy()
        base = 0x10_0000
        hierarchy.write(base, 0x1234, 4)
        # evict by filling the set: same index bits, different tags
        set_stride = (CORTEX_A15.l1d.num_sets
                      * CORTEX_A15.l1d.line_bytes)
        for way in range(1, CORTEX_A15.l1d.ways + 1):
            hierarchy.read(base + way * set_stride, 4)
        # dirty line landed in L2 (not yet necessarily in RAM)
        hierarchy.l1d.invalidate_all()
        value, _ = hierarchy.read(base, 4)
        assert value == 0x1234

    def test_data_flip_corrupts_reads(self) -> None:
        hierarchy, memory, catalog = _hierarchy()
        memory.write_word(0x10_0000, 0, 4)
        hierarchy.read(0x10_0000, 4)
        live = catalog.live_bit_count("l1d.data")
        assert live == len(hierarchy.l1d.lines) * 64 * 8
        # flip every live bit of the first line's first word until one
        # lands in our word
        changed = catalog.flip_live("l1d.data", 0)
        assert changed

    def test_tag_flip_loses_line(self) -> None:
        hierarchy, memory, catalog = _hierarchy()
        memory.write_word(0x10_0000, 77, 4)
        hierarchy.read(0x10_0000, 4)
        line = next(iter(hierarchy.l1d.lines.values()))
        original_tag = line.tag
        catalog.flip_live("l1d.tag", 0)
        assert line.tag != original_tag
        # original address now misses and refills from L2/RAM
        value, latency = hierarchy.read(0x10_0000, 4)
        assert value == 77
        assert latency > CORTEX_A15.l1_hit_latency

    def test_flip_on_empty_cache_is_masked(self) -> None:
        hierarchy, _, catalog = _hierarchy()
        assert catalog.flip("l1d.data", 123) is False
        assert catalog.live_bit_count("l1d.data") == 0

    def test_duplicate_tag_asserts(self) -> None:
        hierarchy, memory, _ = _hierarchy()
        set_stride = CORTEX_A15.l1d.num_sets * CORTEX_A15.l1d.line_bytes
        hierarchy.read(0x10_0000, 4)
        hierarchy.read(0x10_0000 + set_stride, 4)
        lines = list(hierarchy.l1d.lines.values())
        lines[1].tag = lines[0].tag
        with pytest.raises(SimAssertError, match="duplicate tag"):
            hierarchy.l1d.lookup(0x10_0000)

    def test_writeback_outside_map_asserts(self) -> None:
        hierarchy, memory, _ = _hierarchy()
        hierarchy.write(0x10_0000, 5, 4)
        line = next(iter(hierarchy.l1d.lines.values()))
        line.tag |= 1 << 24  # now reconstructs to an address > RAM
        set_stride = CORTEX_A15.l1d.num_sets * CORTEX_A15.l1d.line_bytes
        with pytest.raises(SimAssertError, match="outside system map"):
            for way in range(1, CORTEX_A15.l1d.ways + 2):
                hierarchy.read(0x10_0000 + way * set_stride, 4)

    def test_line_crossing_access(self) -> None:
        hierarchy, memory, _ = _hierarchy()
        memory.write_bytes(0x10_0000 + 62, (0x1122334455667788)
                           .to_bytes(8, "little"))
        value, _ = hierarchy.read(0x10_0000 + 62, 8)
        assert value == 0x1122334455667788
        hierarchy.write(0x10_0000 + 62, 0xAABBCCDDEEFF0011, 8)
        value, _ = hierarchy.read(0x10_0000 + 62, 8)
        assert value == 0xAABBCCDDEEFF0011

    def test_snapshot_roundtrip(self) -> None:
        hierarchy, memory, _ = _hierarchy()
        hierarchy.write(0x10_0000, 42, 4)
        state = hierarchy.get_state()
        hierarchy.write(0x10_0000, 99, 4)
        hierarchy.set_state(state)
        value, _ = hierarchy.read(0x10_0000, 4)
        assert value == 42


class TestPhysRegFile:
    def test_rename_allocate_free_cycle(self) -> None:
        prf = PhysRegFile(40, 32)
        tag = prf.allocate()
        assert tag >= 32 and prf.allocated[tag] and not prf.ready[tag]
        old = prf.remap(5, tag)
        assert old == 5
        prf.write(tag, 123)
        assert prf.ready[tag]
        assert prf.read(tag) == 123
        prf.free(old)
        assert not prf.allocated[old]

    def test_out_of_range_tag_asserts(self) -> None:
        prf = PhysRegFile(40, 32)
        with pytest.raises(SimAssertError, match="out of range"):
            prf.read(40)
        with pytest.raises(SimAssertError, match="out of range"):
            prf.write(99, 0)

    def test_write_unallocated_asserts(self) -> None:
        prf = PhysRegFile(40, 32)
        with pytest.raises(SimAssertError, match="unallocated"):
            prf.write(39, 1)

    def test_double_free_asserts(self) -> None:
        prf = PhysRegFile(40, 32)
        tag = prf.allocate()
        prf.free(tag)
        with pytest.raises(SimAssertError, match="double free"):
            prf.free(tag)

    def test_flip_bits(self) -> None:
        prf = PhysRegFile(40, 32)
        assert prf.bit_count() == 40 * 32
        prf.flip_bit(5 * 32 + 7)
        assert prf.values[5] == 1 << 7

    def test_live_bits_track_allocation(self) -> None:
        prf = PhysRegFile(40, 32)
        assert prf.live_bit_count() == 32 * 32
        prf.allocate()
        assert prf.live_bit_count() == 33 * 32

    def test_values_wrap_to_xlen(self) -> None:
        prf = PhysRegFile(40, 32)
        tag = prf.allocate()
        prf.write(tag, 1 << 40)
        assert prf.read(tag) == 0


def _uop(seq: int, dest: int | None = None, store: bool = False) -> MicroOp:
    uop = MicroOp(seq, 0x1000 + 4 * seq, 0)
    uop.arch_dest = dest
    uop.phys_dest = 32 + seq if dest is not None else None
    uop.old_phys_dest = dest
    uop.is_store = store
    return uop


class TestQueues:
    def test_iq_wakeup_and_issue_order(self) -> None:
        iq = IssueQueue(CORTEX_A15)
        young = _uop(7, dest=1)
        old = _uop(3, dest=2)
        iq.insert(young, [40], [False], 50)
        iq.insert(old, [41], [False], 51)
        assert iq.ready_entries() == []
        iq.wakeup(41)
        ready = iq.ready_entries()
        assert len(ready) == 1 and ready[0].uop is old
        iq.wakeup(40)
        ready = iq.ready_entries()
        assert [e.seq for e in ready] == [3, 7]  # oldest first

    def test_iq_squash(self) -> None:
        iq = IssueQueue(CORTEX_A15)
        iq.insert(_uop(3), [], [], None)
        iq.insert(_uop(9), [], [], None)
        iq.squash_younger(5)
        assert [e.seq for e in iq.ready_entries()] == [3]

    def test_iq_src_flip_changes_ready(self) -> None:
        iq = IssueQueue(CORTEX_A15)
        iq.insert(_uop(1), [40, 41], [True, True], 50)
        per_entry = 2 * (iq.tag_bits + 1)
        iq.flip_src_bit(iq.tag_bits)  # the src1 ready bit of slot 0
        assert iq.entries[0].src1_ready is False
        iq.flip_src_bit(0)
        assert iq.entries[0].src1_tag == 41  # 40 ^ 1
        assert iq.src_bit_count() == iq.size * per_entry

    def test_sq_fifo_and_mismatch(self) -> None:
        sq = StoreQueue(CORTEX_A15)
        first = _uop(1, store=True)
        second = _uop(2, store=True)
        sq.insert(first)
        sq.insert(second)
        with pytest.raises(SimAssertError, match="head mismatch"):
            sq.pop_head(2)

    def test_sq_squash_pops_tail_only(self) -> None:
        sq = StoreQueue(CORTEX_A15)
        sq.insert(_uop(1, store=True))
        sq.insert(_uop(5, store=True))
        sq.squash_younger(2)
        assert sq.count == 1
        entry = sq.pop_head(1)
        assert entry.seq == 1

    def test_sq_older_stores_youngest_first(self) -> None:
        sq = StoreQueue(CORTEX_A15)
        for seq in (1, 3, 5):
            sq.insert(_uop(seq, store=True))
        older = sq.older_stores(5)
        assert [e.seq for e in older] == [3, 1]

    def test_lq_release_mismatch_asserts(self) -> None:
        lq = LoadQueue(CORTEX_A15)
        index = lq.insert(_uop(4))
        with pytest.raises(SimAssertError, match="release mismatch"):
            lq.release(index, 9)

    def test_rob_flags_and_fields(self) -> None:
        rob = ReorderBuffer(CORTEX_A15)
        uop = _uop(1, dest=5)
        index = rob.allocate(uop)
        entry = rob.entries[index]
        assert entry.pc == uop.pc
        assert entry.arch_dest == 5
        from repro.microarch.queues import FLAG_HAS_DEST

        assert entry.flag(FLAG_HAS_DEST)

    def test_rob_flip_fields(self) -> None:
        rob = ReorderBuffer(CORTEX_A15)
        rob.allocate(_uop(1, dest=5))
        entry = rob.entries[0]
        pc_before = entry.pc
        rob.flip_pc_bit(3)
        assert entry.pc == pc_before ^ 8
        rob.flip_dest_bit(0)
        assert entry.arch_dest == 4  # 5 ^ 1
        rob.flip_seq_bit(1)
        assert entry.seq == 1 ^ 2

    def test_rob_flip_invalid_slot_masked(self) -> None:
        rob = ReorderBuffer(CORTEX_A15)
        assert rob.flip_pc_bit(50) is False

    def test_rob_overflow_asserts(self) -> None:
        rob = ReorderBuffer(CORTEX_A15)
        for seq in range(rob.size):
            rob.allocate(_uop(seq))
        with pytest.raises(SimAssertError, match="overflow"):
            rob.allocate(_uop(999))

    def test_rob_walk_from_tail_order(self) -> None:
        rob = ReorderBuffer(CORTEX_A15)
        for seq in range(5):
            rob.allocate(_uop(seq))
        seqs = [e.seq for e in rob.walk_from_tail()]
        assert seqs == [4, 3, 2, 1, 0]


class TestBranchPredictor:
    def test_bimodal_learns_direction(self) -> None:
        predictor = BranchPredictor()
        pc, target = 0x1000, 0x2000
        assert predictor.predict(pc) == pc + 4  # no BTB entry yet
        for _ in range(3):
            predictor.update(pc, True, target, is_cond=True)
        assert predictor.predict(pc) == target
        for _ in range(4):
            predictor.update(pc, False, target, is_cond=True)
        assert predictor.predict(pc) == pc + 4

    def test_unconditional_always_taken_on_btb_hit(self) -> None:
        predictor = BranchPredictor()
        predictor.update(0x1000, True, 0x3000, is_cond=False)
        assert predictor.predict(0x1000) == 0x3000

    def test_btb_capacity_bounded(self) -> None:
        predictor = BranchPredictor(btb_size=16)
        for i in range(64):
            predictor.update(0x1000 + 4 * i, True, 0x2000, is_cond=False)
        assert len(predictor.btb) <= 16
