"""Workloads: oracle agreement on every (benchmark, level, target) at
micro scale, plus deep validation of the crypto kernels."""

from __future__ import annotations

import hashlib

import pytest

from repro.kernel import MainMemory, load, run_functional
from repro.workloads import (
    BENCHMARKS,
    SCALES,
    WORKLOADS,
    build_program,
    expected_output,
    get_workload,
)
from repro.workloads import rijndael, sha
from repro.workloads.base import LCG_MASK, lcg_stream

_TARGETS = (("armlet32", 32), ("armlet64", 64))
_LEVELS = ("O0", "O1", "O2", "O3")


def test_registry_has_the_eight_mibench_analogues() -> None:
    assert set(BENCHMARKS) == {
        "qsort", "dijkstra", "fft", "sha", "blowfish", "gsm", "patricia",
        "rijndael",
    }
    for workload in WORKLOADS.values():
        assert workload.scales == SCALES
        assert workload.description


@pytest.mark.parametrize("name", BENCHMARKS)
@pytest.mark.parametrize("target,xlen", _TARGETS)
def test_micro_outputs_match_oracle_every_level(name, target, xlen) -> None:
    ref = expected_output(name, "micro", xlen)
    assert ref  # oracle produces something
    for level in _LEVELS:
        program = build_program(name, "micro", level, target)
        memory = MainMemory(4 * 1024 * 1024)
        result = run_functional(load(program, memory), memory,
                                max_instructions=30_000_000)
        assert result.exit_code == 0, (name, level)
        assert result.output.data == ref, (name, level)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_sources_compile_at_every_scale(name) -> None:
    workload = get_workload(name)
    for scale in SCALES:
        source = workload.source(scale)
        assert "int main()" in source
        # larger scales really are larger programs or datasets
    micro = len(workload.source("micro"))
    large = len(workload.source("large"))
    assert large >= micro


def test_unknown_workload_rejected() -> None:
    with pytest.raises(ValueError, match="unknown workload"):
        get_workload("specint")
    with pytest.raises(ValueError, match="unknown scale"):
        get_workload("qsort").check_scale("huge")


def test_lcg_is_width_independent() -> None:
    stream = lcg_stream(7)
    values = [next(stream) for _ in range(1000)]
    assert all(0 <= v <= LCG_MASK for v in values)
    # multiplication never exceeds 2^31, so 32-bit cores compute the
    # same sequence
    assert max(values) * 25173 + 13849 < 2 ** 31


class TestShaOracle:
    def test_digest_matches_hashlib(self) -> None:
        message = sha.message_bytes("micro")
        digest = hashlib.sha1(message).hexdigest()
        expected = expected_output("sha", "micro", 32).decode()
        words = [int(line, 16) for line in expected.strip().split("\n")]
        reconstructed = "".join(f"{w:08x}" for w in words)
        assert reconstructed == digest

    def test_simulated_sha1_is_real_sha1(self) -> None:
        program = build_program("sha", "micro", "O2", "armlet32")
        memory = MainMemory(4 * 1024 * 1024)
        result = run_functional(load(program, memory), memory)
        words = [int(line, 16)
                 for line in result.output.data.decode().strip().split()]
        digest = "".join(f"{w:08x}" for w in words)
        assert digest == hashlib.sha1(sha.message_bytes("micro")).hexdigest()


class TestAesOracle:
    def test_fips197_vector(self) -> None:
        key = bytes(range(16))
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        ciphertext = rijndael.encrypt_block(plaintext,
                                            rijndael.expand_key(key))
        assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_sbox_known_entries(self) -> None:
        sbox = rijndael.make_sbox()
        assert sbox[0x00] == 0x63
        assert sbox[0x01] == 0x7C
        assert sbox[0x53] == 0xED
        assert sorted(sbox) == list(range(256))  # a permutation


def test_qsort_output_is_sorted_checksum() -> None:
    # the in-simulator sort must report zero unsorted adjacent pairs
    out = expected_output("qsort", "micro", 32).decode().split()
    assert out[1] == "0"


def test_patricia_oracle_counts_nodes_like_the_program() -> None:
    program = build_program("patricia", "micro", "O1", "armlet32")
    memory = MainMemory(4 * 1024 * 1024)
    result = run_functional(load(program, memory), memory)
    assert result.output.data == expected_output("patricia", "micro", 32)


@pytest.mark.slow
@pytest.mark.parametrize("name", BENCHMARKS)
def test_small_scale_outputs_match_oracle(name) -> None:
    ref = expected_output(name, "small", 32)
    program = build_program(name, "small", "O2", "armlet32")
    memory = MainMemory(4 * 1024 * 1024)
    result = run_functional(load(program, memory), memory,
                            max_instructions=80_000_000)
    assert result.output.data == ref
