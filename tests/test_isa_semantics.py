"""Functional semantics: ALU ops, branches, and constant materialization
checked against plain-Python models, at both data widths."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimCrashError
from repro.isa import Instruction, Opcode, semantics

XLENS = (32, 64)
values32 = st.integers(min_value=0, max_value=(1 << 32) - 1)
values64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def _vals(xlen: int):
    return values32 if xlen == 32 else values64


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_add_sub_wrap(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    b = data.draw(_vals(xlen))
    mask = (1 << xlen) - 1
    assert semantics.alu(Opcode.ADD, a, b, xlen) == (a + b) & mask
    assert semantics.alu(Opcode.SUB, a, b, xlen) == (a - b) & mask


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_bitwise(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    b = data.draw(_vals(xlen))
    assert semantics.alu(Opcode.AND, a, b, xlen) == a & b
    assert semantics.alu(Opcode.ORR, a, b, xlen) == a | b
    assert semantics.alu(Opcode.EOR, a, b, xlen) == a ^ b


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_shifts_use_masked_amount(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    amount = data.draw(st.integers(min_value=0, max_value=255))
    mask = (1 << xlen) - 1
    eff = amount & (xlen - 1)
    assert semantics.alu(Opcode.LSL, a, amount, xlen) == (a << eff) & mask
    assert semantics.alu(Opcode.LSR, a, amount, xlen) == a >> eff
    expected_asr = (semantics.to_signed(a, xlen) >> eff) & mask
    assert semantics.alu(Opcode.ASR, a, amount, xlen) == expected_asr


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_div_rem_truncate_toward_zero(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    b = data.draw(_vals(xlen))
    sa, sb = semantics.to_signed(a, xlen), semantics.to_signed(b, xlen)
    if sb == 0:
        with pytest.raises(SimCrashError):
            semantics.alu(Opcode.DIV, a, b, xlen)
        return
    quotient = semantics.to_signed(
        semantics.alu(Opcode.DIV, a, b, xlen), xlen)
    remainder = semantics.to_signed(
        semantics.alu(Opcode.REM, a, b, xlen), xlen)
    # C semantics: truncation toward zero and the div/rem identity.
    expected_q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        expected_q = -expected_q
    assert quotient == semantics.to_signed(
        semantics.wrap(expected_q, xlen), xlen)
    assert semantics.wrap(quotient * sb + remainder, xlen) == a
    if remainder != 0:
        assert (remainder < 0) == (sa < 0)


@pytest.mark.parametrize("xlen", XLENS)
def test_div_specific_cases(xlen: int) -> None:
    m = semantics.mask(xlen)

    def s2u(v: int) -> int:
        return v & m

    cases = [(7, 2, 3, 1), (-7, 2, -3, -1), (7, -2, -3, 1),
             (-7, -2, 3, -1)]
    for a, b, q, r in cases:
        assert semantics.alu(Opcode.DIV, s2u(a), s2u(b), xlen) == s2u(q)
        assert semantics.alu(Opcode.REM, s2u(a), s2u(b), xlen) == s2u(r)


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_mulh(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    b = data.draw(_vals(xlen))
    sa, sb = semantics.to_signed(a, xlen), semantics.to_signed(b, xlen)
    expected = ((sa * sb) >> xlen) & semantics.mask(xlen)
    assert semantics.alu(Opcode.MULH, a, b, xlen) == expected


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_slt(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    b = data.draw(_vals(xlen))
    sa, sb = semantics.to_signed(a, xlen), semantics.to_signed(b, xlen)
    assert semantics.alu(Opcode.SLT, a, b, xlen) == int(sa < sb)
    assert semantics.alu(Opcode.SLTU, a, b, xlen) == int(a < b)


@pytest.mark.parametrize("xlen", XLENS)
@given(data=st.data())
def test_branches(xlen: int, data) -> None:
    a = data.draw(_vals(xlen))
    b = data.draw(_vals(xlen))
    sa, sb = semantics.to_signed(a, xlen), semantics.to_signed(b, xlen)
    assert semantics.branch_taken(Opcode.BEQ, a, b, xlen) == (a == b)
    assert semantics.branch_taken(Opcode.BNE, a, b, xlen) == (a != b)
    assert semantics.branch_taken(Opcode.BLT, a, b, xlen) == (sa < sb)
    assert semantics.branch_taken(Opcode.BGE, a, b, xlen) == (sa >= sb)
    assert semantics.branch_taken(Opcode.BLTU, a, b, xlen) == (a < b)
    assert semantics.branch_taken(Opcode.BGEU, a, b, xlen) == (a >= b)


def test_mov_results_32() -> None:
    movw = Instruction(Opcode.MOVW, rd=1, imm=0xBEEF)
    assert semantics.mov_result(movw, 0xFFFF_FFFF, 32) == 0xBEEF
    movt = Instruction(Opcode.MOVT, rd=1, imm=0xDEAD)
    assert semantics.mov_result(movt, 0xBEEF, 32) == 0xDEAD_BEEF


def test_mov_results_64() -> None:
    value = 0
    for opcode, imm in ((Opcode.MOVW, 0x1111), (Opcode.MOVT, 0x2222),
                        (Opcode.MOVT2, 0x3333), (Opcode.MOVT3, 0x4444)):
        value = semantics.mov_result(Instruction(opcode, rd=1, imm=imm),
                                     value, 64)
    assert value == 0x4444_3333_2222_1111


def test_movt2_traps_on_32bit() -> None:
    with pytest.raises(SimCrashError):
        semantics.mov_result(Instruction(Opcode.MOVT2, rd=1, imm=1), 0, 32)
