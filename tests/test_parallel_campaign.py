"""Trial-sharded parallel campaigns: determinism, checkpointed resume,
auto-snapshot golden runs, and two-level grid scheduling."""

from __future__ import annotations

import json

import pytest

import repro.gefin.fault as fault_mod
import repro.gefin.parallel as parallel_mod
from repro.compiler import ARMLET32, compile_source
from repro.experiments import CampaignGrid, GridSpec
from repro.gefin import (
    CampaignCheckpoint,
    Shard,
    campaign_meta,
    derive_rng,
    error_margin,
    fault_population,
    plan_shards,
    resolve_workers,
    run_campaign,
    run_field_campaigns,
    run_golden,
    run_golden_auto,
    run_shard,
    sample_cycle,
)
from repro.microarch import CORTEX_A15

SOURCE = """
int data[48];
int main() {
    for (int i = 0; i < 48; i++) { data[i] = i * 11 % 31; }
    int s = 0;
    for (int i = 0; i < 48; i++) { s += data[i]; }
    putint(s);
    return 0;
}
"""

FIELD = "rob.flags"


@pytest.fixture(scope="module")
def program():
    return compile_source(SOURCE, "O1", ARMLET32, name="parallel-test")


@pytest.fixture(scope="module")
def golden(program):
    return run_golden_auto(program, CORTEX_A15)


@pytest.fixture(scope="module")
def serial(program, golden):
    summary, results = run_campaign(program, CORTEX_A15, FIELD, n=10,
                                    seed=3, golden=golden,
                                    keep_results=True, shard_size=3)
    return summary, results


class TestShardPlan:
    def test_contiguous_cover(self) -> None:
        shards = plan_shards(100, 7)
        assert shards[0].start == 0 and shards[-1].stop == 100
        for before, after in zip(shards, shards[1:]):
            assert before.stop == after.start
        assert sum(s.size for s in shards) == 100

    def test_default_plan_depends_only_on_n(self) -> None:
        shards = plan_shards(2000)
        assert len(shards) <= parallel_mod.DEFAULT_MAX_SHARDS
        assert shards == plan_shards(2000)

    def test_degenerate(self) -> None:
        assert plan_shards(0) == []
        assert plan_shards(1) == [Shard(0, 0, 1)]
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            Shard(0, 5, 5)

    def test_resolve_workers_env(self, monkeypatch) -> None:
        import os

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        # Explicit arguments are honoured verbatim, even above the CPU
        # count (tests and benches deliberately overcommit).
        assert resolve_workers(4) == 4
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == min(3, os.cpu_count() or 1)
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_resolve_workers_env_junk_names_the_variable(
            self, monkeypatch) -> None:
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_resolve_workers_env_clamped_to_cpus(self, monkeypatch,
                                                 capsys) -> None:
        import os

        monkeypatch.setenv("REPRO_WORKERS", "100000")
        assert resolve_workers(None) == (os.cpu_count() or 1)
        assert "clamping" in capsys.readouterr().err


class TestCycleWindow:
    """Regression for the injection-cycle off-by-one: the population is
    bits x cycles, so cycle == golden.cycles must be sampled too."""

    def test_full_window_covered(self) -> None:
        rng = derive_rng(0, FIELD, 0)
        drawn = {sample_cycle(rng, 3) for _ in range(300)}
        assert drawn == {1, 2, 3}

    def test_single_cycle_program(self) -> None:
        rng = derive_rng(0, FIELD, 0)
        assert {sample_cycle(rng, 1) for _ in range(10)} == {1}

    def test_campaign_cycles_match_margin_population(self, program,
                                                     golden) -> None:
        summary, results = run_campaign(program, CORTEX_A15, FIELD, n=16,
                                        seed=9, golden=golden,
                                        keep_results=True)
        for result in results:
            assert 1 <= result.spec.cycle <= golden.cycles
        population = fault_population(summary.bit_count,
                                      summary.golden_cycles)
        assert summary.margin(0.99) == error_margin(population, 16, 0.99)

    def test_last_cycle_reachable(self, program, golden) -> None:
        # Some trial must be able to draw the final golden cycle: sweep
        # trials until one does (bounded so a regression fails fast).
        for trial in range(20_000):
            rng = derive_rng(1, FIELD, trial)
            if sample_cycle(rng, golden.cycles) == golden.cycles:
                return
        pytest.fail("final golden cycle never sampled")


class TestParallelDeterminism:
    @pytest.mark.parametrize("mode,burst", [
        ("occupancy", 1), ("occupancy", 4),
        ("uniform", 1), ("uniform", 4),
    ])
    def test_workers_bit_exact(self, program, golden, mode, burst) -> None:
        kwargs = dict(seed=7, mode=mode, burst=burst, golden=golden,
                      keep_results=True, shard_size=2)
        ser, ser_results = run_campaign(program, CORTEX_A15, FIELD, n=6,
                                        workers=1, **kwargs)
        par, par_results = run_campaign(program, CORTEX_A15, FIELD, n=6,
                                        workers=2, **kwargs)
        assert ser == par
        assert ser_results == par_results

    def test_three_workers_odd_shards(self, program, golden,
                                      serial) -> None:
        par = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                           golden=golden, workers=3, shard_size=3)
        assert par == serial[0]

    def test_shard_size_irrelevant(self, program, golden, serial) -> None:
        one_shard = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                                 golden=golden, shard_size=10)
        assert one_shard == serial[0]

    def test_shards_reassemble_in_trial_order(self, program, golden,
                                              serial) -> None:
        shards = plan_shards(10, 3)
        out_of_order = [run_shard(program, CORTEX_A15, golden, FIELD,
                                  shard, 3) for shard in reversed(shards)]
        flat = [r for results in reversed(out_of_order) for r in results]
        assert flat == serial[1]


class TestCheckpointResume:
    def _checkpoint(self, tmp_path, program, golden, shards):
        ck = CampaignCheckpoint(tmp_path / "campaign.ckpt.jsonl")
        meta = campaign_meta(program.name, CORTEX_A15.name, FIELD, 10, 3,
                             "occupancy", 1, shards)
        ck.begin(meta)
        return ck, meta

    def _bit_count(self, program):
        from repro.microarch import Simulator

        return Simulator(program, CORTEX_A15).bit_count(FIELD)

    def test_resume_skips_completed_shards(self, tmp_path, program, golden,
                                           serial, monkeypatch) -> None:
        shards = plan_shards(10, 3)
        ck, _meta = self._checkpoint(tmp_path, program, golden, shards)
        done = run_shard(program, CORTEX_A15, golden, FIELD, shards[0], 3)
        ck.record(shards[0], golden.cycles, self._bit_count(program), done)

        calls = 0
        real = parallel_mod.inject_one

        def counting(*args, **kwargs):
            nonlocal calls
            calls += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(parallel_mod, "inject_one", counting)
        resumed = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                               golden=golden, shard_size=3, checkpoint=ck)
        assert resumed == serial[0]
        assert calls == 10 - shards[0].size  # first shard not re-run
        assert not ck.path.exists()  # cleared on completion

    def test_mismatched_meta_restarts(self, tmp_path, program, golden,
                                      serial) -> None:
        shards = plan_shards(10, 3)
        ck = CampaignCheckpoint(tmp_path / "campaign.ckpt.jsonl")
        other = campaign_meta(program.name, CORTEX_A15.name, FIELD, 10,
                              999, "occupancy", 1, shards)
        ck.begin(other)
        done = run_shard(program, CORTEX_A15, golden, FIELD, shards[0],
                         999)
        ck.record(shards[0], golden.cycles, self._bit_count(program), done)
        # seed 3 must ignore the seed-999 shards entirely
        result = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                              golden=golden, shard_size=3, checkpoint=ck)
        assert result == serial[0]

    def test_torn_tail_line_ignored(self, tmp_path, program, golden,
                                    serial) -> None:
        shards = plan_shards(10, 3)
        ck, _meta = self._checkpoint(tmp_path, program, golden, shards)
        done = run_shard(program, CORTEX_A15, golden, FIELD, shards[1], 3)
        ck.record(shards[1], golden.cycles, self._bit_count(program), done)
        with ck.path.open("a") as handle:
            handle.write('{"shard": 2, "start": 6, "sto')  # torn write
        result = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                              golden=golden, shard_size=3, checkpoint=ck)
        assert result == serial[0]

    def test_stale_golden_record_rerun(self, tmp_path, program, golden,
                                       serial) -> None:
        shards = plan_shards(10, 3)
        ck, _meta = self._checkpoint(tmp_path, program, golden, shards)
        done = run_shard(program, CORTEX_A15, golden, FIELD, shards[0], 3)
        ck.record(shards[0], golden.cycles + 1, self._bit_count(program),
                  done)  # written against a different golden run
        result = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                              golden=golden, shard_size=3, checkpoint=ck)
        assert result == serial[0]

    def test_checkpoint_path_accepted(self, tmp_path, program, golden,
                                      serial) -> None:
        path = tmp_path / "by-path.ckpt.jsonl"
        result = run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                              golden=golden, shard_size=3,
                              checkpoint=path)
        assert result == serial[0]
        assert not path.exists()

    def test_load_validates_shard_shape(self, tmp_path) -> None:
        shards = plan_shards(10, 3)
        ck = CampaignCheckpoint(tmp_path / "bad.ckpt.jsonl")
        meta = {"n": 10}
        ck.begin(meta)
        with ck.path.open("a") as handle:
            handle.write(json.dumps({"shard": 0, "start": 0, "stop": 99,
                                     "golden_cycles": 1, "bit_count": 1,
                                     "results": []}) + "\n")
        assert ck.load(meta, shards) == {}


class TestAutoSnapshotGolden:
    def test_matches_plain_golden(self, program, golden) -> None:
        plain = run_golden(program, CORTEX_A15)
        assert golden.cycles == plain.cycles
        assert golden.output_data == plain.output_data
        assert golden.stats == plain.stats

    def test_snapshot_count_bounded(self, program) -> None:
        auto = run_golden_auto(program, CORTEX_A15, snapshot_count=2,
                               min_interval=16)
        assert 2 <= len(auto.snapshots) <= 4
        cycles = [cycle for cycle, _ in auto.snapshots]
        assert cycles == sorted(cycles)

    def test_single_simulation(self, program, monkeypatch) -> None:
        boots = 0
        real = fault_mod.Simulator

        class CountingSimulator(real):
            def __init__(self, *args, **kwargs):
                nonlocal boots
                boots += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(fault_mod, "Simulator", CountingSimulator)
        run_golden_auto(program, CORTEX_A15)
        assert boots == 1

    def test_injection_equivalent_to_plain(self, program, golden) -> None:
        plain = run_golden(program, CORTEX_A15)
        a = run_campaign(program, CORTEX_A15, FIELD, n=4, seed=5,
                         golden=plain)
        b = run_campaign(program, CORTEX_A15, FIELD, n=4, seed=5,
                         golden=golden)
        assert a == b


class TestRunFieldCampaigns:
    def test_single_golden_simulation(self, program, monkeypatch) -> None:
        """The doubled golden run is gone: one instrumented simulation
        serves every field campaign."""
        boots = 0
        real = fault_mod.Simulator

        class CountingSimulator(real):
            def __init__(self, *args, **kwargs):
                nonlocal boots
                boots += 1
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(fault_mod, "Simulator", CountingSimulator)
        results = run_field_campaigns(program, CORTEX_A15,
                                      [FIELD, "prf"], n=2, seed=1)
        assert boots == 1
        assert set(results) == {FIELD, "prf"}
        for result in results.values():
            assert result.n == 2


class TestProgress:
    def test_progress_reports_every_shard(self, program, golden) -> None:
        seen = []
        run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                     golden=golden, shard_size=3,
                     progress=lambda done, total: seen.append((done,
                                                               total)))
        assert seen == [(3, 10), (6, 10), (9, 10), (10, 10)]

    def test_progress_counts_resumed_trials(self, tmp_path, program,
                                            golden) -> None:
        shards = plan_shards(10, 3)
        ck = CampaignCheckpoint(tmp_path / "campaign.ckpt.jsonl")
        meta = campaign_meta(program.name, CORTEX_A15.name, FIELD, 10, 3,
                             "occupancy", 1, shards)
        ck.begin(meta)
        from repro.microarch import Simulator

        bit_count = Simulator(program, CORTEX_A15).bit_count(FIELD)
        done = run_shard(program, CORTEX_A15, golden, FIELD, shards[0], 3)
        ck.record(shards[0], golden.cycles, bit_count, done)
        seen = []
        run_campaign(program, CORTEX_A15, FIELD, n=10, seed=3,
                     golden=golden, shard_size=3, checkpoint=ck,
                     progress=lambda done, total: seen.append(done))
        assert seen[0] == 3  # resumed trials reported up front
        assert seen[-1] == 10


class TestGridTwoLevel:
    SPEC = dict(benchmarks=("qsort",), cores=("cortex-a15",),
                levels=("O1",), fields=("rob.flags", "prf"),
                injections=4, scale="micro", seed=13)

    def test_workers_smoke_micro_grid(self, tmp_path) -> None:
        """Tier-1 smoke: a workers=2 micro-grid must equal the serial
        grid cell for cell."""
        spec = GridSpec(**self.SPEC)
        parallel = CampaignGrid(spec, tmp_path / "par")
        assert parallel.ensure_all(workers=2) == 2
        assert parallel.ensure_all(workers=2) == 0
        serial = CampaignGrid(spec, tmp_path / "ser")
        serial.ensure_all()
        for field in spec.fields:
            a = parallel.result("cortex-a15", "qsort", "O1", field)
            b = serial.result("cortex-a15", "qsort", "O1", field)
            assert a == b

    def test_resume_from_partial_cell(self, tmp_path) -> None:
        spec = GridSpec(**self.SPEC)
        grid = CampaignGrid(spec, tmp_path / "par")
        cell = ("cortex-a15", "qsort", "O1", "rob.flags")
        shards = plan_shards(spec.injections)
        program = grid.program(*cell[:3])
        golden = run_golden_auto(program, grid.config("cortex-a15"))
        from repro.microarch import Simulator

        bit_count = Simulator(program,
                              grid.config("cortex-a15")).bit_count(cell[3])
        ck = grid._cell_checkpoint(cell)
        ck.begin(grid._cell_meta(cell, shards))
        done = run_shard(program, grid.config("cortex-a15"), golden,
                         cell[3], shards[0], spec.seed)
        ck.record(shards[0], golden.cycles, bit_count, done,
                  program_name=program.name)

        assert grid.ensure_all(workers=2) == 2
        assert not ck.path.exists()
        serial = CampaignGrid(spec, tmp_path / "ser")
        serial.ensure_all()
        for field in spec.fields:
            assert (grid.result("cortex-a15", "qsort", "O1", field)
                    == serial.result("cortex-a15", "qsort", "O1", field))

    def test_fully_checkpointed_cell_needs_no_simulation(self,
                                                         tmp_path) -> None:
        spec = GridSpec(benchmarks=("qsort",), cores=("cortex-a15",),
                        levels=("O1",), fields=("rob.flags",),
                        injections=4, scale="micro", seed=13)
        grid = CampaignGrid(spec, tmp_path / "par")
        cell = ("cortex-a15", "qsort", "O1", "rob.flags")
        shards = plan_shards(spec.injections)
        program = grid.program(*cell[:3])
        config = grid.config("cortex-a15")
        golden = run_golden_auto(program, config)
        from repro.microarch import Simulator

        bit_count = Simulator(program, config).bit_count(cell[3])
        ck = grid._cell_checkpoint(cell)
        ck.begin(grid._cell_meta(cell, shards))
        for shard in shards:
            done = run_shard(program, config, golden, cell[3], shard,
                             spec.seed)
            ck.record(shard, golden.cycles, bit_count, done,
                      program_name=program.name)
        # the previous run died after the last shard but before the save
        assert grid.ensure_all(workers=2) == 1
        serial = CampaignGrid(spec, tmp_path / "ser")
        serial.ensure_all()
        assert (grid.result(*cell) == serial.result(*cell))
