"""Optimization passes: unit-level IR transforms plus semantic safety.

The unit tests build small IR functions by hand and check the transform;
the safety tests compile MinC programs at every level and require
identical behaviour (the contract that actually matters for the study).
"""

from __future__ import annotations

from repro.compiler import ir
from repro.compiler.passes import (
    addrfold,
    constfold,
    copyprop,
    cse,
    dce,
    inline,
    licm,
    schedule,
    simplify_cfg,
    strength,
    unroll,
)

from .conftest import run_minc_all_levels


def _module(xlen: int = 32) -> ir.Module:
    return ir.Module("test", xlen // 8)


def _single_block(instrs, terminator=None) -> ir.Function:
    func = ir.Function("f", [], returns_value=True)
    block = func.new_block("entry")
    block.instrs = instrs
    block.terminator = terminator or ir.Ret(ir.Const(0))
    func._next_vreg = 100
    return func


def V(i: int) -> ir.VReg:
    return ir.VReg(i)


class TestConstFold:
    def test_folds_constants_with_wrap(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "add", ir.Const(0x7FFF_FFFF), ir.Const(1)),
        ])
        constfold.run(func, _module(32))
        instr = func.blocks[0].instrs[0]
        assert isinstance(instr, ir.Move)
        assert instr.src == ir.Const(-(1 << 31))

    def test_algebraic_identities(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "add", V(0), ir.Const(0)),
            ir.BinOp(V(2), "mul", V(0), ir.Const(0)),
            ir.BinOp(V(3), "xor", V(0), V(0)),
            ir.BinOp(V(4), "mul", V(0), ir.Const(1)),
        ])
        constfold.run(func, _module(32))
        moves = func.blocks[0].instrs
        assert all(isinstance(m, ir.Move) for m in moves)
        assert moves[0].src == V(0)
        assert moves[1].src == ir.Const(0)
        assert moves[2].src == ir.Const(0)
        assert moves[3].src == V(0)

    def test_division_by_zero_not_folded(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "div", ir.Const(5), ir.Const(0)),
        ])
        constfold.run(func, _module(32))
        assert isinstance(func.blocks[0].instrs[0], ir.BinOp)

    def test_const_condjump_folded(self) -> None:
        func = ir.Function("f", [], True)
        entry = func.new_block("entry")
        t = func.new_block("t")
        f = func.new_block("f")
        entry.terminator = ir.CondJump("lt", ir.Const(1), ir.Const(2),
                                       t.name, f.name)
        t.terminator = ir.Ret(ir.Const(1))
        f.terminator = ir.Ret(ir.Const(0))
        constfold.run(func, _module(32))
        assert isinstance(entry.terminator, ir.Jump)
        assert entry.terminator.target == t.name

    def test_commutative_canonicalization(self) -> None:
        func = _single_block([ir.BinOp(V(1), "add", ir.Const(3), V(0))])
        constfold.run(func, _module(32))
        instr = func.blocks[0].instrs[0]
        assert instr.a == V(0) and instr.b == ir.Const(3)


class TestDCE:
    def test_removes_dead_pure_chain(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "add", ir.Const(1), ir.Const(2)),
            ir.BinOp(V(2), "mul", V(1), ir.Const(3)),
            ir.BinOp(V(3), "add", ir.Const(4), ir.Const(5)),
        ], ir.Ret(V(3)))
        dce.run(func, _module(32))
        assert [i.defs() for i in func.blocks[0].instrs] == [V(3)]

    def test_keeps_side_effects(self) -> None:
        func = _single_block([
            ir.Store(ir.Const(1), V(0), 0),
            ir.Syscall(1, ir.Const(5)),
            ir.Call(V(9), "g", [ir.Const(1)]),
        ])
        dce.run(func, _module(32))
        assert len(func.blocks[0].instrs) == 3

    def test_keeps_terminator_inputs(self) -> None:
        func = _single_block([
            ir.BinOp(V(5), "add", ir.Const(1), ir.Const(2)),
        ], ir.Ret(V(5)))
        dce.run(func, _module(32))
        assert len(func.blocks[0].instrs) == 1


class TestCopyProp:
    def test_local_chain(self) -> None:
        func = _single_block([
            ir.Move(V(1), ir.Const(7)),
            ir.Move(V(2), V(1)),
            ir.BinOp(V(3), "add", V(2), V(2)),
        ], ir.Ret(V(3)))
        copyprop.run(func, _module(32))
        binop = func.blocks[0].instrs[2]
        assert binop.a == ir.Const(7) and binop.b == ir.Const(7)

    def test_redefinition_kills_copy(self) -> None:
        # v0 is a parameter *and* redefined below, so it is multi-def:
        # neither the global nor the local propagator may forward the
        # copy past the redefinition.
        func = _single_block([
            ir.Move(V(1), V(0)),
            ir.BinOp(V(0), "add", V(0), ir.Const(1)),  # v0 redefined
            ir.BinOp(V(2), "add", V(1), ir.Const(0)),
        ], ir.Ret(V(2)))
        func.params = [V(0)]
        copyprop.run(func, _module(32))
        binop = func.blocks[0].instrs[2]
        assert binop.a == V(1)

    def test_single_def_source_safe_even_across_blocks(self) -> None:
        # well-formed builder IR: the source's single definition precedes
        # the copy, so forwarding is sound everywhere.
        func = ir.Function("f", [V(0)], True)
        entry = func.new_block("entry")
        exit_block = func.new_block("exit")
        entry.instrs = [
            ir.BinOp(V(1), "add", V(0), ir.Const(2)),
            ir.Move(V(2), V(1)),
        ]
        entry.terminator = ir.Jump(exit_block.name)
        exit_block.terminator = ir.Ret(V(2))
        func._next_vreg = 50
        copyprop.run(func, _module(32))
        assert exit_block.terminator.value == V(1)


class TestCSE:
    def test_repeated_expression_reused(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "add", V(0), ir.Const(4)),
            ir.BinOp(V(2), "add", V(0), ir.Const(4)),
        ], ir.Ret(V(2)))
        cse.run(func, _module(32))
        second = func.blocks[0].instrs[1]
        assert isinstance(second, ir.Move) and second.src == V(1)

    def test_invalidated_by_operand_redefinition(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "add", V(0), ir.Const(4)),
            ir.BinOp(V(0), "add", V(0), ir.Const(1)),
            ir.BinOp(V(2), "add", V(0), ir.Const(4)),
        ], ir.Ret(V(2)))
        cse.run(func, _module(32))
        assert isinstance(func.blocks[0].instrs[2], ir.BinOp)

    def test_loads_never_merged(self) -> None:
        func = _single_block([
            ir.Load(V(1), V(0), 0),
            ir.Load(V(2), V(0), 0),
        ], ir.Ret(V(2)))
        cse.run(func, _module(32))
        assert all(isinstance(i, ir.Load) for i in func.blocks[0].instrs)


class TestStrength:
    def test_mul_pow2_becomes_shift(self) -> None:
        func = _single_block([ir.BinOp(V(1), "mul", V(0), ir.Const(8))])
        strength.run(func, _module(32))
        instr = func.blocks[0].instrs[0]
        assert instr.op == "shl" and instr.b == ir.Const(3)

    def test_mul_pow2_plus_minus_one(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "mul", V(0), ir.Const(9)),
            ir.BinOp(V(2), "mul", V(0), ir.Const(7)),
        ])
        strength.run(func, _module(32))
        ops = [i.op for i in func.blocks[0].instrs]
        assert ops == ["shl", "add", "shl", "sub"]

    def test_div_pow2_sequence_emitted(self) -> None:
        func = _single_block([ir.BinOp(V(1), "div", V(0), ir.Const(4))])
        strength.run(func, _module(32))
        ops = [i.op for i in func.blocks[0].instrs]
        assert "div" not in ops and ops[-1] == "ashr"

    def test_semantics_preserved(self) -> None:
        # signed division/remainder by powers of two is the risky case
        source = """
        int main() {
            int values[8] = {7, -7, 1, -1, 0, 100, -100, -8};
            for (int i = 0; i < 8; i++) {
                putint(values[i] / 4);
                putint(values[i] % 4);
                putint(values[i] * 12);
            }
            return 0;
        }
        """
        run_minc_all_levels(source)


class TestSimplifyCFG:
    def test_unreachable_removed(self) -> None:
        func = ir.Function("f", [], True)
        entry = func.new_block("entry")
        dead = func.new_block("dead")
        entry.terminator = ir.Ret(ir.Const(0))
        dead.terminator = ir.Ret(ir.Const(1))
        simplify_cfg.run(func, _module(32))
        assert [b.name for b in func.blocks] == [entry.name]

    def test_empty_block_threaded(self) -> None:
        func = ir.Function("f", [], True)
        entry = func.new_block("entry")
        hop = func.new_block("hop")
        target = func.new_block("target")
        entry.terminator = ir.Jump(hop.name)
        hop.terminator = ir.Jump(target.name)
        target.terminator = ir.Ret(ir.Const(0))
        simplify_cfg.run(func, _module(32))
        # entry now reaches target directly (hop merged or threaded away)
        assert len(func.blocks) <= 2

    def test_straight_line_merged(self) -> None:
        func = ir.Function("f", [], True)
        entry = func.new_block("entry")
        tail = func.new_block("tail")
        entry.terminator = ir.Jump(tail.name)
        tail.instrs = [ir.Move(V(1), ir.Const(3))]
        tail.terminator = ir.Ret(V(1))
        simplify_cfg.run(func, _module(32))
        assert len(func.blocks) == 1
        assert isinstance(func.blocks[0].terminator, ir.Ret)


class TestAddrFold:
    def test_folds_into_offset(self) -> None:
        func = _single_block([
            ir.BinOp(V(1), "add", V(0), ir.Const(8)),
            ir.Load(V(2), V(1), 4),
        ], ir.Ret(V(2)))
        func.params = [V(0)]
        addrfold.run(func, _module(32))
        load = func.blocks[0].instrs[1]
        assert load.base == V(0) and load.offset == 12


class TestLICM:
    def test_hoists_invariant_computation(self) -> None:
        source = """
        int main() {
            int n = 500;
            int s = 0;
            for (int i = 0; i < 20; i++) {
                s += n * 3 + 7;     // invariant
                s += i;
            }
            putint(s);
            return 0;
        }
        """
        run_minc_all_levels(source)

    def test_no_speculative_division(self) -> None:
        # the divide must NOT be hoisted out of the guarded branch
        source = """
        int main() {
            int d = 0;
            int s = 0;
            for (int i = 0; i < 10; i++) {
                if (d != 0) { s += 100 / d; }
                s += i;
            }
            putint(s);
            return 0;
        }
        """
        run_minc_all_levels(source)


class TestUnrollInline:
    def test_unroll_preserves_any_trip_count(self) -> None:
        source = """
        int main() {
            for (int n = 0; n < 6; n++) {
                int s = 0;
                for (int i = 0; i < n; i++) { s += i * 2 + 1; }
                putint(s);
            }
            return 0;
        }
        """
        run_minc_all_levels(source)

    def test_unroll_grows_static_code(self) -> None:
        from repro.compiler import ARMLET32, compile_module

        source = """
        int main() {
            int s = 0;
            for (int i = 0; i < 50; i++) { s += i ^ (i << 1); }
            putint(s);
            return 0;
        }
        """
        o2 = compile_module(source, "O2", ARMLET32)
        o3 = compile_module(source, "O3", ARMLET32)
        assert o3.text_size > o2.text_size

    def test_inline_removes_call(self) -> None:
        from repro.compiler import ARMLET32, compile_module

        source = """
        int square(int x) { return x * x; }
        int main() { putint(square(9)); return 0; }
        """
        result = compile_module(source, "O3", ARMLET32)
        assert "square" not in result.module.functions  # inlined + pruned
        assert not any(
            isinstance(i, ir.Call)
            for i in result.module.functions["main"].instructions())

    def test_recursion_never_inlined(self) -> None:
        from repro.compiler import ARMLET32, compile_module

        source = """
        int fib(int n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        int main() { putint(fib(8)); return 0; }
        """
        result = compile_module(source, "O3", ARMLET32)
        assert "fib" in result.module.functions

    def test_inline_semantics(self) -> None:
        source = """
        int helper(int a, int b) {
            int local[2] = {3, 4};
            return local[a] * b;
        }
        int main() {
            putint(helper(0, 10) + helper(1, 100));
            return 0;
        }
        """
        run_minc_all_levels(source)


class TestSchedule:
    def test_respects_dependences(self) -> None:
        func = _single_block([
            ir.Load(V(1), V(0), 0),
            ir.BinOp(V(2), "add", V(1), ir.Const(1)),   # RAW on v1
            ir.Store(V(2), V(0), 0),                     # after the load
            ir.Load(V(3), V(0), 8),
        ], ir.Ret(V(3)))
        func.params = [V(0)]
        schedule.run(func, _module(32))
        instrs = func.blocks[0].instrs
        positions = {id(i): n for n, i in enumerate(instrs)}
        load1 = next(i for i in instrs
                     if isinstance(i, ir.Load) and i.offset == 0)
        add = next(i for i in instrs if isinstance(i, ir.BinOp))
        store = next(i for i in instrs if isinstance(i, ir.Store))
        assert positions[id(load1)] < positions[id(add)]
        assert positions[id(add)] < positions[id(store)]

    def test_deterministic(self) -> None:
        def build():
            return _single_block([
                ir.Load(V(1), V(0), 0),
                ir.Load(V(2), V(0), 8),
                ir.BinOp(V(3), "add", V(1), V(2)),
                ir.BinOp(V(4), "mul", V(3), ir.Const(3)),
            ], ir.Ret(V(4)))

        a, b = build(), build()
        schedule.run(a, _module(32))
        schedule.run(b, _module(32))
        assert [str(i) for i in a.blocks[0].instrs] == \
            [str(i) for i in b.blocks[0].instrs]


def test_inline_module_pass_idempotent_semantics() -> None:
    source = """
    int twice(int x) { return x + x; }
    int thrice(int x) { return twice(x) + x; }
    int main() {
        int s = 0;
        for (int i = 0; i < 5; i++) { s += thrice(i); }
        putint(s);
        return 0;
    }
    """
    run_minc_all_levels(source)
