"""Workload plumbing shared by the eight MiBench-analog benchmarks.

Each workload module provides MinC source text for a given *scale*
(``micro``/``small``/``large``) plus a pure-Python reference that predicts
the program's exact output bytes. The reference doubles as the compiler
and simulator test oracle.

Determinism convention: all inputs are derived from a 16-bit LCG
(``x = (x * 25173 + 13849) & 0xFFFF``) whose products stay below 2^31, so
the sequence is identical on armlet-32 and armlet-64. Program output is
emitted via ``putint(v & 0x7fffffff)`` or ``puthex`` of 32-bit-masked
values, making the output text width-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

SCALES = ("micro", "small", "large")

LCG_MULT = 25173
LCG_ADD = 13849
LCG_MASK = 0xFFFF

# MinC fragment implementing the shared input generator.
LCG_MINC = """
int lcg_state = %(seed)d;

int rnd() {
    lcg_state = (lcg_state * 25173 + 13849) & 65535;
    return lcg_state;
}
"""


def lcg_stream(seed: int):
    """Python twin of the MinC ``rnd()`` generator."""
    state = seed
    while True:
        state = (state * LCG_MULT + LCG_ADD) & LCG_MASK
        yield state


class OutputBuilder:
    """Accumulates expected output exactly as the kernel would emit it."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def putint(self, value: int) -> None:
        self._chunks.append(f"{value}\n".encode())

    def puthex(self, value: int) -> None:
        self._chunks.append(f"{value:x}\n".encode())

    def putchar(self, value: int) -> None:
        self._chunks.append(bytes([value & 0xFF]))

    @property
    def data(self) -> bytes:
        return b"".join(self._chunks)


@dataclass(frozen=True)
class Workload:
    """One benchmark: source generator plus reference oracle."""

    name: str
    description: str
    source: Callable[[str], str]
    reference: Callable[[str, int], bytes]
    scales: tuple[str, ...] = SCALES

    def check_scale(self, scale: str) -> str:
        if scale not in self.scales:
            raise ValueError(
                f"{self.name}: unknown scale {scale!r}; "
                f"available {self.scales}")
        return scale


def mask32(value: int) -> int:
    return value & 0xFFFF_FFFF


def out31(value: int) -> int:
    """The width-independent output mask used by every workload."""
    return value & 0x7FFF_FFFF
