"""rijndael: bit-exact AES-128 ECB encryption (MiBench rijndael).

Table-driven, like the MiBench original: the S-box ships in the data
segment (generated at source-build time from the GF(2^8) generator walk,
not hand-typed constants). The key schedule and rounds follow FIPS-197;
the test suite validates the Python oracle against the FIPS-197
known-answer vector. Key and plaintext blocks come from the shared LCG.
"""

from __future__ import annotations

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

_PARAMS = {"micro": 1, "small": 8, "large": 32}
_SEED = 83

_SOURCE = LCG_MINC + """
int sbox[256] = {%(sbox)s};
int rkey[176];
int state[16];

int xtime(int b) {
    b = b << 1;
    if (b & 256) { b = b ^ 283; }
    return b & 255;
}

void expand_key() {
    int rcon = 1;
    for (int i = 16; i < 176; i += 4) {
        int t0 = rkey[i - 4];
        int t1 = rkey[i - 3];
        int t2 = rkey[i - 2];
        int t3 = rkey[i - 1];
        if (i %% 16 == 0) {
            int tmp = t0;
            t0 = sbox[t1] ^ rcon;
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
            rcon = xtime(rcon);
        }
        rkey[i] = rkey[i - 16] ^ t0;
        rkey[i + 1] = rkey[i - 15] ^ t1;
        rkey[i + 2] = rkey[i - 14] ^ t2;
        rkey[i + 3] = rkey[i - 13] ^ t3;
    }
}

void add_round_key(int round) {
    for (int i = 0; i < 16; i++) {
        state[i] = state[i] ^ rkey[round * 16 + i];
    }
}

void sub_shift() {
    int t[16];
    for (int i = 0; i < 16; i++) { t[i] = sbox[state[i]]; }
    for (int r = 0; r < 4; r++) {
        for (int c = 0; c < 4; c++) {
            state[4 * c + r] = t[4 * ((c + r) %% 4) + r];
        }
    }
}

void mix_columns() {
    for (int c = 0; c < 4; c++) {
        int a0 = state[4 * c];
        int a1 = state[4 * c + 1];
        int a2 = state[4 * c + 2];
        int a3 = state[4 * c + 3];
        state[4 * c] = xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3;
        state[4 * c + 1] = a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3;
        state[4 * c + 2] = a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3;
        state[4 * c + 3] = xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3);
    }
}

void encrypt_block() {
    add_round_key(0);
    for (int round = 1; round < 10; round++) {
        sub_shift();
        mix_columns();
        add_round_key(round);
    }
    sub_shift();
    add_round_key(10);
}

int main() {
    for (int i = 0; i < 16; i++) { rkey[i] = rnd() & 255; }
    expand_key();

    int check = 0;
    for (int blk = 0; blk < %(blocks)d; blk++) {
        for (int i = 0; i < 16; i++) { state[i] = rnd() & 255; }
        encrypt_block();
        for (int i = 0; i < 16; i++) {
            check = (check * 31 + state[i]) & 16777215;
        }
    }
    putint(check);
    putint(state[0] * 256 + state[15]);
    putint(sbox[83]);
    return 0;
}
"""


def make_sbox() -> list[int]:
    sbox = [0] * 256
    p = q = 1
    while True:
        p = (p ^ (p << 1) ^ (0x1B if p & 0x80 else 0)) & 0xFF
        q = (q ^ (q << 1)) & 0xFF
        q = (q ^ (q << 2)) & 0xFF
        q = (q ^ (q << 4)) & 0xFF
        if q & 0x80:
            q ^= 0x09
        x = q
        for k in (1, 2, 3, 4):
            x ^= ((q << k) | (q >> (8 - k)))
        sbox[p] = (x ^ 0x63) & 0xFF
        if p == 1:
            break
    sbox[0] = 0x63
    return sbox


_SBOX = make_sbox()


def _xtime(b: int) -> int:
    return ((b << 1) ^ (0x1B if b & 0x80 else 0)) & 0xFF


def expand_key(key: bytes) -> list[int]:
    rkey = list(key)
    rcon = 1
    for i in range(16, 176, 4):
        t = rkey[i - 4:i]
        if i % 16 == 0:
            t = [_SBOX[t[1]] ^ rcon, _SBOX[t[2]], _SBOX[t[3]], _SBOX[t[0]]]
            rcon = _xtime(rcon)
        for j in range(4):
            rkey.append(rkey[i - 16 + j] ^ t[j])
    return rkey


def encrypt_block(block: bytes, rkey: list[int]) -> bytes:
    s = list(block)

    def add_round_key(rnd: int) -> None:
        for i in range(16):
            s[i] ^= rkey[rnd * 16 + i]

    def sub_shift() -> None:
        t = [_SBOX[b] for b in s]
        for r in range(4):
            for c in range(4):
                s[4 * c + r] = t[4 * ((c + r) % 4) + r]

    def mix_columns() -> None:
        for c in range(4):
            a = s[4 * c:4 * c + 4]
            s[4 * c + 0] = _xtime(a[0]) ^ _xtime(a[1]) ^ a[1] ^ a[2] ^ a[3]
            s[4 * c + 1] = a[0] ^ _xtime(a[1]) ^ _xtime(a[2]) ^ a[2] ^ a[3]
            s[4 * c + 2] = a[0] ^ a[1] ^ _xtime(a[2]) ^ _xtime(a[3]) ^ a[3]
            s[4 * c + 3] = _xtime(a[0]) ^ a[0] ^ a[1] ^ a[2] ^ _xtime(a[3])

    add_round_key(0)
    for rnd in range(1, 10):
        sub_shift()
        mix_columns()
        add_round_key(rnd)
    sub_shift()
    add_round_key(10)
    return bytes(s)


def reference(scale: str, xlen: int) -> bytes:
    blocks = _PARAMS[scale]
    rnd = lcg_stream(_SEED)
    key = bytes(next(rnd) & 255 for _ in range(16))
    rkey = expand_key(key)
    check = 0
    last = b"\x00" * 16
    for _ in range(blocks):
        block = bytes(next(rnd) & 255 for _ in range(16))
        last = encrypt_block(block, rkey)
        for b in last:
            check = (check * 31 + b) & 0xFFFFFF
    out = OutputBuilder()
    out.putint(check)
    out.putint(last[0] * 256 + last[15])
    out.putint(_SBOX[83])
    return out.data


def source(scale: str) -> str:
    table = ", ".join(str(v) for v in _SBOX)
    return _SOURCE % {"blocks": _PARAMS[scale], "seed": _SEED,
                      "sbox": table}


WORKLOAD = Workload(
    name="rijndael",
    description="bit-exact AES-128 ECB with in-program S-box generation "
                "(MiBench rijndael)",
    source=source,
    reference=reference,
)
