"""Workload registry and program builder with compile caching."""

from __future__ import annotations

from functools import lru_cache

from ..compiler import TARGETS, Target, compile_source
from ..isa.program import Program
from .base import SCALES, Workload


def _load_all() -> dict[str, Workload]:
    from . import (
        blowfish,
        dijkstra,
        fft,
        gsm,
        patricia,
        qsort,
        rijndael,
        sha,
    )

    modules = (qsort, dijkstra, fft, sha, blowfish, gsm, patricia,
               rijndael)
    return {m.WORKLOAD.name: m.WORKLOAD for m in modules}


WORKLOADS: dict[str, Workload] = _load_all()
BENCHMARKS: tuple[str, ...] = tuple(WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available {sorted(WORKLOADS)}"
        ) from None


@lru_cache(maxsize=512)
def build_program(name: str, scale: str, opt_level: str,
                  target_name: str) -> Program:
    """Compile one benchmark at one scale/level/target (cached)."""
    workload = get_workload(name)
    workload.check_scale(scale)
    target: Target = TARGETS[target_name]
    return compile_source(workload.source(scale), opt_level, target,
                          name=f"{name}.{scale}")


def expected_output(name: str, scale: str, xlen: int) -> bytes:
    """Reference output bytes predicted by the Python oracle."""
    workload = get_workload(name)
    workload.check_scale(scale)
    return workload.reference(scale, xlen)


__all__ = ["BENCHMARKS", "SCALES", "WORKLOADS", "build_program",
           "expected_output", "get_workload"]
