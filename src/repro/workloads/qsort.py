"""qsort: recursive quicksort over an LCG-generated array (MiBench qsort
analogue). Branch-heavy, recursion-heavy, pointer-based swaps."""

from __future__ import annotations

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

_PARAMS = {"micro": 24, "small": 160, "large": 768}
_SEED = 7

_SOURCE = LCG_MINC + """
int data[%(n)d];

void quicksort(int* a, int lo, int hi) {
    if (lo >= hi) { return; }
    int pivot = a[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (a[i] < pivot) { i++; }
        while (a[j] > pivot) { j--; }
        if (i <= j) {
            int t = a[i];
            a[i] = a[j];
            a[j] = t;
            i++;
            j--;
        }
    }
    quicksort(a, lo, j);
    quicksort(a, i, hi);
}

int main() {
    int n = %(n)d;
    for (int k = 0; k < n; k++) { data[k] = rnd(); }
    quicksort(data, 0, n - 1);
    int sum = 0;
    int unsorted = 0;
    for (int k = 0; k < n; k++) {
        sum = (sum * 31 + data[k]) & 1048575;
        if (k > 0 && data[k] < data[k - 1]) { unsorted++; }
    }
    putint(sum);
    putint(unsorted);
    putint(data[0]);
    putint(data[n - 1]);
    return 0;
}
"""


def source(scale: str) -> str:
    n = _PARAMS[scale]
    return _SOURCE % {"n": n, "seed": _SEED}


def reference(scale: str, xlen: int) -> bytes:
    n = _PARAMS[scale]
    rnd = lcg_stream(_SEED)
    data = sorted(next(rnd) for _ in range(n))
    out = OutputBuilder()
    total = 0
    for value in data:
        total = (total * 31 + value) & 0xFFFFF
    out.putint(total)
    out.putint(0)
    out.putint(data[0])
    out.putint(data[-1])
    return out.data


WORKLOAD = Workload(
    name="qsort",
    description="recursive quicksort over LCG data (MiBench qsort)",
    source=source,
    reference=reference,
)
