"""sha: bit-exact SHA-1 over an LCG-generated message (MiBench sha).

The implementation keeps all state in explicitly 32-bit-masked ints so
output is identical on both cores, and the message lives in a byte array
(exercising LDRB/STRB paths). The test suite validates the digest against
:mod:`hashlib`.
"""

from __future__ import annotations

import hashlib

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

# message length in bytes (any value; padding handled in-program)
_PARAMS = {"micro": 40, "small": 256, "large": 2048}
_SEED = 31

_SOURCE = LCG_MINC + """
char msg[%(padded)d];
int w[80];
int h[5];

int rotl(int x, int k) {
    return ((x << k) | ushr(x & 4294967295, 32 - k)) & 4294967295;
}

void sha1_block(char* block) {
    for (int t = 0; t < 16; t++) {
        w[t] = ((block[t * 4] << 24) | (block[t * 4 + 1] << 16)
                | (block[t * 4 + 2] << 8) | block[t * 4 + 3])
               & 4294967295;
    }
    for (int t = 16; t < 80; t++) {
        w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    int a = h[0]; int b = h[1]; int c = h[2]; int d = h[3]; int e = h[4];
    for (int t = 0; t < 80; t++) {
        int f;
        int k;
        if (t < 20) {
            f = (b & c) | (~b & d);
            k = 1518500249;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 1859775393;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 2400959708;
        } else {
            f = b ^ c ^ d;
            k = 3395469782;
        }
        int tmp = (rotl(a, 5) + (f & 4294967295) + e + k + w[t])
                  & 4294967295;
        e = d;
        d = c;
        c = rotl(b, 30);
        b = a;
        a = tmp;
    }
    h[0] = (h[0] + a) & 4294967295;
    h[1] = (h[1] + b) & 4294967295;
    h[2] = (h[2] + c) & 4294967295;
    h[3] = (h[3] + d) & 4294967295;
    h[4] = (h[4] + e) & 4294967295;
}

int main() {
    int n = %(n)d;
    for (int i = 0; i < n; i++) { msg[i] = rnd() & 255; }
    // padding: 0x80, zeros, 64-bit big-endian bit length
    int padded = %(padded)d;
    msg[n] = 128;
    for (int i = n + 1; i < padded; i++) { msg[i] = 0; }
    int bits = n * 8;
    msg[padded - 1] = bits & 255;
    msg[padded - 2] = ushr(bits, 8) & 255;
    msg[padded - 3] = ushr(bits, 16) & 255;
    msg[padded - 4] = ushr(bits, 24) & 255;

    h[0] = 1732584193;
    h[1] = 4023233417;
    h[2] = 2562383102;
    h[3] = 271733878;
    h[4] = 3285377520;
    for (int off = 0; off < padded; off += 64) {
        sha1_block(msg + off);
    }
    for (int i = 0; i < 5; i++) { puthex(h[i] & 4294967295); }
    return 0;
}
"""


def _padded_len(n: int) -> int:
    padded = n + 1 + 8
    if padded % 64:
        padded += 64 - padded % 64
    return padded


def source(scale: str) -> str:
    n = _PARAMS[scale]
    return _SOURCE % {"n": n, "padded": _padded_len(n), "seed": _SEED}


def message_bytes(scale: str) -> bytes:
    rnd = lcg_stream(_SEED)
    return bytes(next(rnd) & 255 for _ in range(_PARAMS[scale]))


def reference(scale: str, xlen: int) -> bytes:
    digest = hashlib.sha1(message_bytes(scale)).digest()
    out = OutputBuilder()
    for i in range(5):
        out.puthex(int.from_bytes(digest[4 * i:4 * i + 4], "big"))
    return out.data


WORKLOAD = Workload(
    name="sha",
    description="bit-exact SHA-1 over an LCG message (MiBench sha)",
    source=source,
    reference=reference,
)
