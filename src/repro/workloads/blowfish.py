"""blowfish: a Feistel block cipher with the exact Blowfish structure
(MiBench blowfish analogue).

Substitution: the canonical Blowfish initializes its P-array and S-boxes
from the hexadecimal digits of pi; we fill them from the deterministic
LCG instead (the table *contents* are irrelevant to the workload's
microarchitectural character -- table lookups, xors, adds, rotations --
and embedding 1042 pi-derived constants would add nothing). The key
schedule (xor key into P, then re-key by encrypting a rolling zero block
through P and the S-boxes) and the 16-round F-function datapath follow
Blowfish exactly; the S-box size and re-key depth scale with the input
class so the micro scale stays simulable.
"""

from __future__ import annotations

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream, mask32

# (sbox_size, rounds, rekey_pairs, blocks)
_PARAMS = {
    "micro": (32, 8, 2, 2),
    "small": (128, 16, 18, 16),
    "large": (256, 16, 64, 64),
}
_SEED = 43

_SOURCE = LCG_MINC + """
int p[%(p_len)d];
int s[%(s_len)d];
int feistel_l = 0;
int feistel_r = 0;

int rand32() {
    int hi = rnd();
    int lo = rnd();
    return ((hi << 16) | lo) & 4294967295;
}

int ffunc(int x) {
    int ss = %(sbox)d;
    int a = ushr(x & 4294967295, 24) & (ss - 1);
    int b = ushr(x & 4294967295, 16) & (ss - 1);
    int c = ushr(x & 4294967295, 8) & (ss - 1);
    int d = x & (ss - 1);
    int y = (s[a] + s[ss + b]) & 4294967295;
    y = y ^ s[2 * ss + c];
    return (y + s[3 * ss + d]) & 4294967295;
}

void encrypt() {
    int l = feistel_l;
    int r = feistel_r;
    for (int i = 0; i < %(rounds)d; i++) {
        l = (l ^ p[i]) & 4294967295;
        r = (r ^ ffunc(l)) & 4294967295;
        int t = l;
        l = r;
        r = t;
    }
    int t = l;
    l = r;
    r = t;
    r = (r ^ p[%(rounds)d]) & 4294967295;
    l = (l ^ p[%(rounds)d + 1]) & 4294967295;
    feistel_l = l;
    feistel_r = r;
}

int main() {
    int p_len = %(p_len)d;
    int s_len = %(s_len)d;
    for (int i = 0; i < p_len; i++) { p[i] = rand32(); }
    for (int i = 0; i < s_len; i++) { s[i] = rand32(); }

    int key0 = rand32();
    int key1 = rand32();
    for (int i = 0; i < p_len; i++) {
        if (i %% 2 == 0) { p[i] = p[i] ^ key0; }
        else { p[i] = p[i] ^ key1; }
    }

    feistel_l = 0;
    feistel_r = 0;
    for (int i = 0; i < %(rekey)d; i++) {
        encrypt();
        p[(2 * i) %% p_len] = feistel_l;
        p[(2 * i + 1) %% p_len] = feistel_r;
    }

    int check = 0;
    for (int blk = 0; blk < %(blocks)d; blk++) {
        feistel_l = (feistel_l ^ rand32()) & 4294967295;
        feistel_r = (feistel_r ^ rand32()) & 4294967295;
        encrypt();
        check = (check ^ feistel_l ^ feistel_r) & 4294967295;
    }
    puthex(check);
    puthex(feistel_l);
    puthex(feistel_r);
    return 0;
}
"""


def source(scale: str) -> str:
    sbox, rounds, rekey, blocks = _PARAMS[scale]
    return _SOURCE % {
        "sbox": sbox, "s_len": 4 * sbox, "p_len": rounds + 2,
        "rounds": rounds, "rekey": rekey, "blocks": blocks, "seed": _SEED,
    }


def reference(scale: str, xlen: int) -> bytes:
    sbox, rounds, rekey, blocks = _PARAMS[scale]
    rnd = lcg_stream(_SEED)

    def rand32() -> int:
        hi = next(rnd)
        lo = next(rnd)
        return mask32((hi << 16) | lo)

    p_len = rounds + 2
    p = [rand32() for _ in range(p_len)]
    s = [rand32() for _ in range(4 * sbox)]

    def ffunc(x: int) -> int:
        a = (x >> 24) & (sbox - 1)
        b = (x >> 16) & (sbox - 1)
        c = (x >> 8) & (sbox - 1)
        d = x & (sbox - 1)
        y = mask32(s[a] + s[sbox + b])
        y ^= s[2 * sbox + c]
        return mask32(y + s[3 * sbox + d])

    state = [0, 0]

    def encrypt() -> None:
        l, r = state
        for i in range(rounds):
            l = mask32(l ^ p[i])
            r = mask32(r ^ ffunc(l))
            l, r = r, l
        l, r = r, l
        r = mask32(r ^ p[rounds])
        l = mask32(l ^ p[rounds + 1])
        state[0], state[1] = l, r

    key0 = rand32()
    key1 = rand32()
    for i in range(p_len):
        p[i] ^= key0 if i % 2 == 0 else key1

    state[0] = state[1] = 0
    for i in range(rekey):
        encrypt()
        p[(2 * i) % p_len] = state[0]
        p[(2 * i + 1) % p_len] = state[1]

    check = 0
    for _blk in range(blocks):
        state[0] = mask32(state[0] ^ rand32())
        state[1] = mask32(state[1] ^ rand32())
        encrypt()
        check = mask32(check ^ state[0] ^ state[1])
    out = OutputBuilder()
    out.puthex(check)
    out.puthex(state[0])
    out.puthex(state[1])
    return out.data


WORKLOAD = Workload(
    name="blowfish",
    description="Blowfish-structure Feistel cipher with LCG-seeded boxes "
                "(MiBench blowfish)",
    source=source,
    reference=reference,
)
