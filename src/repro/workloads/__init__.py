"""The eight MiBench-analog benchmarks, written in MinC.

``build_program(name, scale, opt_level, target_name)`` compiles any
benchmark; ``expected_output`` gives the pure-Python oracle's predicted
output bytes for validation.
"""

from .base import SCALES, Workload, lcg_stream
from .registry import (
    BENCHMARKS,
    WORKLOADS,
    build_program,
    expected_output,
    get_workload,
)

__all__ = [
    "BENCHMARKS",
    "SCALES",
    "WORKLOADS",
    "Workload",
    "build_program",
    "expected_output",
    "get_workload",
    "lcg_stream",
]
