"""fft: fixed-point radix-2 iterative FFT (MiBench fft analogue).

Q14 twiddle factors come from a sine lookup table embedded in the data
segment (generated at source-build time), giving the benchmark both a
table-lookup component and multiply-dominated butterflies. Per-stage >>1
scaling keeps every product below 2^31 so the computation is identical on
armlet-32 and armlet-64.
"""

from __future__ import annotations

import math

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

_PARAMS = {"micro": 16, "small": 64, "large": 256}
_SEED = 23
_Q = 14


def _sine_table(n: int) -> list[int]:
    return [round(math.sin(2 * math.pi * i / n) * (1 << _Q))
            for i in range(n)]


_SOURCE = LCG_MINC + """
int sintab[%(n)d] = {%(sintab)s};
int re[%(n)d];
int im[%(n)d];

int main() {
    int n = %(n)d;
    for (int i = 0; i < n; i++) {
        re[i] = (rnd() & 4095) - 2048;
        im[i] = 0;
    }

    int j = 0;
    for (int i = 1; i < n; i++) {
        int bit = n / 2;
        while (j & bit) {
            j = j ^ bit;
            bit = bit / 2;
        }
        j = j | bit;
        if (i < j) {
            int t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
    }

    int len = 2;
    while (len <= n) {
        int half = len / 2;
        int step = n / len;
        for (int base = 0; base < n; base += len) {
            for (int k = 0; k < half; k++) {
                int idx = k * step;
                int wi = 0 - sintab[idx];
                int ci = idx + n / 4;
                if (ci >= n) { ci -= n; }
                int wr = sintab[ci];
                int xr = re[base + k + half];
                int xi = im[base + k + half];
                int vr = (xr * wr - xi * wi) >> %(q)d;
                int vi = (xr * wi + xi * wr) >> %(q)d;
                int ur = re[base + k];
                int ui = im[base + k];
                re[base + k] = (ur + vr) >> 1;
                im[base + k] = (ui + vi) >> 1;
                re[base + k + half] = (ur - vr) >> 1;
                im[base + k + half] = (ui - vi) >> 1;
            }
        }
        len = len * 2;
    }

    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum = (sum + re[i] * (i + 1) + im[i]) & 1048575;
    }
    putint(sum);
    putint(re[0] & 65535);
    putint(im[n / 2] & 65535);
    return 0;
}
"""


def source(scale: str) -> str:
    n = _PARAMS[scale]
    table = ", ".join(str(v) for v in _sine_table(n))
    return _SOURCE % {"n": n, "sintab": table, "q": _Q, "seed": _SEED}


def reference(scale: str, xlen: int) -> bytes:
    n = _PARAMS[scale]
    sintab = _sine_table(n)
    rnd = lcg_stream(_SEED)
    re = [(next(rnd) & 4095) - 2048 for _ in range(n)]
    im = [0] * n

    j = 0
    for i in range(1, n):
        bit = n // 2
        while j & bit:
            j ^= bit
            bit //= 2
        j |= bit
        if i < j:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]

    length = 2
    while length <= n:
        half = length // 2
        step = n // length
        for base in range(0, n, length):
            for k in range(half):
                idx = k * step
                wi = -sintab[idx]
                ci = idx + n // 4
                if ci >= n:
                    ci -= n
                wr = sintab[ci]
                xr, xi = re[base + k + half], im[base + k + half]
                vr = (xr * wr - xi * wi) >> _Q
                vi = (xr * wi + xi * wr) >> _Q
                ur, ui = re[base + k], im[base + k]
                re[base + k] = (ur + vr) >> 1
                im[base + k] = (ui + vi) >> 1
                re[base + k + half] = (ur - vr) >> 1
                im[base + k + half] = (ui - vi) >> 1
        length *= 2

    total = 0
    for i in range(n):
        total = (total + re[i] * (i + 1) + im[i]) & 0xFFFFF
    out = OutputBuilder()
    out.putint(total)
    out.putint(re[0] & 0xFFFF)
    out.putint(im[n // 2] & 0xFFFF)
    return out.data


WORKLOAD = Workload(
    name="fft",
    description="fixed-point radix-2 FFT with Q14 twiddle table "
                "(MiBench fft)",
    source=source,
    reference=reference,
)
