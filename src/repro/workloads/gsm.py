"""gsm: GSM full-rate style LPC front end (MiBench gsm analogue).

Per 160-sample frame: preemphasis, 9-lag autocorrelation, a fixed-point
reflection-coefficient recursion with explicit integer divisions (the
divide-heavy signature of the GSM encoder's short-term analysis), and
log-area-ratio quantization. All arithmetic is pinned below 2^31 so the
computation is width-independent.
"""

from __future__ import annotations

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

_LAGS = 9
# (frame length, frames); micro uses a shortened frame
_PARAMS = {"micro": (48, 1), "small": (160, 2), "large": (160, 8)}
_SEED = 57

_SOURCE = LCG_MINC + """
int samples[%(total)d];
int acf[%(lags)d];
int refl[%(lags)d];

int main() {
    int frames = %(frames)d;
    int total = frames * %(frame)d;
    for (int i = 0; i < total; i++) {
        samples[i] = ((rnd() & 8191) - 4096) / 64;
    }

    int checksum = 0;
    for (int f = 0; f < frames; f++) {
        int base = f * %(frame)d;

        // preemphasis: s[i] -= (7 * s[i-1]) / 8
        int prev = 0;
        for (int i = 0; i < %(frame)d; i++) {
            int cur = samples[base + i];
            samples[base + i] = cur - (7 * prev) / 8;
            prev = cur;
        }

        // autocorrelation over 9 lags
        for (int k = 0; k < %(lags)d; k++) {
            int sum = 0;
            for (int i = k; i < %(frame)d; i++) {
                sum += samples[base + i] * samples[base + i - k];
            }
            acf[k] = sum;
        }

        // reflection coefficients (division-heavy fixed-point recursion)
        int energy = acf[0];
        if (energy < 1) { energy = 1; }
        for (int k = 1; k < %(lags)d; k++) {
            int num = acf[k] * 512;
            refl[k] = num / energy;
            if (refl[k] > 511) { refl[k] = 511; }
            if (refl[k] < -511) { refl[k] = -511; }
            energy = energy - (refl[k] * refl[k] * (energy / 512)) / 512;
            if (energy < 1) { energy = 1; }
        }

        // log-area-ratio style quantization
        for (int k = 1; k < %(lags)d; k++) {
            int r = refl[k];
            int lar;
            if (r < 0) { lar = 0 - r; } else { lar = r; }
            if (lar > 340) { lar = 2 * lar - 340; }
            else if (lar > 170) { lar = lar + 170; }
            else { lar = 2 * lar; }
            if (r < 0) { lar = 0 - lar; }
            checksum = (checksum + lar * k) & 16777215;
        }
    }
    putint(checksum);
    putint(acf[0] & 1048575);
    putint(refl[%(lags)d - 1] & 1023);
    return 0;
}
"""


def source(scale: str) -> str:
    frame, frames = _PARAMS[scale]
    return _SOURCE % {"frames": frames, "frame": frame, "lags": _LAGS,
                      "total": frames * frame, "seed": _SEED}


def _cdiv(a: int, b: int) -> int:
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def reference(scale: str, xlen: int) -> bytes:
    frame, frames = _PARAMS[scale]
    rnd = lcg_stream(_SEED)
    total = frames * frame
    samples = [_cdiv((next(rnd) & 8191) - 4096, 64) for _ in range(total)]

    checksum = 0
    acf = [0] * _LAGS
    refl = [0] * _LAGS
    for f in range(frames):
        base = f * frame
        prev = 0
        for i in range(frame):
            cur = samples[base + i]
            samples[base + i] = cur - _cdiv(7 * prev, 8)
            prev = cur
        for k in range(_LAGS):
            acf[k] = sum(samples[base + i] * samples[base + i - k]
                         for i in range(k, frame))
        energy = max(acf[0], 1)
        for k in range(1, _LAGS):
            refl[k] = _cdiv(acf[k] * 512, energy)
            refl[k] = max(-511, min(511, refl[k]))
            energy -= _cdiv(refl[k] * refl[k] * _cdiv(energy, 512), 512)
            energy = max(energy, 1)
        for k in range(1, _LAGS):
            r = refl[k]
            lar = -r if r < 0 else r
            if lar > 340:
                lar = 2 * lar - 340
            elif lar > 170:
                lar = lar + 170
            else:
                lar = 2 * lar
            if r < 0:
                lar = -lar
            checksum = (checksum + lar * k) & 0xFFFFFF
    out = OutputBuilder()
    out.putint(checksum)
    out.putint(acf[0] & 0xFFFFF)
    out.putint(refl[_LAGS - 1] & 1023)
    return out.data


WORKLOAD = Workload(
    name="gsm",
    description="GSM-style LPC analysis with fixed-point divisions "
                "(MiBench gsm)",
    source=source,
    reference=reference,
)
