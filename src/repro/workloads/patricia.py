"""patricia: bitwise trie insertion and lookup (MiBench patricia
analogue). Pointer-chasing through node arrays with data-dependent
branches -- the cache- and branch-unfriendly end of the suite.

Nodes live in parallel global arrays (MinC has no malloc); children are
node indices, with 0 as the null sentinel (node 0 is a reserved root).
Keys are 16-bit values walked most-significant-bit first.
"""

from __future__ import annotations

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

# (inserted keys, lookups)
_PARAMS = {
    "micro": (12, 24),
    "small": (160, 320),
    "large": (1024, 2048),
}
_SEED = 71
_BITS = 16

_SOURCE = LCG_MINC + """
int node_left[%(max_nodes)d];
int node_right[%(max_nodes)d];
int node_key[%(max_nodes)d];
int node_used[%(max_nodes)d];
int node_count = 1;

int insert(int key) {
    int cur = 0;
    for (int bit = %(bits)d - 1; bit >= 0; bit--) {
        int side = ushr(key, bit) & 1;
        int next;
        if (side) { next = node_right[cur]; }
        else { next = node_left[cur]; }
        if (next == 0) {
            next = node_count;
            node_count++;
            node_left[next] = 0;
            node_right[next] = 0;
            node_used[next] = 0;
            if (side) { node_right[cur] = next; }
            else { node_left[cur] = next; }
        }
        cur = next;
    }
    if (node_used[cur]) { return 0; }
    node_used[cur] = 1;
    node_key[cur] = key;
    return 1;
}

int lookup(int key) {
    int cur = 0;
    for (int bit = %(bits)d - 1; bit >= 0; bit--) {
        int side = ushr(key, bit) & 1;
        if (side) { cur = node_right[cur]; }
        else { cur = node_left[cur]; }
        if (cur == 0) { return 0; }
    }
    return node_used[cur] && node_key[cur] == key;
}

int main() {
    int inserted = 0;
    for (int i = 0; i < %(keys)d; i++) {
        inserted += insert(rnd());
    }
    int hits = 0;
    for (int i = 0; i < %(lookups)d; i++) {
        hits += lookup(rnd());
    }
    putint(inserted);
    putint(node_count);
    putint(hits);
    return 0;
}
"""


def source(scale: str) -> str:
    keys, lookups = _PARAMS[scale]
    max_nodes = keys * _BITS + 2
    return _SOURCE % {"keys": keys, "lookups": lookups,
                      "max_nodes": max_nodes, "bits": _BITS,
                      "seed": _SEED}


def reference(scale: str, xlen: int) -> bytes:
    keys, lookups = _PARAMS[scale]
    rnd = lcg_stream(_SEED)
    stored: set[int] = set()
    node_count = 1
    # Count distinct trie nodes exactly as the program allocates them:
    # one node per novel (bit-depth) prefix.
    prefixes: set[tuple[int, int]] = set()
    inserted = 0
    for _ in range(keys):
        key = next(rnd)
        fresh = key not in stored
        inserted += 1 if fresh else 0
        stored.add(key)
        for depth in range(1, _BITS + 1):
            prefix = key >> (_BITS - depth)
            if (depth, prefix) not in prefixes:
                prefixes.add((depth, prefix))
                node_count += 1
    hits = 0
    for _ in range(lookups):
        hits += 1 if next(rnd) in stored else 0
    out = OutputBuilder()
    out.putint(inserted)
    out.putint(node_count)
    out.putint(hits)
    return out.data


WORKLOAD = Workload(
    name="patricia",
    description="bitwise trie insert/lookup over 16-bit keys "
                "(MiBench patricia)",
    source=source,
    reference=reference,
)
