"""dijkstra: repeated single-source shortest paths over a dense random
adjacency matrix (MiBench dijkstra analogue). Memory-scan and
compare-heavy; the paper notes it optimizes extremely well."""

from __future__ import annotations

from .base import LCG_MINC, OutputBuilder, Workload, lcg_stream

_PARAMS = {
    "micro": (6, 2),
    "small": (24, 4),
    "large": (64, 8),
}
_SEED = 11
_INF = 99999

_SOURCE = LCG_MINC + """
int graph[%(nn)d];
int dist[%(n)d];
int visited[%(n)d];

int main() {
    int n = %(n)d;
    for (int i = 0; i < n * n; i++) {
        int w = rnd() %% 16;
        if (w == 0) { w = %(inf)d; }
        graph[i] = w;
    }
    int total = 0;
    for (int s = 0; s < %(sources)d; s++) {
        for (int i = 0; i < n; i++) {
            dist[i] = %(inf)d;
            visited[i] = 0;
        }
        dist[s] = 0;
        for (int round = 0; round < n; round++) {
            int best = 0 - 1;
            int bestd = %(inf)d + 1;
            for (int i = 0; i < n; i++) {
                if (!visited[i] && dist[i] < bestd) {
                    bestd = dist[i];
                    best = i;
                }
            }
            if (best < 0) { break; }
            visited[best] = 1;
            for (int i = 0; i < n; i++) {
                int nd = dist[best] + graph[best * n + i];
                if (nd < dist[i]) { dist[i] = nd; }
            }
        }
        for (int i = 0; i < n; i++) {
            total = (total + dist[i]) & 16777215;
        }
    }
    putint(total);
    return 0;
}
"""


def source(scale: str) -> str:
    n, sources = _PARAMS[scale]
    return _SOURCE % {"n": n, "nn": n * n, "sources": sources,
                      "inf": _INF, "seed": _SEED}


def reference(scale: str, xlen: int) -> bytes:
    n, sources = _PARAMS[scale]
    rnd = lcg_stream(_SEED)
    graph = []
    for _ in range(n * n):
        w = next(rnd) % 16
        graph.append(_INF if w == 0 else w)
    total = 0
    for s in range(sources):
        dist = [_INF] * n
        visited = [False] * n
        dist[s] = 0
        for _round in range(n):
            best, bestd = -1, _INF + 1
            for i in range(n):
                if not visited[i] and dist[i] < bestd:
                    bestd = dist[i]
                    best = i
            if best < 0:
                break
            visited[best] = True
            for i in range(n):
                nd = dist[best] + graph[best * n + i]
                if nd < dist[i]:
                    dist[i] = nd
        for i in range(n):
            total = (total + dist[i]) & 0xFFFFFF
    out = OutputBuilder()
    out.putint(total)
    return out.data


WORKLOAD = Workload(
    name="dijkstra",
    description="repeated shortest paths on a dense graph (MiBench "
                "dijkstra)",
    source=source,
    reference=reference,
)
