"""Statistical fault-injection campaigns.

A campaign draws ``n`` single-bit faults uniformly over (cycle x bit) for
one structure field of one compiled program on one core, runs each to
completion, and aggregates per-class AVF contributions:

    AVF(field) = sum_i weight_i * [outcome_i != MASKED] / n

With ``mode="uniform"`` weights are 1 and this is the textbook SFI
estimator (2,000 such samples is the paper's setting). With
``mode="occupancy"`` faults are drawn among *live* bits and weighted by
live/total occupancy, an unbiased importance-sampling variant that gives
usable estimates for large sparse arrays (the L2) at small n.

Campaigns are embarrassingly parallel at the trial level: each trial's
RNG stream depends only on ``(seed, field, trial)``, so ``workers > 1``
shards the trials across a process pool (see :mod:`.parallel`) and the
result is bit-exact equal to the serial run. A ``checkpoint`` persists
completed shards so an interrupted campaign resumes where it left off.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path

from ..isa.program import Program
from ..microarch.config import CoreConfig
from .fault import DEFAULT_AUTO_SNAPSHOTS, GoldenRun, run_golden_auto
from .injector import InjectionResult
from .outcomes import ALL_OUTCOMES, FAILURE_OUTCOMES
from .parallel import (
    CampaignCheckpoint,
    Shard,
    _shard_task,
    derive_rng,
    plan_shards,
    resolve_workers,
    run_shard,
    shard_span,
)
from .resilience import (
    DEFAULT_MAX_RETRIES,
    RetryPolicy,
    ShardSupervisor,
    default_shard_timeout,
    quarantined_result,
)
from .sampling import error_margin, fault_population

DEFAULT_SNAPSHOT_COUNT = DEFAULT_AUTO_SNAPSHOTS

__all__ = [
    "CampaignResult",
    "DEFAULT_SNAPSHOT_COUNT",
    "aggregate",
    "campaign_meta",
    "derive_rng",
    "run_campaign",
    "run_field_campaigns",
]

ProgressFn = Callable[[int, int], None]


@dataclass
class CampaignResult:
    """Aggregated outcome of one (program, core, field) campaign."""

    field: str
    program_name: str
    config_name: str
    mode: str
    n: int
    seed: int
    golden_cycles: int
    bit_count: int
    counts: dict[str, int] = dataclass_field(default_factory=dict)
    avf_by_class: dict[str, float] = dataclass_field(default_factory=dict)
    #: Early-termination accounting (trials pruned statically, spliced
    #: as unchanged, digest-converged, run to completion, plus the mean
    #: pre-convergence window). Excluded from equality: early exit is
    #: outcome-equivalent by construction, so two campaigns that differ
    #: only in *how* trials terminated are still the same result.
    pruning: dict = dataclass_field(default_factory=dict, compare=False)
    #: Wall-clock execution spans of the shards *this* invocation ran
    #: (checkpoint-restored shards have no span), one dict per shard
    #: (see :func:`repro.gefin.parallel.shard_span`). Feeds the Chrome
    #: campaign-timeline exporter. Excluded from equality and
    #: :meth:`to_dict`: timing describes a run, not the result.
    timeline: list[dict] = dataclass_field(default_factory=list,
                                           compare=False)
    #: Supervisor degradation report (:meth:`repro.gefin.resilience.
    #: Degradation.report`): retries, pool restarts, quarantined trials,
    #: and the achieved error margin recomputed from the trials that
    #: actually completed. Empty for a healthy campaign, and excluded
    #: from equality -- *how hard the host fought* is not part of the
    #: sampled result (the quarantined trials themselves are: they show
    #: up in ``counts["infrastructure"]``).
    degradation: dict = dataclass_field(default_factory=dict,
                                        compare=False)

    @property
    def avf(self) -> float:
        """Total architectural vulnerability factor of the field."""
        return sum(self.avf_by_class.get(o.value, 0.0)
                   for o in FAILURE_OUTCOMES)

    @property
    def completed_n(self) -> int:
        """Trials that actually simulated (quarantined ones excluded)."""
        return self.n - self.counts.get("infrastructure", 0)

    def margin(self, confidence: float = 0.99) -> float:
        """Statistical error margin achieved by the *completed* trials
        (Leveugle formulation). For a healthy campaign this is the
        margin of the full requested sample; quarantined trials widen
        it."""
        population = fault_population(self.bit_count, self.golden_cycles)
        completed = self.completed_n
        if completed <= 0:
            return 1.0
        return error_margin(population, completed, confidence)

    def to_dict(self) -> dict:
        out = {
            "field": self.field,
            "program": self.program_name,
            "config": self.config_name,
            "mode": self.mode,
            "n": self.n,
            "seed": self.seed,
            "golden_cycles": self.golden_cycles,
            "bit_count": self.bit_count,
            "counts": dict(self.counts),
            "avf_by_class": dict(self.avf_by_class),
            "avf": self.avf,
            "margin99": self.margin(0.99),
            "pruning": dict(self.pruning),
        }
        # Only degraded campaigns carry the key, keeping healthy result
        # documents byte-identical to pre-supervisor ones.
        if self.degradation:
            out["degradation"] = dict(self.degradation)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        raw_counts = data["counts"]
        return cls(
            field=data["field"],
            program_name=data["program"],
            config_name=data["config"],
            mode=data["mode"],
            n=data["n"],
            seed=data["seed"],
            golden_cycles=data["golden_cycles"],
            bit_count=data["bit_count"],
            # Normalize older documents (no infrastructure class yet) to
            # the current outcome vocabulary.
            counts={o.value: int(raw_counts.get(o.value, 0))
                    for o in ALL_OUTCOMES},
            avf_by_class=dict(data["avf_by_class"]),
            pruning=dict(data.get("pruning", {})),
            degradation=dict(data.get("degradation", {})),
        )


def aggregate(field: str, program_name: str, config_name: str, mode: str,
              seed: int, golden_cycles: int, bit_count: int,
              results: list[InjectionResult]) -> CampaignResult:
    """Fold raw injection results into a :class:`CampaignResult`.

    ``results`` must be in trial order: the weighted sums are folded in
    list order, so a permutation could perturb the float accumulation
    and break bit-exact serial/parallel equality.

    Quarantined (infrastructure-outcome) trials never simulated, so
    they are excluded from the estimator denominator: the AVF is the
    weighted failure mean over the trials that actually completed.
    """
    n = len(results)
    counts = {o.value: 0 for o in ALL_OUTCOMES}
    weighted = {o.value: 0.0 for o in ALL_OUTCOMES}
    tiers = {"static": 0, "unchanged": 0, "converged": 0, "full": 0}
    window_sum = 0
    for result in results:
        counts[result.outcome.value] += 1
        weighted[result.outcome.value] += result.weight
        tier = result.early or "full"
        tiers[tier] = tiers.get(tier, 0) + 1
        window_sum += result.window
    completed = n - counts["infrastructure"]
    avf_by_class = {
        o.value: (weighted[o.value] / completed if completed else 0.0)
        for o in FAILURE_OUTCOMES
    }
    pruning = dict(tiers)
    converged = tiers["converged"]
    pruning["mean_window"] = (window_sum / converged) if converged else 0.0
    return CampaignResult(
        field=field, program_name=program_name, config_name=config_name,
        mode=mode, n=n, seed=seed, golden_cycles=golden_cycles,
        bit_count=bit_count, counts=counts, avf_by_class=avf_by_class,
        pruning=pruning)


def campaign_meta(program_name: str, config_name: str, field: str, n: int,
                  seed: int, mode: str, burst: int,
                  shards: list[Shard]) -> dict:
    """Checkpoint header: everything that pins the sampled fault set."""
    return {
        "program": program_name,
        "config": config_name,
        "field": field,
        "n": n,
        "seed": seed,
        "mode": mode,
        "burst": burst,
        "shards": [[shard.start, shard.stop] for shard in shards],
    }


def run_campaign(program: Program, config: CoreConfig, field: str, n: int,
                 seed: int = 0, mode: str = "occupancy",
                 golden: GoldenRun | None = None,
                 keep_results: bool = False, burst: int = 1,
                 workers: int | None = None,
                 shard_size: int | None = None,
                 checkpoint: CampaignCheckpoint | str | Path | None = None,
                 snapshot_count: int = DEFAULT_SNAPSHOT_COUNT,
                 progress: ProgressFn | None = None,
                 early_exit: bool = True,
                 convergence_horizon: int | None = None,
                 trace: bool = False,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 shard_timeout: float | None = None,
                 fail_fast: bool = False,
                 metrics=None,
                 ) -> CampaignResult | tuple[CampaignResult,
                                             list[InjectionResult]]:
    """Run an ``n``-fault campaign against one structure field.

    ``burst`` > 1 selects the multi-bit upset model (that many adjacent
    bits flipped per fault).

    When ``golden`` is omitted the reference run is simulated once with
    automatic checkpoints (:func:`run_golden_auto`), so every trial
    warm-starts from the nearest snapshot instead of cycle 0.

    ``early_exit`` (on by default) enables static fault pruning and
    digest-reconvergence trial termination; ``convergence_horizon``
    bounds the post-injection digest-comparison window. Both are
    outcome-equivalent knobs -- they change trial wall-clock, never the
    aggregated counts -- and are deliberately excluded from the
    checkpoint header, so a checkpoint written under one setting
    resumes under any other.

    ``workers`` > 1 (default: the ``REPRO_WORKERS`` environment knob)
    fans the trial shards out over a process pool; results are bit-exact
    equal to the serial run for any worker count. ``checkpoint`` names a
    :class:`CampaignCheckpoint` (or its path): completed shards are
    persisted as they finish and an interrupted campaign resumes without
    re-running them. ``progress`` is called as ``progress(done_trials,
    n)`` after every completed shard.

    ``trace`` attaches a fault-propagation provenance trail to every
    :class:`InjectionResult` (visible with ``keep_results``) and
    records per-shard wall-clock spans in ``CampaignResult.timeline``;
    classification and aggregation are unaffected.

    Parallel campaigns run under a :class:`~repro.gefin.resilience.
    ShardSupervisor`: a crashed or hung worker costs a retry (up to
    ``max_retries`` per shard, deterministic backoff), a shard past its
    watchdog deadline (``shard_timeout`` seconds; default derived from
    the golden cycle count, ``0`` disables) is killed and re-run, and a
    trial that still fails is quarantined as an ``infrastructure``
    outcome. The result then carries a ``degradation`` report with the
    achieved error margin over the trials that completed.
    ``fail_fast`` restores the old behavior: first infrastructure
    failure propagates. A campaign with no infrastructure faults is
    bit-exact identical under any of these settings.
    """
    workers = resolve_workers(workers)
    if golden is None:
        golden = run_golden_auto(program, config,
                                 snapshot_count=snapshot_count)
    from ..microarch.simulator import Simulator

    probe = Simulator(program, config)
    bit_count = probe.bit_count(field)
    del probe

    shards = plan_shards(n, shard_size)
    by_shard: dict[int, list[InjectionResult]] = {}

    ck: CampaignCheckpoint | None = None
    if checkpoint is not None:
        ck = (checkpoint if isinstance(checkpoint, CampaignCheckpoint)
              else CampaignCheckpoint(checkpoint))
        meta = campaign_meta(program.name, config.name, field, n, seed,
                             mode, burst, shards)
        for record in ck.load(meta, shards).values():
            # A record from a different golden run (changed simulator,
            # stale cache dir) would silently skew the sample; rerun it.
            if (record.golden_cycles == golden.cycles
                    and record.bit_count == bit_count):
                by_shard[record.shard.index] = record.results
        ck.begin(meta)

    done = sum(len(results) for results in by_shard.values())
    if progress is not None and done:
        progress(done, n)

    timeline: list[dict] = []

    def finish(shard: Shard, results: list[InjectionResult],
               span: dict | None = None) -> None:
        nonlocal done
        by_shard[shard.index] = results
        done += len(results)
        if span is not None:
            timeline.append(span)
        if ck is not None:
            ck.record(shard, golden.cycles, bit_count, results,
                      program_name=program.name)
        if progress is not None:
            progress(done, n)

    pending = [shard for shard in shards if shard.index not in by_shard]
    degradation = None
    if workers <= 1 or len(pending) <= 1:
        for shard in pending:
            started = time.time()  # det: allow (span metadata)
            results = run_shard(
                program, config, golden, field, shard, seed, mode=mode,
                burst=burst, bit_count=bit_count, early_exit=early_exit,
                convergence_horizon=convergence_horizon, trace=trace)
            finish(shard, results,
                   shard_span(shard, started, time.time(),  # det: allow
                              len(results)))
    elif pending:
        if shard_timeout is None:
            shard_timeout = default_shard_timeout(
                golden.cycles, max(shard.size for shard in pending))
        elif shard_timeout <= 0:
            shard_timeout = None

        def submit(pool, _key, shard: Shard):
            return pool.submit(_shard_task, program, config, golden,
                               field, shard, seed, mode, burst, bit_count,
                               early_exit, convergence_horizon, trace)

        def quarantine(_key, trial: int, reason: str) -> dict:
            return quarantined_result(
                field, trial, seed, golden.cycles, mode, burst, bit_count,
                reason, trace=trace).to_dict()

        def on_shard(_key, shard: Shard, value, records: list[dict]):
            span = None
            if value is not None:
                # Worker-measured spans only describe whole-shard runs;
                # a bisected shard's sub-span would misstate the range.
                candidate = value[2]
                if (candidate.get("first_trial") == shard.start
                        and candidate.get("stop_trial") == shard.stop):
                    span = candidate
            finish(shard, [InjectionResult.from_dict(raw)
                           for raw in records], span)

        supervisor = ShardSupervisor(
            min(workers, len(pending)), submit=submit,
            records_of=lambda _key, _shard, value: value[1],
            quarantine=quarantine, on_shard=on_shard, seed=seed,
            policy=RetryPolicy(max_retries=max_retries),
            shard_timeout=shard_timeout, fail_fast=fail_fast,
            metrics=metrics)
        degradation = supervisor.run([(None, shard) for shard in pending])

    results = [result for shard in shards for result in by_shard[shard.index]]
    summary = aggregate(field, program.name, config.name, mode, seed,
                        golden.cycles, bit_count, results)
    summary.timeline = sorted(timeline,
                              key=lambda span: span["shard"])
    if metrics is not None:
        for tier, count in summary.pruning.items():
            if isinstance(count, int):  # skip mean_window (a float)
                metrics.counter(f"campaign.prune.{tier}").inc(count)
    if degradation is not None and degradation.dirty:
        summary.degradation = degradation.report(n, bit_count,
                                                 golden.cycles)
    if ck is not None:
        ck.clear()
    if keep_results:
        return summary, results
    return summary


def run_field_campaigns(program: Program, config: CoreConfig,
                        fields: list[str],
                        n: int, seed: int = 0, mode: str = "occupancy",
                        snapshot_count: int = DEFAULT_SNAPSHOT_COUNT,
                        workers: int | None = None,
                        max_retries: int = DEFAULT_MAX_RETRIES,
                        shard_timeout: float | None = None,
                        fail_fast: bool = False,
                        ) -> dict[str, CampaignResult]:
    """Campaigns for several fields sharing one golden (+ checkpoints).

    The golden reference is simulated exactly once, with checkpoint
    intervals discovered online (:func:`run_golden_auto`) instead of a
    throwaway full run to learn the cycle count first. The supervisor
    knobs (``max_retries``/``shard_timeout``/``fail_fast``) apply to
    every per-field campaign.
    """
    golden = run_golden_auto(program, config, snapshot_count=snapshot_count)
    return {
        field: run_campaign(program, config, field, n, seed=seed,
                            mode=mode, golden=golden, workers=workers,
                            max_retries=max_retries,
                            shard_timeout=shard_timeout,
                            fail_fast=fail_fast)
        for field in fields
    }
