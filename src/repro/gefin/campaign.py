"""Statistical fault-injection campaigns.

A campaign draws ``n`` single-bit faults uniformly over (cycle x bit) for
one structure field of one compiled program on one core, runs each to
completion, and aggregates per-class AVF contributions:

    AVF(field) = sum_i weight_i * [outcome_i != MASKED] / n

With ``mode="uniform"`` weights are 1 and this is the textbook SFI
estimator (2,000 such samples is the paper's setting). With
``mode="occupancy"`` faults are drawn among *live* bits and weighted by
live/total occupancy, an unbiased importance-sampling variant that gives
usable estimates for large sparse arrays (the L2) at small n.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field as dataclass_field

from ..microarch.config import CoreConfig
from .fault import FaultSpec, GoldenRun, run_golden
from .injector import InjectionResult, inject_one
from .outcomes import ALL_OUTCOMES, FAILURE_OUTCOMES, Outcome
from .sampling import error_margin, fault_population

DEFAULT_SNAPSHOT_COUNT = 8


def derive_rng(seed: int, field: str, trial: int) -> random.Random:
    """Per-injection RNG, reproducible across processes.

    Derives the stream from a SHA-256 of (seed, field, trial) rather than
    Python's randomized string hashing, so campaigns replay bit-exactly.
    """
    digest = hashlib.sha256(f"{seed}:{field}:{trial}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass
class CampaignResult:
    """Aggregated outcome of one (program, core, field) campaign."""

    field: str
    program_name: str
    config_name: str
    mode: str
    n: int
    seed: int
    golden_cycles: int
    bit_count: int
    counts: dict[str, int] = dataclass_field(default_factory=dict)
    avf_by_class: dict[str, float] = dataclass_field(default_factory=dict)

    @property
    def avf(self) -> float:
        """Total architectural vulnerability factor of the field."""
        return sum(self.avf_by_class.get(o.value, 0.0)
                   for o in FAILURE_OUTCOMES)

    def margin(self, confidence: float = 0.99) -> float:
        """Achieved statistical error margin (Leveugle formulation)."""
        population = fault_population(self.bit_count, self.golden_cycles)
        return error_margin(population, self.n, confidence)

    def to_dict(self) -> dict:
        return {
            "field": self.field,
            "program": self.program_name,
            "config": self.config_name,
            "mode": self.mode,
            "n": self.n,
            "seed": self.seed,
            "golden_cycles": self.golden_cycles,
            "bit_count": self.bit_count,
            "counts": dict(self.counts),
            "avf_by_class": dict(self.avf_by_class),
            "avf": self.avf,
            "margin99": self.margin(0.99),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignResult":
        return cls(
            field=data["field"],
            program_name=data["program"],
            config_name=data["config"],
            mode=data["mode"],
            n=data["n"],
            seed=data["seed"],
            golden_cycles=data["golden_cycles"],
            bit_count=data["bit_count"],
            counts=dict(data["counts"]),
            avf_by_class=dict(data["avf_by_class"]),
        )


def aggregate(field: str, program_name: str, config_name: str, mode: str,
              seed: int, golden: GoldenRun, bit_count: int,
              results: list[InjectionResult]) -> CampaignResult:
    """Fold raw injection results into a :class:`CampaignResult`."""
    n = len(results)
    counts = {o.value: 0 for o in ALL_OUTCOMES}
    weighted = {o.value: 0.0 for o in ALL_OUTCOMES}
    for result in results:
        counts[result.outcome.value] += 1
        weighted[result.outcome.value] += result.weight
    avf_by_class = {
        o.value: (weighted[o.value] / n if n else 0.0)
        for o in FAILURE_OUTCOMES
    }
    return CampaignResult(
        field=field, program_name=program_name, config_name=config_name,
        mode=mode, n=n, seed=seed, golden_cycles=golden.cycles,
        bit_count=bit_count, counts=counts, avf_by_class=avf_by_class)


def run_campaign(program, config: CoreConfig, field: str, n: int,
                 seed: int = 0, mode: str = "occupancy",
                 golden: GoldenRun | None = None,
                 keep_results: bool = False, burst: int = 1,
                 ) -> CampaignResult | tuple[CampaignResult,
                                             list[InjectionResult]]:
    """Run an ``n``-fault campaign against one structure field.

    ``burst`` > 1 selects the multi-bit upset model (that many adjacent
    bits flipped per fault).
    """
    if golden is None:
        golden = run_golden(program, config)
    from ..microarch.simulator import Simulator

    probe = Simulator(program, config)
    bit_count = probe.bit_count(field)
    del probe

    results: list[InjectionResult] = []
    for trial in range(n):
        rng = derive_rng(seed, field, trial)
        cycle = rng.randrange(1, max(2, golden.cycles))
        if mode == "occupancy":
            spec = FaultSpec(field=field, cycle=cycle, mode="occupancy",
                             burst=burst)
        else:
            spec = FaultSpec(field=field, cycle=cycle,
                             bit_index=rng.randrange(bit_count),
                             burst=burst)
        results.append(inject_one(program, config, golden, spec, rng))

    summary = aggregate(field, program.name, config.name, mode, seed,
                        golden, bit_count, results)
    if keep_results:
        return summary, results
    return summary


def run_field_campaigns(program, config: CoreConfig, fields: list[str],
                        n: int, seed: int = 0, mode: str = "occupancy",
                        snapshot_count: int = DEFAULT_SNAPSHOT_COUNT,
                        ) -> dict[str, CampaignResult]:
    """Campaigns for several fields sharing one golden (+ checkpoints)."""
    probe_golden = run_golden(program, config)
    snapshot_every = max(1, probe_golden.cycles // max(1, snapshot_count))
    golden = run_golden(program, config, snapshot_every=snapshot_every)
    return {
        field: run_campaign(program, config, field, n, seed=seed,
                            mode=mode, golden=golden)
        for field in fields
    }
