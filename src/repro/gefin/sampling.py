"""Statistical fault sampling (Leveugle et al., DATE 2009).

The paper draws 2,000 faults per (structure-field, workload) and quotes a
2.88% error margin at 99% confidence. These are the same formulas:

    n = N / (1 + e^2 (N - 1) / (t^2 p (1 - p)))

solved either for the sample size ``n`` given a margin ``e`` or for the
margin given ``n``, with ``N`` the fault population (bits x cycles),
``p = 0.5`` the conservative failure-probability prior, and ``t`` the
normal quantile of the confidence level.
"""

from __future__ import annotations

import math

_Z_SCORES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758, 0.999: 3.2905}


def z_score(confidence: float) -> float:
    """Two-sided normal quantile for a confidence level in (0, 1)."""
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    if confidence in _Z_SCORES:
        return _Z_SCORES[confidence]
    try:
        from scipy.stats import norm
    except ImportError:  # pragma: no cover - scipy is installed here
        raise ValueError(
            f"confidence {confidence} needs scipy; use one of "
            f"{sorted(_Z_SCORES)}") from None
    return float(norm.ppf(0.5 + confidence / 2))


def required_sample_size(population: int, margin: float,
                         confidence: float = 0.99,
                         p: float = 0.5) -> int:
    """Sample size for ``margin`` at ``confidence`` over ``population``."""
    if population <= 0:
        raise ValueError("population must be positive")
    if not 0 < margin < 1:
        raise ValueError("margin must be in (0, 1)")
    t = z_score(confidence)
    n = population / (1 + margin ** 2 * (population - 1) / (t ** 2 * p
                                                            * (1 - p)))
    return max(1, math.ceil(n))


def error_margin(population: int, n: int, confidence: float = 0.99,
                 p: float = 0.5) -> float:
    """Error margin achieved by ``n`` samples from ``population``."""
    if population <= 0 or n <= 0:
        raise ValueError("population and n must be positive")
    if n >= population:
        return 0.0
    t = z_score(confidence)
    return math.sqrt(t ** 2 * p * (1 - p) * (population - n)
                     / (n * (population - 1)))


def fault_population(bit_count: int, cycles: int) -> int:
    """Single-bit transient fault population: every (bit, cycle) pair."""
    return max(1, bit_count * max(1, cycles))
