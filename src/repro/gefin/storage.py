"""JSON persistence for campaign results.

The experiments harness caches one :class:`~repro.gefin.campaign.
CampaignResult` per (core, benchmark, opt-level, field) so that every
figure bench reads a shared grid instead of re-running injections.
"""

from __future__ import annotations

import json
from pathlib import Path

from .campaign import CampaignResult


def result_key(config_name: str, benchmark: str, opt_level: str,
               field: str, scale: str, n: int, seed: int,
               mode: str) -> str:
    """Stable cache key for one campaign cell."""
    return (f"{config_name}__{benchmark}__{opt_level}__{field}"
            f"__{scale}__n{n}__s{seed}__{mode}")


class ResultStore:
    """Directory of JSON campaign results keyed by :func:`result_key`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def load(self, key: str) -> CampaignResult | None:
        path = self._path(key)
        if not path.exists():
            return None
        with path.open() as handle:
            return CampaignResult.from_dict(json.load(handle))

    def save(self, key: str, result: CampaignResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w") as handle:
            json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
        tmp.replace(path)

    def save_extra(self, key: str, payload: dict) -> None:
        """Persist auxiliary JSON (e.g. golden-run statistics)."""
        path = self.root / f"{key}.json"
        tmp = path.with_suffix(".tmp")
        with tmp.open("w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        tmp.replace(path)

    def load_extra(self, key: str) -> dict | None:
        path = self.root / f"{key}.json"
        if not path.exists():
            return None
        with path.open() as handle:
            return json.load(handle)
