"""JSON persistence for campaign results.

The experiments harness caches one :class:`~repro.gefin.campaign.
CampaignResult` per (core, benchmark, opt-level, field) so that every
figure bench reads a shared grid instead of re-running injections.

Writes are atomic (write to a per-process unique temp name, then
``rename``) so concurrent grids sharing one cache directory can never
publish a torn file; reads treat unparseable or partial JSON as a cache
miss rather than an error, so a file torn by an older writer or a died
process just gets regenerated.

Every published document also carries a ``"_checksum"`` entry -- a
64-bit digest (:func:`repro.digest.mix64` over the canonical JSON
serialization) of the rest of the payload. Valid JSON with a wrong
checksum (bit rot, a truncation that still parses, a hand-edited cell)
reads as a cache miss just like torn JSON does; documents written by
older versions carry no checksum and are accepted as-is.
"""

from __future__ import annotations

import json
import os
import uuid
from pathlib import Path

from ..digest import mix64
from .campaign import CampaignResult

#: Reserved top-level key holding the payload digest.
CHECKSUM_KEY = "_checksum"


def payload_checksum(payload: dict) -> int:
    """64-bit content digest of a JSON payload (checksum key excluded).

    The digest is taken over the canonical serialization (sorted keys,
    no whitespace), so it is independent of on-disk formatting; the
    bytes are folded as 8-byte little-endian limbs through
    :func:`~repro.digest.mix64` keyed on their offset, XOR-combined.
    """
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    blob = json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode()
    digest = 0
    for offset in range(0, len(blob), 8):
        limb = int.from_bytes(blob[offset:offset + 8], "little")
        digest ^= mix64(offset, limb)
    return digest


def result_key(config_name: str, benchmark: str, opt_level: str,
               field: str, scale: str, n: int, seed: int,
               mode: str) -> str:
    """Stable cache key for one campaign cell."""
    return (f"{config_name}__{benchmark}__{opt_level}__{field}"
            f"__{scale}__n{n}__s{seed}__{mode}")


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Publish ``payload`` at ``path`` via write-to-temp + atomic rename.

    The temp name embeds the pid and a random token: a fixed, predictable
    ``<key>.tmp`` would let two concurrent writers (parallel benches
    sharing a cache dir) interleave into one temp file and publish torn
    JSON.
    """
    tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
    sealed = {**payload, CHECKSUM_KEY: payload_checksum(payload)}
    try:
        with tmp.open("w") as handle:
            json.dump(sealed, handle, indent=1, sort_keys=True)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _read_json(path: Path) -> dict | None:
    """Parse and verify ``path``; missing/partial/corrupt files are None.

    A document whose stored ``"_checksum"`` disagrees with its content
    is corrupt and reads as a miss; legacy documents without one pass.
    """
    try:
        with path.open() as handle:
            data = json.load(handle)
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    stored = data.pop(CHECKSUM_KEY, None)
    if stored is not None and stored != payload_checksum(data):
        return None
    return data


class ResultStore:
    """Directory of JSON campaign results keyed by :func:`result_key`."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        # Existence is not enough: a torn file must read as a miss, or
        # the grid would treat a corrupt cell as materialized forever.
        return self.load(key) is not None

    def load(self, key: str) -> CampaignResult | None:
        data = _read_json(self._path(key))
        if data is None:
            return None
        try:
            return CampaignResult.from_dict(data)
        except (KeyError, TypeError, ValueError):
            return None

    def save(self, key: str, result: CampaignResult) -> None:
        _atomic_write_json(self._path(key), result.to_dict())

    def save_extra(self, key: str, payload: dict) -> None:
        """Persist auxiliary JSON (e.g. golden-run statistics)."""
        _atomic_write_json(self.root / f"{key}.json", payload)

    def load_extra(self, key: str) -> dict | None:
        return _read_json(self.root / f"{key}.json")
