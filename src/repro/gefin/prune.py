"""Pre-simulation fault pruning: classify trials Masked for free.

Three tiers, all consulted *before* a :class:`~repro.microarch.
simulator.Simulator` is even constructed (the pruned trial still counts
in the campaign denominator, exactly as if it had been simulated):

1. **Structurally dead fields** -- the static ACE analyzer
   (:func:`repro.avf.static_ace.static_ace_estimate`) proves some
   structures can never hold a live entry for a given program (a load
   queue when the binary has no loads). Every flip there is a no-op.
2. **Golden-trace occupancy** -- :class:`~repro.gefin.fault.
   GoldenTrace` records each queue's valid mask (IQ/LQ) or ring window
   (ROB/SQ) per cycle. A uniform-mode flip whose target slot is free at
   the injection cycle bounces off invalid storage (the flip method
   would return ``False``), so the machine stays bit-identical to the
   golden run and determinism yields the golden outcome.
3. **Bit-level register-file pruning** -- a uniform-mode PRF flip is
   provably masked when each corrupted physical register is either

   * *unallocated* (free list residents are written full-width at their
     next allocation before any ready-gated read),
   * *allocated but not ready* (the producing uop's writeback rewrites
     the whole register before the issue stage ever reads it), or
   * *the committed architectural value of some register ``r``* (it is
     the frontend rename target of ``r`` with no producer in flight)
     whose flipped bits are all *statically dead* at the commit-point
     instruction per the bit-level propagation analysis
     (:func:`repro.compiler.propagation.analyze_propagation`).

   The third rule leans on program facts (known-bit narrowing), whose
   validity assumes every register other than the flipped one holds its
   golden value; it is therefore applied to at most one physical
   register per fault, and never to ``r0`` (hardwired zero). Wrong-path
   uops may read the corrupted register, but speculation on this core
   is timing-only: stores, syscalls, and exceptions act at commit, so a
   squashed reader cannot launder the flip into architectural state.

Soundness of tiers 1-2 rests on the flip methods' contract: a flip into
an invalid slot changes no machine state. Tier 3's flips *do* perturb
machine state; its contract is the weaker outcome equivalence -- a full
simulation of the same fault classifies Masked (typically via digest
reconvergence once the corrupted registers are recycled). The pruner
replicates the (outcome, weight, bit index) triple of the simulated
path, so early-exit and full campaigns aggregate identically; the
equivalence is enforced by differential test across every workload,
core, and optimization level.
"""

from __future__ import annotations

from array import array

from ..avf.static_ace import static_ace_estimate
from ..compiler.propagation import Propagation, analyze_propagation
from ..isa.program import Program
from ..kernel.layout import SystemMap
from ..microarch.config import CoreConfig
from ..microarch.queues import ARCH_FIELD_BITS, NUM_FLAGS, PC_FIELD_BITS
from .fault import FaultSpec, GoldenRun
from .injector import InjectionResult
from .outcomes import Outcome

_MASK = "mask"
_RING = "ring"

#: Occupancy layout of each prunable field: storage kind, payload bits
#: per slot, which trace array holds the per-cycle occupancy.
_TRACE_ARRAYS = ("iq", "lq", "sq", "rob")


class StaticPruner:
    """Per-campaign pruning oracle for one (program, config, golden)."""

    def __init__(self, program: Program, config: CoreConfig,
                 golden: GoldenRun) -> None:
        self.golden = golden
        trace = golden.trace
        self.trace = trace if trace is not None and len(trace) else None
        self._program = program
        self._xlen = config.xlen
        self._prf_bits = config.phys_regs * config.xlen
        self._text_base = SystemMap().text_base
        # Lazy: the propagation analysis costs ~10 ms per binary and is
        # only needed for PRF campaigns.
        self._propagation: Propagation | None = None
        # Traces recorded before the rename view existed (or unpickled
        # from older checkpoints) lack the per-cycle arrays; tier 3 then
        # simply declines.
        self._rename_trace = (
            self.trace is not None
            and getattr(self.trace, "mask_words", 0) > 0
            and len(self.trace.commit_pc) == len(self.trace))
        self._geometry: dict[str, tuple[str, int, array, int]] = {}
        if self.trace is not None:
            tag = config.phys_tag_bits
            xlen = config.xlen
            geo = self._geometry
            geo["iq.src"] = (_MASK, 2 * (tag + 1), self.trace.iq,
                             config.iq_entries)
            geo["iq.dst"] = (_MASK, tag, self.trace.iq, config.iq_entries)
            geo["lq"] = (_MASK, xlen + tag, self.trace.lq,
                         config.lq_entries)
            geo["sq"] = (_RING, 2 * xlen, self.trace.sq, config.sq_entries)
            for name, bits in (
                    ("rob.pc", PC_FIELD_BITS),
                    ("rob.dest", ARCH_FIELD_BITS + 2 * tag),
                    ("rob.flags", NUM_FLAGS),
                    ("rob.seq", config.seq_bits)):
                geo[name] = (_RING, bits, self.trace.rob,
                             config.rob_entries)
        ace = static_ace_estimate(program, config)
        self._dead_fields = frozenset(
            name for name, bound in ace.estimates.items() if bound == 0.0)

    # ----------------------------------------------------------- results

    def _unchanged(self, spec: FaultSpec) -> InjectionResult:
        return InjectionResult(spec, Outcome.MASKED, 1.0, spec.bit_index,
                               "statically pruned: dead storage",
                               self.golden.cycles, early="static")

    def _zero_live(self, spec: FaultSpec) -> InjectionResult:
        # Mirrors the injector's live == 0 occupancy result exactly.
        return InjectionResult(spec, Outcome.MASKED, 0.0, None,
                               "no live bits at injection time",
                               self.golden.cycles, early="static")

    # ------------------------------------------------------------ oracle

    def prune(self, spec: FaultSpec) -> InjectionResult | None:
        """The trial's result if it is provably masked, else ``None``.

        Never consumes RNG state: the injector only draws lazily for
        occupancy-mode trials with live bits, which are never pruned.
        """
        if spec.cycle >= self.golden.cycles:
            # The golden run ends during (or before) the injection
            # cycle; the injector's completed-before-injection and
            # final-cycle paths own these trials.
            return None
        if spec.field in self._dead_fields:
            if spec.mode == "occupancy":
                return self._zero_live(spec)
            return self._unchanged(spec)
        if spec.field == "prf":
            return self._prune_prf(spec)
        geometry = self._geometry.get(spec.field)
        if geometry is None or self.trace is None \
                or spec.cycle > len(self.trace):
            return None
        kind, bits, occupancy, size = geometry
        packed = occupancy[spec.cycle - 1]
        if spec.mode == "occupancy":
            occupied = packed & 0xFFFF if kind == _RING else packed
            return self._zero_live(spec) if occupied == 0 else None
        bit = spec.bit_index
        if bit is None:
            return None
        total_bits = size * bits
        for offset in range(spec.burst):
            index = bit + offset
            if index >= total_bits:
                continue  # clipped by the injector: a no-op flip
            slot = index // bits
            if kind == _RING:
                head = packed >> 16
                count = packed & 0xFFFF
                if (slot - head) % size < count:
                    return None
            elif (packed >> slot) & 1:
                return None
        return self._unchanged(spec)

    # ----------------------------------------------------- tier 3: PRF

    def _prune_prf(self, spec: FaultSpec) -> InjectionResult | None:
        """Bit-level PRF pruning (tier 3); ``None`` when not provable.

        Uniform mode only: occupancy-mode trials with live bits draw
        their bit index from the trial RNG inside the injector, which
        the never-consumes-RNG contract forbids replicating here (and
        the PRF always has >= 32 allocated registers, so its occupancy
        weight is never zero).
        """
        if (spec.mode != "uniform" or spec.bit_index is None
                or not self._rename_trace or self.trace is None
                or spec.cycle > len(self.trace)):
            return None
        xlen = self._xlen
        per_reg: dict[int, int] = {}
        for offset in range(spec.burst):
            index = spec.bit_index + offset
            if index >= self._prf_bits:
                continue  # clipped by the injector: a no-op flip
            reg, bit = divmod(index, xlen)
            per_reg[reg] = per_reg.get(reg, 0) | (1 << bit)
        rename, alloc, ready, inflight, commit_pc = \
            self.trace.rename_state(spec.cycle)
        fact_rule_used = False
        for reg, bits in per_reg.items():
            if not (alloc >> reg) & 1:
                continue  # free register: rewritten at next allocation
            if not (ready >> reg) & 1:
                continue  # awaiting its producer's full-width writeback
            if (inflight >> reg) & 1:
                # Ready with its producer still in flight: already-read
                # consumers saw golden values while future ones see the
                # flip; no single architectural point models that.
                return None
            arch = rename.find(reg)
            if arch <= 0:
                # Not the frontend mapping of any register (a committed
                # old_phys awaiting its successor's retirement free), or
                # the hardwired-zero mapping. Not provable here.
                return None
            if fact_rule_used:
                # Known-bit facts assume every *other* register is
                # golden; only one register per fault may rely on them.
                return None
            slot, misaligned = divmod(commit_pc - self._text_base, 4)
            if misaligned or not 0 <= slot < len(self._program.text):
                return None
            if self._propagation is None:
                self._propagation = analyze_propagation(self._program)
            if bits & ~self._propagation.dead_mask(slot, arch):
                return None
            fact_rule_used = True
        return InjectionResult(
            spec, Outcome.MASKED, 1.0, spec.bit_index,
            "statically pruned: dead register bits",
            self.golden.cycles, early="static-bit")
