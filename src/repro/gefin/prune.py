"""Pre-simulation fault pruning: classify trials Masked for free.

Two tiers, both consulted *before* a :class:`~repro.microarch.
simulator.Simulator` is even constructed (the pruned trial still counts
in the campaign denominator, exactly as if it had been simulated):

1. **Structurally dead fields** -- the static ACE analyzer
   (:func:`repro.avf.static_ace.static_ace_estimate`) proves some
   structures can never hold a live entry for a given program (a load
   queue when the binary has no loads). Every flip there is a no-op.
2. **Golden-trace occupancy** -- :class:`~repro.gefin.fault.
   GoldenTrace` records each queue's valid mask (IQ/LQ) or ring window
   (ROB/SQ) per cycle. A uniform-mode flip whose target slot is free at
   the injection cycle bounces off invalid storage (the flip method
   would return ``False``), so the machine stays bit-identical to the
   golden run and determinism yields the golden outcome.

Soundness rests on the flip methods' contract: a flip into an invalid
slot changes no machine state. The pruner replicates the exact
:class:`~repro.gefin.injector.InjectionResult` (outcome, weight,
bit index) the simulated path produces, so early-exit and full
campaigns aggregate identically; the equivalence is enforced by test.
"""

from __future__ import annotations

from array import array

from ..avf.static_ace import static_ace_estimate
from ..isa.program import Program
from ..microarch.config import CoreConfig
from ..microarch.queues import ARCH_FIELD_BITS, NUM_FLAGS, PC_FIELD_BITS
from .fault import FaultSpec, GoldenRun
from .injector import InjectionResult
from .outcomes import Outcome

_MASK = "mask"
_RING = "ring"

#: Occupancy layout of each prunable field: storage kind, payload bits
#: per slot, which trace array holds the per-cycle occupancy.
_TRACE_ARRAYS = ("iq", "lq", "sq", "rob")


class StaticPruner:
    """Per-campaign pruning oracle for one (program, config, golden)."""

    def __init__(self, program: Program, config: CoreConfig,
                 golden: GoldenRun) -> None:
        self.golden = golden
        trace = golden.trace
        self.trace = trace if trace is not None and len(trace) else None
        self._geometry: dict[str, tuple[str, int, array, int]] = {}
        if self.trace is not None:
            tag = config.phys_tag_bits
            xlen = config.xlen
            geo = self._geometry
            geo["iq.src"] = (_MASK, 2 * (tag + 1), self.trace.iq,
                             config.iq_entries)
            geo["iq.dst"] = (_MASK, tag, self.trace.iq, config.iq_entries)
            geo["lq"] = (_MASK, xlen + tag, self.trace.lq,
                         config.lq_entries)
            geo["sq"] = (_RING, 2 * xlen, self.trace.sq, config.sq_entries)
            for name, bits in (
                    ("rob.pc", PC_FIELD_BITS),
                    ("rob.dest", ARCH_FIELD_BITS + 2 * tag),
                    ("rob.flags", NUM_FLAGS),
                    ("rob.seq", config.seq_bits)):
                geo[name] = (_RING, bits, self.trace.rob,
                             config.rob_entries)
        ace = static_ace_estimate(program, config)
        self._dead_fields = frozenset(
            name for name, bound in ace.estimates.items() if bound == 0.0)

    # ----------------------------------------------------------- results

    def _unchanged(self, spec: FaultSpec) -> InjectionResult:
        return InjectionResult(spec, Outcome.MASKED, 1.0, spec.bit_index,
                               "statically pruned: dead storage",
                               self.golden.cycles, early="static")

    def _zero_live(self, spec: FaultSpec) -> InjectionResult:
        # Mirrors the injector's live == 0 occupancy result exactly.
        return InjectionResult(spec, Outcome.MASKED, 0.0, None,
                               "no live bits at injection time",
                               self.golden.cycles, early="static")

    # ------------------------------------------------------------ oracle

    def prune(self, spec: FaultSpec) -> InjectionResult | None:
        """The trial's result if it is provably masked, else ``None``.

        Never consumes RNG state: the injector only draws lazily for
        occupancy-mode trials with live bits, which are never pruned.
        """
        if spec.cycle >= self.golden.cycles:
            # The golden run ends during (or before) the injection
            # cycle; the injector's completed-before-injection and
            # final-cycle paths own these trials.
            return None
        if spec.field in self._dead_fields:
            if spec.mode == "occupancy":
                return self._zero_live(spec)
            return self._unchanged(spec)
        geometry = self._geometry.get(spec.field)
        if geometry is None or self.trace is None \
                or spec.cycle > len(self.trace):
            return None
        kind, bits, occupancy, size = geometry
        packed = occupancy[spec.cycle - 1]
        if spec.mode == "occupancy":
            occupied = packed & 0xFFFF if kind == _RING else packed
            return self._zero_live(spec) if occupied == 0 else None
        bit = spec.bit_index
        if bit is None:
            return None
        total_bits = size * bits
        for offset in range(spec.burst):
            index = bit + offset
            if index >= total_bits:
                continue  # clipped by the injector: a no-op flip
            slot = index // bits
            if kind == _RING:
                head = packed >> 16
                count = packed & 0xFFFF
                if (slot - head) % size < count:
                    return None
            elif (packed >> slot) & 1:
                return None
        return self._unchanged(spec)
