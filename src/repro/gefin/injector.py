"""End-to-end execution of a single fault-injection run.

Trials terminate early in three tiers (all outcome-equivalent to a full
run, see ``DESIGN.md``):

1. **Statically pruned** (:mod:`.prune`) -- the flip provably lands in
   dead storage; no simulator is even built.
2. **Unchanged** -- every flip reported "no state change" (dead slot at
   runtime), so the machine is bit-identical to the golden run and the
   golden outcome is spliced in by determinism.
3. **Converged** -- after the flip, the trial's per-cycle state digest
   is compared against the recorded golden trace; the first match
   proves the fault's effects have washed out and the trial is Masked.

With ``trace=True``, :func:`inject_one` additionally records the
corrupted bit's lifecycle as a *provenance trail* (see
:mod:`repro.obs.events`): injection, first commit-stream divergence,
first output divergence, and the terminal mechanism (masked /
reached-output / exception). Tracing observes only state the trial
already maintains, so traced and untraced runs classify identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field

from ..errors import SimTimeoutError, SimulationError
from ..isa.program import Program
from ..kernel.syscalls import ProgramExit
from ..microarch.config import CoreConfig
from ..microarch.simulator import SimResult, Simulator
from ..obs.events import (
    EVENT_COMMIT_DIVERGENCE,
    EVENT_EXCEPTION,
    EVENT_INJECTED,
    EVENT_MASKED,
    EVENT_OUTPUT_DIVERGENCE,
    EVENT_REACHED_OUTPUT,
    EVENT_STATE_DIVERGENCE,
    TraceEvent,
)
from .fault import FaultSpec, GoldenRun, decompress_snapshot
from .outcomes import Outcome, classify_completion, classify_exception


@dataclass
class InjectionResult:
    """Outcome of one injection run.

    ``weight`` is the importance-sampling weight of the sample: 1.0 for
    uniform sampling, live_bits/total_bits (at injection time) for
    occupancy sampling. The AVF estimator is ``mean(weight x failure)``.

    ``early`` records how the trial was cut short (``""`` full run,
    ``"static"`` pruned pre-simulation, ``"unchanged"`` no-op flip,
    ``"converged"`` digest reconvergence) and ``window`` the number of
    post-injection cycles simulated before convergence.

    ``trail`` is the fault's provenance trail when the trial ran with
    ``trace=True``, else ``None``. It is excluded from equality:
    tracing is pure observation, so a traced and an untraced trial of
    the same fault are the same result.
    """

    spec: FaultSpec
    outcome: Outcome
    weight: float
    bit_index: int | None
    detail: str = ""
    cycles: int = 0
    early: str = ""
    window: int = 0
    trail: list[TraceEvent] | None = dataclass_field(default=None,
                                                     compare=False)

    @property
    def failed(self) -> bool:
        return self.outcome.is_failure

    def to_dict(self) -> dict:
        """JSON-ready record, exact enough to replay aggregation.

        Weights survive the JSON round trip bit-for-bit (``json`` emits
        ``repr``-precision floats), so results recovered from a
        checkpoint aggregate to the same ``CampaignResult`` the live run
        would have produced. The ``trail`` key appears only on traced
        trials, keeping untraced records byte-identical to older ones.
        """
        out = {"spec": self.spec.to_dict(), "outcome": self.outcome.value,
               "weight": self.weight, "bit_index": self.bit_index,
               "detail": self.detail, "cycles": self.cycles,
               "early": self.early, "window": self.window}
        if self.trail is not None:
            out["trail"] = [event.to_dict() for event in self.trail]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionResult":
        raw_trail = data.get("trail")
        return cls(spec=FaultSpec.from_dict(data["spec"]),
                   outcome=Outcome(data["outcome"]),
                   weight=data["weight"], bit_index=data["bit_index"],
                   detail=data["detail"], cycles=data["cycles"],
                   early=data.get("early", ""),
                   window=data.get("window", 0),
                   trail=None if raw_trail is None else
                   [TraceEvent.from_dict(e) for e in raw_trail])


def synthetic_trail(result: InjectionResult) -> list[TraceEvent]:
    """Provenance trail for a Masked trial decided without simulation
    (static pruning, pre-injection completion, unchanged splice)."""
    cycle = result.spec.cycle
    return [TraceEvent(EVENT_INJECTED, cycle, result.detail),
            TraceEvent(EVENT_MASKED, cycle, result.detail)]


class _DivergenceMonitor:
    """Per-cycle divergence watcher feeding a provenance trail.

    Dates the trial's first commit-stream divergence (committed count vs
    the golden trace at the same cycle) and first output divergence (the
    captured output stops being a prefix of the golden output). Both
    checks read O(1) state per cycle; the output bytes are only joined
    on the rare cycles where the output size actually changed.
    """

    __slots__ = ("trail", "_golden_output", "_committed", "_commit_seen",
                 "_output_seen", "_last_size")

    def __init__(self, golden: GoldenRun,
                 trail: list[TraceEvent]) -> None:
        self.trail = trail
        self._golden_output = golden.output_data
        trace = golden.trace
        self._committed = None if trace is None else trace.committed
        self._commit_seen = False
        self._output_seen = False
        self._last_size = -1

    def check(self, sim: Simulator) -> None:
        if not self._commit_seen and self._committed is not None:
            cycle = sim.core.cycle
            if cycle - 1 < len(self._committed):
                got = sim.core.stats.committed
                want = self._committed[cycle - 1]
                if got != want:
                    self._commit_seen = True
                    self.trail.append(TraceEvent(
                        EVENT_COMMIT_DIVERGENCE, cycle,
                        f"committed {got} vs golden {want}"))
        if not self._output_seen:
            size = sim.output.size
            if size != self._last_size:
                self._last_size = size
                if not self._golden_output.startswith(sim.output.data):
                    self._output_seen = True
                    self.trail.append(TraceEvent(
                        EVENT_OUTPUT_DIVERGENCE, sim.core.cycle,
                        "output is no longer a prefix of golden output"))

    # ------------------------------------------------------------ terminals

    def close_masked(self, cycle: int, detail: str) -> None:
        self.trail.append(TraceEvent(EVENT_MASKED, cycle, detail))

    def close_completed(self, outcome: Outcome, result: SimResult) -> None:
        cycle = result.cycles
        if outcome is Outcome.MASKED:
            self.close_masked(cycle, "completed with golden output")
            return
        if not self._output_seen:
            # SDC with byte-identical output: the exit code is the
            # corrupted "output" that reached the outside world.
            detail = ("exit code differs from golden"
                      if result.output.data == self._golden_output
                      else "output differs from golden")
            self._output_seen = True
            self.trail.append(TraceEvent(EVENT_OUTPUT_DIVERGENCE, cycle,
                                         detail))
        self.trail.append(TraceEvent(EVENT_REACHED_OUTPUT, cycle,
                                     "run completed with corrupted "
                                     "observable output"))

    def close_exception(self, cycle: int, detail: str) -> None:
        self.trail.append(TraceEvent(EVENT_EXCEPTION, cycle, detail))


def _monitored_run(sim: Simulator, max_cycles: int,
                   monitor: _DivergenceMonitor) -> SimResult:
    """``Simulator.run`` semantics with per-cycle divergence checks."""
    if sim.finished:
        return sim.result()
    core = sim.core
    try:
        while core.cycle < max_cycles:
            core.step()
            monitor.check(sim)
        raise SimTimeoutError(max_cycles)
    except ProgramExit:
        sim.finished = True
    return sim.result()


def _restore_nearest(sim: Simulator, golden: GoldenRun, cycle: int) -> None:
    """Fast-forward ``sim`` using the latest checkpoint below ``cycle``."""
    best = None
    for snap_cycle, blob in golden.snapshots:
        if snap_cycle < cycle and (best is None or snap_cycle > best[0]):
            best = (snap_cycle, blob)
    if best is not None:
        sim.load_state(decompress_snapshot(best[1]))


def inject_one(program: Program, config: CoreConfig, golden: GoldenRun,
               spec: FaultSpec, rng: random.Random | None = None, *,
               early_exit: bool = True,
               convergence_horizon: int | None = None,
               trace: bool = False) -> InjectionResult:
    """Run one end-to-end injection and classify its outcome.

    ``early_exit`` enables the unchanged-flip splice and (when
    ``golden.trace`` is recorded) digest-reconvergence termination;
    ``convergence_horizon`` caps how many post-injection cycles are
    digest-compared before falling back to a plain full run (``None``
    compares for as long as the golden trace lasts). ``trace`` attaches
    a provenance trail to the result (see module docstring); it never
    changes the classification.
    """
    sim = Simulator(program, config)
    _restore_nearest(sim, golden, spec.cycle)
    alive = sim.run_until(spec.cycle)
    if not alive:
        # The program finished before the fault struck (can only happen
        # when the caller samples beyond the golden cycle count).
        result = InjectionResult(spec, Outcome.MASKED, 1.0, spec.bit_index,
                                 "program completed before injection",
                                 sim.cycle)
        if trace:
            result.trail = synthetic_trail(result)
        return result

    changed = False
    if spec.mode == "occupancy":
        total = sim.bit_count(spec.field)
        live = sim.catalog.live_bit_count(spec.field)
        if live == 0:
            result = InjectionResult(spec, Outcome.MASKED, 0.0, None,
                                     "no live bits at injection time",
                                     golden.cycles)
            if trace:
                result.trail = synthetic_trail(result)
            return result
        bit = spec.bit_index
        if bit is None:
            if rng is None:
                raise ValueError("occupancy mode needs an rng to draw bits")
            bit = rng.randrange(live)
        for offset in range(spec.burst):
            if bit + offset < live:
                changed |= sim.catalog.flip_live(spec.field, bit + offset)
        weight = live / total
    else:
        bit = spec.bit_index
        if bit is None:
            if rng is None:
                raise ValueError("bit_index is None and no rng given")
            bit = rng.randrange(sim.bit_count(spec.field))
        for offset in range(spec.burst):
            if bit + offset < sim.bit_count(spec.field):
                changed |= sim.flip(spec.field, bit + offset)
        weight = 1.0

    trail: list[TraceEvent] | None = None
    monitor: _DivergenceMonitor | None = None
    if trace:
        trail = [TraceEvent(
            EVENT_INJECTED, spec.cycle,
            f"{spec.field} bit {bit} burst {spec.burst} ({spec.mode})")]
        if changed:
            trail.append(TraceEvent(EVENT_STATE_DIVERGENCE, spec.cycle,
                                    "flip changed resident machine state"))
        monitor = _DivergenceMonitor(golden, trail)

    if early_exit and not changed:
        # Every flip reported "no state change" (dead slot), so the
        # machine is bit-identical to the golden run at this cycle and
        # determinism splices in the golden outcome.
        if monitor is not None:
            monitor.close_masked(spec.cycle,
                                 "flip left machine state unchanged")
        return InjectionResult(spec, Outcome.MASKED, weight, bit,
                               "flip left machine state unchanged",
                               golden.cycles, early="unchanged",
                               trail=trail)

    gold_trace = golden.trace if early_exit else None
    if gold_trace is not None and len(gold_trace):
        start = sim.cycle
        limit = len(gold_trace)
        if convergence_horizon is not None:
            limit = min(limit, start + convergence_horizon)
        core = sim.core
        quick_arr = gold_trace.quick
        full_arr = gold_trace.full
        try:
            while core.cycle < limit:
                core.step()
                if monitor is not None:
                    monitor.check(sim)
                c = core.cycle
                if sim.arch_equal(quick_arr[c - 1], full_arr[c - 1]):
                    # The trial's architectural state is the golden
                    # state: every future cycle is the golden run's.
                    if monitor is not None:
                        monitor.close_masked(c,
                                             "reconverged with golden state")
                    return InjectionResult(
                        spec, Outcome.MASKED, weight, bit,
                        "reconverged with golden state", golden.cycles,
                        early="converged", window=c - start, trail=trail)
        except ProgramExit:
            sim.finished = True
            result = sim.result()
            outcome = classify_completion(result, golden.output_data,
                                          golden.exit_code)
            if monitor is not None:
                monitor.close_completed(outcome, result)
            return InjectionResult(spec, outcome, weight, bit, "",
                                   result.cycles, trail=trail)
        except SimulationError as exc:
            if monitor is not None:
                monitor.close_exception(sim.cycle, str(exc))
            return InjectionResult(spec, classify_exception(exc), weight,
                                   bit, str(exc), sim.cycle, trail=trail)

    try:
        if monitor is None:
            result = sim.run(golden.timeout_cycles)
        else:
            result = _monitored_run(sim, golden.timeout_cycles, monitor)
    except SimulationError as exc:
        if monitor is not None:
            monitor.close_exception(sim.cycle, str(exc))
        return InjectionResult(spec, classify_exception(exc), weight, bit,
                               str(exc), sim.cycle, trail=trail)
    outcome = classify_completion(result, golden.output_data,
                                  golden.exit_code)
    if monitor is not None:
        monitor.close_completed(outcome, result)
    return InjectionResult(spec, outcome, weight, bit, "", result.cycles,
                           trail=trail)
