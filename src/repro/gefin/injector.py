"""End-to-end execution of a single fault-injection run.

Trials terminate early in three tiers (all outcome-equivalent to a full
run, see ``DESIGN.md``):

1. **Statically pruned** (:mod:`.prune`) -- the flip provably lands in
   dead storage; no simulator is even built.
2. **Unchanged** -- every flip reported "no state change" (dead slot at
   runtime), so the machine is bit-identical to the golden run and the
   golden outcome is spliced in by determinism.
3. **Converged** -- after the flip, the trial's per-cycle state digest
   is compared against the recorded golden trace; the first match
   proves the fault's effects have washed out and the trial is Masked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import SimulationError
from ..isa.program import Program
from ..kernel.syscalls import ProgramExit
from ..microarch.config import CoreConfig
from ..microarch.simulator import Simulator
from .fault import FaultSpec, GoldenRun, decompress_snapshot
from .outcomes import Outcome, classify_completion, classify_exception


@dataclass
class InjectionResult:
    """Outcome of one injection run.

    ``weight`` is the importance-sampling weight of the sample: 1.0 for
    uniform sampling, live_bits/total_bits (at injection time) for
    occupancy sampling. The AVF estimator is ``mean(weight x failure)``.

    ``early`` records how the trial was cut short (``""`` full run,
    ``"static"`` pruned pre-simulation, ``"unchanged"`` no-op flip,
    ``"converged"`` digest reconvergence) and ``window`` the number of
    post-injection cycles simulated before convergence.
    """

    spec: FaultSpec
    outcome: Outcome
    weight: float
    bit_index: int | None
    detail: str = ""
    cycles: int = 0
    early: str = ""
    window: int = 0

    @property
    def failed(self) -> bool:
        return self.outcome.is_failure

    def to_dict(self) -> dict:
        """JSON-ready record, exact enough to replay aggregation.

        Weights survive the JSON round trip bit-for-bit (``json`` emits
        ``repr``-precision floats), so results recovered from a
        checkpoint aggregate to the same ``CampaignResult`` the live run
        would have produced.
        """
        return {"spec": self.spec.to_dict(), "outcome": self.outcome.value,
                "weight": self.weight, "bit_index": self.bit_index,
                "detail": self.detail, "cycles": self.cycles,
                "early": self.early, "window": self.window}

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionResult":
        return cls(spec=FaultSpec.from_dict(data["spec"]),
                   outcome=Outcome(data["outcome"]),
                   weight=data["weight"], bit_index=data["bit_index"],
                   detail=data["detail"], cycles=data["cycles"],
                   early=data.get("early", ""),
                   window=data.get("window", 0))


def _restore_nearest(sim: Simulator, golden: GoldenRun, cycle: int) -> None:
    """Fast-forward ``sim`` using the latest checkpoint below ``cycle``."""
    best = None
    for snap_cycle, blob in golden.snapshots:
        if snap_cycle < cycle and (best is None or snap_cycle > best[0]):
            best = (snap_cycle, blob)
    if best is not None:
        sim.load_state(decompress_snapshot(best[1]))


def inject_one(program: Program, config: CoreConfig, golden: GoldenRun,
               spec: FaultSpec, rng: random.Random | None = None, *,
               early_exit: bool = True,
               convergence_horizon: int | None = None) -> InjectionResult:
    """Run one end-to-end injection and classify its outcome.

    ``early_exit`` enables the unchanged-flip splice and (when
    ``golden.trace`` is recorded) digest-reconvergence termination;
    ``convergence_horizon`` caps how many post-injection cycles are
    digest-compared before falling back to a plain full run (``None``
    compares for as long as the golden trace lasts).
    """
    sim = Simulator(program, config)
    _restore_nearest(sim, golden, spec.cycle)
    alive = sim.run_until(spec.cycle)
    if not alive:
        # The program finished before the fault struck (can only happen
        # when the caller samples beyond the golden cycle count).
        return InjectionResult(spec, Outcome.MASKED, 1.0, spec.bit_index,
                               "program completed before injection",
                               sim.cycle)

    changed = False
    if spec.mode == "occupancy":
        total = sim.bit_count(spec.field)
        live = sim.catalog.live_bit_count(spec.field)
        if live == 0:
            return InjectionResult(spec, Outcome.MASKED, 0.0, None,
                                   "no live bits at injection time",
                                   golden.cycles)
        bit = spec.bit_index
        if bit is None:
            if rng is None:
                raise ValueError("occupancy mode needs an rng to draw bits")
            bit = rng.randrange(live)
        for offset in range(spec.burst):
            if bit + offset < live:
                changed |= sim.catalog.flip_live(spec.field, bit + offset)
        weight = live / total
    else:
        bit = spec.bit_index
        if bit is None:
            if rng is None:
                raise ValueError("bit_index is None and no rng given")
            bit = rng.randrange(sim.bit_count(spec.field))
        for offset in range(spec.burst):
            if bit + offset < sim.bit_count(spec.field):
                changed |= sim.flip(spec.field, bit + offset)
        weight = 1.0

    if early_exit and not changed:
        # Every flip reported "no state change" (dead slot), so the
        # machine is bit-identical to the golden run at this cycle and
        # determinism splices in the golden outcome.
        return InjectionResult(spec, Outcome.MASKED, weight, bit,
                               "flip left machine state unchanged",
                               golden.cycles, early="unchanged")

    trace = golden.trace if early_exit else None
    if trace is not None and len(trace):
        start = sim.cycle
        limit = len(trace)
        if convergence_horizon is not None:
            limit = min(limit, start + convergence_horizon)
        core = sim.core
        quick_arr = trace.quick
        full_arr = trace.full
        try:
            while core.cycle < limit:
                core.step()
                c = core.cycle
                if sim.arch_equal(quick_arr[c - 1], full_arr[c - 1]):
                    # The trial's architectural state is the golden
                    # state: every future cycle is the golden run's.
                    return InjectionResult(
                        spec, Outcome.MASKED, weight, bit,
                        "reconverged with golden state", golden.cycles,
                        early="converged", window=c - start)
        except ProgramExit:
            sim.finished = True
            result = sim.result()
            outcome = classify_completion(result, golden.output_data,
                                          golden.exit_code)
            return InjectionResult(spec, outcome, weight, bit, "",
                                   result.cycles)
        except SimulationError as exc:
            return InjectionResult(spec, classify_exception(exc), weight,
                                   bit, str(exc), sim.cycle)

    try:
        result = sim.run(golden.timeout_cycles)
    except SimulationError as exc:
        return InjectionResult(spec, classify_exception(exc), weight, bit,
                               str(exc), sim.cycle)
    outcome = classify_completion(result, golden.output_data,
                                  golden.exit_code)
    return InjectionResult(spec, outcome, weight, bit, "", result.cycles)
