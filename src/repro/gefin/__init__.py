"""GeFIN-style microarchitecture-level statistical fault injection.

Workflow::

    golden = run_golden(program, CORTEX_A15)
    result = run_campaign(program, CORTEX_A15, "rob.pc", n=200,
                          golden=golden)
    print(result.avf, result.avf_by_class, result.margin())
"""

from .campaign import (
    CampaignResult,
    aggregate,
    derive_rng,
    run_campaign,
    run_field_campaigns,
)
from .fault import FaultSpec, GoldenRun, run_golden
from .injector import InjectionResult, inject_one
from .outcomes import (
    ALL_OUTCOMES,
    FAILURE_OUTCOMES,
    Outcome,
    classify_completion,
    classify_exception,
)
from .sampling import (
    error_margin,
    fault_population,
    required_sample_size,
    z_score,
)
from .storage import ResultStore, result_key

__all__ = [
    "ALL_OUTCOMES",
    "CampaignResult",
    "FAILURE_OUTCOMES",
    "FaultSpec",
    "GoldenRun",
    "InjectionResult",
    "Outcome",
    "ResultStore",
    "aggregate",
    "classify_completion",
    "classify_exception",
    "derive_rng",
    "error_margin",
    "fault_population",
    "inject_one",
    "required_sample_size",
    "result_key",
    "run_campaign",
    "run_field_campaigns",
    "run_golden",
    "z_score",
]
