"""GeFIN-style microarchitecture-level statistical fault injection.

Workflow::

    golden = run_golden(program, CORTEX_A15)
    result = run_campaign(program, CORTEX_A15, "rob.pc", n=200,
                          golden=golden)
    print(result.avf, result.avf_by_class, result.margin())

Campaigns shard their trials across worker processes (``workers=k`` or
the ``REPRO_WORKERS`` env knob) with bit-exact results for any ``k``,
and persist completed shards to a :class:`CampaignCheckpoint` so an
interrupted campaign resumes where it left off.
"""

from .campaign import (
    CampaignResult,
    DEFAULT_SNAPSHOT_COUNT,
    aggregate,
    campaign_meta,
    derive_rng,
    run_campaign,
    run_field_campaigns,
)
from .fault import (
    FaultSpec,
    GoldenRun,
    compress_snapshot,
    decompress_snapshot,
    run_golden,
    run_golden_auto,
)
from .injector import InjectionResult, inject_one
from .outcomes import (
    ALL_OUTCOMES,
    FAILURE_OUTCOMES,
    Outcome,
    classify_completion,
    classify_exception,
)
from .parallel import (
    CampaignCheckpoint,
    Shard,
    ShardRecord,
    plan_shards,
    resolve_workers,
    run_shard,
    sample_cycle,
)
from .resilience import (
    DEFAULT_MAX_RETRIES,
    Degradation,
    RetryPolicy,
    ShardSupervisor,
    default_shard_timeout,
    quarantined_result,
)
from .sampling import (
    error_margin,
    fault_population,
    required_sample_size,
    z_score,
)
from .storage import ResultStore, result_key

__all__ = [
    "ALL_OUTCOMES",
    "CampaignCheckpoint",
    "CampaignResult",
    "DEFAULT_MAX_RETRIES",
    "DEFAULT_SNAPSHOT_COUNT",
    "Degradation",
    "FAILURE_OUTCOMES",
    "FaultSpec",
    "GoldenRun",
    "InjectionResult",
    "Outcome",
    "ResultStore",
    "RetryPolicy",
    "Shard",
    "ShardRecord",
    "ShardSupervisor",
    "aggregate",
    "campaign_meta",
    "classify_completion",
    "classify_exception",
    "compress_snapshot",
    "decompress_snapshot",
    "default_shard_timeout",
    "derive_rng",
    "error_margin",
    "fault_population",
    "inject_one",
    "plan_shards",
    "quarantined_result",
    "required_sample_size",
    "resolve_workers",
    "result_key",
    "run_campaign",
    "run_field_campaigns",
    "run_golden",
    "run_golden_auto",
    "run_shard",
    "sample_cycle",
    "z_score",
]
