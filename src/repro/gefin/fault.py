"""Fault specification and golden-run bookkeeping."""

from __future__ import annotations

import zlib
from array import array
from dataclasses import dataclass, field

from ..errors import ReproError, SimTimeoutError
from ..isa.program import Program
from ..kernel.syscalls import ProgramExit
from ..microarch.config import CoreConfig
from ..microarch.simulator import SimResult, Simulator

DEFAULT_MAX_CYCLES = 50_000_000

#: Target number of auto-snapshots per golden run (the list may briefly
#: hold up to twice this many before :func:`run_golden_auto` thins it).
DEFAULT_AUTO_SNAPSHOTS = 8


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault: a flip of ``burst`` adjacent bits.

    ``burst=1`` is the paper's single-bit model; larger bursts model the
    multi-bit upsets of the authors' follow-up study (IISWC 2019 [39]),
    where one particle strike corrupts physically adjacent cells.

    ``mode`` selects how ``bit_index`` is interpreted: ``"uniform"``
    addresses the full storage array; ``"occupancy"`` means the bit index
    is drawn among *live* bits at injection time (the index itself is
    drawn lazily, so ``bit_index`` may be None until injection).
    """

    field: str
    cycle: int
    bit_index: int | None = None
    mode: str = "uniform"
    burst: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("uniform", "occupancy"):
            raise ValueError(f"unknown sampling mode {self.mode!r}")
        if self.cycle < 1:
            raise ValueError("injection cycle must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")

    def to_dict(self) -> dict:
        return {"field": self.field, "cycle": self.cycle,
                "bit_index": self.bit_index, "mode": self.mode,
                "burst": self.burst}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(field=data["field"], cycle=data["cycle"],
                   bit_index=data["bit_index"], mode=data["mode"],
                   burst=data["burst"])


def compress_snapshot(blob: bytes) -> bytes:
    """Compress a machine-state blob for retention in a GoldenRun.

    Raw snapshots are dominated by the (mostly zero) RAM image -- ~4 MB
    each -- while compressing ~200x in a few milliseconds. Compressed
    snapshots make it cheap to keep several per golden run and to ship
    a golden run to campaign worker processes.
    """
    return zlib.compress(blob, 1)


def decompress_snapshot(blob: bytes) -> bytes:
    """Inverse of :func:`compress_snapshot`; raw blobs pass through.

    Pickle streams start with ``b"\\x80"`` while zlib streams start with
    ``b"\\x78"``, so uncompressed snapshots (older checkpoints, direct
    ``Simulator.save_state`` output) are recognized and returned as-is.
    """
    if blob[:1] == b"\x78":
        return zlib.decompress(blob)
    return blob


class GoldenTrace:
    """Per-cycle golden-run digests and occupancy for early termination.

    Index ``c - 1`` holds the state observed *after* cycle ``c``
    completed; the arrays cover cycles ``1 .. len(trace)`` (the final,
    ``exit``-raising cycle is never recorded -- it unwinds mid-commit).

    * ``quick`` / ``full`` -- the simulator's digest pair, compared by
      the injector to detect trial/golden reconvergence.
    * ``rob`` / ``sq`` -- ring occupancy packed as ``(head << 16) |
      count``; ``iq`` / ``lq`` -- slot valid masks. These drive the
      static pre-simulation pruner: a uniform-mode flip whose target
      slot is free at the injection cycle is provably masked.
    * ``committed`` -- the cumulative committed-instruction count,
      compared per cycle by the fault-propagation tracer to date a
      trial's first commit-stream divergence from the golden run.
    * ``rename`` / ``alloc`` / ``ready`` / ``inflight`` / ``commit_pc``
      -- the register-rename view needed for bit-level PRF pruning: the
      architectural rename map (one byte per architectural register),
      the PRF allocated/ready bit vectors and the core's in-flight
      destination mask (each packed little-endian into ``mask_words``
      64-bit words per cycle), and the PC of the oldest uncommitted
      instruction. Together these let the pruner decide, without a
      simulator, whether a PRF flip lands in a free register, a
      register awaiting full-width writeback, or a statically dead bit
      of a committed architectural value.
    """

    __slots__ = ("quick", "full", "rob", "sq", "iq", "lq", "committed",
                 "rename", "alloc", "ready", "inflight", "commit_pc",
                 "mask_words")

    def __init__(self) -> None:
        self.quick = array("Q")
        self.full = array("Q")
        self.rob = array("I")
        self.sq = array("I")
        self.iq = array("Q")
        self.lq = array("Q")
        self.committed = array("Q")
        self.rename = bytearray()
        self.alloc = array("Q")
        self.ready = array("Q")
        self.inflight = array("Q")
        self.commit_pc = array("Q")
        self.mask_words = 0

    def __len__(self) -> int:
        return len(self.quick)

    def record(self, sim: Simulator) -> None:
        """Append one cycle's digests and occupancy from ``sim``."""
        quick, full = sim.digest_pair()
        self.quick.append(quick)
        self.full.append(full)
        core = sim.core
        self.rob.append((core.rob.head << 16) | core.rob.count)
        self.sq.append((core.sq.head << 16) | core.sq.count)
        self.iq.append(core.iq.valid_mask)
        self.lq.append(core.lq.valid_mask)
        self.committed.append(core.stats.committed)
        prf = core.prf
        words = self.mask_words
        if not words:
            words = self.mask_words = (prf.num_regs + 63) // 64
        self.rename.extend(prf.rename_map)
        alloc = prf.alloc_mask
        ready = prf.ready_mask
        inflight = core.inflight_dest_mask
        low = (1 << 64) - 1
        for _ in range(words):
            self.alloc.append(alloc & low)
            self.ready.append(ready & low)
            self.inflight.append(inflight & low)
            alloc >>= 64
            ready >>= 64
            inflight >>= 64
        self.commit_pc.append(core.next_commit_pc())

    def rename_state(self, cycle: int) -> tuple[bytes, int, int, int, int]:
        """Rename view after ``cycle``: ``(rename_map, alloc_mask,
        ready_mask, inflight_dest_mask, next_commit_pc)``.

        ``rename_map`` is one byte per architectural register holding its
        physical tag. Raises :class:`IndexError` when the cycle was never
        recorded.
        """
        index = cycle - 1
        if not 0 <= index < len(self.commit_pc):
            raise IndexError(f"cycle {cycle} not recorded")
        words = self.mask_words
        span = len(self.rename) // len(self.commit_pc)
        rename = bytes(self.rename[span * index:span * (index + 1)])
        alloc = ready = inflight = 0
        for word in range(words):
            shift = 64 * word
            alloc |= self.alloc[words * index + word] << shift
            ready |= self.ready[words * index + word] << shift
            inflight |= self.inflight[words * index + word] << shift
        return rename, alloc, ready, inflight, self.commit_pc[index]


@dataclass
class GoldenRun:
    """Reference (fault-free) execution of one program on one core.

    ``snapshots`` holds ``(cycle, compressed_state)`` checkpoints (see
    :func:`compress_snapshot`); the injector restores from the nearest
    one below its injection cycle. ``trace``, when present (see
    :func:`run_golden_auto`), enables early trial termination and
    static fault pruning.
    """

    program: Program
    config_name: str
    cycles: int
    output_data: bytes
    exit_code: int | None
    stats: dict[str, float]
    snapshots: list[tuple[int, bytes]] = field(default_factory=list)
    trace: GoldenTrace | None = None

    @property
    def timeout_cycles(self) -> int:
        """The paper's timeout threshold: 2x the fault-free time."""
        return 2 * self.cycles


def _finish_golden(program: Program, config: CoreConfig, result: SimResult,
                   snapshots: list[tuple[int, bytes]]) -> GoldenRun:
    if result.exit_code != 0:
        raise ReproError(
            f"golden run of {program.name} exited with {result.exit_code}")
    return GoldenRun(
        program=program,
        config_name=config.name,
        cycles=result.cycles,
        output_data=result.output.data,
        exit_code=result.exit_code,
        stats=result.stats,
        snapshots=snapshots,
    )


def run_golden(program: Program, config: CoreConfig,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               snapshot_every: int | None = None) -> GoldenRun:
    """Execute the fault-free reference run, optionally checkpointing.

    ``snapshot_every`` enables checkpoint-accelerated campaigns: the
    machine state is serialized every that-many cycles so each injection
    can resume from the nearest checkpoint below its injection cycle
    instead of re-simulating from boot.
    """
    sim = Simulator(program, config)
    snapshots: list[tuple[int, bytes]] = []
    if snapshot_every is not None and snapshot_every < 1:
        raise ReproError("snapshot_every must be >= 1")
    if snapshot_every is None:
        result: SimResult = sim.run(max_cycles)
    else:
        while True:
            target = sim.cycle + snapshot_every
            if target > max_cycles:
                result = sim.run(max_cycles)
                break
            if not sim.run_until(target):
                result = sim.result()
                break
            snapshots.append((sim.cycle,
                              compress_snapshot(sim.save_state())))
    return _finish_golden(program, config, result, snapshots)


def _run_until_recording(sim: Simulator, cycle: int,
                         trace: GoldenTrace) -> bool:
    """``Simulator.run_until`` with per-cycle trace recording."""
    if sim.finished:
        return False
    core = sim.core
    record = trace.record
    try:
        while core.cycle < cycle:
            core.step()
            record(sim)
    except ProgramExit:
        sim.finished = True
        return False
    return True


def _run_recording(sim: Simulator, max_cycles: int,
                   trace: GoldenTrace) -> SimResult:
    """``Simulator.run`` with per-cycle trace recording."""
    if _run_until_recording(sim, max_cycles, trace):
        raise SimTimeoutError(max_cycles)
    return sim.result()


def run_golden_auto(program: Program, config: CoreConfig,
                    max_cycles: int = DEFAULT_MAX_CYCLES,
                    snapshot_count: int = DEFAULT_AUTO_SNAPSHOTS,
                    min_interval: int = 512) -> GoldenRun:
    """Golden run with automatic checkpoints from ONE simulation.

    ``run_golden(snapshot_every=...)`` needs the final cycle count up
    front to pick a sensible interval, which costs a throwaway full
    simulation first. This variant discovers the interval online:
    snapshot every ``min_interval`` cycles, and whenever more than
    ``2 x snapshot_count`` checkpoints accumulate, drop every other one
    and double the interval. The program runs exactly once and ends with
    between ``snapshot_count`` and ``2 x snapshot_count`` roughly evenly
    spaced checkpoints, whatever its length turns out to be.

    The same single pass also records a :class:`GoldenTrace` (per-cycle
    digests and occupancy), which lets the injector terminate trials at
    the first post-injection cycle their state reconverges with this
    golden run and statically prune flips into provably dead storage.
    """
    if snapshot_count < 1:
        raise ReproError("snapshot_count must be >= 1")
    if min_interval < 1:
        raise ReproError("min_interval must be >= 1")
    sim = Simulator(program, config)
    snapshots: list[tuple[int, bytes]] = []
    trace = GoldenTrace()
    interval = min_interval
    while True:
        target = sim.cycle + interval
        if target > max_cycles:
            result = _run_recording(sim, max_cycles, trace)
            break
        if not _run_until_recording(sim, target, trace):
            result = sim.result()
            break
        snapshots.append((sim.cycle, compress_snapshot(sim.save_state())))
        if len(snapshots) >= 2 * snapshot_count:
            snapshots = snapshots[1::2]
            interval *= 2
    golden = _finish_golden(program, config, result, snapshots)
    golden.trace = trace
    return golden
