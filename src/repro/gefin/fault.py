"""Fault specification and golden-run bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..isa.program import Program
from ..microarch.config import CoreConfig
from ..microarch.simulator import SimResult, Simulator

DEFAULT_MAX_CYCLES = 50_000_000


@dataclass(frozen=True)
class FaultSpec:
    """One transient fault: a flip of ``burst`` adjacent bits.

    ``burst=1`` is the paper's single-bit model; larger bursts model the
    multi-bit upsets of the authors' follow-up study (IISWC 2019 [39]),
    where one particle strike corrupts physically adjacent cells.

    ``mode`` selects how ``bit_index`` is interpreted: ``"uniform"``
    addresses the full storage array; ``"occupancy"`` means the bit index
    is drawn among *live* bits at injection time (the index itself is
    drawn lazily, so ``bit_index`` may be None until injection).
    """

    field: str
    cycle: int
    bit_index: int | None = None
    mode: str = "uniform"
    burst: int = 1

    def __post_init__(self) -> None:
        if self.mode not in ("uniform", "occupancy"):
            raise ValueError(f"unknown sampling mode {self.mode!r}")
        if self.cycle < 1:
            raise ValueError("injection cycle must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


@dataclass
class GoldenRun:
    """Reference (fault-free) execution of one program on one core."""

    program: Program
    config_name: str
    cycles: int
    output_data: bytes
    exit_code: int | None
    stats: dict[str, float]
    snapshots: list[tuple[int, bytes]] = field(default_factory=list)

    @property
    def timeout_cycles(self) -> int:
        """The paper's timeout threshold: 2x the fault-free time."""
        return 2 * self.cycles


def run_golden(program: Program, config: CoreConfig,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               snapshot_every: int | None = None) -> GoldenRun:
    """Execute the fault-free reference run, optionally checkpointing.

    ``snapshot_every`` enables checkpoint-accelerated campaigns: the
    machine state is serialized every that-many cycles so each injection
    can resume from the nearest checkpoint below its injection cycle
    instead of re-simulating from boot.
    """
    sim = Simulator(program, config)
    snapshots: list[tuple[int, bytes]] = []
    if snapshot_every is not None and snapshot_every < 1:
        raise ReproError("snapshot_every must be >= 1")
    if snapshot_every is None:
        result: SimResult = sim.run(max_cycles)
    else:
        while True:
            target = sim.cycle + snapshot_every
            if target > max_cycles:
                result = sim.run(max_cycles)
                break
            if not sim.run_until(target):
                result = sim.result()
                break
            snapshots.append((sim.cycle, sim.save_state()))
    if result.exit_code != 0:
        raise ReproError(
            f"golden run of {program.name} exited with {result.exit_code}")
    return GoldenRun(
        program=program,
        config_name=config.name,
        cycles=result.cycles,
        output_data=result.output.data,
        exit_code=result.exit_code,
        stats=result.stats,
        snapshots=snapshots,
    )
