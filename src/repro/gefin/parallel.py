"""Trial-sharded parallel campaign execution with checkpointed resume.

A campaign's ``n`` trials are split into contiguous shards. Every trial
derives its RNG stream from ``(seed, field, trial)`` alone (a SHA-256
stream, see :func:`derive_rng`), so the partition of trials into shards
-- and the process a shard happens to run in -- cannot change the
sampled faults. Shards therefore execute in any order across a
``ProcessPoolExecutor`` and re-assemble into the exact serial result.

Completed shards are appended to a :class:`CampaignCheckpoint`, a
JSON-lines file living next to the campaign's ``ResultStore`` entry:
one header line pinning the sampling parameters, then one line per
finished shard carrying its serialized :class:`InjectionResult` records.
An interrupted campaign re-loads the file, validates the header against
its own parameters, and only runs the shards that are missing. Torn
trailing lines (the write the crash interrupted) parse as garbage and
are skipped, so a checkpoint is never worse than starting over.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import random
import time
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from ..isa.program import Program
from ..microarch.config import CoreConfig
from ..obs.log import get_logger
from .fault import FaultSpec, GoldenRun
from .injector import InjectionResult, inject_one, synthetic_trail

_LOG = get_logger()

#: Upper bound on the number of shards a campaign is split into. The
#: plan depends only on ``n`` (never on the worker count), so a campaign
#: checkpointed under one ``--workers`` resumes under any other.
DEFAULT_MAX_SHARDS = 16

CHECKPOINT_SUFFIX = ".ckpt.jsonl"


def derive_rng(seed: int, field: str, trial: int) -> random.Random:
    """Per-injection RNG, reproducible across processes.

    Derives the stream from a SHA-256 of (seed, field, trial) rather than
    Python's randomized string hashing, so campaigns replay bit-exactly.
    """
    digest = hashlib.sha256(f"{seed}:{field}:{trial}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def sample_cycle(rng: random.Random, cycles: int) -> int:
    """Uniform injection cycle over the full ``[1, cycles]`` window.

    The fault population is ``bits x cycles`` (every (bit, cycle) pair,
    :func:`~repro.gefin.sampling.fault_population`), so the final golden
    cycle is a legal target and must be sampled with the same
    probability as every other.
    """
    return rng.randrange(1, max(1, cycles) + 1)


def resolve_workers(workers: int | None) -> int:
    """Worker count: explicit argument, else ``REPRO_WORKERS``, else 1.

    A junk ``REPRO_WORKERS`` raises a :class:`ValueError` that names the
    environment variable (a bare ``int()`` traceback pointed nowhere),
    and an env value above ``os.cpu_count()`` is clamped with a warning
    instead of silently oversubscribing the machine. An *explicit*
    ``workers`` argument is taken at face value: callers (and tests)
    that deliberately overcommit know what they are doing.
    """
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "") or "1"
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer worker count, "
                f"got {raw!r}") from None
        cpus = os.cpu_count() or 1
        if workers > cpus:
            _LOG.warning("REPRO_WORKERS exceeds available CPUs; clamping",
                         requested=workers, cpus=cpus)
            workers = cpus
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


# ------------------------------------------------------------ chaos hook

# The campaign supervisor (see .resilience) is itself exercised by fault
# injection: REPRO_CHAOS="crash@5,hang@7" makes trial 5 kill its worker
# process and trial 7 hang until the watchdog fires. The hook only acts
# inside pool worker processes -- the serial path and the parent ignore
# it -- and costs one dict lookup per trial when armed, nothing when the
# variable is unset.
_CHAOS_CACHE: tuple[str, dict[int, str]] = ("", {})


def _chaos_plan() -> dict[int, str]:
    """Parse ``REPRO_CHAOS`` (``action@trial,...``), cached per value."""
    global _CHAOS_CACHE
    raw = os.environ.get("REPRO_CHAOS", "")
    if _CHAOS_CACHE[0] == raw:
        return _CHAOS_CACHE[1]
    plan: dict[int, str] = {}
    for part in raw.split(","):
        action, sep, trial = part.strip().partition("@")
        if not sep:
            continue
        try:
            plan[int(trial)] = action
        except ValueError:
            continue
    _CHAOS_CACHE = (raw, plan)
    return plan


def maybe_chaos(trial: int) -> None:
    """Crash-on-demand test hook for the campaign supervisor."""
    plan = _chaos_plan()
    if not plan:
        return
    action = plan.get(trial)
    if action is None:
        return
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return  # never sabotage the serial path or the parent
    if action == "crash":
        os._exit(17)
    elif action == "hang":
        time.sleep(3600)


@dataclass(frozen=True)
class Shard:
    """One contiguous range of campaign trials: ``[start, stop)``."""

    index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop:
            raise ValueError(f"bad shard range [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start


def plan_shards(n: int, shard_size: int | None = None) -> list[Shard]:
    """Split ``n`` trials into contiguous shards.

    The default size targets :data:`DEFAULT_MAX_SHARDS` shards and is a
    function of ``n`` only, keeping the plan (and hence any checkpoint
    written against it) stable across worker counts.
    """
    if n <= 0:
        return []
    if shard_size is None:
        shard_size = max(1, math.ceil(n / DEFAULT_MAX_SHARDS))
    if shard_size < 1:
        raise ValueError("shard_size must be >= 1")
    return [Shard(index, start, min(n, start + shard_size))
            for index, start in enumerate(range(0, n, shard_size))]


def run_shard(program: Program, config: CoreConfig, golden: GoldenRun,
              field: str, shard: Shard, seed: int,
              mode: str = "occupancy", burst: int = 1,
              bit_count: int | None = None, early_exit: bool = True,
              convergence_horizon: int | None = None,
              trace: bool = False) -> list[InjectionResult]:
    """Run one shard's trials in-process, in trial order.

    This is *the* trial loop: the serial path runs it over every shard
    in order, the parallel path fans shards out to worker processes.
    Each trial is first offered to the :class:`~repro.gefin.prune.
    StaticPruner` (free Masked classification for provably dead flips),
    then simulated with early termination unless ``early_exit`` is off.
    ``trace`` attaches a provenance trail to every result (pruned
    trials get a synthetic injected->masked trail); it never changes
    classifications.
    """
    if bit_count is None:
        from ..microarch.simulator import Simulator

        probe = Simulator(program, config)
        bit_count = probe.bit_count(field)
        del probe
    pruner = None
    if early_exit:
        from .prune import StaticPruner

        pruner = StaticPruner(program, config, golden)
    results: list[InjectionResult] = []
    for trial in range(shard.start, shard.stop):
        maybe_chaos(trial)
        rng = derive_rng(seed, field, trial)
        cycle = sample_cycle(rng, golden.cycles)
        if mode == "occupancy":
            spec = FaultSpec(field=field, cycle=cycle, mode="occupancy",
                             burst=burst)
        else:
            spec = FaultSpec(field=field, cycle=cycle,
                             bit_index=rng.randrange(bit_count),
                             burst=burst)
        if pruner is not None:
            pruned = pruner.prune(spec)
            if pruned is not None:
                if trace:
                    pruned.trail = synthetic_trail(pruned)
                results.append(pruned)
                continue
        results.append(inject_one(
            program, config, golden, spec, rng, early_exit=early_exit,
            convergence_horizon=convergence_horizon, trace=trace))
    return results


def shard_span(shard: Shard, start: float, end: float,
               trials: int) -> dict:
    """Wall-clock execution record of one completed shard.

    These are the campaign timeline entries the Chrome exporter lays
    out as worker-row slices (:func:`repro.obs.chrome.campaign_trace`).
    """
    return {"shard": shard.index, "first_trial": shard.start,
            "stop_trial": shard.stop, "start": start, "end": end,
            "worker": os.getpid(), "trials": trials}


def _shard_task(program: Program, config: CoreConfig, golden: GoldenRun,
                field: str, shard: Shard, seed: int, mode: str, burst: int,
                bit_count: int, early_exit: bool = True,
                convergence_horizon: int | None = None,
                trace: bool = False) -> tuple[int, list[dict], dict]:
    """Pool entry point: run a shard, return JSON-ready records plus
    the shard's wall-clock span (measured in the worker process)."""
    start = time.time()  # det: allow (span metadata, not results)
    results = run_shard(program, config, golden, field, shard, seed,
                        mode=mode, burst=burst, bit_count=bit_count,
                        early_exit=early_exit,
                        convergence_horizon=convergence_horizon,
                        trace=trace)
    span = shard_span(shard, start, time.time(), len(results))  # det: allow
    return shard.index, [r.to_dict() for r in results], span


@dataclass
class ShardRecord:
    """One completed shard as recovered from (or bound for) a checkpoint."""

    shard: Shard
    results: list[InjectionResult]
    golden_cycles: int
    bit_count: int
    program_name: str | None = None


class CampaignCheckpoint:
    """Append-only JSON-lines record of completed campaign shards.

    Line 0 is a header pinning the sampling parameters (``meta``); every
    further line is one completed shard. Appends are flushed and
    fsynced, so after a crash at most the line being written is lost --
    and a torn line simply fails to parse and is dropped on load.
    """

    VERSION = 1

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @classmethod
    def for_key(cls, root: str | Path, key: str) -> "CampaignCheckpoint":
        """Checkpoint co-located with a ``ResultStore`` entry."""
        return cls(Path(root) / f"{key}{CHECKPOINT_SUFFIX}")

    # -------------------------------------------------------------- reading

    def _lines(self) -> list[str]:
        try:
            return self.path.read_text().splitlines()
        except (OSError, UnicodeDecodeError):
            return []

    def _header_matches(self, meta: dict) -> bool:
        lines = self._lines()
        if not lines:
            return False
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            return False
        return (isinstance(header, dict)
                and header.get("kind") == "campaign-checkpoint"
                and header.get("version") == self.VERSION
                and header.get("meta") == _jsonify(meta))

    def load(self, meta: dict,
             shards: Sequence[Shard]) -> dict[int, ShardRecord]:
        """Completed shards recorded under a matching header.

        Returns ``{}`` when the file is missing, unreadable, or was
        written for different sampling parameters; skips unparseable or
        inconsistent shard lines instead of failing.
        """
        if not self._header_matches(meta):
            return {}
        expected = {shard.index: shard for shard in shards}
        completed: dict[int, ShardRecord] = {}
        for line in self._lines()[1:]:
            record = self._parse_shard_line(line, expected)
            if record is not None:
                completed[record.shard.index] = record
        return completed

    @staticmethod
    def _parse_shard_line(line: str,
                          expected: dict[int, Shard]) -> ShardRecord | None:
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            return None  # torn tail write from an interrupted run
        if not isinstance(entry, dict):
            return None
        shard = expected.get(entry.get("shard"))
        if (shard is None or entry.get("start") != shard.start
                or entry.get("stop") != shard.stop):
            return None
        try:
            results = [InjectionResult.from_dict(raw)
                       for raw in entry["results"]]
            golden_cycles = int(entry["golden_cycles"])
            bit_count = int(entry["bit_count"])
        except (KeyError, TypeError, ValueError):
            return None
        if len(results) != shard.size:
            return None
        return ShardRecord(shard, results, golden_cycles, bit_count,
                           entry.get("program"))

    # -------------------------------------------------------------- writing

    def begin(self, meta: dict) -> None:
        """Start (or continue) a checkpoint for these parameters.

        An existing file with a matching header is left alone so its
        shard lines keep accumulating; anything else is overwritten.
        """
        if self._header_matches(meta):
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = {"kind": "campaign-checkpoint", "version": self.VERSION,
                  "meta": _jsonify(meta)}
        with self.path.open("w") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def record(self, shard: Shard, golden_cycles: int, bit_count: int,
               results: Sequence[InjectionResult],
               program_name: str | None = None) -> None:
        """Append one completed shard (flushed + fsynced)."""
        entry = {
            "shard": shard.index,
            "start": shard.start,
            "stop": shard.stop,
            "golden_cycles": golden_cycles,
            "bit_count": bit_count,
            "results": [r.to_dict() for r in results],
        }
        if program_name is not None:
            entry["program"] = program_name
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> None:
        """Delete the checkpoint (the campaign completed)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def _jsonify(meta: dict) -> dict:
    """Normalize ``meta`` through JSON so tuple/list mismatches cannot
    defeat the header equality check."""
    return json.loads(json.dumps(meta, sort_keys=True))
