"""Fault-effect classification (paper Section III-C).

==============  ======================================================
class           meaning
==============  ======================================================
MASKED          output identical to the golden run
SDC             run completed, output differs (silent data corruption)
TIMEOUT         run exceeded 2x the fault-free execution time
CRASH_PROCESS   the simulated process was killed (SIGSEGV/SIGILL/...)
CRASH_SYSTEM    kernel panic
ASSERT          simulator hit a state it cannot adjudicate
==============  ======================================================
"""

from __future__ import annotations

import enum

from ..errors import (
    SimAssertError,
    SimCrashError,
    SimTimeoutError,
    SimulationError,
)
from ..microarch.simulator import SimResult


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    TIMEOUT = "timeout"
    CRASH_PROCESS = "crash_process"
    CRASH_SYSTEM = "crash_system"
    ASSERT = "assert"

    @property
    def is_failure(self) -> bool:
        return self is not Outcome.MASKED


# Everything that is not masked, in stable plotting order.
FAILURE_OUTCOMES = (Outcome.SDC, Outcome.CRASH_PROCESS,
                    Outcome.CRASH_SYSTEM, Outcome.TIMEOUT, Outcome.ASSERT)

ALL_OUTCOMES = (Outcome.MASKED,) + FAILURE_OUTCOMES


def classify_exception(exc: SimulationError) -> Outcome:
    """Map a simulation-terminating exception to its fault class."""
    if isinstance(exc, SimCrashError):
        return (Outcome.CRASH_SYSTEM if exc.kind == "system"
                else Outcome.CRASH_PROCESS)
    if isinstance(exc, SimAssertError):
        return Outcome.ASSERT
    if isinstance(exc, SimTimeoutError):
        return Outcome.TIMEOUT
    raise TypeError(f"not a simulation outcome: {exc!r}")


def classify_completion(result: SimResult, golden_output: bytes,
                        golden_exit: int | None) -> Outcome:
    """Classify a run that terminated normally against the golden run."""
    if result.output.data == golden_output and \
            result.output.exit_code == golden_exit:
        return Outcome.MASKED
    return Outcome.SDC
