"""Fault-effect classification (paper Section III-C).

==============  ======================================================
class           meaning
==============  ======================================================
MASKED          output identical to the golden run
SDC             run completed, output differs (silent data corruption)
TIMEOUT         run exceeded 2x the fault-free execution time
CRASH_PROCESS   the simulated process was killed (SIGSEGV/SIGILL/...)
CRASH_SYSTEM    kernel panic
ASSERT          simulator hit a state it cannot adjudicate
INFRASTRUCTURE  the *host* failed, not the simulated machine: the trial
                was quarantined by the campaign supervisor after its
                worker repeatedly crashed or hung (see
                :mod:`repro.gefin.resilience`)
==============  ======================================================

``INFRASTRUCTURE`` says nothing about the fault's architectural effect,
so it is neither a failure class nor masked: quarantined trials carry
weight 0, are excluded from the AVF estimator denominator, and widen
the campaign's achieved error margin instead.
"""

from __future__ import annotations

import enum

from ..errors import (
    SimAssertError,
    SimCrashError,
    SimTimeoutError,
    SimulationError,
)
from ..microarch.simulator import SimResult


class Outcome(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    TIMEOUT = "timeout"
    CRASH_PROCESS = "crash_process"
    CRASH_SYSTEM = "crash_system"
    ASSERT = "assert"
    INFRASTRUCTURE = "infrastructure"

    @property
    def is_failure(self) -> bool:
        return self not in (Outcome.MASKED, Outcome.INFRASTRUCTURE)


# Every simulated failure class, in stable plotting order. Quarantined
# (infrastructure) trials are deliberately absent: they describe the
# host, not the machine under test.
FAILURE_OUTCOMES = (Outcome.SDC, Outcome.CRASH_PROCESS,
                    Outcome.CRASH_SYSTEM, Outcome.TIMEOUT, Outcome.ASSERT)

ALL_OUTCOMES = ((Outcome.MASKED,) + FAILURE_OUTCOMES
                + (Outcome.INFRASTRUCTURE,))


def classify_exception(exc: SimulationError) -> Outcome:
    """Map a simulation-terminating exception to its fault class."""
    if isinstance(exc, SimCrashError):
        return (Outcome.CRASH_SYSTEM if exc.kind == "system"
                else Outcome.CRASH_PROCESS)
    if isinstance(exc, SimAssertError):
        return Outcome.ASSERT
    if isinstance(exc, SimTimeoutError):
        return Outcome.TIMEOUT
    raise TypeError(f"not a simulation outcome: {exc!r}")


def classify_completion(result: SimResult, golden_output: bytes,
                        golden_exit: int | None) -> Outcome:
    """Classify a run that terminated normally against the golden run."""
    if result.output.data == golden_output and \
            result.output.exit_code == golden_exit:
        return Outcome.MASKED
    return Outcome.SDC
