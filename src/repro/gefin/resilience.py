"""Fault-tolerant campaign supervision: retries, watchdogs, quarantine.

The injection engine studies how a simulated CPU survives bit flips,
yet a single worker crash, OOM kill, or hung shard used to abort the
whole campaign from a bare ``future.result()``. This module gives
campaigns the same survival properties as the machine under test:

* **Retry with deterministic backoff** -- a failed shard is re-submitted
  up to :class:`RetryPolicy.max_retries` times. Backoff delays are
  drawn from :func:`~repro.gefin.parallel.derive_rng` keyed on
  ``(seed, shard, attempt)``, so a retry schedule replays bit-exactly
  across runs (the *durations* are deterministic; wall-clock obviously
  is not).
* **Pool re-creation** -- a ``BrokenProcessPoolError`` (worker killed by
  the OS, ``os._exit``, OOM) poisons every in-flight future of a
  ``ProcessPoolExecutor``; the supervisor attributes the break (see
  the attribution note below), tears the pool down, builds a fresh
  one, and keeps going.
* **Watchdog deadlines** -- every submitted shard carries a deadline
  derived from the golden run's cycle count
  (:func:`default_shard_timeout`) or an explicit ``shard_timeout``. A
  shard past its deadline is declared hung: its workers are terminated,
  the pool is rebuilt, and the shard is charged a retry. Unexpired
  shards caught in the teardown are re-queued without charge.
* **Poison-trial quarantine** -- a shard that exhausts its retries is
  *bisected*: both halves re-run with a fresh retry budget, so the
  failure isolates to single trials in O(log size) extra attempts. A
  single-trial shard that still fails is quarantined: the trial is
  recorded as an :data:`~repro.gefin.outcomes.Outcome.INFRASTRUCTURE`
  outcome (weight 0) instead of sinking the campaign, and lands in the
  shard checkpoint like any other result.
* **Graceful degradation** -- everything the supervisor had to do is
  accounted in a :class:`Degradation` record. A degraded campaign
  reports its *achieved* error margin recomputed from the trials that
  actually completed (:meth:`Degradation.report`), instead of quoting
  the requested one as if nothing happened.

Crash attribution note: a dying worker poisons every in-flight future,
so the executor cannot say *which* shard killed it. The supervisor
therefore charges a pool break only when attribution is certain: a
shard that breaks the pool while running **alone** is charged. An
ambiguous break (several shards in flight) charges nobody -- every
suspect is re-queued in *isolation* and run one at a time until it
either completes (cleared) or dies alone (charged with certainty on
the next break). Healthy shards caught in a poison trial's blast
radius never lose retry budget to it, so a false quarantine is
impossible even with ``max_retries=0``.

The supervisor is generic over what a shard task computes: both
:func:`repro.gefin.campaign.run_campaign` and
:meth:`repro.experiments.grid.CampaignGrid.ensure_all` drive it with
their own submit/decode callbacks.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Hashable, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field as dataclass_field
from typing import Any

from ..obs.events import EVENT_INJECTED, EVENT_QUARANTINED, TraceEvent
from ..obs.log import get_logger
from ..obs.metrics import NULL_METRICS
from .fault import FaultSpec
from .injector import InjectionResult
from .outcomes import Outcome
from .parallel import Shard, derive_rng, sample_cycle
from .sampling import error_margin, fault_population

__all__ = [
    "DEFAULT_MAX_RETRIES",
    "Degradation",
    "RetryPolicy",
    "ShardSupervisor",
    "default_shard_timeout",
    "quarantined_result",
]

_LOG = get_logger()

#: Times a shard is re-run after a failure before it is bisected.
DEFAULT_MAX_RETRIES = 2

#: Floor for derived watchdog deadlines; generous so slow CI machines
#: never trip it on healthy shards.
MIN_SHARD_TIMEOUT = 120.0

#: Deliberately pessimistic simulation-rate floor (cycles/second) used
#: to turn a golden cycle count into a wall-clock deadline.
CYCLES_PER_SECOND_FLOOR = 500.0

#: Safety multiplier on the estimated shard wall-clock.
_DEADLINE_SLACK = 8.0

#: How long (seconds) the supervisor blocks in ``wait`` between
#: watchdog sweeps.
_POLL_INTERVAL = 0.25


def default_shard_timeout(golden_cycles: int, shard_size: int) -> float:
    """Watchdog deadline derived from the golden run's cycle count.

    A shard simulates at most ``shard_size`` trials of at most
    ``golden_cycles * 2`` cycles each (the timeout-classification
    bound); dividing by a pessimistic cycles/second floor and applying
    a slack factor gives a deadline that only a genuinely hung worker
    can miss.
    """
    est = shard_size * 2 * max(1, golden_cycles) / CYCLES_PER_SECOND_FLOOR
    return max(MIN_SHARD_TIMEOUT, _DEADLINE_SLACK * est)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay`` draws its jitter from :func:`derive_rng` keyed on
    ``(seed, token, attempt)``, so the schedule a campaign would follow
    is a pure function of its parameters and replays bit-exactly.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    base_delay: float = 0.05
    max_delay: float = 2.0

    def delay(self, seed: int, token: str, attempt: int) -> float:
        """Backoff before re-running ``token``'s ``attempt``-th retry."""
        cap = min(self.max_delay,
                  self.base_delay * (2 ** max(0, attempt - 1)))
        rng = derive_rng(seed, f"retry:{token}", attempt)
        return cap * (0.5 + 0.5 * rng.random())


@dataclass
class Degradation:
    """Everything the supervisor had to do to keep a campaign alive."""

    retries: int = 0
    watchdog_kills: int = 0
    pool_restarts: int = 0
    #: One entry per quarantined trial:
    #: ``{"trial", "key", "reason", "attempts"}``.
    quarantined: list[dict] = dataclass_field(default_factory=list)

    @property
    def dirty(self) -> bool:
        """Did anything at all go wrong?"""
        return bool(self.retries or self.watchdog_kills
                    or self.pool_restarts or self.quarantined)

    def report(self, n: int, bit_count: int, golden_cycles: int,
               confidence: float = 0.99) -> dict:
        """Degradation summary with the *achieved* statistical margin.

        ``achieved_margin`` is :func:`error_margin` recomputed from the
        ``n - quarantined`` trials that actually completed: a degraded
        campaign states its widened confidence interval instead of
        pretending the quarantined samples exist.
        """
        completed = n - len(self.quarantined)
        population = fault_population(bit_count, golden_cycles)
        return {
            "retries": self.retries,
            "watchdog_kills": self.watchdog_kills,
            "pool_restarts": self.pool_restarts,
            "quarantined": sorted(self.quarantined,
                                  key=lambda q: q["trial"]),
            "completed_n": completed,
            "requested_margin99": error_margin(population, n, confidence),
            "achieved_margin99": (error_margin(population, completed,
                                               confidence)
                                  if completed else 1.0),
        }


def quarantined_result(field: str, trial: int, seed: int,
                       golden_cycles: int, mode: str, burst: int,
                       bit_count: int, reason: str,
                       trace: bool = False) -> InjectionResult:
    """The :data:`Outcome.INFRASTRUCTURE` record for a poisoned trial.

    The fault spec is re-derived exactly as :func:`~repro.gefin.
    parallel.run_shard` would have drawn it -- same RNG stream, same
    draw order -- so a quarantined trial names the precise fault it
    failed to execute, and resuming from a checkpoint replays the same
    record. ``weight`` is 0: the trial contributes to no AVF class, and
    the aggregator excludes it from the estimator denominator.
    """
    rng = derive_rng(seed, field, trial)
    cycle = sample_cycle(rng, golden_cycles)
    if mode == "occupancy":
        spec = FaultSpec(field=field, cycle=cycle, mode="occupancy",
                         burst=burst)
    else:
        spec = FaultSpec(field=field, cycle=cycle,
                         bit_index=rng.randrange(bit_count), burst=burst)
    result = InjectionResult(spec, Outcome.INFRASTRUCTURE, 0.0, None,
                             reason, 0, early="quarantine")
    if trace:
        result.trail = [TraceEvent(EVENT_INJECTED, cycle, reason),
                        TraceEvent(EVENT_QUARANTINED, cycle, reason)]
    return result


# --------------------------------------------------------------- supervisor


class _Assembly:
    """Re-assembles one original shard from (possibly bisected) parts."""

    __slots__ = ("key", "shard", "parts", "covered", "value")

    def __init__(self, key: Hashable, shard: Shard) -> None:
        self.key = key
        self.shard = shard
        self.parts: dict[int, list[dict]] = {}
        self.covered = 0
        self.value: Any = None

    def feed(self, shard: Shard, records: list[dict],
             value: Any = None) -> bool:
        """Add one part; True when the original shard is fully covered."""
        self.parts[shard.start] = records
        self.covered += shard.size
        if value is not None:
            self.value = value
        return self.covered >= self.shard.size

    def records(self) -> list[dict]:
        """All trial records of the original shard, in trial order."""
        return [record for start in sorted(self.parts)
                for record in self.parts[start]]


class _Task:
    """One submittable unit: a (sub-)shard plus its retry state."""

    __slots__ = ("key", "shard", "assembly", "attempts", "not_before",
                 "solo")

    def __init__(self, key: Hashable, shard: Shard,
                 assembly: _Assembly) -> None:
        self.key = key
        self.shard = shard
        self.assembly = assembly
        self.attempts = 0
        self.not_before = 0.0
        #: Suspected of killing workers: run alone so the next break
        #: (if any) is unambiguously its fault.
        self.solo = False


class ShardSupervisor:
    """Runs ``(key, shard)`` jobs on a process pool, surviving worker
    crashes, hangs, and poison trials (see the module docstring).

    Callbacks (all called in the parent process):

    ``submit(pool, key, shard) -> Future``
        Submit one (sub-)shard to the executor. Sub-shards produced by
        bisection reuse the original shard's index with a narrowed
        ``[start, stop)`` range.
    ``records_of(key, shard, value) -> list[dict]``
        Extract the per-trial JSON records (in trial order) from a
        completed future's value.
    ``quarantine(key, trial, reason) -> dict``
        Build the infrastructure-outcome record for a poisoned trial
        (see :func:`quarantined_result`).
    ``on_shard(key, shard, value, records)``
        One *original* shard is fully assembled. ``value`` is the value
        of a successful task that contributed to it (the whole-shard
        value when no bisection happened) or ``None`` when every trial
        was quarantined.
    """

    def __init__(self, workers: int, *,
                 submit: Callable[[Any, Hashable, Shard], Future],
                 records_of: Callable[[Hashable, Shard, Any], list[dict]],
                 quarantine: Callable[[Hashable, int, str], dict],
                 on_shard: Callable[[Hashable, Shard, Any, list[dict]],
                                    None],
                 seed: int = 0,
                 policy: RetryPolicy | None = None,
                 shard_timeout: float | None = None,
                 fail_fast: bool = False,
                 metrics: Any = None,
                 make_pool: Callable[[int], Any] | None = None) -> None:
        self.workers = max(1, workers)
        self.policy = policy or RetryPolicy()
        self.shard_timeout = shard_timeout
        self.fail_fast = fail_fast
        self.degradation = Degradation()
        self._submit = submit
        self._records_of = records_of
        self._quarantine = quarantine
        self._on_shard = on_shard
        self._seed = seed
        self._metrics = metrics if metrics is not None else NULL_METRICS
        self._make_pool = make_pool or self._default_pool
        self._ready: deque[_Task] = deque()
        self._waiting: list[_Task] = []

    def _default_pool(self, workers: int) -> Any:
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(max_workers=workers)

    # ------------------------------------------------------------ main loop

    def run(self, jobs: Sequence[tuple[Hashable, Shard]]) -> Degradation:
        """Execute every job; returns the :class:`Degradation` record."""
        if not jobs:
            return self.degradation
        for key, shard in jobs:
            assembly = _Assembly(key, shard)
            self._ready.append(_Task(key, shard, assembly))
        pool = self._make_pool(min(self.workers, len(jobs)))
        inflight: dict[Future, tuple[_Task, float]] = {}
        try:
            while self._ready or self._waiting or inflight:
                now = time.monotonic()  # det: allow (watchdog clock)
                self._promote_waiting(now)
                pool = self._fill(pool, inflight, now)
                if not inflight:
                    self._sleep_until_due()
                    continue
                done, _ = wait(list(inflight), timeout=_POLL_INTERVAL,
                               return_when=FIRST_COMPLETED)
                broken: list[tuple[_Task, str]] = []
                for future in done:
                    task, _deadline = inflight.pop(future)
                    self._handle_done(future, task, broken)
                if broken:
                    pool = self._attribute_break(pool, inflight, broken)
                else:
                    pool = self._watchdog(pool, inflight)
        finally:
            self._shutdown(pool)
        return self.degradation

    def _promote_waiting(self, now: float) -> None:
        due = [task for task in self._waiting if task.not_before <= now]
        if due:
            self._waiting = [task for task in self._waiting
                             if task.not_before > now]
            self._ready.extend(due)

    def _sleep_until_due(self) -> None:
        if not self._waiting:
            return
        now = time.monotonic()  # det: allow (backoff clock)
        delay = min(task.not_before for task in self._waiting) - now
        if delay > 0:
            time.sleep(min(delay, _POLL_INTERVAL))

    def _fill(self, pool: Any, inflight: dict[Future, tuple[_Task, float]],
              now: float) -> Any:
        """Submit ready tasks up to the worker count (so every in-flight
        future is actually running, keeping deadlines honest).

        A ``solo`` task (a pool-break suspect) only runs with the pool
        otherwise empty, and nothing joins it until it resolves -- the
        next break, if any, then has exactly one possible culprit.
        """
        while self._ready and len(inflight) < self.workers:
            if inflight and (self._ready[0].solo
                             or any(t.solo for t, _ in inflight.values())):
                return pool
            task = self._ready.popleft()
            try:
                future = self._submit(pool, task.key, task.shard)
            except BrokenProcessPool:
                self._ready.appendleft(task)
                pool = self._attribute_break(pool, inflight, [])
                continue
            deadline = (now + self.shard_timeout
                        if self.shard_timeout else 0.0)
            inflight[future] = (task, deadline)
        return pool

    # ----------------------------------------------------------- completion

    def _handle_done(self, future: Future, task: _Task,
                     broken: list[tuple[_Task, str]]) -> None:
        """Process one finished future.

        Success feeds the shard's assembly and a task-level exception
        is charged directly; a pool break is *not* charged here -- the
        task lands in ``broken`` for :meth:`_attribute_break`, which
        decides whether attribution is certain enough to charge.
        """
        if future.cancelled():
            self._ready.append(task)
            return
        try:
            value = future.result()
        except BrokenProcessPool as exc:
            if self.fail_fast:
                raise
            broken.append((task, f"worker process died: {exc}"))
            return
        except Exception as exc:  # noqa: BLE001 - task-level failure
            if self.fail_fast:
                raise
            self._charge(task, f"shard task failed: {exc!r}")
            return
        self._complete(task, value)

    def _complete(self, task: _Task, value: Any) -> None:
        records = self._records_of(task.key, task.shard, value)
        self._feed(task.assembly, task.shard, records, value)

    def _feed(self, assembly: _Assembly, shard: Shard,
              records: list[dict], value: Any) -> None:
        if assembly.feed(shard, records, value):
            self._on_shard(assembly.key, assembly.shard, assembly.value,
                           assembly.records())

    # -------------------------------------------------------------- failure

    def _charge(self, task: _Task, reason: str) -> None:
        """Charge one failed attempt; retry, bisect, or quarantine."""
        task.attempts += 1
        self.degradation.retries += 1
        self._metrics.counter("campaign.shard_retries").inc()
        if task.attempts <= self.policy.max_retries:
            token = f"{task.key}:{task.shard.start}:{task.shard.stop}"
            delay = self.policy.delay(self._seed, token, task.attempts)
            task.not_before = time.monotonic() + delay  # det: allow
            self._waiting.append(task)
            _LOG.warning("retrying shard", shard=task.shard.index,
                         trials=f"[{task.shard.start},{task.shard.stop})",
                         attempt=task.attempts, backoff=round(delay, 3),
                         reason=reason)
            return
        if task.shard.size == 1:
            trial = task.shard.start
            record = self._quarantine(task.key, trial, reason)
            self.degradation.quarantined.append({
                "trial": trial,
                "key": None if task.key is None else str(task.key),
                "reason": reason,
                "attempts": task.attempts,
            })
            self._metrics.counter("campaign.quarantined_trials").inc()
            _LOG.warning("quarantined poison trial", trial=trial,
                         attempts=task.attempts, reason=reason)
            self._feed(task.assembly, task.shard, [record], None)
            return
        mid = (task.shard.start + task.shard.stop) // 2
        _LOG.warning("bisecting failing shard", shard=task.shard.index,
                     trials=f"[{task.shard.start},{task.shard.stop})",
                     reason=reason)
        for start, stop in ((task.shard.start, mid),
                            (mid, task.shard.stop)):
            sub = Shard(task.shard.index, start, stop)
            sub_task = _Task(task.key, sub, task.assembly)
            sub_task.solo = task.solo
            self._ready.append(sub_task)

    # ------------------------------------------------------------- recovery

    def _watchdog(self, pool: Any,
                  inflight: dict[Future, tuple[_Task, float]]) -> Any:
        """Kill and recover the pool when a shard overran its deadline."""
        if not self.shard_timeout:
            return pool
        now = time.monotonic()  # det: allow (watchdog clock)
        expired = [future for future, (_task, deadline) in inflight.items()
                   if deadline and now > deadline]
        if not expired:
            return pool
        if self.fail_fast:
            task = inflight[expired[0]][0]
            raise TimeoutError(
                f"shard [{task.shard.start},{task.shard.stop}) exceeded "
                f"its {self.shard_timeout:.1f}s watchdog deadline")
        for future in expired:
            task, _deadline = inflight.pop(future)
            self.degradation.watchdog_kills += 1
            self._metrics.counter("campaign.watchdog_kills").inc()
            task.solo = True
            self._charge(task, "shard exceeded its watchdog deadline")
        return self._recover(pool, inflight, "hung shard killed")

    def _attribute_break(self, pool: Any,
                         inflight: dict[Future, tuple[_Task, float]],
                         broken: list[tuple[_Task, str]]) -> Any:
        """Charge a pool break to the right shard -- or to nobody.

        A dying worker poisons every in-flight future, so the executor
        cannot say which shard killed it. A single suspect is certain
        and gets charged; with several, charging them all would let one
        poison trial starve innocent shards into quarantine, so nobody
        is charged -- every suspect is re-queued with ``solo`` set, to
        run alone until it completes (cleared) or breaks the pool
        single-handedly (charged).
        """
        for future, (task, _deadline) in inflight.items():
            if future.done() and not future.cancelled():
                self._handle_done(future, task, broken)
            else:  # pragma: no cover - a broken pool marks these done
                broken.append((task, "worker pool broke mid-shard"))
        inflight.clear()
        if len(broken) == 1:
            task, reason = broken[0]
            task.solo = True
            self._charge(task, reason)
        elif broken:
            for task, _reason in broken:
                task.solo = True
                self._ready.append(task)
            _LOG.warning("ambiguous pool break; isolating suspects",
                         suspects=len(broken))
        return self._restart(pool, "worker pool broke mid-shard")

    def _recover(self, pool: Any,
                 inflight: dict[Future, tuple[_Task, float]],
                 why: str) -> Any:
        """Tear the pool down and re-queue survivors without charge.

        Used when the supervisor itself kills the pool (hung-shard
        teardown): the surviving shards are known innocent, so futures
        broken by our own teardown are simply re-queued.
        """
        collateral: list[tuple[_Task, str]] = []
        for future, (task, _deadline) in inflight.items():
            if future.done() and not future.cancelled():
                # Completed in the race window: keep its work.
                self._handle_done(future, task, collateral)
            else:
                self._ready.append(task)
        for task, _reason in collateral:
            self._ready.append(task)
        inflight.clear()
        return self._restart(pool, why)

    def _restart(self, pool: Any, why: str) -> Any:
        self._shutdown(pool)
        self.degradation.pool_restarts += 1
        self._metrics.counter("campaign.pool_restarts").inc()
        _LOG.warning("recreated worker pool", reason=why,
                     restarts=self.degradation.pool_restarts)
        return self._make_pool(self.workers)

    @staticmethod
    def _shutdown(pool: Any) -> None:
        """Shut a pool down hard, terminating hung or orphaned workers."""
        raw = getattr(pool, "_processes", None)
        processes = list(raw.values()) if isinstance(raw, dict) else []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - already-broken pools may throw
            pass
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - TERM-proof worker
                process.kill()
                process.join(timeout=5)
