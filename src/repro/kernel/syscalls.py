"""Minimal exokernel: syscall interface and kernel-state checking.

The paper injects faults during *full-system* simulation, so kernel state
is part of the fault surface and some faults surface as kernel panics
(system crashes) rather than killed processes. We reproduce that channel
with a small resident kernel block in RAM (written by the loader) that the
syscall handler reads and updates **through the same data-cache hierarchy
as the program**. A fault that corrupts the cached kernel block is
therefore discovered by the kernel's own consistency checks and escalates
to a system crash.

Syscall ABI: the SVC immediate selects the service, ``a0`` carries the
argument.

====  ========  ==========================================
num   name      effect
====  ========  ==========================================
0     exit      terminate with status a0
1     putint    emit a0 as signed decimal + newline
2     putchar   emit low byte of a0
3     puthex    emit a0 as hex + newline
====  ========  ==========================================
"""

from __future__ import annotations

from typing import Protocol
from zlib import crc32

from ..errors import SimCrashError
from ..isa import semantics
from .layout import SystemMap

KERNEL_MAGIC = 0x5AFE_C0DE

SYS_EXIT = 0
SYS_PUTINT = 1
SYS_PUTCHAR = 2
SYS_PUTHEX = 3


class ProgramExit(Exception):
    """Raised by the exit syscall to unwind the simulation loop."""

    def __init__(self, code: int) -> None:
        self.code = code
        super().__init__(f"program exited with status {code}")


class DataPort(Protocol):
    """Word-granularity kernel access path into the memory system.

    The functional CPU provides a direct-to-RAM implementation; the
    out-of-order core provides one routed through L1D/L2 so that cached
    kernel state is exposed to injected faults.
    """

    def read_word(self, addr: int) -> int: ...

    def write_word(self, addr: int, value: int) -> None: ...


class OutputCapture:
    """Accumulates program output; the SDC comparator diffs two of these.

    A streaming CRC over the emitted bytes is maintained alongside the
    chunks so :meth:`digest` is O(1) -- it feeds the per-cycle state
    digest of the trial early-termination engine.
    """

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self.exit_code: int | None = None
        self._crc = 0
        self._size = 0

    def _emit(self, chunk: bytes) -> None:
        self._chunks.append(chunk)
        self._crc = crc32(chunk, self._crc)
        self._size += len(chunk)

    def append_int(self, value: int) -> None:
        self._emit(f"{value}\n".encode())

    def append_hex(self, value: int) -> None:
        self._emit(f"{value:x}\n".encode())

    def append_byte(self, value: int) -> None:
        self._emit(bytes([value & 0xFF]))

    def digest(self) -> tuple[int, int, int, int]:
        """O(1) summary of (crc, bytes, chunk count, encoded exit)."""
        return (self._crc, self._size, len(self._chunks),
                0 if self.exit_code is None else
                (self.exit_code & 0xFFFFFFFF) * 2 + 1)

    @property
    def data(self) -> bytes:
        return b"".join(self._chunks)

    @property
    def size(self) -> int:
        """Bytes emitted so far, O(1) (the fault tracer polls this
        per cycle to detect output divergence without joining chunks)."""
        return self._size

    @property
    def count(self) -> int:
        return len(self._chunks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OutputCapture):
            return NotImplemented
        return self.data == other.data and self.exit_code == other.exit_code

    def get_state(self) -> tuple:
        return (list(self._chunks), self.exit_code)

    def set_state(self, state: tuple) -> None:
        self._chunks = list(state[0])
        self.exit_code = state[1]
        self._crc = 0
        self._size = 0
        for chunk in self._chunks:
            self._crc = crc32(chunk, self._crc)
            self._size += len(chunk)


class SyscallHandler:
    """Executes syscalls at commit time, atomically.

    The handler validates the in-memory kernel block on every call; any
    inconsistency is a kernel panic. ``xlen`` determines the width of the
    kernel block's words (it is compiled into the platform, like a kernel
    built for the core's ISA).
    """

    def __init__(self, system_map: SystemMap, xlen: int,
                 output: OutputCapture | None = None) -> None:
        self.system_map = system_map
        self.xlen = xlen
        self.word_size = xlen // 8
        self.output = output if output is not None else OutputCapture()
        self._magic = KERNEL_MAGIC & semantics.mask(xlen)

    def _addr(self, index: int) -> int:
        return self.system_map.kernel_base + index * self.word_size

    def handle(self, number: int, arg: int, port: DataPort) -> None:
        """Dispatch syscall ``number`` with argument ``arg``.

        Raises :class:`ProgramExit` for exit, :class:`SimCrashError` for
        unknown services (SIGSYS-equivalent) or kernel-state corruption.
        """
        magic = port.read_word(self._addr(0))
        if magic != self._magic:
            raise SimCrashError(
                f"kernel canary corrupted: 0x{magic:x}", kind="system")
        count = port.read_word(self._addr(1))
        port.write_word(self._addr(1), semantics.wrap(count + 1, self.xlen))

        if number == SYS_EXIT:
            self.output.exit_code = semantics.to_signed(arg, self.xlen)
            raise ProgramExit(self.output.exit_code)
        if number == SYS_PUTINT:
            self.output.append_int(semantics.to_signed(arg, self.xlen))
        elif number == SYS_PUTCHAR:
            self.output.append_byte(arg)
        elif number == SYS_PUTHEX:
            self.output.append_hex(arg)
        else:
            raise SimCrashError(f"bad syscall number {number}")

        recorded = port.read_word(self._addr(2))
        expected = semantics.wrap(self.output.count - 1, self.xlen)
        if recorded != expected:
            raise SimCrashError(
                f"kernel output ledger inconsistent "
                f"({recorded} != {expected})", kind="system")
        port.write_word(self._addr(2),
                        semantics.wrap(self.output.count, self.xlen))
