"""System memory map of the simulated armlet platform.

The map is the arbiter of crash semantics: every load, store, and fetch is
checked against it, and the *kind* of violation determines the fault class
the injector observes.

========================  ==========================================
region                    behaviour on user access
========================  ==========================================
null / vector page        segmentation fault -> process crash
text segment              execute + load OK; store -> process crash
kernel data block         any user access -> process crash; corrupted
                          kernel state found *by the kernel* during a
                          syscall -> kernel panic (system crash)
data / heap / stack       read-write
beyond RAM                bus error -> process crash
========================  ==========================================

Addresses whose bit pattern (after a fault) falls outside the RAM size are
"outside the system map"; when such an address is produced by
*microarchitectural metadata* (e.g. a flipped cache tag on writeback) the
simulator raises an Assert instead, because real hardware behaviour is
undefined -- mirroring the paper's Assert category.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimCrashError


@dataclass(frozen=True)
class SystemMap:
    """Address-space layout; all fields are byte addresses."""

    ram_size: int = 4 * 1024 * 1024
    text_base: int = 0x0000_1000
    kernel_base: int = 0x0008_0000
    kernel_size: int = 0x0000_1000
    data_base: int = 0x0010_0000
    heap_base: int = 0x0020_0000
    stack_top: int = 0x003F_FFF0

    def __post_init__(self) -> None:
        if not (0 < self.text_base < self.kernel_base < self.data_base
                < self.heap_base < self.stack_top <= self.ram_size):
            raise ValueError("system map regions out of order")

    @property
    def kernel_end(self) -> int:
        return self.kernel_base + self.kernel_size

    def region_of(self, addr: int) -> str:
        """Classify ``addr`` into a named region."""
        if addr < 0 or addr >= self.ram_size:
            return "unmapped"
        if addr < self.text_base:
            return "null"
        if addr < self.kernel_base:
            return "text"
        if addr < self.kernel_end:
            return "kernel"
        if addr < self.data_base:
            return "gap"
        return "user"

    def check_data_access(self, addr: int, size: int, store: bool,
                          mode: str = "user") -> None:
        """Validate a data access, raising :class:`SimCrashError`.

        ``mode`` is ``"user"`` for program accesses and ``"kernel"`` for
        syscall-handler accesses (which may touch the kernel block).
        """
        if addr % size:
            raise SimCrashError(
                f"misaligned {size}-byte access at 0x{addr:x}")
        region = self.region_of(addr)
        if region == "unmapped":
            raise SimCrashError(f"bus error at 0x{addr:x}")
        if region in ("null", "gap"):
            raise SimCrashError(f"segmentation fault at 0x{addr:x}")
        if region == "text" and store:
            raise SimCrashError(f"store to read-only text at 0x{addr:x}")
        if region == "kernel" and mode != "kernel":
            raise SimCrashError(
                f"user access to kernel memory at 0x{addr:x}")

    def check_fetch(self, pc: int, text_bytes: int) -> None:
        """Validate an instruction fetch address."""
        if pc % 4:
            raise SimCrashError(f"misaligned fetch at 0x{pc:x}")
        if not self.text_base <= pc < self.text_base + text_bytes:
            raise SimCrashError(f"jump outside text segment to 0x{pc:x}")

    def in_ram(self, addr: int) -> bool:
        return 0 <= addr < self.ram_size
