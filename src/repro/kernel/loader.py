"""Program loader: builds the initial memory image and register state.

The loader plays the role of the firmware + OS exec path: it encodes the
program's text into RAM at the text base, copies the initialized data
segment, writes the resident kernel block (canary, syscall ledger), and
prepares the initial architectural register state (sp, gp, pc).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..isa import registers
from ..isa.program import Program
from .layout import SystemMap
from .memory import MainMemory
from .syscalls import KERNEL_MAGIC


@dataclass
class LoadedImage:
    """Everything the CPU needs to start executing a program."""

    program: Program
    system_map: SystemMap
    entry_pc: int
    initial_regs: dict[int, int] = field(default_factory=dict)

    @property
    def text_bytes(self) -> int:
        return self.program.text_bytes


def load(program: Program, memory: MainMemory,
         system_map: SystemMap | None = None) -> LoadedImage:
    """Load ``program`` into ``memory`` and return the boot state."""
    if system_map is None:
        system_map = SystemMap(ram_size=memory.size)
    if system_map.ram_size > memory.size:
        raise ReproError("system map larger than physical memory")

    text_end = system_map.text_base + program.text_bytes
    if text_end > system_map.kernel_base:
        raise ReproError(
            f"text segment too large: {program.text_bytes} bytes")
    data_end = system_map.data_base + len(program.data)
    if data_end > system_map.heap_base:
        raise ReproError(f"data segment too large: {len(program.data)} bytes")

    for index, word in enumerate(program.encoded_text()):
        memory.write_word(system_map.text_base + 4 * index, word, 4)
    if program.data:
        memory.write_bytes(system_map.data_base, bytes(program.data))

    word_size = program.xlen // 8
    mask = (1 << program.xlen) - 1
    memory.write_word(system_map.kernel_base, KERNEL_MAGIC & mask, word_size)
    memory.write_word(system_map.kernel_base + word_size, 0, word_size)
    memory.write_word(system_map.kernel_base + 2 * word_size, 0, word_size)

    stack_top = system_map.stack_top - (system_map.stack_top % word_size)
    return LoadedImage(
        program=program,
        system_map=system_map,
        entry_pc=system_map.text_base + 4 * program.entry,
        initial_regs={
            registers.SP: stack_top,
            registers.GP: system_map.data_base,
        },
    )
