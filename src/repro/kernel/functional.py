"""Fast functional reference CPU.

This interpreter executes a loaded program with architecturally exact
semantics but no timing model. It serves three roles:

* the compiler test oracle (every optimization level of every workload
  must produce the same output here);
* the source of golden outputs cross-checked against the out-of-order
  core (both engines share :mod:`repro.isa.semantics`);
* a cheap profiler (dynamic instruction mix) used by examples and tests.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..errors import SimTimeoutError
from ..isa import registers, semantics
from ..isa.instructions import Format, Instruction, Opcode
from .layout import SystemMap
from .loader import LoadedImage
from .memory import MainMemory
from .syscalls import OutputCapture, ProgramExit, SyscallHandler


class DirectDataPort:
    """Kernel data port that bypasses caches (functional mode)."""

    def __init__(self, memory: MainMemory, system_map: SystemMap,
                 word_size: int) -> None:
        self._memory = memory
        self._map = system_map
        self._size = word_size

    def read_word(self, addr: int) -> int:
        self._map.check_data_access(addr, self._size, store=False,
                                    mode="kernel")
        return self._memory.read_word(addr, self._size)

    def write_word(self, addr: int, value: int) -> None:
        self._map.check_data_access(addr, self._size, store=True,
                                    mode="kernel")
        self._memory.write_word(addr, value, self._size)


@dataclass
class ExecutionResult:
    """Outcome of a fault-free functional run."""

    output: OutputCapture
    instructions: int
    mix: Counter = field(default_factory=Counter)

    @property
    def exit_code(self) -> int | None:
        return self.output.exit_code


class FunctionalCPU:
    """Single-stepping architectural interpreter for armlet programs."""

    def __init__(self, image: LoadedImage, memory: MainMemory,
                 xlen: int) -> None:
        if xlen != image.program.xlen:
            raise ValueError(
                f"program compiled for xlen={image.program.xlen}, "
                f"core is xlen={xlen}")
        self.image = image
        self.memory = memory
        self.xlen = xlen
        self.word_size = xlen // 8
        self.mask = semantics.mask(xlen)
        self.regs = [0] * registers.NUM_REGS
        for reg, value in image.initial_regs.items():
            self.regs[reg] = value
        self.pc = image.entry_pc
        self.handler = SyscallHandler(image.system_map, xlen)
        self._port = DirectDataPort(memory, image.system_map, self.word_size)
        self.instructions = 0
        self.mix: Counter = Counter()

    def run(self, max_instructions: int = 200_000_000) -> ExecutionResult:
        """Execute until exit; raises the usual simulation errors."""
        text = self.image.program.text
        text_base = self.image.system_map.text_base
        try:
            while True:
                self.image.system_map.check_fetch(
                    self.pc, self.image.text_bytes)
                instr = text[(self.pc - text_base) >> 2]
                self.step(instr)
                self.instructions += 1
                if self.instructions > max_instructions:
                    raise SimTimeoutError(max_instructions)
        except ProgramExit:
            pass
        return ExecutionResult(output=self.handler.output,
                               instructions=self.instructions, mix=self.mix)

    def step(self, instr: Instruction) -> None:
        """Execute one instruction and advance pc."""
        regs = self.regs
        op = instr.opcode
        fmt = instr.format
        self.mix[instr.exec_class] += 1
        next_pc = self.pc + 4

        if fmt is Format.R:
            result = semantics.alu(op, regs[instr.rs1], regs[instr.rs2],
                                   self.xlen)
            if instr.rd:
                regs[instr.rd] = result
        elif fmt is Format.I:
            imm = instr.imm & self.mask
            result = semantics.alu(op, regs[instr.rs1], imm, self.xlen)
            if instr.rd:
                regs[instr.rd] = result
        elif fmt is Format.LI:
            if instr.rd:
                regs[instr.rd] = semantics.mov_result(
                    instr, regs[instr.rd], self.xlen)
        elif fmt is Format.LOAD:
            addr = semantics.wrap(regs[instr.rs1] + instr.imm, self.xlen)
            size = 1 if op is Opcode.LDRB else self.word_size
            self.image.system_map.check_data_access(addr, size, store=False)
            if instr.rd:
                regs[instr.rd] = self.memory.read_word(addr, size)
        elif fmt is Format.STORE:
            addr = semantics.wrap(regs[instr.rs1] + instr.imm, self.xlen)
            size = 1 if op is Opcode.STRB else self.word_size
            self.image.system_map.check_data_access(addr, size, store=True)
            self.memory.write_word(addr, regs[instr.rs2], size)
        elif fmt is Format.BC:
            if semantics.branch_taken(op, regs[instr.rs1], regs[instr.rs2],
                                      self.xlen):
                next_pc = self.pc + 4 * instr.imm
        elif fmt is Format.J:
            if op is Opcode.BL:
                regs[registers.LR] = next_pc
            next_pc = self.pc + 4 * instr.imm
        elif fmt is Format.JR:
            next_pc = regs[instr.rs1]
        elif op is Opcode.SVC:
            self.handler.handle(instr.imm, regs[registers.RETURN_REG],
                                self._port)
        # NOP: nothing to do.
        self.pc = next_pc


def run_functional(image: LoadedImage, memory: MainMemory,
                   max_instructions: int = 200_000_000) -> ExecutionResult:
    """Convenience wrapper: run ``image`` to completion functionally."""
    cpu = FunctionalCPU(image, memory, image.program.xlen)
    return cpu.run(max_instructions)
