"""Minimal full-system substrate: memory map, RAM, loader, syscalls.

The paper runs its fault-injection campaigns in full-system simulation so
that operating-system state participates in the fault surface. This
package provides the equivalent substrate for the repro platform: a
:class:`~repro.kernel.layout.SystemMap` with crash semantics, a
:class:`~repro.kernel.memory.MainMemory`, a program
:func:`~repro.kernel.loader.load` path, a resident-kernel
:class:`~repro.kernel.syscalls.SyscallHandler`, and a
:class:`~repro.kernel.functional.FunctionalCPU` reference interpreter.
"""

from .functional import ExecutionResult, FunctionalCPU, run_functional
from .layout import SystemMap
from .loader import LoadedImage, load
from .memory import MainMemory
from .syscalls import OutputCapture, ProgramExit, SyscallHandler

__all__ = [
    "ExecutionResult",
    "FunctionalCPU",
    "LoadedImage",
    "MainMemory",
    "OutputCapture",
    "ProgramExit",
    "SyscallHandler",
    "SystemMap",
    "load",
    "run_functional",
]
