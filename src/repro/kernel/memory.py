"""Byte-addressable main memory backing the simulated platform.

Main memory sits behind the L2 cache in the out-of-order model and is
accessed directly by the functional reference CPU. It performs no
permission checking of its own -- the :class:`~repro.kernel.layout.
SystemMap` does that at the core/MMU boundary -- but it does bounds-check,
because a physical address outside RAM reaching the memory controller is a
bus-level event.

The RAM keeps a page-keyed incremental digest (see :mod:`repro.digest`)
for the trial early-termination engine: writes only mark their 4 KiB
page dirty, and :meth:`MainMemory.digest` lazily re-hashes the dirty
pages and folds them into a rolling 64-bit accumulator. Reading the
digest therefore costs O(pages written since last read), not O(RAM).
"""

from __future__ import annotations

from zlib import crc32

from ..digest import mix64
from ..errors import SimCrashError

PAGE_SHIFT = 12
PAGE_BYTES = 1 << PAGE_SHIFT

#: Initial per-page hash lists keyed by RAM size (pages are all-zero at
#: construction, so the list depends only on the page count).
_INITIAL_PAGE_HASHES: dict[int, list[int]] = {}


def _initial_page_hashes(num_pages: int) -> list[int]:
    cached = _INITIAL_PAGE_HASHES.get(num_pages)
    if cached is None:
        zero_crc = crc32(bytes(PAGE_BYTES))
        cached = [mix64(page, zero_crc) for page in range(num_pages)]
        _INITIAL_PAGE_HASHES[num_pages] = cached
    return cached


class MainMemory:
    """A flat little-endian RAM of ``size`` bytes."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % PAGE_BYTES:
            raise ValueError("memory size must be a positive page multiple")
        self.size = size
        self._bytes = bytearray(size)
        self._num_pages = size >> PAGE_SHIFT
        self._page_hash = list(_initial_page_hashes(self._num_pages))
        acc = 0
        for h in self._page_hash:
            acc ^= h
        self._digest_acc = acc
        self._dirty_pages: set[int] = set()

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.size:
            raise SimCrashError(
                f"bus error: physical access at 0x{addr:x} (+{length})")

    def read_bytes(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._bytes[addr:addr + length])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        if not data:
            return
        self._bytes[addr:addr + len(data)] = data
        first = addr >> PAGE_SHIFT
        last = (addr + len(data) - 1) >> PAGE_SHIFT
        if first == last:
            self._dirty_pages.add(first)
        else:
            self._dirty_pages.update(range(first, last + 1))

    def read_word(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned word of ``size`` bytes."""
        self._check(addr, size)
        return int.from_bytes(self._bytes[addr:addr + size], "little")

    def write_word(self, addr: int, value: int, size: int) -> None:
        self._check(addr, size)
        self._bytes[addr:addr + size] = (value & ((1 << (8 * size)) - 1)
                                         ).to_bytes(size, "little")
        first = addr >> PAGE_SHIFT
        self._dirty_pages.add(first)
        last = (addr + size - 1) >> PAGE_SHIFT
        if last != first:
            self._dirty_pages.add(last)

    # -------------------------------------------------------------- digest

    def digest(self) -> int:
        """Rolling 64-bit digest of the full RAM contents.

        Incrementally maintained: only pages written since the previous
        call are re-hashed (4 KiB CRC each) before XOR-folding into the
        accumulator.
        """
        dirty = self._dirty_pages
        if dirty:
            acc = self._digest_acc
            hashes = self._page_hash
            view = memoryview(self._bytes)
            for page in dirty:
                start = page << PAGE_SHIFT
                h = mix64(page, crc32(view[start:start + PAGE_BYTES]))
                acc ^= hashes[page] ^ h
                hashes[page] = h
            view.release()
            dirty.clear()
            self._digest_acc = acc
        return self._digest_acc

    def get_digest_state(self) -> tuple[int, list[int]]:
        """Digest accumulator state for snapshot round-trips."""
        self.digest()
        return (self._digest_acc, list(self._page_hash))

    def set_digest_state(self, state: tuple[int, list[int]]) -> None:
        self._digest_acc = state[0]
        self._page_hash = list(state[1])
        self._dirty_pages.clear()

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> bytes:
        return bytes(self._bytes)

    def restore(self, image: bytes) -> None:
        if len(image) != self.size:
            raise ValueError("snapshot size mismatch")
        self._bytes[:] = image
        # No digest state shipped alongside the raw image: every page is
        # potentially stale, so re-hash lazily at the next digest() read.
        self._dirty_pages.update(range(self._num_pages))
