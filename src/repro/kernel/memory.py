"""Byte-addressable main memory backing the simulated platform.

Main memory sits behind the L2 cache in the out-of-order model and is
accessed directly by the functional reference CPU. It performs no
permission checking of its own -- the :class:`~repro.kernel.layout.
SystemMap` does that at the core/MMU boundary -- but it does bounds-check,
because a physical address outside RAM reaching the memory controller is a
bus-level event.
"""

from __future__ import annotations

from ..errors import SimCrashError


class MainMemory:
    """A flat little-endian RAM of ``size`` bytes."""

    def __init__(self, size: int) -> None:
        if size <= 0 or size % 4096:
            raise ValueError("memory size must be a positive page multiple")
        self.size = size
        self._bytes = bytearray(size)

    def _check(self, addr: int, length: int) -> None:
        if addr < 0 or addr + length > self.size:
            raise SimCrashError(
                f"bus error: physical access at 0x{addr:x} (+{length})")

    def read_bytes(self, addr: int, length: int) -> bytes:
        self._check(addr, length)
        return bytes(self._bytes[addr:addr + length])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._bytes[addr:addr + len(data)] = data

    def read_word(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned word of ``size`` bytes."""
        self._check(addr, size)
        return int.from_bytes(self._bytes[addr:addr + size], "little")

    def write_word(self, addr: int, value: int, size: int) -> None:
        self._check(addr, size)
        self._bytes[addr:addr + size] = (value & ((1 << (8 * size)) - 1)
                                         ).to_bytes(size, "little")

    def snapshot(self) -> bytes:
        return bytes(self._bytes)

    def restore(self, image: bytes) -> None:
        if len(image) != self.size:
            raise ValueError("snapshot size mismatch")
        self._bytes[:] = image
