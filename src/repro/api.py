"""High-level convenience API tying the toolchain together.

    from repro import compile_workload, build_simulator, golden_run, \\
        run_campaign

    program = compile_workload("sha", opt_level="O2", core="cortex-a72")
    golden = golden_run(program, core="cortex-a72")
    result = run_campaign(program, "rob.pc", n=100, core="cortex-a72",
                          golden=golden)
"""

from __future__ import annotations

from .gefin import CampaignResult, GoldenRun
from .gefin import run_campaign as _run_campaign
from .gefin import run_golden as _run_golden
from .isa.program import Program
from .microarch import CONFIGS, Simulator
from .workloads import build_program

_CORE_TO_TARGET = {"cortex-a15": "armlet32", "cortex-a72": "armlet64"}


def _config(core: str):
    try:
        return CONFIGS[core]
    except KeyError:
        raise ValueError(
            f"unknown core {core!r}; available {sorted(CONFIGS)}") from None


def compile_workload(name: str, opt_level: str = "O2",
                     core: str = "cortex-a15",
                     scale: str = "micro") -> Program:
    """Compile one of the eight benchmarks for ``core``."""
    _config(core)
    return build_program(name, scale, opt_level, _CORE_TO_TARGET[core])


def build_simulator(program: Program, core: str = "cortex-a15") -> Simulator:
    """Boot a full-system simulator around ``program``."""
    return Simulator(program, _config(core))


def golden_run(program: Program, core: str = "cortex-a15",
               snapshot_every: int | None = None) -> GoldenRun:
    """Fault-free reference run (optionally checkpointed)."""
    return _run_golden(program, _config(core),
                       snapshot_every=snapshot_every)


def run_campaign(program: Program, field: str, n: int,
                 core: str = "cortex-a15", seed: int = 0,
                 mode: str = "occupancy",
                 golden: GoldenRun | None = None) -> CampaignResult:
    """Statistical fault-injection campaign against one structure field."""
    return _run_campaign(program, _config(core), field, n, seed=seed,
                         mode=mode, golden=golden)
