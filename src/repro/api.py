"""High-level convenience API tying the toolchain together.

    from repro import compile_workload, build_simulator, golden_run, \\
        run_campaign

    program = compile_workload("sha", opt_level="O2", core="cortex-a72")
    golden = golden_run(program, core="cortex-a72")
    result = run_campaign(program, "rob.pc", n=100, core="cortex-a72",
                          golden=golden)

Campaigns can be gated on a verified binary and pre-screened without a
simulation::

    verify_workload("sha", opt_level="O3")          # raises on miscompile
    bounds = static_ace(program, core="cortex-a72")  # static AVF bounds
"""

from __future__ import annotations

from pathlib import Path

from .avf import StaticAceResult
from .avf import static_ace_estimate as _static_ace_estimate
from .compiler import TARGETS, CompileResult, compile_module
from .compiler.propagation import analyze_propagation as _analyze_propagation
from .gefin import (
    CampaignCheckpoint,
    CampaignResult,
    DEFAULT_MAX_RETRIES,
    GoldenRun,
)
from .gefin import run_campaign as _run_campaign
from .gefin import run_golden as _run_golden
from .gefin import run_golden_auto as _run_golden_auto
from .gefin.fault import DEFAULT_MAX_CYCLES
from .gefin.injector import InjectionResult
from .isa import registers as _registers
from .isa.program import Program
from .kernel.layout import SystemMap
from .microarch import CONFIGS, Simulator
from .microarch.simulator import SimResult
from .obs import ChromeTrace, MetricsRegistry, SimObserver
from .workloads import build_program, get_workload

_CORE_TO_TARGET = {"cortex-a15": "armlet32", "cortex-a72": "armlet64"}


def _config(core: str):
    try:
        return CONFIGS[core]
    except KeyError:
        raise ValueError(
            f"unknown core {core!r}; available {sorted(CONFIGS)}") from None


def compile_workload(name: str, opt_level: str = "O2",
                     core: str = "cortex-a15",
                     scale: str = "micro") -> Program:
    """Compile one of the eight benchmarks for ``core``."""
    _config(core)
    return build_program(name, scale, opt_level, _CORE_TO_TARGET[core])


def verify_workload(name: str, opt_level: str = "O2",
                    core: str = "cortex-a15",
                    scale: str = "micro") -> CompileResult:
    """Compile a benchmark with per-pass IR verification.

    Raises :class:`~repro.errors.IRVerificationError` naming the pass,
    function, block, and rule if any optimization pass breaks an IR
    invariant; returns the verified :class:`CompileResult` otherwise.
    """
    _config(core)
    target = TARGETS[_CORE_TO_TARGET[core]]
    source = get_workload(name).source(scale)
    return compile_module(source, opt_level, target,
                          name=f"{name}.{scale}", verify_ir=True)


def static_ace(program: Program,
               core: str = "cortex-a15") -> StaticAceResult:
    """Simulation-free per-structure static AVF upper bounds."""
    return _static_ace_estimate(program, _config(core))


def propagation_report(program: Program, pc: int | None = None,
                       reg: int | str | None = None) -> dict:
    """Bit-level fault-propagation report for one binary (no simulation).

    Without ``pc``: the whole-program census -- how many (instruction,
    register, bit) points a single-bit flip is provably masked at, and
    which frame stores are provably dead. With ``pc`` (a byte address in
    the text segment, which starts at ``text_base``): the per-register
    bit verdicts *entering* that instruction; narrow to one register
    with ``reg`` (a number, or a name like ``"a0"`` / ``"sp"``).
    """
    prop = _analyze_propagation(program)
    text_base = SystemMap().text_base
    doc: dict = {
        "program": program.name,
        "xlen": program.xlen,
        "text_base": text_base,
        "summary": prop.summary().to_dict(),
        "dead_store_slots": sorted(prop.dead_stores),
    }
    if pc is None:
        return doc
    slot, misaligned = divmod(pc - text_base, 4)
    if misaligned or not 0 <= slot < len(program.text):
        last = text_base + 4 * (len(program.text) - 1)
        raise ValueError(
            f"pc {pc:#x} is not an instruction address (text spans "
            f"{text_base:#x}..{last:#x} in 4-byte steps)")
    doc["pc"] = pc
    doc["slot"] = slot
    doc["instruction"] = str(program.text[slot])
    if reg is None:
        doc["slices"] = [prop.slot_slice(slot, number).to_dict()
                         for number in range(1, _registers.NUM_REGS)]
    else:
        number = (_registers.reg_number(reg) if isinstance(reg, str)
                  else int(reg))
        doc["slice"] = prop.slot_slice(slot, number).to_dict()
    return doc


def build_simulator(program: Program, core: str = "cortex-a15") -> Simulator:
    """Boot a full-system simulator around ``program``."""
    return Simulator(program, _config(core))


def golden_run(program: Program, core: str = "cortex-a15",
               snapshot_every: int | None = None,
               auto_snapshots: bool = False) -> GoldenRun:
    """Fault-free reference run (optionally checkpointed).

    ``auto_snapshots=True`` discovers the checkpoint interval online, so
    the program simulates exactly once whatever its length; otherwise
    pass an explicit ``snapshot_every`` (or neither, for no snapshots).
    """
    if auto_snapshots:
        if snapshot_every is not None:
            raise ValueError(
                "auto_snapshots and snapshot_every are exclusive")
        return _run_golden_auto(program, _config(core))
    return _run_golden(program, _config(core),
                       snapshot_every=snapshot_every)


def observed_run(program: Program, core: str = "cortex-a15",
                 max_cycles: int = DEFAULT_MAX_CYCLES,
                 metrics: MetricsRegistry | None = None,
                 trace: ChromeTrace | None = None,
                 interval: int = 16) -> SimResult:
    """Fault-free run with the observability layer attached.

    Occupancy/stall/cache metrics are sampled every ``interval`` cycles
    into ``metrics`` (a :class:`repro.obs.MetricsRegistry` you can
    snapshot afterwards) and, when ``trace`` is given, emitted as Chrome
    counter events for Perfetto (``trace.write(path)``).
    """
    sim = Simulator(program, _config(core))
    observer = SimObserver(metrics, trace, interval=interval)
    sim.attach_observer(observer)
    result = sim.run(max_cycles)
    observer.finish(sim)
    return result


def run_campaign(program: Program, field: str, n: int,
                 core: str = "cortex-a15", seed: int = 0,
                 mode: str = "occupancy",
                 golden: GoldenRun | None = None, burst: int = 1,
                 workers: int | None = None,
                 checkpoint: CampaignCheckpoint | str | Path | None = None,
                 progress=None, early_exit: bool = True,
                 convergence_horizon: int | None = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 shard_timeout: float | None = None,
                 fail_fast: bool = False,
                 keep_results: bool = False, trace: bool = False,
                 ) -> CampaignResult | tuple[CampaignResult,
                                             list[InjectionResult]]:
    """Statistical fault-injection campaign against one structure field.

    When ``golden`` is omitted the reference run auto-snapshots so every
    trial warm-starts from the nearest checkpoint. ``workers`` shards
    the trials across processes (bit-exact for any count; defaults to
    the ``REPRO_WORKERS`` env knob) and ``checkpoint`` persists finished
    shards so an interrupted campaign resumes where it left off.
    ``early_exit``/``convergence_horizon`` tune the (outcome-
    equivalent) early trial-termination engine.

    Parallel campaigns are supervised (see
    :mod:`repro.gefin.resilience`): crashed or hung workers cost up to
    ``max_retries`` deterministic-backoff retries per shard, a shard
    past its ``shard_timeout`` watchdog deadline (default: derived from
    the golden cycle count; ``0`` disables) is killed and retried, and
    poison trials are quarantined as ``infrastructure`` outcomes with
    the accounting in ``CampaignResult.degradation``. ``fail_fast``
    restores fail-on-first-error.

    ``trace`` records a fault-propagation provenance trail per trial
    (``keep_results=True`` returns the per-trial results carrying them)
    and per-shard wall-clock spans in ``CampaignResult.timeline`` --
    feed both to :func:`repro.obs.campaign_trace` for a Perfetto view.
    """
    return _run_campaign(program, _config(core), field, n, seed=seed,
                         mode=mode, golden=golden, burst=burst,
                         workers=workers, checkpoint=checkpoint,
                         progress=progress, early_exit=early_exit,
                         convergence_horizon=convergence_horizon,
                         max_retries=max_retries,
                         shard_timeout=shard_timeout,
                         fail_fast=fail_fast,
                         keep_results=keep_results, trace=trace)
