"""repro: soft-error vulnerability characterization of out-of-order CPUs.

A from-scratch reproduction of "Characterizing Soft Error Vulnerability of
CPUs Across Compiler Optimizations and Microarchitectures" (IISWC 2021):
a MinC->armlet optimizing compiler (O0-O3), a cycle-driven out-of-order
microarchitecture simulator with Cortex-A15/A72-class configurations, a
GeFIN-style statistical fault-injection framework, and AVF/FIT/FPE
analytics over eight MiBench-analog workloads.

Quickstart::

    from repro import compile_workload, build_simulator, run_campaign

See ``examples/quickstart.py`` for an end-to-end walkthrough.
"""

__version__ = "1.0.0"

from .api import (
    build_simulator,
    compile_workload,
    golden_run,
    observed_run,
    propagation_report,
    run_campaign,
)

__all__ = [
    "build_simulator",
    "compile_workload",
    "golden_run",
    "observed_run",
    "propagation_report",
    "run_campaign",
    "__version__",
]
