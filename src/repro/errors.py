"""Exception hierarchy shared by every repro subsystem.

The split between :class:`SimCrashError` and :class:`SimAssertError` mirrors
the paper's fault-effect taxonomy (Section III-C): a *Crash* is an event the
simulated platform itself would observe (a killed process or a kernel
panic), while an *Assert* is a condition the simulator cannot map onto any
real-machine behaviour (e.g. a physical register tag that exceeds the
register file size) and therefore terminates the simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CompileError(ReproError):
    """A MinC source program failed to lex, parse, type-check, or lower."""

    def __init__(self, message: str, line: int | None = None) -> None:
        self.line = line
        self.raw_message = message
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # message) through ``__init__``, which would re-prefix the line
        # number; rebuild from the original arguments instead. Pipeline
        # snapshots pickle pending uop exceptions, so this must
        # round-trip exactly.
        return (type(self), (self.raw_message, self.line))


class IRVerificationError(CompileError):
    """The IR verifier found a broken compiler invariant.

    Unlike :class:`CompileError` proper (bad *input*), this signals a bug
    in the compiler itself: an optimization pass (or the IR builder)
    produced a module violating a structural rule. The fields pin the
    failure down to the pass, function, block, and instruction so a
    miscompile is named instead of silently corrupting downstream AVF
    numbers.
    """

    def __init__(self, rule: str, detail: str,
                 function: str | None = None,
                 block: str | None = None,
                 instr_index: int | None = None,
                 pass_name: str | None = None) -> None:
        self.rule = rule
        self.detail = detail
        self.function = function
        self.block = block
        self.instr_index = instr_index
        self.pass_name = pass_name
        where = []
        if pass_name is not None:
            where.append(f"after pass {pass_name!r}")
        if function is not None:
            where.append(f"in function {function!r}")
        if block is not None:
            where.append(f"block {block!r}")
        if instr_index is not None:
            where.append(f"instruction #{instr_index}")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(f"[{rule}] {detail}{suffix}")

    def __reduce__(self):
        return (type(self), (self.rule, self.detail, self.function,
                             self.block, self.instr_index, self.pass_name))

    def with_pass(self, pass_name: str) -> "IRVerificationError":
        """A copy of this error attributed to the pass that caused it."""
        return IRVerificationError(self.rule, self.detail, self.function,
                                   self.block, self.instr_index, pass_name)


class AssemblyError(ReproError):
    """Assembler input was malformed (bad mnemonic, operand, or label)."""


class EncodingError(ReproError):
    """An instruction could not be encoded into its 32-bit binary form."""


class IllegalInstructionError(ReproError):
    """A 32-bit word does not decode to any architecturally valid instruction.

    During fault-free execution this indicates a toolchain bug; during fault
    injection it is the expected consequence of a flipped bit in the L1I
    data array and leads to a process crash at commit.
    """

    def __init__(self, word: int, pc: int | None = None) -> None:
        self.word = word
        self.pc = pc
        where = f" at pc=0x{pc:x}" if pc is not None else ""
        super().__init__(f"illegal instruction 0x{word:08x}{where}")

    def __reduce__(self):
        return (type(self), (self.word, self.pc))


class SimulationError(ReproError):
    """Base class for events that terminate a simulation abnormally."""


class SimCrashError(SimulationError):
    """The simulated program crashed (paper class: Crash).

    ``kind`` distinguishes a killed user process (``"process"``) from a
    kernel panic (``"system"``); the FIT analysis reports them separately
    (AppCrash vs SysCrash in Fig. 10).
    """

    def __init__(self, reason: str, kind: str = "process") -> None:
        if kind not in ("process", "system"):
            raise ValueError(f"unknown crash kind: {kind!r}")
        self.kind = kind
        self.reason = reason
        super().__init__(f"{kind} crash: {reason}")

    def __reduce__(self):
        # ``args`` holds the formatted message; replaying it through
        # ``__init__`` would double the "<kind> crash:" prefix and reset
        # a "system" crash to "process". Snapshots pickle pending uop
        # exceptions, so reconstruct from the real arguments.
        return (type(self), (self.reason, self.kind))


class SimAssertError(SimulationError):
    """The simulator hit a state it cannot adjudicate (paper class: Assert).

    Raised by defensive microarchitectural checks: out-of-range physical
    register tags, cache tags pointing outside the system map, inconsistent
    ROB/LQ/SQ metadata, and similar conditions that have no well-defined
    real-hardware outcome.
    """


class SimTimeoutError(SimulationError):
    """Simulation exceeded its cycle budget (paper class: Timeout)."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        super().__init__(f"simulation exceeded {limit} cycles")

    def __reduce__(self):
        return (type(self), (self.limit,))
