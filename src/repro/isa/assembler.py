"""A two-pass assembler for armlet assembly text.

The assembler exists for tests, examples, and hand-written snippets; the
compiler builds :class:`~repro.isa.program.Program` objects directly. The
accepted syntax is deliberately small::

    .text                     ; section switches
    .data
    loop:                     ; labels
        add  a0, a1, a2       ; R-format
        addi a0, a0, -4       ; I-format
        movw t0, 513          ; constant materialization
        li   t0, 0x12345678   ; pseudo: expands to movw (+ movt / shifts)
        ldr  a0, [sp, 8]      ; loads/stores
        str  a1, [sp, 0]
        beq  a0, zero, done   ; branch to label
        b    loop
        bl   function
        br   lr
        svc  1
    done:
        svc  0
    .data
    buf:  .space 64           ; zero-filled bytes
    tbl:  .word 1, 2, -3      ; xlen-sized words

Comments start with ``;`` or ``#``. Branch labels are resolved to relative
instruction displacements in pass two.
"""

from __future__ import annotations

import re

from ..errors import AssemblyError
from . import registers
from .instructions import Format, Instruction, Opcode
from .program import Program

_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _parse_int(token: str, line: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"line {line}: bad integer {token!r}") from None


def _parse_reg(token: str, line: int) -> int:
    try:
        return registers.reg_number(token)
    except ValueError as exc:
        raise AssemblyError(f"line {line}: {exc}") from None


def expand_li(rd: int, value: int, xlen: int) -> list[Instruction]:
    """Expand ``li rd, value`` into real instructions.

    Uses MOVW for 16-bit payloads, MOVW+MOVT for 32-bit ones, and a
    shift/or sequence for wider 64-bit constants on armlet-64.
    """
    mask = (1 << xlen) - 1
    value &= mask
    if value <= 0xFFFF:
        return [Instruction(Opcode.MOVW, rd=rd, imm=value)]
    if value <= 0xFFFF_FFFF:
        out = [Instruction(Opcode.MOVW, rd=rd, imm=value & 0xFFFF)]
        out.append(Instruction(Opcode.MOVT, rd=rd, imm=value >> 16))
        return out
    if xlen < 64:
        raise AssemblyError(f"constant {value:#x} does not fit in {xlen} bits")
    out = [Instruction(Opcode.MOVW, rd=rd, imm=value & 0xFFFF)]
    for opcode, shift in ((Opcode.MOVT, 16), (Opcode.MOVT2, 32),
                          (Opcode.MOVT3, 48)):
        chunk = (value >> shift) & 0xFFFF
        if chunk:
            out.append(Instruction(opcode, rd=rd, imm=chunk))
    return out


class _PendingBranch:
    """A branch whose label displacement is resolved in pass two."""

    __slots__ = ("opcode", "rs1", "rs2", "label", "line")

    def __init__(self, opcode: Opcode, rs1: int, rs2: int, label: str,
                 line: int) -> None:
        self.opcode = opcode
        self.rs1 = rs1
        self.rs2 = rs2
        self.label = label
        self.line = line


def assemble(source: str, xlen: int = 32, name: str = "a.out") -> Program:
    """Assemble ``source`` into a :class:`Program`.

    The entry point is the ``_start`` label if present, else instruction 0.
    """
    program = Program(xlen=xlen, name=name)
    section = "text"
    items: list[Instruction | _PendingBranch] = []

    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, line = line.split(":", 1)
            label = label.strip()
            line = line.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(f"line {lineno}: bad label {label!r}")
            if section == "text":
                if label in program.text_symbols:
                    raise AssemblyError(
                        f"line {lineno}: duplicate label {label!r}")
                program.text_symbols[label] = len(items)
            else:
                program.data_symbols[label] = len(program.data)
        if not line:
            continue
        if line.startswith("."):
            _directive(line, lineno, program)
            section = _SECTION.get(line.split()[0], section)
            continue
        if section != "text":
            raise AssemblyError(
                f"line {lineno}: instruction outside .text: {line!r}")
        items.extend(_parse_instruction(line, lineno, xlen))

    program.text = _resolve(items, program.text_symbols)
    program.entry = program.text_symbols.get("_start", 0)
    return program


_SECTION = {".text": "text", ".data": "data"}


def _directive(line: str, lineno: int, program: Program) -> None:
    parts = line.split(None, 1)
    name = parts[0]
    arg = parts[1] if len(parts) > 1 else ""
    if name in _SECTION:
        return
    if name == ".space":
        program.data.extend(b"\x00" * _parse_int(arg, lineno))
        return
    if name == ".word":
        width = program.xlen // 8
        for token in arg.split(","):
            value = _parse_int(token.strip(), lineno)
            mask = (1 << program.xlen) - 1
            program.data.extend((value & mask).to_bytes(width, "little"))
        return
    if name == ".byte":
        for token in arg.split(","):
            program.data.append(_parse_int(token.strip(), lineno) & 0xFF)
        return
    raise AssemblyError(f"line {lineno}: unknown directive {name!r}")


_MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:,\s*(-?\w+)\s*)?\]$")


def _parse_instruction(line: str, lineno: int,
                       xlen: int) -> list[Instruction | _PendingBranch]:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    ops = [o.strip() for o in _split_operands(rest)] if rest.strip() else []

    if mnemonic == "li":
        if len(ops) != 2:
            raise AssemblyError(f"line {lineno}: li needs rd, imm")
        return list(expand_li(_parse_reg(ops[0], lineno),
                              _parse_int(ops[1], lineno), xlen))
    if mnemonic == "mov":
        if len(ops) != 2:
            raise AssemblyError(f"line {lineno}: mov needs rd, rs")
        return [Instruction(Opcode.ADDI, rd=_parse_reg(ops[0], lineno),
                            rs1=_parse_reg(ops[1], lineno), imm=0)]
    if mnemonic == "ret":
        return [Instruction(Opcode.BR, rs1=registers.LR)]

    try:
        opcode = Opcode[mnemonic.upper()]
    except KeyError:
        raise AssemblyError(
            f"line {lineno}: unknown mnemonic {mnemonic!r}") from None

    fmt = Instruction(opcode).format
    if fmt is Format.R:
        _expect(ops, 3, lineno, mnemonic)
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            rs1=_parse_reg(ops[1], lineno),
                            rs2=_parse_reg(ops[2], lineno))]
    if fmt is Format.I:
        _expect(ops, 3, lineno, mnemonic)
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            rs1=_parse_reg(ops[1], lineno),
                            imm=_parse_int(ops[2], lineno))]
    if fmt is Format.LI:
        _expect(ops, 2, lineno, mnemonic)
        return [Instruction(opcode, rd=_parse_reg(ops[0], lineno),
                            imm=_parse_int(ops[1], lineno))]
    if fmt in (Format.LOAD, Format.STORE):
        _expect(ops, 2, lineno, mnemonic)
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblyError(
                f"line {lineno}: bad memory operand {ops[1]!r}")
        base = _parse_reg(match.group(1), lineno)
        offset = _parse_int(match.group(2), lineno) if match.group(2) else 0
        reg = _parse_reg(ops[0], lineno)
        if fmt is Format.LOAD:
            return [Instruction(opcode, rd=reg, rs1=base, imm=offset)]
        return [Instruction(opcode, rs2=reg, rs1=base, imm=offset)]
    if fmt is Format.BC:
        _expect(ops, 3, lineno, mnemonic)
        rs1 = _parse_reg(ops[0], lineno)
        rs2 = _parse_reg(ops[1], lineno)
        if _LABEL_RE.match(ops[2]) and not ops[2].lstrip("-").isdigit():
            return [_PendingBranch(opcode, rs1, rs2, ops[2], lineno)]
        return [Instruction(opcode, rs1=rs1, rs2=rs2,
                            imm=_parse_int(ops[2], lineno))]
    if fmt is Format.J:
        _expect(ops, 1, lineno, mnemonic)
        if _LABEL_RE.match(ops[0]) and not ops[0].lstrip("-").isdigit():
            return [_PendingBranch(opcode, 0, 0, ops[0], lineno)]
        return [Instruction(opcode, imm=_parse_int(ops[0], lineno))]
    if fmt is Format.JR:
        _expect(ops, 1, lineno, mnemonic)
        return [Instruction(opcode, rs1=_parse_reg(ops[0], lineno))]
    if opcode is Opcode.SVC:
        _expect(ops, 1, lineno, mnemonic)
        return [Instruction(opcode, imm=_parse_int(ops[0], lineno))]
    return [Instruction(opcode)]


def _split_operands(rest: str) -> list[str]:
    """Split on commas not inside brackets (``ldr a0, [sp, 8]``)."""
    out: list[str] = []
    depth = 0
    current = ""
    for char in rest:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            out.append(current)
            current = ""
        else:
            current += char
    if current.strip():
        out.append(current)
    return out


def _expect(ops: list[str], count: int, lineno: int, mnemonic: str) -> None:
    if len(ops) != count:
        raise AssemblyError(
            f"line {lineno}: {mnemonic} expects {count} operands,"
            f" got {len(ops)}")


def _resolve(items: list[Instruction | _PendingBranch],
             symbols: dict[str, int]) -> list[Instruction]:
    text: list[Instruction] = []
    for index, item in enumerate(items):
        if isinstance(item, Instruction):
            text.append(item)
            continue
        if item.label not in symbols:
            raise AssemblyError(
                f"line {item.line}: undefined label {item.label!r}")
        displacement = symbols[item.label] - index
        text.append(Instruction(item.opcode, rs1=item.rs1, rs2=item.rs2,
                                imm=displacement))
    return text


def disassemble(program: Program) -> str:
    """Render ``program``'s text segment as assembly-like text."""
    return program.listing()
