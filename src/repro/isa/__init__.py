"""The armlet instruction set architecture.

Public surface: register conventions (:mod:`~repro.isa.registers`), the
:class:`~repro.isa.instructions.Instruction` /
:class:`~repro.isa.instructions.Opcode` model, binary
:func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`,
functional :mod:`~repro.isa.semantics`, the
:class:`~repro.isa.program.Program` container, and a two-pass
:func:`~repro.isa.assembler.assemble`.
"""

from . import registers, semantics
from .assembler import assemble, disassemble, expand_li
from .encoding import decode, encode
from .instructions import Format, Instruction, Opcode
from .program import Program

__all__ = [
    "Format",
    "Instruction",
    "Opcode",
    "Program",
    "assemble",
    "decode",
    "disassemble",
    "encode",
    "expand_li",
    "registers",
    "semantics",
]
