"""Binary encoding and decoding of armlet instructions.

Every instruction is one 32-bit word::

    [31:26] opcode
    [25:21] rd   (STORE: rs2; BC: rs1; JR: rs1)
    [20:16] rs1  (BC: rs2)
    [15:0]  imm16 (R-format: [15:11] rs2, [10:0] must-be-zero)
    J-format: [25:0] imm26

Fields an instruction's format does not use must be zero; decoding rejects
words that violate this, which increases the fraction of single-bit flips
in the instruction stream that surface as illegal instructions -- the
dominant crash mechanism for L1I faults in the paper.
"""

from __future__ import annotations

from ..errors import EncodingError, IllegalInstructionError
from .instructions import Format, Instruction, Opcode, VALID_OPCODES

WORD_BITS = 32
_IMM16_MASK = 0xFFFF
_IMM26_MASK = 0x3FF_FFFF


def _signed(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def _check_imm(imm: int, bits: int) -> int:
    lo = -(1 << (bits - 1))
    hi = (1 << (bits - 1)) - 1
    if not lo <= imm <= hi:
        raise EncodingError(f"immediate {imm} does not fit in {bits} bits")
    return imm & ((1 << bits) - 1)


def _check_reg(reg: int) -> int:
    if not 0 <= reg < 32:
        raise EncodingError(f"register number out of range: {reg}")
    return reg


def encode(instr: Instruction) -> int:
    """Encode ``instr`` to its 32-bit binary word."""
    op = int(instr.opcode) << 26
    fmt = instr.format
    if fmt is Format.R:
        return (op | _check_reg(instr.rd) << 21 | _check_reg(instr.rs1) << 16
                | _check_reg(instr.rs2) << 11)
    if fmt in (Format.I, Format.LOAD):
        return (op | _check_reg(instr.rd) << 21 | _check_reg(instr.rs1) << 16
                | _check_imm(instr.imm, 16))
    if fmt is Format.LI:
        # MOVW/MOVT immediates are raw 16-bit payloads (zero-extended).
        if not 0 <= instr.imm <= 0xFFFF:
            raise EncodingError(f"{instr.opcode.name} immediate {instr.imm} "
                                "must be an unsigned 16-bit value")
        return op | _check_reg(instr.rd) << 21 | instr.imm
    if fmt is Format.STORE:
        return (op | _check_reg(instr.rs2) << 21 | _check_reg(instr.rs1) << 16
                | _check_imm(instr.imm, 16))
    if fmt is Format.BC:
        return (op | _check_reg(instr.rs1) << 21 | _check_reg(instr.rs2) << 16
                | _check_imm(instr.imm, 16))
    if fmt is Format.J:
        return op | _check_imm(instr.imm, 26)
    if fmt is Format.JR:
        return op | _check_reg(instr.rs1) << 21
    if instr.opcode is Opcode.SVC:
        return op | _check_imm(instr.imm, 16)
    return op  # NOP


def decode(word: int, pc: int | None = None) -> Instruction:
    """Decode a 32-bit word, raising :class:`IllegalInstructionError`.

    ``pc`` is attached to the error for diagnostics only.
    """
    word &= 0xFFFF_FFFF
    opnum = word >> 26
    if opnum not in VALID_OPCODES:
        raise IllegalInstructionError(word, pc)
    opcode = Opcode(opnum)
    f1 = (word >> 21) & 0x1F
    f2 = (word >> 16) & 0x1F
    imm16 = word & _IMM16_MASK
    fmt = _FORMAT_OF[opcode]
    if fmt is Format.R:
        if word & 0x7FF:
            raise IllegalInstructionError(word, pc)
        return Instruction(opcode, rd=f1, rs1=f2, rs2=(word >> 11) & 0x1F)
    if fmt in (Format.I, Format.LOAD):
        return Instruction(opcode, rd=f1, rs1=f2, imm=_signed(imm16, 16))
    if fmt is Format.LI:
        if f2:
            raise IllegalInstructionError(word, pc)
        return Instruction(opcode, rd=f1, imm=imm16)
    if fmt is Format.STORE:
        return Instruction(opcode, rs2=f1, rs1=f2, imm=_signed(imm16, 16))
    if fmt is Format.BC:
        return Instruction(opcode, rs1=f1, rs2=f2, imm=_signed(imm16, 16))
    if fmt is Format.J:
        return Instruction(opcode, imm=_signed(word & _IMM26_MASK, 26))
    if fmt is Format.JR:
        if word & 0x1F_FFFF:
            raise IllegalInstructionError(word, pc)
        return Instruction(opcode, rs1=f1)
    if opcode is Opcode.SVC:
        if (word >> 16) & 0x3FF:
            raise IllegalInstructionError(word, pc)
        return Instruction(opcode, imm=_signed(imm16, 16))
    if word & _IMM26_MASK:  # NOP must be a bare opcode
        raise IllegalInstructionError(word, pc)
    return Instruction(opcode)


_FORMAT_OF = {op: Instruction(op).format for op in Opcode}
