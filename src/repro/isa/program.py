"""Executable program container shared by the assembler and the compiler.

A :class:`Program` is the armlet analogue of a statically linked ELF: a
text segment (decoded instructions, one per 32-bit slot), an initialized
data segment (raw bytes), symbol tables for both, and an entry point. The
kernel loader (:mod:`repro.kernel.loader`) places the segments into the
simulated system map and encodes the text into memory words, which is what
the L1I cache (and hence the fault injector) actually sees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .encoding import encode
from .instructions import Instruction


@dataclass
class Program:
    """A linked armlet program.

    ``text_symbols`` maps label -> instruction index; ``data_symbols`` maps
    label -> byte offset within the data segment. ``entry`` is the
    instruction index where execution starts. ``xlen`` records the data
    width (32 or 64) the program was compiled for; the loader refuses to
    load a program onto a mismatched core.
    """

    text: list[Instruction] = field(default_factory=list)
    data: bytearray = field(default_factory=bytearray)
    text_symbols: dict[str, int] = field(default_factory=dict)
    data_symbols: dict[str, int] = field(default_factory=dict)
    entry: int = 0
    xlen: int = 32
    name: str = "a.out"

    def __post_init__(self) -> None:
        if self.xlen not in (32, 64):
            raise ValueError(f"unsupported xlen: {self.xlen}")

    @property
    def text_bytes(self) -> int:
        return len(self.text) * 4

    def encoded_text(self) -> list[int]:
        """Encode the text segment into 32-bit words."""
        return [encode(instr) for instr in self.text]

    def labels_by_index(self) -> dict[int, list[str]]:
        """Reverse text symbol table: instruction index -> sorted labels."""
        by_index: dict[int, list[str]] = {}
        for label, index in self.text_symbols.items():
            by_index.setdefault(index, []).append(label)
        for labels in by_index.values():
            labels.sort()
        return by_index

    def listing(self) -> str:
        """Human-readable disassembly with symbol annotations."""
        by_index = self.labels_by_index()
        lines = []
        for i, instr in enumerate(self.text):
            for label in by_index.get(i, ()):
                lines.append(f"{label}:")
            marker = " <- entry" if i == self.entry else ""
            lines.append(f"  {i:5d}: {instr}{marker}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.text)
