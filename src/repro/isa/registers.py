"""Architectural register definitions for the armlet ISA.

Both armlet variants expose 32 integer registers. Register 0 is hardwired
to zero (writes are discarded), matching the convention the code generator
relies on for materializing constants and discarding results.

The calling convention used by the compiler:

========  =======  ====================================================
register  alias    role
========  =======  ====================================================
r0        zero     constant zero
r1-r8     a0-a7    arguments / return value (a0)
r9-r15    t0-t6    caller-saved temporaries
r16-r27   s0-s11   callee-saved
r28       gp       global pointer (base of the data segment)
r29       fp       frame pointer
r30       lr       link register
r31       sp       stack pointer
========  =======  ====================================================
"""

from __future__ import annotations

NUM_REGS = 32

ZERO = 0
GP = 28
FP = 29
LR = 30
SP = 31

ARG_REGS = tuple(range(1, 9))          # a0-a7
RETURN_REG = 1                         # a0
TEMP_REGS = tuple(range(9, 16))        # t0-t6
SAVED_REGS = tuple(range(16, 28))      # s0-s11

_ALIASES = {0: "zero", 28: "gp", 29: "fp", 30: "lr", 31: "sp"}
for _i, _r in enumerate(ARG_REGS):
    _ALIASES[_r] = f"a{_i}"
for _i, _r in enumerate(TEMP_REGS):
    _ALIASES[_r] = f"t{_i}"
for _i, _r in enumerate(SAVED_REGS):
    _ALIASES[_r] = f"s{_i}"

_NAME_TO_NUM = {alias: num for num, alias in _ALIASES.items()}
_NAME_TO_NUM.update({f"r{i}": i for i in range(NUM_REGS)})


def reg_name(num: int) -> str:
    """Return the conventional alias for register ``num`` (e.g. ``sp``)."""
    if not 0 <= num < NUM_REGS:
        raise ValueError(f"register number out of range: {num}")
    return _ALIASES.get(num, f"r{num}")


def reg_number(name: str) -> int:
    """Parse a register name (``r7``, ``a0``, ``sp``...) to its number."""
    try:
        return _NAME_TO_NUM[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register name: {name!r}") from None
