"""Functional semantics of armlet instructions.

These pure functions define *what* each instruction computes, independent
of *when* it computes it. They are shared by the fast functional
interpreter (used to validate the compiler and produce reference outputs)
and by the out-of-order core's execute stage, guaranteeing that both
engines implement identical architecture semantics.

All values are stored as unsigned Python ints masked to ``xlen`` bits;
signed operations convert at the point of use, mirroring a real datapath.
"""

from __future__ import annotations

from ..errors import SimCrashError
from .instructions import Instruction, Opcode


def mask(xlen: int) -> int:
    return (1 << xlen) - 1


def wrap(value: int, xlen: int) -> int:
    """Truncate ``value`` to an unsigned ``xlen``-bit quantity."""
    return value & ((1 << xlen) - 1)


def to_signed(value: int, xlen: int) -> int:
    """Interpret an unsigned ``xlen``-bit value as two's-complement."""
    sign = 1 << (xlen - 1)
    return (value & (sign - 1)) - (value & sign)


def _shift_amount(b: int, xlen: int) -> int:
    # Hardware shifters use only the low log2(xlen) bits of the amount.
    return b & (xlen - 1)


def alu(opcode: Opcode, a: int, b: int, xlen: int) -> int:
    """Compute an ALU/multiply/divide result for unsigned operands.

    ``b`` is the second register value or the sign-extended immediate,
    already wrapped to ``xlen`` bits by the caller. Division by zero
    raises :class:`SimCrashError` (the simulated platform delivers the
    equivalent of SIGFPE), which is how an injected fault that corrupts a
    divisor into zero surfaces as a process crash.
    """
    if opcode in (Opcode.ADD, Opcode.ADDI):
        return wrap(a + b, xlen)
    if opcode is Opcode.SUB:
        return wrap(a - b, xlen)
    if opcode in (Opcode.AND, Opcode.ANDI):
        return a & b
    if opcode in (Opcode.ORR, Opcode.ORI):
        return a | b
    if opcode in (Opcode.EOR, Opcode.EORI):
        return a ^ b
    if opcode in (Opcode.LSL, Opcode.LSLI):
        return wrap(a << _shift_amount(b, xlen), xlen)
    if opcode in (Opcode.LSR, Opcode.LSRI):
        return a >> _shift_amount(b, xlen)
    if opcode in (Opcode.ASR, Opcode.ASRI):
        return wrap(to_signed(a, xlen) >> _shift_amount(b, xlen), xlen)
    if opcode in (Opcode.SLT, Opcode.SLTI):
        return 1 if to_signed(a, xlen) < to_signed(b, xlen) else 0
    if opcode is Opcode.SLTU:
        return 1 if a < b else 0
    if opcode is Opcode.MUL:
        return wrap(a * b, xlen)
    if opcode is Opcode.MULH:
        product = to_signed(a, xlen) * to_signed(b, xlen)
        return wrap(product >> xlen, xlen)
    if opcode in (Opcode.DIV, Opcode.REM):
        if b == 0:
            raise SimCrashError("integer division by zero", kind="process")
        sa, sb = to_signed(a, xlen), to_signed(b, xlen)
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        if opcode is Opcode.DIV:
            return wrap(quotient, xlen)
        return wrap(sa - quotient * sb, xlen)
    raise ValueError(f"not an ALU opcode: {opcode!r}")


_MOVT_SHIFT = {Opcode.MOVT: 16, Opcode.MOVT2: 32, Opcode.MOVT3: 48}


def mov_result(instr: Instruction, old_rd: int, xlen: int) -> int:
    """Result of MOVW/MOVT/MOVT2/MOVT3 given the previous rd value."""
    if instr.opcode is Opcode.MOVW:
        return instr.imm & 0xFFFF
    shift = _MOVT_SHIFT[instr.opcode]
    if shift >= xlen:
        raise SimCrashError(
            f"{instr.opcode.name} is undefined on a {xlen}-bit core",
            kind="process")
    return (old_rd & ~(0xFFFF << shift) & mask(xlen)) | (
        (instr.imm & 0xFFFF) << shift)


def branch_taken(opcode: Opcode, a: int, b: int, xlen: int) -> bool:
    """Evaluate a conditional branch for unsigned register values."""
    if opcode is Opcode.BEQ:
        return a == b
    if opcode is Opcode.BNE:
        return a != b
    if opcode is Opcode.BLT:
        return to_signed(a, xlen) < to_signed(b, xlen)
    if opcode is Opcode.BGE:
        return to_signed(a, xlen) >= to_signed(b, xlen)
    if opcode is Opcode.BLTU:
        return a < b
    if opcode is Opcode.BGEU:
        return a >= b
    raise ValueError(f"not a conditional branch: {opcode!r}")
