"""Instruction set definition for the armlet ISA.

armlet is a small RISC-style ISA with a fixed 32-bit instruction encoding,
used in two data-width variants: armlet-32 (the Cortex-A15 analogue,
Armv7-class) and armlet-64 (the Cortex-A72 analogue, Armv8-class). The
instruction *encoding* is identical in both variants; only the register and
memory word width differs, exactly as the paper's two cores share an
evaluation methodology while differing in datapath width.

Branch and jump immediates are signed displacements in *instruction units*
relative to the branch's own slot (so ``B 0`` is a self-loop).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Format(enum.Enum):
    """Operand layout of an instruction word."""

    R = "r"        # rd, rs1, rs2
    I = "i"        # rd, rs1, imm16
    LI = "li"      # rd, imm16 (MOVW / MOVT)
    LOAD = "load"  # rd, [rs1 + imm16]
    STORE = "store"  # rs2 -> [rs1 + imm16]
    BC = "bc"      # rs1, rs2, imm16 (conditional branch)
    J = "j"        # imm26 (B / BL)
    JR = "jr"      # rs1 (BR)
    SYS = "sys"    # imm16 (SVC) or nothing (NOP)


class Opcode(enum.IntEnum):
    """All armlet opcodes; the numeric value is the 6-bit encoding field.

    Value 0 and every unassigned value decode as illegal instructions, so a
    random single-bit flip in an instruction word frequently produces an
    undecodable word -- the mechanism behind the Crash-dominated L1I
    vulnerability profile the paper reports.
    """

    # register-register ALU
    ADD = 1
    SUB = 2
    AND = 3
    ORR = 4
    EOR = 5
    LSL = 6
    LSR = 7
    ASR = 8
    SLT = 9
    SLTU = 10
    MUL = 11
    MULH = 12
    DIV = 13
    REM = 14
    # register-immediate ALU
    ADDI = 16
    ANDI = 17
    ORI = 18
    EORI = 19
    LSLI = 20
    LSRI = 21
    ASRI = 22
    SLTI = 23
    # constant materialization (MOVT2/MOVT3 insert the third and fourth
    # 16-bit halves and are valid only on armlet-64 cores, like AArch64's
    # MOVK with hw=2,3)
    MOVW = 24
    MOVT = 25
    MOVT2 = 30
    MOVT3 = 31
    # memory
    LDR = 26
    LDRB = 27
    STR = 28
    STRB = 29
    # control flow
    B = 32
    BL = 33
    BR = 34
    BEQ = 36
    BNE = 37
    BLT = 38
    BGE = 39
    BLTU = 40
    BGEU = 41
    # system
    SVC = 48
    NOP = 49


_FORMATS: dict[Opcode, Format] = {
    Opcode.ADD: Format.R, Opcode.SUB: Format.R, Opcode.AND: Format.R,
    Opcode.ORR: Format.R, Opcode.EOR: Format.R, Opcode.LSL: Format.R,
    Opcode.LSR: Format.R, Opcode.ASR: Format.R, Opcode.SLT: Format.R,
    Opcode.SLTU: Format.R, Opcode.MUL: Format.R, Opcode.MULH: Format.R,
    Opcode.DIV: Format.R, Opcode.REM: Format.R,
    Opcode.ADDI: Format.I, Opcode.ANDI: Format.I, Opcode.ORI: Format.I,
    Opcode.EORI: Format.I, Opcode.LSLI: Format.I, Opcode.LSRI: Format.I,
    Opcode.ASRI: Format.I, Opcode.SLTI: Format.I,
    Opcode.MOVW: Format.LI, Opcode.MOVT: Format.LI,
    Opcode.MOVT2: Format.LI, Opcode.MOVT3: Format.LI,
    Opcode.LDR: Format.LOAD, Opcode.LDRB: Format.LOAD,
    Opcode.STR: Format.STORE, Opcode.STRB: Format.STORE,
    Opcode.B: Format.J, Opcode.BL: Format.J, Opcode.BR: Format.JR,
    Opcode.BEQ: Format.BC, Opcode.BNE: Format.BC, Opcode.BLT: Format.BC,
    Opcode.BGE: Format.BC, Opcode.BLTU: Format.BC, Opcode.BGEU: Format.BC,
    Opcode.SVC: Format.SYS, Opcode.NOP: Format.SYS,
}

# Execution resource class; the pipeline maps these to latencies.
_EXEC_CLASS: dict[Opcode, str] = {}
for _op, _fmt in _FORMATS.items():
    if _op in (Opcode.MUL, Opcode.MULH):
        _EXEC_CLASS[_op] = "mul"
    elif _op in (Opcode.DIV, Opcode.REM):
        _EXEC_CLASS[_op] = "div"
    elif _fmt in (Format.LOAD, Format.STORE):
        _EXEC_CLASS[_op] = "mem"
    elif _fmt in (Format.BC, Format.J, Format.JR):
        _EXEC_CLASS[_op] = "branch"
    elif _fmt is Format.SYS:
        _EXEC_CLASS[_op] = "system"
    else:
        _EXEC_CLASS[_op] = "alu"


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded armlet instruction.

    Fields not used by the instruction's format are zero. ``imm`` is the
    sign-extended immediate (instruction units for branches and jumps).
    """

    opcode: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    @property
    def format(self) -> Format:
        return _FORMATS[self.opcode]

    @property
    def exec_class(self) -> str:
        """Resource class: alu, mul, div, mem, branch, or system."""
        return _EXEC_CLASS[self.opcode]

    @property
    def is_load(self) -> bool:
        return self.format is Format.LOAD

    @property
    def is_store(self) -> bool:
        return self.format is Format.STORE

    @property
    def is_mem(self) -> bool:
        return self.format in (Format.LOAD, Format.STORE)

    @property
    def is_cond_branch(self) -> bool:
        return self.format is Format.BC

    @property
    def is_jump(self) -> bool:
        return self.format in (Format.J, Format.JR)

    @property
    def is_control(self) -> bool:
        return self.format in (Format.BC, Format.J, Format.JR)

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.BL

    @property
    def is_syscall(self) -> bool:
        return self.opcode is Opcode.SVC

    def dest_reg(self) -> int | None:
        """Architectural register written, or None.

        Writes to the hardwired zero register are reported as None so the
        pipeline never allocates rename resources for them.
        """
        fmt = self.format
        if fmt in (Format.R, Format.I, Format.LI, Format.LOAD):
            return self.rd if self.rd != 0 else None
        if self.opcode is Opcode.BL:
            from . import registers

            return registers.LR
        return None

    def src_regs(self) -> tuple[int, ...]:
        """Architectural registers read (zero register included)."""
        fmt = self.format
        if fmt is Format.R:
            return (self.rs1, self.rs2)
        if fmt in (Format.I, Format.LOAD):
            return (self.rs1,)
        if fmt is Format.STORE:
            return (self.rs1, self.rs2)
        if fmt is Format.BC:
            return (self.rs1, self.rs2)
        if fmt is Format.JR:
            return (self.rs1,)
        if self.opcode in (Opcode.MOVT, Opcode.MOVT2, Opcode.MOVT3):
            return (self.rd,)  # MOVT* merge into the existing register
        return ()

    def __str__(self) -> str:
        from . import registers as rg

        op = self.opcode.name.lower()
        fmt = self.format
        if fmt is Format.R:
            return (f"{op} {rg.reg_name(self.rd)}, {rg.reg_name(self.rs1)},"
                    f" {rg.reg_name(self.rs2)}")
        if fmt is Format.I:
            return (f"{op} {rg.reg_name(self.rd)}, {rg.reg_name(self.rs1)},"
                    f" {self.imm}")
        if fmt is Format.LI:
            return f"{op} {rg.reg_name(self.rd)}, {self.imm}"
        if fmt is Format.LOAD:
            return (f"{op} {rg.reg_name(self.rd)},"
                    f" [{rg.reg_name(self.rs1)}, {self.imm}]")
        if fmt is Format.STORE:
            return (f"{op} {rg.reg_name(self.rs2)},"
                    f" [{rg.reg_name(self.rs1)}, {self.imm}]")
        if fmt is Format.BC:
            return (f"{op} {rg.reg_name(self.rs1)}, {rg.reg_name(self.rs2)},"
                    f" {self.imm}")
        if fmt is Format.J:
            return f"{op} {self.imm}"
        if fmt is Format.JR:
            return f"{op} {rg.reg_name(self.rs1)}"
        if self.opcode is Opcode.SVC:
            return f"svc {self.imm}"
        return op


VALID_OPCODES = frozenset(int(op) for op in Opcode)
