"""Microarchitecture configurations (paper Table I).

Two out-of-order core models are provided: ``CORTEX_A15`` (armlet-32,
Armv7 analogue) and ``CORTEX_A72`` (armlet-64, Armv8 analogue), with the
exact structure geometries of Table I. The raw FIT/bit constants come
from the neutron-beam-calibrated values the paper cites ([37]):
2.59e-5 FIT/bit for the A15's process and 9.39e-6 FIT/bit for the A72's.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache array."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ValueError(f"{self.name}: size not divisible by ways*line")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: set count must be a power of 2")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.num_sets * self.ways

    @property
    def offset_bits(self) -> int:
        return self.line_bytes.bit_length() - 1

    @property
    def index_bits(self) -> int:
        return self.num_sets.bit_length() - 1

    def tag_bits(self, phys_addr_bits: int) -> int:
        """Stored tag width: address tag plus valid and dirty bits."""
        return phys_addr_bits - self.index_bits - self.offset_bits + 2

    @property
    def data_bits(self) -> int:
        return self.size_bytes * 8


@dataclass(frozen=True)
class CoreConfig:
    """Full configuration of one simulated out-of-order core."""

    name: str
    xlen: int
    phys_addr_bits: int
    l1i: CacheGeometry
    l1d: CacheGeometry
    l2: CacheGeometry
    phys_regs: int
    iq_entries: int
    lq_entries: int
    sq_entries: int
    rob_entries: int
    fetch_width: int
    execute_width: int
    writeback_width: int
    raw_fit_per_bit: float
    # access latencies, in cycles
    l1_hit_latency: int = 2
    l2_hit_latency: int = 12
    memory_latency: int = 80
    exec_latency: dict[str, int] = field(default_factory=lambda: {
        "alu": 1, "mul": 4, "div": 12, "branch": 1, "system": 1,
    })
    mispredict_penalty: int = 3
    syscall_overhead: int = 40

    @property
    def word_size(self) -> int:
        return self.xlen // 8

    @property
    def phys_tag_bits(self) -> int:
        return (self.phys_regs - 1).bit_length()

    @property
    def seq_bits(self) -> int:
        return 16


CORTEX_A15 = CoreConfig(
    name="cortex-a15",
    xlen=32,
    phys_addr_bits=32,
    l1i=CacheGeometry("l1i", 32 * 1024, 2),
    l1d=CacheGeometry("l1d", 32 * 1024, 2),
    l2=CacheGeometry("l2", 1024 * 1024, 8),
    phys_regs=128,
    iq_entries=32,
    lq_entries=16,
    sq_entries=16,
    rob_entries=40,
    fetch_width=3,
    execute_width=6,
    writeback_width=8,
    raw_fit_per_bit=2.59e-5,
    exec_latency={"alu": 1, "mul": 4, "div": 12, "branch": 1, "system": 1},
)

CORTEX_A72 = CoreConfig(
    name="cortex-a72",
    xlen=64,
    phys_addr_bits=40,
    l1i=CacheGeometry("l1i", 48 * 1024, 3, line_bytes=64),
    l1d=CacheGeometry("l1d", 32 * 1024, 2),
    l2=CacheGeometry("l2", 2 * 1024 * 1024, 16),
    phys_regs=192,
    iq_entries=64,
    lq_entries=16,
    sq_entries=16,
    rob_entries=128,
    fetch_width=3,
    execute_width=6,
    writeback_width=8,
    raw_fit_per_bit=9.39e-6,
    exec_latency={"alu": 1, "mul": 3, "div": 10, "branch": 1, "system": 1},
)

CONFIGS = {c.name: c for c in (CORTEX_A15, CORTEX_A72)}


def get_config(name: str) -> CoreConfig:
    """Look up a core configuration by name (e.g. ``cortex-a15``)."""
    try:
        return CONFIGS[name]
    except KeyError:
        raise ValueError(
            f"unknown core {name!r}; available: {sorted(CONFIGS)}"
        ) from None
