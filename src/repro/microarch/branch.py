"""Branch prediction: a bimodal 2-bit-counter table plus a BTB.

Prediction quality only shapes timing (squash frequency and depth); the
predictor is not a fault-injection target in the paper, so its state is
not registered with the fault catalog.
"""

from __future__ import annotations


class BranchPredictor:
    """Bimodal predictor with a direct-mapped branch target buffer."""

    def __init__(self, table_size: int = 1024, btb_size: int = 512) -> None:
        if table_size & (table_size - 1) or btb_size & (btb_size - 1):
            raise ValueError("predictor table sizes must be powers of two")
        self.table_size = table_size
        self.btb_size = btb_size
        self.counters = [2] * table_size        # weakly taken
        self.btb: dict[int, tuple[int, bool]] = {}  # pc -> (target, is_cond)
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc: int) -> int:
        return (pc >> 2) & (self.table_size - 1)

    def predict(self, pc: int) -> int:
        """Predicted next fetch address for the instruction at ``pc``."""
        self.lookups += 1
        hit = self.btb.get(pc)
        if hit is None:
            return pc + 4
        target, is_cond = hit
        if not is_cond:
            return target
        return target if self.counters[self._index(pc)] >= 2 else pc + 4

    def update(self, pc: int, taken: bool, target: int,
               is_cond: bool) -> None:
        """Train on a resolved control instruction."""
        if is_cond:
            index = self._index(pc)
            if taken:
                self.counters[index] = min(3, self.counters[index] + 1)
            else:
                self.counters[index] = max(0, self.counters[index] - 1)
        if taken:
            if len(self.btb) >= self.btb_size and pc not in self.btb:
                # Direct-mapped-style eviction: drop the entry whose pc
                # aliases the same BTB set.
                alias = [k for k in self.btb
                         if self._index(k) == self._index(pc)]
                victim = alias[0] if alias else next(iter(self.btb))
                del self.btb[victim]
            self.btb[pc] = (target, is_cond)

    def get_state(self) -> dict:
        return {"counters": list(self.counters), "btb": dict(self.btb),
                "lookups": self.lookups, "mispredicts": self.mispredicts}

    def set_state(self, state: dict) -> None:
        self.counters = list(state["counters"])
        self.btb = dict(state["btb"])
        self.lookups = state["lookups"]
        self.mispredicts = state["mispredicts"]
