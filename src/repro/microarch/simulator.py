"""Full-system simulator: out-of-order core + caches + RAM + kernel.

This is the object the fault injector drives::

    sim = Simulator(program, CORTEX_A15)
    result = sim.run(max_cycles=2_000_000)      # golden run
    ...
    sim = Simulator(program, CORTEX_A15)
    sim.run_until(injection_cycle)
    sim.flip("rob.pc", bit_index)
    result = sim.run(max_cycles=2 * golden_cycles)

Kernel (syscall) accesses are routed through the L1D/L2 hierarchy via
:class:`CachedDataPort`, so resident kernel state is part of the fault
surface and corrupting it produces kernel panics (system crashes), as in
the paper's full-system campaigns.

Snapshots (:meth:`Simulator.save_state` / :meth:`Simulator.load_state`)
capture the complete machine state and are the basis of checkpoint-
accelerated campaigns.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from ..digest import fold
from ..errors import SimTimeoutError
from ..isa.program import Program
from ..kernel.layout import SystemMap
from ..kernel.loader import load
from ..kernel.memory import MainMemory
from ..kernel.syscalls import OutputCapture, ProgramExit, SyscallHandler
from .caches import CacheHierarchy
from .config import CoreConfig
from .core import OoOCore
from .faults import FieldCatalog


class CachedDataPort:
    """Kernel data port routed through the data-cache hierarchy."""

    def __init__(self, hierarchy: CacheHierarchy, system_map: SystemMap,
                 word_size: int) -> None:
        self._hierarchy = hierarchy
        self._map = system_map
        self._size = word_size

    def read_word(self, addr: int) -> int:
        self._map.check_data_access(addr, self._size, store=False,
                                    mode="kernel")
        value, _latency = self._hierarchy.read(addr, self._size)
        return value

    def write_word(self, addr: int, value: int) -> None:
        self._map.check_data_access(addr, self._size, store=True,
                                    mode="kernel")
        self._hierarchy.write(addr, value, self._size)


@dataclass
class SimResult:
    """Outcome of a completed (fault-free or faulty) simulation."""

    output: OutputCapture
    cycles: int
    stats: dict[str, float]

    @property
    def exit_code(self) -> int | None:
        return self.output.exit_code


class Simulator:
    """One bootable instance of the platform running one program."""

    def __init__(self, program: Program, config: CoreConfig,
                 system_map: SystemMap | None = None) -> None:
        if program.xlen != config.xlen:
            raise ValueError(
                f"program is {program.xlen}-bit but core {config.name} "
                f"is {config.xlen}-bit")
        self.program = program
        self.config = config
        self.system_map = system_map or SystemMap()
        self.memory = MainMemory(self.system_map.ram_size)
        self.image = load(program, self.memory, self.system_map)
        self.catalog = FieldCatalog()
        self.hierarchy = CacheHierarchy(config, self.memory, self.catalog)
        self.handler = SyscallHandler(self.system_map, config.xlen)
        self.port = CachedDataPort(self.hierarchy, self.system_map,
                                   config.word_size)
        self.core = OoOCore(config, self.hierarchy, self.system_map,
                            self.image.text_bytes, self.handler, self.port,
                            self.catalog)
        self.core.boot(self.image.entry_pc, self.image.initial_regs)
        self.finished = False

    # ------------------------------------------------------------------ run

    @property
    def cycle(self) -> int:
        return self.core.cycle

    @property
    def output(self) -> OutputCapture:
        return self.handler.output

    def step(self) -> None:
        self.core.step()

    def attach_observer(self, observer: object | None) -> None:
        """Attach (or with ``None``, detach) a sampling observer.

        The observer (duck-typed; see :class:`repro.obs.SimObserver`)
        gets ``sample(core)`` from the core's per-16-cycle stats window.
        Detached -- the default -- the window pays one ``is None`` test.
        """
        self.core.obs = observer

    def run_until(self, cycle: int) -> bool:
        """Advance to ``cycle`` (or completion); True if still running.

        A no-op returning False once the program has exited: stepping a
        halted core would re-execute from a dead pipeline state.
        """
        if self.finished:
            return False
        try:
            while self.core.cycle < cycle:
                self.core.step()
        except ProgramExit:
            self.finished = True
            return False
        return True

    def run(self, max_cycles: int) -> SimResult:
        """Run to completion; :class:`SimTimeoutError` past ``max_cycles``.

        Fault-induced failures (crash/assert) propagate as exceptions.
        Idempotent after completion: further calls return the existing
        result without stepping the halted core.
        """
        if self.finished:
            return self.result()
        try:
            while self.core.cycle < max_cycles:
                self.core.step()
            raise SimTimeoutError(max_cycles)
        except ProgramExit:
            self.finished = True
        return self.result()

    def result(self) -> SimResult:
        return SimResult(output=self.handler.output,
                         cycles=self.core.cycle,
                         stats=self.core.stats.as_dict())

    # --------------------------------------------------------------- digest

    def _quick_values(self) -> list:
        """O(1)-readable digest components (see :meth:`quick_digest`)."""
        core = self.core
        prf = core.prf
        cycle = core.cycle
        values = [
            self.memory.digest(),
            self.hierarchy.l1i.digest_acc,
            self.hierarchy.l1d.digest_acc,
            self.hierarchy.l2.digest_acc,
            core.fetch_pc,
            1 if core.fetch_poisoned else 0,
            max(0, core.fetch_busy_until - cycle),
            max(0, core.commit_stall_until - cycle),
            prf.digest_acc, prf.alloc_mask, prf.ready_mask,
            len(prf.free_list),
            core.iq.valid_mask, core.lq.valid_mask,
            core.sq.count, core.rob.count,
            len(core.fetch_queue), len(core.decode_queue),
            len(core.inflight),
            1 if self.finished else 0,
        ]
        values.extend(self.handler.output.digest())
        return values

    def quick_digest(self) -> int:
        """Cheap pre-filter digest; a *necessary* condition for a full
        match.

        Reads only incrementally-maintained accumulators and counts
        (every component is a function of state the full digest also
        covers), so a quick mismatch proves a full mismatch without
        paying :meth:`state_digest`'s per-structure walk.
        """
        return fold(0, self._quick_values())

    def state_digest(self) -> int:
        """64-bit digest of the complete architectural machine state.

        Equality with another run's digest at the same point implies the
        two machines commit identical futures (timing-only state --
        branch predictor, replacement stamps, stats -- is excluded; see
        DESIGN.md for the soundness argument).
        """
        values = self._quick_values()
        values.extend(self.core.digest_values())
        return fold(0, values)

    def digest_pair(self) -> tuple[int, int]:
        """(:meth:`quick_digest`, :meth:`state_digest`) sharing one
        component walk -- what golden-trace recording calls per cycle."""
        values = self._quick_values()
        quick = fold(0, values)
        values.extend(self.core.digest_values())
        return quick, fold(0, values)

    def arch_equal(self, quick: int, full: int) -> bool:
        """Does this machine's state digest to (``quick``, ``full``)?

        Checks the O(1) quick digest first and only walks the full
        state when it matches, so diverged states cost microseconds.
        """
        return (self.quick_digest() == quick
                and self.state_digest() == full)

    # --------------------------------------------------------------- faults

    def fault_fields(self) -> list[str]:
        return self.catalog.names()

    def bit_count(self, field: str) -> int:
        return self.catalog.bit_count(field)

    def flip(self, field: str, bit_index: int) -> bool:
        """Inject one single-bit fault right now; True if state changed."""
        return self.catalog.flip(field, bit_index)

    # ------------------------------------------------------------ snapshot

    def save_state(self) -> bytes:
        """Serialize the complete mutable machine state."""
        state = {
            "memory": self.memory.snapshot(),
            "caches": self.hierarchy.get_state(),
            "core": self.core.get_state(),
            "output": self.handler.output.get_state(),
            "finished": self.finished,
            "digest": {"memory": self.memory.get_digest_state()},
        }
        return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)

    def load_state(self, blob: bytes) -> None:
        state = pickle.loads(blob)
        self.memory.restore(state["memory"])
        self.hierarchy.set_state(state["caches"])
        self.core.set_state(state["core"])
        self.handler.output.set_state(state["output"])
        self.finished = state["finished"]
        digest = state.get("digest")
        if digest is not None:
            # Ship the RAM page-hash table with the snapshot so restoring
            # does not force an O(RAM) lazy re-hash at the next digest().
            self.memory.set_digest_state(digest["memory"])
