"""Physical register file, free list, and rename map.

The PRF payload (``phys_regs`` x ``xlen`` bits) is an injectable fault
field: flips mutate whatever value a register currently holds, whether it
is architecturally mapped, in flight, or free -- a flip in a free register
is masked organically when the register is re-allocated and overwritten
before any read.

Defensive checks mirror gem5-style panics and produce the paper's
*Assert* class: out-of-range physical tags (possible on the A72 whose 192
registers do not fill the 8-bit tag space), write-back to an unallocated
register, and double-free.
"""

from __future__ import annotations

from ..digest import mix64
from ..errors import SimAssertError
from ..isa import registers as arch_regs
from .faults import FieldCatalog, LambdaField


class PhysRegFile:
    """Physical registers with an architectural rename map.

    Besides the payload, the file maintains O(1)-readable digest state
    for the early-termination engine: ``digest_acc`` (XOR of
    ``mix64(reg, value)`` over all registers, updated at every value
    mutation) plus ``alloc_mask``/``ready_mask`` bit vectors mirroring
    the ``allocated``/``ready`` lists.
    """

    def __init__(self, num_regs: int, xlen: int,
                 catalog: FieldCatalog | None = None) -> None:
        if num_regs < arch_regs.NUM_REGS:
            raise ValueError("need at least one phys reg per arch reg")
        self.num_regs = num_regs
        self.xlen = xlen
        self.mask = (1 << xlen) - 1
        self.values = [0] * num_regs
        self.allocated = [False] * num_regs
        self.ready = [False] * num_regs
        self.rename_map = list(range(arch_regs.NUM_REGS))
        for i in range(arch_regs.NUM_REGS):
            self.allocated[i] = True
            self.ready[i] = True
        self.free_list = list(range(arch_regs.NUM_REGS, num_regs))
        self.digest_acc = 0
        for reg in range(num_regs):
            self.digest_acc ^= mix64(reg, 0)
        self.alloc_mask = (1 << arch_regs.NUM_REGS) - 1
        self.ready_mask = (1 << arch_regs.NUM_REGS) - 1
        if catalog is not None:
            catalog.register(LambdaField("prf", self.bit_count,
                                         self.flip_bit,
                                         self.live_bit_count,
                                         self.flip_live_bit))

    # --------------------------------------------------------------- checks

    def _check_tag(self, tag: int, context: str) -> None:
        if not 0 <= tag < self.num_regs:
            raise SimAssertError(
                f"{context}: physical register tag {tag} out of range")

    # ----------------------------------------------------------------- data

    def read(self, tag: int, context: str = "read") -> int:
        """Read a physical register (stale reads are organic, not errors)."""
        self._check_tag(tag, context)
        return self.values[tag]

    def write(self, tag: int, value: int, context: str = "writeback") -> None:
        self._check_tag(tag, context)
        if not self.allocated[tag]:
            raise SimAssertError(
                f"{context}: write to unallocated physical register {tag}")
        value &= self.mask
        self.digest_acc ^= mix64(tag, self.values[tag]) ^ mix64(tag, value)
        self.values[tag] = value
        self.ready[tag] = True
        self.ready_mask |= 1 << tag

    # --------------------------------------------------------------- rename

    @property
    def free_count(self) -> int:
        return len(self.free_list)

    @property
    def allocated_count(self) -> int:
        return self.alloc_mask.bit_count()

    def allocate(self) -> int:
        if not self.free_list:
            raise SimAssertError("rename: free list empty at allocate")
        tag = self.free_list.pop(0)
        if self.allocated[tag]:
            raise SimAssertError(
                f"rename: allocating already-allocated register {tag}")
        self.allocated[tag] = True
        self.ready[tag] = False
        self.alloc_mask |= 1 << tag
        self.ready_mask &= ~(1 << tag)
        return tag

    def free(self, tag: int, context: str = "commit") -> None:
        self._check_tag(tag, context)
        if not self.allocated[tag]:
            raise SimAssertError(
                f"{context}: double free of physical register {tag}")
        self.allocated[tag] = False
        self.ready[tag] = False
        self.alloc_mask &= ~(1 << tag)
        self.ready_mask &= ~(1 << tag)
        self.free_list.append(tag)

    def lookup(self, arch_reg: int, context: str = "rename") -> int:
        if not 0 <= arch_reg < arch_regs.NUM_REGS:
            raise SimAssertError(
                f"{context}: architectural register {arch_reg} out of range")
        return self.rename_map[arch_reg]

    def remap(self, arch_reg: int, tag: int, context: str = "rename") -> int:
        """Point ``arch_reg`` at ``tag``; returns the previous mapping."""
        if not 0 <= arch_reg < arch_regs.NUM_REGS:
            raise SimAssertError(
                f"{context}: architectural register {arch_reg} out of range")
        self._check_tag(tag, context)
        old = self.rename_map[arch_reg]
        self.rename_map[arch_reg] = tag
        return old

    def set_initial(self, arch_reg: int, value: int) -> None:
        """Loader hook: set a register before execution starts."""
        reg = self.rename_map[arch_reg]
        value &= self.mask
        self.digest_acc ^= mix64(reg, self.values[reg]) ^ mix64(reg, value)
        self.values[reg] = value

    # ------------------------------------------------------- fault surface

    def bit_count(self) -> int:
        return self.num_regs * self.xlen

    def flip_bit(self, index: int) -> bool:
        reg, bit = divmod(index, self.xlen)
        old = self.values[reg]
        new = old ^ (1 << bit)
        self.digest_acc ^= mix64(reg, old) ^ mix64(reg, new)
        self.values[reg] = new
        return True

    def live_bit_count(self) -> int:
        """Bits of currently allocated registers (occupancy sampling).

        A flip in a free register is provably masked (the register is
        rewritten at its next allocation before any architectural read),
        so occupancy sampling restricts to allocated registers.
        """
        return sum(self.allocated) * self.xlen

    def flip_live_bit(self, index: int) -> bool:
        which, bit = divmod(index, self.xlen)
        live = [r for r, used in enumerate(self.allocated) if used]
        return self.flip_bit(live[which] * self.xlen + bit)

    # ------------------------------------------------------------ snapshot

    def get_state(self) -> dict:
        return {
            "values": list(self.values),
            "allocated": list(self.allocated),
            "ready": list(self.ready),
            "rename_map": list(self.rename_map),
            "free_list": list(self.free_list),
        }

    def set_state(self, state: dict) -> None:
        self.values = list(state["values"])
        self.allocated = list(state["allocated"])
        self.ready = list(state["ready"])
        self.rename_map = list(state["rename_map"])
        self.free_list = list(state["free_list"])
        acc = 0
        for reg, value in enumerate(self.values):
            acc ^= mix64(reg, value)
        self.digest_acc = acc
        self.alloc_mask = sum(1 << r for r, a in enumerate(self.allocated)
                              if a)
        self.ready_mask = sum(1 << r for r, rd in enumerate(self.ready)
                              if rd)
