"""Fault-injection surface of the microarchitecture.

Every injectable hardware structure field registers a :class:`FaultField`
with the simulator's :class:`FieldCatalog`. A field has a fixed geometry
(``bit_count`` never changes during a run) and a ``flip_bit`` operation
that mutates whatever state currently occupies that bit -- flips landing
on unoccupied storage are inherently masked, exactly as on real SRAM.

The fifteen fields (paper Section III-A: 8 components, 15 sub-arrays):

====================  =================================================
field                 contents
====================  =================================================
l1i.data / l1i.tag    instruction cache line bytes / tag+valid bits
l1d.data / l1d.tag    data cache line bytes / tag+valid+dirty bits
l2.data  / l2.tag     unified L2, same layout
prf                   physical register file payload bits
lq                    load-queue entries: address | dest phys tag
sq                    store-queue entries: address | data
iq.src                issue-queue source operand tags + ready bits
iq.dst                issue-queue destination tags
rob.pc / rob.dest /   reorder buffer: fetch PC | (arch, new phys, old
rob.flags / rob.seq   phys) | status flags | sequence number
====================  =================================================
"""

from __future__ import annotations

from typing import Callable, Protocol


class FaultField(Protocol):
    """One injectable bit array of a hardware structure.

    ``bit_count``/``flip_bit`` address the full storage array (uniform
    sampling); ``live_bit_count``/``flip_live_bit`` address only bits
    currently backed by live state, enabling the occupancy-weighted
    importance sampler (weight = live/total) used to get low-variance AVF
    estimates for large, sparsely utilized arrays such as the L2.
    """

    @property
    def field_name(self) -> str: ...

    def bit_count(self) -> int: ...

    def flip_bit(self, index: int) -> bool:
        """Flip one bit; returns True if live state was modified."""

    def live_bit_count(self) -> int: ...

    def flip_live_bit(self, index: int) -> bool: ...


class LambdaField:
    """Adapter building a :class:`FaultField` from closures."""

    def __init__(self, field_name: str, bit_count: Callable[[], int],
                 flip_bit: Callable[[int], bool],
                 live_bit_count: Callable[[], int] | None = None,
                 flip_live_bit: Callable[[int], bool] | None = None) -> None:
        self._name = field_name
        self._bit_count = bit_count
        self._flip = flip_bit
        self._live_count = live_bit_count
        self._live_flip = flip_live_bit

    @property
    def field_name(self) -> str:
        return self._name

    def bit_count(self) -> int:
        return self._bit_count()

    def flip_bit(self, index: int) -> bool:
        return self._flip(index)

    def live_bit_count(self) -> int:
        if self._live_count is None:
            return self._bit_count()
        return self._live_count()

    def flip_live_bit(self, index: int) -> bool:
        if self._live_flip is None:
            return self._flip(index)
        return self._live_flip(index)


class FieldCatalog:
    """Registry of all injectable fields of one simulator instance."""

    def __init__(self) -> None:
        self._fields: dict[str, FaultField] = {}

    def register(self, field: FaultField) -> None:
        if field.field_name in self._fields:
            raise ValueError(f"duplicate fault field {field.field_name!r}")
        self._fields[field.field_name] = field

    def names(self) -> list[str]:
        return sorted(self._fields)

    def get(self, name: str) -> FaultField:
        try:
            return self._fields[name]
        except KeyError:
            raise ValueError(
                f"unknown fault field {name!r}; have {self.names()}"
            ) from None

    def bit_count(self, name: str) -> int:
        return self.get(name).bit_count()

    def flip(self, name: str, bit_index: int) -> bool:
        field = self.get(name)
        count = field.bit_count()
        if not 0 <= bit_index < count:
            raise ValueError(
                f"bit index {bit_index} out of range for {name} ({count})")
        return field.flip_bit(bit_index)

    def live_bit_count(self, name: str) -> int:
        return self.get(name).live_bit_count()

    def flip_live(self, name: str, bit_index: int) -> bool:
        field = self.get(name)
        count = field.live_bit_count()
        if not 0 <= bit_index < count:
            raise ValueError(
                f"live bit index {bit_index} out of range for {name} "
                f"({count})")
        return field.flip_live_bit(bit_index)


# Component grouping used by the analysis layer (paper's 8 components).
COMPONENT_FIELDS: dict[str, tuple[str, ...]] = {
    "l1i": ("l1i.data", "l1i.tag"),
    "l1d": ("l1d.data", "l1d.tag"),
    "l2": ("l2.data", "l2.tag"),
    "prf": ("prf",),
    "lq": ("lq",),
    "sq": ("sq",),
    "iq": ("iq.src", "iq.dst"),
    "rob": ("rob.pc", "rob.dest", "rob.flags", "rob.seq"),
}

ALL_FIELDS: tuple[str, ...] = tuple(
    name for fields in COMPONENT_FIELDS.values() for name in fields)
