"""Set-associative write-back caches with bit-accurate fault surfaces.

Functional-with-latency model: every access updates cache state (fills,
LRU, evictions, write-backs) immediately and returns the latency the
requester must charge, which keeps timing deterministic without modeling
MSHRs. Lines are allocated lazily; a fault flip addressed to storage with
no resident line is inherently masked (the next fill would overwrite that
SRAM cell anyway).

Fault semantics implemented here:

* data-array flips mutate the resident line's bytes -- later reads return
  corrupted data (SDC channel), dirty write-backs propagate it downstream;
* tag-array flips re-tag a line: the original address now misses (clean:
  refetched, masked; dirty: its data is lost) and the flipped tag may
  alias another address (wrong-data hits) or point outside the system
  map, in which case an eventual write-back raises the paper's *Assert*;
* a flip that makes two ways of a set match the same tag is detected at
  lookup and raises *Assert* (real hardware behaviour is undefined).
"""

from __future__ import annotations

from zlib import crc32

from ..digest import mix64
from ..errors import SimAssertError
from ..kernel.memory import MainMemory
from .config import CacheGeometry, CoreConfig
from .faults import FieldCatalog, LambdaField


class CacheLine:
    """One resident cache line."""

    __slots__ = ("tag", "valid", "dirty", "data", "stamp")

    def __init__(self, tag: int, data: bytearray) -> None:
        self.tag = tag
        self.valid = True
        self.dirty = False
        self.data = data
        self.stamp = 0


class SetAssocCache:
    """A single cache level backed by a sparse line store."""

    def __init__(self, name: str, geometry: CacheGeometry,
                 phys_addr_bits: int) -> None:
        self.name = name
        self.geometry = geometry
        self.phys_addr_bits = phys_addr_bits
        self.offset_bits = geometry.offset_bits
        self.index_bits = geometry.index_bits
        self.index_mask = geometry.num_sets - 1
        self.line_bytes = geometry.line_bytes
        self.ways = geometry.ways
        # address-tag width (without valid/dirty metadata bits)
        self.addr_tag_bits = (phys_addr_bits - self.index_bits
                              - self.offset_bits)
        self.tag_entry_bits = self.addr_tag_bits + 2  # + valid + dirty
        self.lines: dict[tuple[int, int], CacheLine] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0
        # XOR of line_hash over resident lines; every mutation of the
        # line store (or a line's tag/valid/dirty/data) toggles the old
        # and new contributions, keeping the digest O(1) to read. LRU
        # stamps are deliberately excluded (replacement recency is
        # timing state, not value state).
        self.digest_acc = 0

    # ------------------------------------------------------------- metrics

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate; 1.0 before the first access (never missed)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    # -------------------------------------------------------------- digest

    def line_hash(self, index: int, line: CacheLine) -> int:
        """Digest contribution of one resident line (stamp excluded).

        Keyed by set index rather than way: two states holding the same
        lines in permuted ways are behaviorally equivalent, and the
        canonical digest lets them converge.
        """
        key = ((line.tag * (self.index_mask + 1) + index) << 2
               | (2 if line.valid else 0) | (1 if line.dirty else 0))
        return mix64(key, crc32(line.data))

    def acc_toggle(self, index: int, line: CacheLine) -> None:
        """XOR one line's contribution in or out of the accumulator."""
        self.digest_acc ^= self.line_hash(index, line)

    # ------------------------------------------------------------ addressing

    def split(self, addr: int) -> tuple[int, int, int]:
        """(tag, set index, offset) of ``addr``."""
        offset = addr & (self.line_bytes - 1)
        index = (addr >> self.offset_bits) & self.index_mask
        tag = addr >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def line_address(self, tag: int, index: int) -> int:
        return (tag << (self.offset_bits + self.index_bits)) | (
            index << self.offset_bits)

    # -------------------------------------------------------------- lookup

    def lookup(self, addr: int) -> CacheLine | None:
        """Find the resident valid line for ``addr``; None on miss.

        Raises :class:`SimAssertError` when multiple ways match (possible
        only after a tag-array fault).
        """
        index = (addr >> self.offset_bits) & self.index_mask
        tag = addr >> (self.offset_bits + self.index_bits)
        get = self.lines.get
        found: CacheLine | None = None
        for way in range(self.ways):
            line = get((index, way))
            if line is not None and line.valid and line.tag == tag:
                if found is not None:
                    raise SimAssertError(
                        f"{self.name}: duplicate tag match in set {index}")
                found = line
        if found is not None:
            self._clock += 1
            found.stamp = self._clock
            self.hits += 1
        else:
            self.misses += 1
        return found

    def victim_way(self, index: int) -> int:
        """LRU victim way for ``index`` (invalid ways first)."""
        oldest_way = 0
        oldest_stamp = None
        for way in range(self.ways):
            line = self.lines.get((index, way))
            if line is None or not line.valid:
                return way
            if oldest_stamp is None or line.stamp < oldest_stamp:
                oldest_stamp = line.stamp
                oldest_way = way
        return oldest_way

    def evict_for(self, addr: int) -> tuple[int, bytearray] | None:
        """Choose and remove a victim for ``addr``.

        Returns ``(victim_address, victim_data)`` if the victim was valid
        and dirty and must be written back, else None. Raises Assert when
        the victim's reconstructed address lies outside the physical
        address space the downstream level can hold (the flipped-tag
        write-back case).
        """
        _, index, _ = self.split(addr)
        way = self.victim_way(index)
        line = self.lines.pop((index, way), None)
        self._pending_way = (index, way)
        if line is not None:
            self.acc_toggle(index, line)
        if line is None or not line.valid or not line.dirty:
            return None
        victim_addr = self.line_address(line.tag, index)
        return victim_addr, line.data

    def place(self, addr: int, data: bytearray) -> CacheLine:
        """Install ``data`` for ``addr`` into the way freed by
        :meth:`evict_for` (which must be called first)."""
        tag, index, _ = self.split(addr)
        way_key = self._pending_way
        assert way_key[0] == index
        line = CacheLine(tag, data)
        self._clock += 1
        line.stamp = self._clock
        self.lines[way_key] = line
        self.acc_toggle(index, line)
        return line

    def invalidate_all(self) -> None:
        self.lines.clear()
        self.digest_acc = 0

    # ------------------------------------------------------- fault surface

    def data_bit_count(self) -> int:
        return self.geometry.data_bits

    def flip_data_bit(self, bit_index: int) -> bool:
        bits_per_line = self.line_bytes * 8
        line_number, bit = divmod(bit_index, bits_per_line)
        index, way = divmod(line_number, self.ways)
        line = self.lines.get((index, way))
        if line is None:
            return False
        byte_index, bit_in_byte = divmod(bit, 8)
        self.acc_toggle(index, line)
        line.data[byte_index] ^= 1 << bit_in_byte
        self.acc_toggle(index, line)
        return True

    def live_data_bit_count(self) -> int:
        """Bits currently backed by a resident line (occupancy sampling)."""
        return len(self.lines) * self.line_bytes * 8

    def flip_live_data_bit(self, index: int) -> bool:
        bits_per_line = self.line_bytes * 8
        which, bit = divmod(index, bits_per_line)
        key = sorted(self.lines)[which]
        line = self.lines[key]
        byte_index, bit_in_byte = divmod(bit, 8)
        self.acc_toggle(key[0], line)
        line.data[byte_index] ^= 1 << bit_in_byte
        self.acc_toggle(key[0], line)
        return True

    def tag_bit_count(self) -> int:
        return self.geometry.num_lines * self.tag_entry_bits

    def flip_tag_bit(self, bit_index: int) -> bool:
        line_number, bit = divmod(bit_index, self.tag_entry_bits)
        index, way = divmod(line_number, self.ways)
        line = self.lines.get((index, way))
        if line is None:
            return False
        self.acc_toggle(index, line)
        if bit < self.addr_tag_bits:
            line.tag ^= 1 << bit
        elif bit == self.addr_tag_bits:
            line.valid = not line.valid
        else:
            line.dirty = not line.dirty
        self.acc_toggle(index, line)
        return True

    def live_tag_bit_count(self) -> int:
        return len(self.lines) * self.tag_entry_bits

    def flip_live_tag_bit(self, index: int) -> bool:
        which, bit = divmod(index, self.tag_entry_bits)
        key = sorted(self.lines)[which]
        line = self.lines[key]
        self.acc_toggle(key[0], line)
        if bit < self.addr_tag_bits:
            line.tag ^= 1 << bit
        elif bit == self.addr_tag_bits:
            line.valid = not line.valid
        else:
            line.dirty = not line.dirty
        self.acc_toggle(key[0], line)
        return True

    # ------------------------------------------------------------ snapshot

    def get_state(self) -> dict:
        return {
            "lines": {key: (ln.tag, ln.valid, ln.dirty, bytes(ln.data),
                            ln.stamp)
                      for key, ln in self.lines.items()},
            "clock": self._clock, "hits": self.hits, "misses": self.misses,
        }

    def set_state(self, state: dict) -> None:
        self.lines = {}
        self.digest_acc = 0
        for key, (tag, valid, dirty, data, stamp) in state["lines"].items():
            line = CacheLine(tag, bytearray(data))
            line.valid = valid
            line.dirty = dirty
            line.stamp = stamp
            self.lines[key] = line
            self.acc_toggle(key[0], line)
        self._clock = state["clock"]
        self.hits = state["hits"]
        self.misses = state["misses"]


class CacheHierarchy:
    """L1I + L1D backed by a unified L2 backed by main memory."""

    def __init__(self, config: CoreConfig, memory: MainMemory,
                 catalog: FieldCatalog | None = None) -> None:
        self.config = config
        self.memory = memory
        self.l1i = SetAssocCache("l1i", config.l1i, config.phys_addr_bits)
        self.l1d = SetAssocCache("l1d", config.l1d, config.phys_addr_bits)
        self.l2 = SetAssocCache("l2", config.l2, config.phys_addr_bits)
        if catalog is not None:
            for cache in (self.l1i, self.l1d, self.l2):
                catalog.register(LambdaField(
                    f"{cache.name}.data", cache.data_bit_count,
                    cache.flip_data_bit, cache.live_data_bit_count,
                    cache.flip_live_data_bit))
                catalog.register(LambdaField(
                    f"{cache.name}.tag", cache.tag_bit_count,
                    cache.flip_tag_bit, cache.live_tag_bit_count,
                    cache.flip_live_tag_bit))

    # ----------------------------------------------------------- internals

    def _line_addr(self, addr: int, cache: SetAssocCache) -> int:
        return addr & ~(cache.line_bytes - 1)

    def _memory_write_line(self, addr: int, data: bytearray) -> None:
        if addr < 0 or addr + len(data) > self.memory.size:
            raise SimAssertError(
                f"cache write-back outside system map at 0x{addr:x}")
        self.memory.write_bytes(addr, bytes(data))

    def _memory_read_line(self, addr: int, length: int) -> bytearray:
        if addr < 0 or addr + length > self.memory.size:
            raise SimAssertError(
                f"cache fill outside system map at 0x{addr:x}")
        return bytearray(self.memory.read_bytes(addr, length))

    def _l2_get_line(self, addr: int) -> CacheLine:
        """Return the L2 line holding ``addr``, filling from memory."""
        line_addr = self._line_addr(addr, self.l2)
        line = self.l2.lookup(line_addr)
        if line is not None:
            return line
        victim = self.l2.evict_for(line_addr)
        if victim is not None:
            self._memory_write_line(victim[0], victim[1])
        data = self._memory_read_line(line_addr, self.l2.line_bytes)
        return self.l2.place(line_addr, data)

    def _l2_writeback(self, addr: int, data: bytearray) -> None:
        """Accept a dirty line evicted from an L1."""
        line = self._l2_get_line(addr)
        offset = addr - self._line_addr(addr, self.l2)
        index = (addr >> self.l2.offset_bits) & self.l2.index_mask
        self.l2.acc_toggle(index, line)
        line.data[offset:offset + len(data)] = data
        line.dirty = True
        self.l2.acc_toggle(index, line)

    def _l1_get_line(self, l1: SetAssocCache,
                     addr: int) -> tuple[CacheLine, int]:
        """Return (line, latency) for ``addr`` in an L1 cache."""
        line_addr = self._line_addr(addr, l1)
        line = l1.lookup(line_addr)
        if line is not None:
            return line, self.config.l1_hit_latency
        l2_hit_before = self.l2.hits
        victim = l1.evict_for(line_addr)
        if victim is not None:
            self._l2_writeback(victim[0], victim[1])
            self.l2.hits = l2_hit_before  # write-back traffic not a demand hit
        l2_line = self._l2_get_line(line_addr)
        was_l2_hit = self.l2.hits > l2_hit_before
        l2_offset = line_addr - self._line_addr(line_addr, self.l2)
        data = bytearray(l2_line.data[l2_offset:l2_offset + l1.line_bytes])
        new_line = l1.place(line_addr, data)
        latency = (self.config.l2_hit_latency if was_l2_hit
                   else self.config.memory_latency)
        return new_line, latency

    # ------------------------------------------------------------- data side

    def read(self, addr: int, size: int) -> tuple[int, int]:
        """Read ``size`` bytes at ``addr`` through L1D; (value, latency)."""
        line, latency = self._l1_get_line(self.l1d, addr)
        offset = addr & (self.l1d.line_bytes - 1)
        if offset + size > self.l1d.line_bytes:
            # Split access: second half through a second lookup.
            first = self.l1d.line_bytes - offset
            low = int.from_bytes(line.data[offset:offset + first], "little")
            line2, lat2 = self._l1_get_line(self.l1d, addr + first)
            rest = line2.data[0:size - first]
            value = low | int.from_bytes(rest, "little") << (8 * first)
            return value, latency + lat2
        value = int.from_bytes(line.data[offset:offset + size], "little")
        return value, latency

    def write(self, addr: int, value: int, size: int) -> int:
        """Write through L1D (write-back, write-allocate); returns latency."""
        l1d = self.l1d
        line, latency = self._l1_get_line(l1d, addr)
        offset = addr & (l1d.line_bytes - 1)
        index = (addr >> l1d.offset_bits) & l1d.index_mask
        payload = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        if offset + size > l1d.line_bytes:
            first = l1d.line_bytes - offset
            l1d.acc_toggle(index, line)
            line.data[offset:offset + first] = payload[:first]
            line.dirty = True
            l1d.acc_toggle(index, line)
            line2, lat2 = self._l1_get_line(l1d, addr + first)
            index2 = ((addr + first) >> l1d.offset_bits) & l1d.index_mask
            l1d.acc_toggle(index2, line2)
            line2.data[0:size - first] = payload[first:]
            line2.dirty = True
            l1d.acc_toggle(index2, line2)
            return latency + lat2
        l1d.acc_toggle(index, line)
        line.data[offset:offset + size] = payload
        line.dirty = True
        l1d.acc_toggle(index, line)
        return latency

    # ------------------------------------------------------- instruction side

    def fetch_word(self, addr: int) -> tuple[int, int]:
        """Fetch a 32-bit instruction word through L1I; (word, latency)."""
        line, latency = self._l1_get_line(self.l1i, addr)
        offset = addr & (self.l1i.line_bytes - 1)
        word = int.from_bytes(line.data[offset:offset + 4], "little")
        return word, latency

    # ------------------------------------------------------------ snapshot

    def get_state(self) -> dict:
        return {"l1i": self.l1i.get_state(), "l1d": self.l1d.get_state(),
                "l2": self.l2.get_state()}

    def set_state(self, state: dict) -> None:
        self.l1i.set_state(state["l1i"])
        self.l1d.set_state(state["l1d"])
        self.l2.set_state(state["l2"])
