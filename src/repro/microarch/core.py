"""The out-of-order core: fetch, decode, rename, issue, execute, memory,
writeback, and commit, with fault-aware microarchitectural state.

Design notes relevant to fault injection:

* Architectural metadata is deliberately stored **twice**: once privately
  on the :class:`~repro.microarch.uop.MicroOp` and once in the injectable
  hardware structures (ROB/IQ/LQ/SQ entries). The pipeline *acts* on the
  structure copies -- issue uses IQ tags and ready bits, loads use LQ
  addresses and dest tags, stores drain SQ address/data, commit frees the
  ROB's old-phys tag, squash walks restore the ROB's (arch, old-phys)
  pairs -- so injected flips have organic consequences. Where acting on a
  corrupted value would require behaviour real hardware leaves undefined,
  a defensive check raises :class:`~repro.errors.SimAssertError`,
  reproducing the paper's Assert class.
* Exceptions (illegal instructions after L1I flips, memory access faults
  after address corruption, division by zero) are carried to commit and
  raised there, so wrong-path faults squash away silently -- the masking
  mechanism behind much of the measured AVF structure.
"""

from __future__ import annotations

from collections import deque

from ..errors import (
    IllegalInstructionError,
    SimAssertError,
    SimCrashError,
)
from ..isa import registers as arch_regs
from ..isa import semantics
from ..isa.encoding import decode as decode_word
from ..isa.instructions import Format, Opcode
from ..kernel.layout import SystemMap
from ..kernel.syscalls import DataPort, SyscallHandler
from .branch import BranchPredictor
from .caches import CacheHierarchy
from .config import CoreConfig
from .faults import FieldCatalog
from .queues import (
    FLAG_BRANCH,
    FLAG_DONE,
    FLAG_EXCEPTION,
    FLAG_HAS_DEST,
    FLAG_STORE,
    FLAG_SYSCALL,
    IssueQueue,
    LoadQueue,
    PC_FIELD_BITS,
    ReorderBuffer,
    StoreQueue,
)
from .regfile import PhysRegFile
from .uop import MicroOp, uop_digest_into


class CoreStats:
    """Cheap counters accumulated during simulation."""

    __slots__ = ("cycles", "committed", "fetched", "loads", "stores",
                 "branches", "mispredicts", "squashed", "syscalls",
                 "prf_reads", "prf_writes", "rob_occupancy_sum",
                 "iq_occupancy_sum", "samples", "fetch_stall_cycles",
                 "rename_stalls", "commit_stall_cycles")

    def __init__(self) -> None:
        self.cycles = 0
        self.committed = 0
        self.fetched = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.mispredicts = 0
        self.squashed = 0
        self.syscalls = 0
        self.prf_reads = 0
        self.prf_writes = 0
        self.rob_occupancy_sum = 0
        self.iq_occupancy_sum = 0
        self.samples = 0
        self.fetch_stall_cycles = 0
        self.rename_stalls = 0
        self.commit_stall_cycles = 0

    def as_dict(self) -> dict[str, float]:
        out = {name: getattr(self, name) for name in self.__slots__}
        if self.samples:
            out["rob_occupancy_avg"] = self.rob_occupancy_sum / self.samples
            out["iq_occupancy_avg"] = self.iq_occupancy_sum / self.samples
        if self.cycles:
            out["ipc"] = self.committed / self.cycles
        return out


class OoOCore:
    """A single out-of-order core wired to a cache hierarchy."""

    def __init__(self, config: CoreConfig, hierarchy: CacheHierarchy,
                 system_map: SystemMap, text_bytes: int,
                 handler: SyscallHandler, kernel_port: DataPort,
                 catalog: FieldCatalog) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.system_map = system_map
        self.text_bytes = text_bytes
        self.handler = handler
        self.kernel_port = kernel_port
        self.xlen = config.xlen
        self.mask = (1 << config.xlen) - 1
        self.word_size = config.word_size

        self.prf = PhysRegFile(config.phys_regs, config.xlen, catalog)
        self.iq = IssueQueue(config, catalog)
        self.lq = LoadQueue(config, catalog)
        self.sq = StoreQueue(config, catalog)
        self.rob = ReorderBuffer(config, catalog)
        self.predictor = BranchPredictor()

        self.fetch_pc = 0
        self.fetch_busy_until = 0
        self.fetch_poisoned = False
        self.fetch_queue: deque[MicroOp] = deque()
        self.decode_queue: deque[MicroOp] = deque()
        self.inflight: list[MicroOp] = []
        # Physical destination tags of renamed-but-uncommitted uops, as a
        # bit vector over physical registers. Write-only metadata for the
        # golden trace (static bit-level pruning needs to know, per cycle,
        # which mapped registers still have their producer in flight); it
        # never feeds back into pipeline behaviour.
        self.inflight_dest_mask = 0
        self.commit_stall_until = 0
        self.next_seq = 0
        self.cycle = 0
        self.stats = CoreStats()
        # Optional observability hook (repro.obs.SimObserver). Not part
        # of snapshots: observers describe a run, not machine state.
        self.obs = None
        self._seq_mask = (1 << config.seq_bits) - 1
        self._pc_mask = (1 << PC_FIELD_BITS) - 1
        # Decode cache keyed by the raw 32-bit word: static programs
        # decode the same words millions of times, and a flipped word is
        # simply a different key, so fault behaviour is unaffected.
        self._decode_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------ API

    def boot(self, entry_pc: int, initial_regs: dict[int, int]) -> None:
        self.fetch_pc = entry_pc
        for arch, value in initial_regs.items():
            self.prf.set_initial(arch, value)

    def step(self) -> None:
        """Advance one cycle."""
        self.cycle += 1
        self.stats.cycles = self.cycle
        self._commit()
        self._writeback()
        self._memory()
        self._issue()
        self._rename()
        self._decode()
        self._fetch()
        if self.cycle & 0xF == 0:
            self.stats.samples += 1
            self.stats.rob_occupancy_sum += self.rob.occupancy
            self.stats.iq_occupancy_sum += self.iq.occupancy
            obs = self.obs
            if obs is not None:
                obs.sample(self)

    # ---------------------------------------------------------------- fetch

    def _fetch(self) -> None:
        if self.cycle < self.fetch_busy_until or self.fetch_poisoned:
            self.stats.fetch_stall_cycles += 1
            return
        budget = self.config.fetch_width
        limit = 2 * self.config.fetch_width
        while budget > 0 and len(self.fetch_queue) < limit:
            pc = self.fetch_pc
            uop = MicroOp(self.next_seq, pc, 0)
            try:
                self.system_map.check_fetch(pc, self.text_bytes)
            except SimCrashError as exc:
                uop.exception = exc
                self.next_seq += 1
                self.fetch_queue.append(uop)
                self.fetch_poisoned = True
                return
            word, latency = self.hierarchy.fetch_word(pc)
            uop.raw = word
            uop.predicted_next = self.predictor.predict(pc)
            self.next_seq += 1
            self.fetch_queue.append(uop)
            self.stats.fetched += 1
            self.fetch_pc = uop.predicted_next
            if latency > self.config.l1_hit_latency:
                self.fetch_busy_until = self.cycle + latency
                return
            budget -= 1

    # --------------------------------------------------------------- decode

    def _decode(self) -> None:
        budget = self.config.fetch_width
        limit = 2 * self.config.fetch_width
        while budget > 0 and self.fetch_queue and \
                len(self.decode_queue) < limit:
            uop = self.fetch_queue.popleft()
            budget -= 1
            if uop.exception is None:
                cached = self._decode_cache.get(uop.raw)
                if cached is None:
                    cached = self._predecode(uop.raw)
                    if len(self._decode_cache) < 65536:
                        self._decode_cache[uop.raw] = cached
                instr, is_load, is_store, is_branch, is_syscall, \
                    arch_dest, srcs, mem_size = cached
                if instr is None:
                    uop.illegal = True
                    uop.exception = SimCrashError(
                        f"illegal instruction 0x{uop.raw:08x} "
                        f"at pc=0x{uop.pc:x}")
                else:
                    uop.instr = instr
                    uop.is_load = is_load
                    uop.is_store = is_store
                    uop.is_branch = is_branch
                    uop.is_syscall = is_syscall
                    uop.arch_dest = arch_dest
                    uop.arch_srcs = srcs
                    uop.mem_size = mem_size
            if uop.instr is not None:
                if uop.instr.format is Format.J:
                    # Direct jumps resolve at decode: redirect early.
                    target = (uop.pc + 4 * uop.instr.imm) & self._pc_mask
                    uop.actual_next = target
                    if uop.predicted_next != target:
                        uop.predicted_next = target
                        self.fetch_queue.clear()
                        self.fetch_pc = target
                        self.fetch_busy_until = max(self.fetch_busy_until,
                                                    self.cycle + 1)
                        self.predictor.update(uop.pc, True, target,
                                              is_cond=False)
            self.decode_queue.append(uop)

    def _predecode(self, raw: int) -> tuple:
        """Decode + classify a raw word once; cached by word value."""
        try:
            instr = decode_word(raw)
        except IllegalInstructionError:
            return (None, False, False, False, False, None, (), 0)
        srcs = ((arch_regs.RETURN_REG,) if instr.is_syscall
                else instr.src_regs())
        mem_size = 1 if instr.opcode in (Opcode.LDRB, Opcode.STRB) \
            else self.word_size
        return (instr, instr.is_load, instr.is_store, instr.is_control,
                instr.is_syscall, instr.dest_reg(), srcs, mem_size)

    # --------------------------------------------------------------- rename

    def _rename(self) -> None:
        budget = self.config.fetch_width
        while budget > 0 and self.decode_queue:
            uop = self.decode_queue[0]
            if not self.rob.has_space():
                self.stats.rename_stalls += 1
                return
            if uop.instr is None:
                # Fetch fault or illegal instruction: occupies only a ROB
                # slot and is complete the moment it is dispatched.
                uop.rob_index = self.rob.allocate(uop)
                entry = self.rob.entries[uop.rob_index]
                entry.set_flag(FLAG_DONE)
                entry.set_flag(FLAG_EXCEPTION)
                uop.done = True
                self.decode_queue.popleft()
                budget -= 1
                continue
            if not self.iq.has_space():
                self.stats.rename_stalls += 1
                return
            if uop.is_load and not self.lq.has_space():
                self.stats.rename_stalls += 1
                return
            if uop.is_store and not self.sq.has_space():
                self.stats.rename_stalls += 1
                return
            if uop.arch_dest is not None and self.prf.free_count == 0:
                self.stats.rename_stalls += 1
                return
            srcs = uop.arch_srcs
            src_tags = [self.prf.lookup(r) for r in srcs]
            src_ready = [self.prf.ready[t] for t in src_tags]
            uop.src_tags = src_tags
            if uop.arch_dest is not None:
                new_phys = self.prf.allocate()
                uop.phys_dest = new_phys
                uop.old_phys_dest = self.prf.remap(uop.arch_dest, new_phys)
                self.inflight_dest_mask |= 1 << new_phys
            uop.rob_index = self.rob.allocate(uop)
            if uop.is_load:
                uop.lq_index = self.lq.insert(uop)
                lq_entry = self.lq.entries[uop.lq_index]
                lq_entry.dest_tag = uop.phys_dest or 0
                lq_entry.size = uop.mem_size
            if uop.is_store:
                uop.sq_index = self.sq.insert(uop)
                self.sq.entries[uop.sq_index].size = uop.mem_size
            self.iq.insert(uop, src_tags, src_ready, uop.phys_dest)
            self.decode_queue.popleft()
            budget -= 1

    # ---------------------------------------------------------------- issue

    def _issue(self) -> None:
        budget = self.config.execute_width
        for entry in self.iq.ready_entries():
            if budget == 0:
                break
            uop = entry.uop
            assert uop is not None
            a = b = 0
            if entry.uses_src1:
                a = self.prf.read(entry.src1_tag, "issue operand")
                self.stats.prf_reads += 1
            if entry.uses_src2:
                b = self.prf.read(entry.src2_tag, "issue operand")
                self.stats.prf_reads += 1
            uop.wb_tag = entry.dst_tag if uop.arch_dest is not None else None
            self.iq.release(entry)
            uop.issued = True
            self._execute(uop, a, b)
            budget -= 1

    def _execute(self, uop: MicroOp, a: int, b: int) -> None:
        instr = uop.instr
        assert instr is not None
        fmt = instr.format
        latency = self.config.exec_latency.get(instr.exec_class, 1)
        try:
            if fmt is Format.R:
                uop.result = semantics.alu(instr.opcode, a, b, self.xlen)
            elif fmt is Format.I:
                imm = instr.imm & self.mask
                uop.result = semantics.alu(instr.opcode, a, imm, self.xlen)
            elif fmt is Format.LI:
                uop.result = semantics.mov_result(instr, a, self.xlen)
            elif fmt is Format.LOAD:
                addr = (a + instr.imm) & self.mask
                lq_entry = self.lq.entries[uop.lq_index]
                if not lq_entry.valid or lq_entry.seq != uop.seq:
                    raise SimAssertError("load queue entry mismatch")
                lq_entry.addr = addr
                lq_entry.addr_known = True
                uop.finish_at = None  # completed by the memory stage
                return
            elif fmt is Format.STORE:
                addr = (a + instr.imm) & self.mask
                sq_entry = self.sq.entries[uop.sq_index]
                if not sq_entry.valid or sq_entry.seq != uop.seq:
                    raise SimAssertError("store queue entry mismatch")
                sq_entry.addr = addr
                sq_entry.data = b & self.mask
                sq_entry.addr_known = True
                sq_entry.ready = True
            elif fmt is Format.BC:
                taken = semantics.branch_taken(instr.opcode, a, b, self.xlen)
                uop.actual_next = (uop.pc + 4 * instr.imm if taken
                                   else uop.pc + 4) & self._pc_mask
            elif fmt is Format.J:
                # resolved at decode; BL writes the link register
                if instr.opcode is Opcode.BL:
                    uop.result = (uop.pc + 4) & self.mask
            elif fmt is Format.JR:
                uop.actual_next = a & self._pc_mask
            elif instr.opcode is Opcode.SVC:
                uop.syscall_arg = a
            # NOP: nothing
        except SimCrashError as exc:
            uop.exception = exc
        uop.finish_at = self.cycle + latency
        self.inflight.append(uop)

    # --------------------------------------------------------------- memory

    def _memory(self) -> None:
        lq_entries = self.lq.entries
        m = self.lq.valid_mask
        entries = []
        while m:
            low = m & -m
            m ^= low
            e = lq_entries[low.bit_length() - 1]
            if e.addr_known and not e.accessed:
                entries.append(e)
        if not entries:
            return
        entries.sort(key=lambda e: e.seq)
        port_budget = 1
        for entry in entries:
            if port_budget == 0:
                break
            uop = entry.uop
            assert uop is not None
            older = self.sq.older_stores(entry.seq)
            if any(not st.addr_known for st in older):
                continue
            forwarded = None
            blocked = False
            lo, hi = entry.addr, entry.addr + entry.size
            for st in older:  # youngest first
                st_lo, st_hi = st.addr, st.addr + st.size
                if st_hi <= lo or st_lo >= hi:
                    continue
                if st_lo <= lo and st_hi >= hi and st.ready:
                    offset = lo - st_lo
                    forwarded = (st.data >> (8 * offset)) & (
                        (1 << (8 * entry.size)) - 1)
                else:
                    blocked = True
                break
            if blocked:
                continue
            if forwarded is not None:
                uop.result = forwarded
                uop.finish_at = self.cycle + 1
            else:
                try:
                    self.system_map.check_data_access(
                        entry.addr, entry.size, store=False)
                    value, latency = self.hierarchy.read(entry.addr,
                                                         entry.size)
                    uop.result = value
                    uop.finish_at = self.cycle + latency
                except SimCrashError as exc:
                    uop.exception = exc
                    uop.finish_at = self.cycle + 1
            entry.accessed = True
            self.stats.loads += 1
            self.inflight.append(uop)
            port_budget -= 1

    # ------------------------------------------------------------ writeback

    def _writeback(self) -> None:
        finished = sorted(
            (u for u in self.inflight
             if u.finish_at is not None and u.finish_at <= self.cycle),
            key=lambda u: (u.finish_at, u.seq))
        budget = self.config.writeback_width
        for uop in finished:
            if budget == 0:
                break
            if uop.squashed:
                # A squash earlier in this very cycle may already have
                # dropped the uop from the in-flight list.
                if uop in self.inflight:
                    self.inflight.remove(uop)
                continue
            self.inflight.remove(uop)
            budget -= 1
            entry = self.rob.entries[uop.rob_index]
            if entry.uop is not uop:
                raise SimAssertError("reorder buffer entry mismatch "
                                     "at writeback")
            if uop.exception is not None:
                entry.set_flag(FLAG_EXCEPTION)
                entry.set_flag(FLAG_DONE)
                uop.done = True
                continue
            if uop.is_load:
                lq_entry = self.lq.entries[uop.lq_index]
                tag = lq_entry.dest_tag
                if uop.arch_dest is not None:
                    self.prf.write(tag, uop.result or 0, "load writeback")
                    self.stats.prf_writes += 1
                    self.iq.wakeup(tag)
            elif uop.wb_tag is not None:
                self.prf.write(uop.wb_tag, uop.result or 0, "writeback")
                self.stats.prf_writes += 1
                self.iq.wakeup(uop.wb_tag)
            entry.set_flag(FLAG_DONE)
            uop.done = True
            if uop.is_branch:
                self._resolve_branch(uop)

    def _resolve_branch(self, uop: MicroOp) -> None:
        instr = uop.instr
        assert instr is not None and uop.actual_next is not None
        self.stats.branches += 1
        is_cond = instr.is_cond_branch
        taken = uop.actual_next != (uop.pc + 4) & self._pc_mask
        self.predictor.update(uop.pc, taken, uop.actual_next, is_cond)
        if uop.actual_next != uop.predicted_next:
            self.stats.mispredicts += 1
            self.predictor.mispredicts += 1
            self._squash_after(uop)

    def _squash_after(self, uop: MicroOp) -> None:
        """Flush everything younger than ``uop`` and redirect fetch."""
        boundary = uop.seq
        while self.rob.count:
            tail_entry = next(self.rob.walk_from_tail())
            victim = tail_entry.uop
            assert victim is not None
            if victim.seq <= boundary:
                break
            victim.squashed = True
            self.stats.squashed += 1
            if victim.phys_dest is not None:
                self.inflight_dest_mask &= ~(1 << victim.phys_dest)
            if tail_entry.flag(FLAG_HAS_DEST):
                self.prf.remap(tail_entry.arch_dest, tail_entry.old_phys,
                               "squash")
                self.prf.free(tail_entry.new_phys, "squash")
            self.rob.pop_tail()
        self.iq.squash_younger(boundary)
        self.lq.squash_younger(boundary)
        self.sq.squash_younger(boundary)
        self.inflight = [u for u in self.inflight if u.seq <= boundary]
        for queued in list(self.fetch_queue) + list(self.decode_queue):
            queued.squashed = True
        self.fetch_queue.clear()
        self.decode_queue.clear()
        self.fetch_poisoned = False
        assert uop.actual_next is not None
        self.fetch_pc = uop.actual_next
        self.fetch_busy_until = self.cycle + self.config.mispredict_penalty

    # --------------------------------------------------------------- commit

    def _commit(self) -> None:
        if self.cycle < self.commit_stall_until:
            self.stats.commit_stall_cycles += 1
            return
        budget = self.config.writeback_width
        while budget > 0:
            entry = self.rob.head_entry()
            if entry is None:
                return
            uop = entry.uop
            assert uop is not None
            if not entry.flag(FLAG_DONE):
                return
            if entry.seq != (uop.seq & self._seq_mask):
                raise SimAssertError(
                    f"ROB seq field mismatch at commit "
                    f"({entry.seq} != {uop.seq & self._seq_mask})")
            if entry.pc != (uop.pc & self._pc_mask):
                raise SimAssertError("ROB pc field mismatch at commit")
            if entry.flag(FLAG_EXCEPTION):
                if uop.exception is not None:
                    raise uop.exception
                raise SimAssertError("spurious exception flag at commit")
            if uop.exception is not None:
                raise SimAssertError("lost exception flag at commit")
            if entry.flag(FLAG_STORE) != uop.is_store:
                raise SimAssertError("ROB store flag mismatch at commit")
            if entry.flag(FLAG_SYSCALL) != uop.is_syscall:
                raise SimAssertError("ROB syscall flag mismatch at commit")
            if entry.flag(FLAG_BRANCH) != uop.is_branch:
                raise SimAssertError("ROB branch flag mismatch at commit")
            if uop.is_store:
                sq_entry = self.sq.pop_head(uop.seq)
                if not sq_entry.ready:
                    raise SimAssertError(
                        "commit of store with incomplete store-queue entry")
                self.system_map.check_data_access(
                    sq_entry.addr, sq_entry.size, store=True)
                self.hierarchy.write(sq_entry.addr, sq_entry.data,
                                     sq_entry.size)
                self.stats.stores += 1
            if uop.is_load:
                self.lq.release(uop.lq_index, uop.seq)
            if uop.is_syscall:
                assert uop.instr is not None
                self.stats.syscalls += 1
                self.handler.handle(uop.instr.imm, uop.syscall_arg,
                                    self.kernel_port)
                self.commit_stall_until = (self.cycle
                                           + self.config.syscall_overhead)
                budget = 1  # serialize: nothing else commits this cycle
            if entry.flag(FLAG_HAS_DEST):
                if not 0 <= entry.arch_dest < arch_regs.NUM_REGS:
                    raise SimAssertError(
                        "ROB architectural destination out of range")
                self.prf.free(entry.old_phys, "commit")
            if uop.phys_dest is not None:
                self.inflight_dest_mask &= ~(1 << uop.phys_dest)
            self.rob.pop_head()
            self.stats.committed += 1
            budget -= 1

    # ------------------------------------------------------- observability

    def next_commit_pc(self) -> int:
        """PC of the oldest uncommitted instruction.

        Falls through ROB head -> decode queue -> fetch queue ->
        ``fetch_pc``. The oldest uncommitted uop is always correct-path:
        commit is in order, and any mispredicted branch older than it
        would have resolved (and squashed the wrong path) before the uop
        could become oldest. This is the architectural "program counter"
        the static propagation analysis is queried at when a fault is
        injected between cycles.
        """
        entry = self.rob.head_entry()
        if entry is not None and entry.uop is not None:
            return entry.uop.pc
        if self.decode_queue:
            return self.decode_queue[0].pc
        if self.fetch_queue:
            return self.fetch_queue[0].pc
        return self.fetch_pc

    # -------------------------------------------------------------- digest

    def digest_values(self) -> list:
        """Canonical int stream of the core's architectural value state.

        Feeds :meth:`repro.microarch.simulator.Simulator.state_digest`.
        Everything that can influence *future committed behaviour* is
        present; pure timing/speculation state (branch predictor, LRU
        stamps, stats, decode cache) is deliberately excluded, and
        cycle-anchored fields (busy/stall deadlines, in-flight finish
        times, sequence numbers) are stored relative to the current
        cycle / ``next_seq`` so the digest is comparable across runs
        whose absolute clocks and fetch counts have drifted.
        """
        base = self.next_seq
        cycle = self.cycle
        prf = self.prf
        out = [
            self.fetch_pc,
            1 if self.fetch_poisoned else 0,
            max(0, self.fetch_busy_until - cycle),
            max(0, self.commit_stall_until - cycle),
            prf.digest_acc, prf.alloc_mask, prf.ready_mask,
        ]
        out.extend(prf.rename_map)
        out.append(len(prf.free_list))
        out.extend(prf.free_list)
        self.iq.digest_into(out, base)
        self.lq.digest_into(out, base)
        self.sq.digest_into(out, base)
        self.rob.digest_into(out, base)
        out.append(len(self.fetch_queue))
        for u in self.fetch_queue:
            uop_digest_into(out, u, base)
        out.append(len(self.decode_queue))
        for u in self.decode_queue:
            uop_digest_into(out, u, base)
        # In-flight uops are all ROB residents, so their values are
        # already digested above; membership and (relative) completion
        # time are the only extra state.
        rows = sorted(
            (base - u.seq,
             0 if u.finish_at is None
             else max(0, u.finish_at - cycle) + 1)
            for u in self.inflight)
        out.append(len(rows))
        for row in rows:
            out.extend(row)
        return out

    # ------------------------------------------------------------ snapshot

    def get_state(self) -> dict:
        return {
            "prf": self.prf.get_state(),
            "iq": self.iq.get_state(),
            "lq": self.lq.get_state(),
            "sq": self.sq.get_state(),
            "rob": self.rob.get_state(),
            "predictor": self.predictor.get_state(),
            "fetch_pc": self.fetch_pc,
            "fetch_busy_until": self.fetch_busy_until,
            "fetch_poisoned": self.fetch_poisoned,
            "fetch_queue": list(self.fetch_queue),
            "decode_queue": list(self.decode_queue),
            "inflight": list(self.inflight),
            "commit_stall_until": self.commit_stall_until,
            "next_seq": self.next_seq,
            "cycle": self.cycle,
            "stats": {name: getattr(self.stats, name)
                      for name in CoreStats.__slots__},
        }

    def set_state(self, state: dict) -> None:
        self.prf.set_state(state["prf"])
        self.iq.set_state(state["iq"])
        self.lq.set_state(state["lq"])
        self.sq.set_state(state["sq"])
        self.rob.set_state(state["rob"])
        self.predictor.set_state(state["predictor"])
        self.fetch_pc = state["fetch_pc"]
        self.fetch_busy_until = state["fetch_busy_until"]
        self.fetch_poisoned = state["fetch_poisoned"]
        self.fetch_queue = deque(state["fetch_queue"])
        self.decode_queue = deque(state["decode_queue"])
        self.inflight = list(state["inflight"])
        self.commit_stall_until = state["commit_stall_until"]
        self.next_seq = state["next_seq"]
        self.cycle = state["cycle"]
        # Derived from ROB residency, so recompute instead of storing:
        # snapshots written before the mask existed restore identically.
        mask = 0
        for entry in self.rob.walk_from_tail():
            uop = entry.uop
            if uop is not None and uop.phys_dest is not None:
                mask |= 1 << uop.phys_dest
        self.inflight_dest_mask = mask
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
