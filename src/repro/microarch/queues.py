"""Pipeline queue structures: issue queue, load/store queues, reorder
buffer -- each with fixed storage geometry and an injectable fault
surface.

Entries are fixed-slot objects with a ``valid`` flag. Flips address a
(slot, field-bit) pair; a flip into an invalid slot is masked (the slot's
payload is rewritten on allocation). Payload layouts:

* IQ source field: ``[src1 tag | src1 ready | src2 tag | src2 ready]``
* IQ dest field:   ``[dst tag]``
* LQ entry:        ``[address (xlen) | dest phys tag]``
* SQ entry:        ``[address (xlen) | data (xlen)]``
* ROB pc field:    32 bits
* ROB dest field:  ``[arch reg (6) | new phys tag | old phys tag]``
* ROB flags field: ``[done | is_store | is_syscall | exception | has_dest
  | is_branch]``
* ROB seq field:   16 bits
"""

from __future__ import annotations

from ..errors import SimAssertError
from .config import CoreConfig
from .faults import FieldCatalog, LambdaField
from .uop import MicroOp, exception_digest


# --------------------------------------------------------------------- IQ

class IQEntry:
    __slots__ = ("index", "valid", "seq", "uop", "src1_tag", "src1_ready",
                 "src2_tag", "src2_ready", "dst_tag", "uses_src1",
                 "uses_src2")

    def __init__(self, index: int = 0) -> None:
        self.index = index
        self.valid = False
        self.seq = 0
        self.uop: MicroOp | None = None
        self.src1_tag = 0
        self.src1_ready = True
        self.src2_tag = 0
        self.src2_ready = True
        self.dst_tag = 0
        self.uses_src1 = False
        self.uses_src2 = False


class IssueQueue:
    """Out-of-order scheduler window."""

    def __init__(self, config: CoreConfig,
                 catalog: FieldCatalog | None = None) -> None:
        self.size = config.iq_entries
        self.tag_bits = config.phys_tag_bits
        self.tag_mask = (1 << self.tag_bits) - 1
        self.entries = [IQEntry(i) for i in range(self.size)]
        self.valid_mask = 0
        self.full_mask = (1 << self.size) - 1
        if catalog is not None:
            catalog.register(LambdaField(
                "iq.src", self.src_bit_count, self.flip_src_bit,
                self.live_src_bit_count, self.flip_live_src_bit))
            catalog.register(LambdaField(
                "iq.dst", self.dst_bit_count, self.flip_dst_bit,
                self.live_dst_bit_count, self.flip_live_dst_bit))

    @property
    def occupancy(self) -> int:
        return self.valid_mask.bit_count()

    def has_space(self) -> bool:
        return self.valid_mask != self.full_mask

    def insert(self, uop: MicroOp, src_tags: list[int],
               src_ready: list[bool], dst_tag: int | None) -> None:
        free = self.valid_mask ^ self.full_mask
        if not free:
            raise SimAssertError("issue queue overflow")
        low = free & -free
        entry = self.entries[low.bit_length() - 1]
        entry.valid = True
        entry.seq = uop.seq
        entry.uop = uop
        entry.uses_src1 = len(src_tags) > 0
        entry.uses_src2 = len(src_tags) > 1
        entry.src1_tag = src_tags[0] if entry.uses_src1 else 0
        entry.src1_ready = src_ready[0] if entry.uses_src1 else True
        entry.src2_tag = src_tags[1] if entry.uses_src2 else 0
        entry.src2_ready = src_ready[1] if entry.uses_src2 else True
        entry.dst_tag = dst_tag if dst_tag is not None else 0
        self.valid_mask |= low

    def wakeup(self, tag: int) -> None:
        """Broadcast a completed physical tag to waiting entries."""
        entries = self.entries
        m = self.valid_mask
        while m:
            low = m & -m
            m ^= low
            entry = entries[low.bit_length() - 1]
            if entry.src1_tag == tag:
                entry.src1_ready = True
            if entry.src2_tag == tag:
                entry.src2_ready = True

    def ready_entries(self) -> list[IQEntry]:
        """Ready entries, oldest first."""
        entries = self.entries
        ready = []
        m = self.valid_mask
        while m:
            low = m & -m
            m ^= low
            entry = entries[low.bit_length() - 1]
            if entry.src1_ready and entry.src2_ready:
                ready.append(entry)
        ready.sort(key=lambda e: e.seq)
        return ready

    def release(self, entry: IQEntry) -> None:
        entry.valid = False
        entry.uop = None
        self.valid_mask &= ~(1 << entry.index)

    def squash_younger(self, seq: int) -> None:
        entries = self.entries
        m = self.valid_mask
        while m:
            low = m & -m
            m ^= low
            entry = entries[low.bit_length() - 1]
            if entry.seq > seq:
                entry.valid = False
                entry.uop = None
                self.valid_mask ^= low

    def digest_into(self, out: list, base: int) -> None:
        """Append the IQ's canonical value state to ``out``.

        Sequence numbers are recorded relative to ``base`` so the digest
        is invariant to absolute seq numbering (see ``uop_digest_into``).
        """
        entries = self.entries
        m = self.valid_mask
        out.append(m)
        while m:
            low = m & -m
            m ^= low
            e = entries[low.bit_length() - 1]
            out.extend((
                base - e.seq, e.src1_tag, 1 if e.src1_ready else 0,
                e.src2_tag, 1 if e.src2_ready else 0, e.dst_tag,
                (1 if e.uses_src1 else 0) | (2 if e.uses_src2 else 0),
            ))

    # ------------------------------------------------------- fault surface

    def src_bit_count(self) -> int:
        return self.size * 2 * (self.tag_bits + 1)

    def flip_src_bit(self, index: int) -> bool:
        per_entry = 2 * (self.tag_bits + 1)
        slot, bit = divmod(index, per_entry)
        entry = self.entries[slot]
        if not entry.valid:
            return False
        which, field_bit = divmod(bit, self.tag_bits + 1)
        if which == 0:
            if field_bit < self.tag_bits:
                entry.src1_tag ^= 1 << field_bit
            else:
                entry.src1_ready = not entry.src1_ready
        else:
            if field_bit < self.tag_bits:
                entry.src2_tag ^= 1 << field_bit
            else:
                entry.src2_ready = not entry.src2_ready
        return True

    def dst_bit_count(self) -> int:
        return self.size * self.tag_bits

    def flip_dst_bit(self, index: int) -> bool:
        slot, bit = divmod(index, self.tag_bits)
        entry = self.entries[slot]
        if not entry.valid:
            return False
        entry.dst_tag ^= 1 << bit
        return True

    def _valid_slots(self) -> list[int]:
        out = []
        m = self.valid_mask
        while m:
            low = m & -m
            m ^= low
            out.append(low.bit_length() - 1)
        return out

    def live_src_bit_count(self) -> int:
        return self.valid_mask.bit_count() * 2 * (self.tag_bits + 1)

    def flip_live_src_bit(self, index: int) -> bool:
        per_entry = 2 * (self.tag_bits + 1)
        which, bit = divmod(index, per_entry)
        slot = self._valid_slots()[which]
        return self.flip_src_bit(slot * per_entry + bit)

    def live_dst_bit_count(self) -> int:
        return self.valid_mask.bit_count() * self.tag_bits

    def flip_live_dst_bit(self, index: int) -> bool:
        which, bit = divmod(index, self.tag_bits)
        slot = self._valid_slots()[which]
        return self.flip_dst_bit(slot * self.tag_bits + bit)

    # ------------------------------------------------------------ snapshot

    def get_state(self) -> list[tuple]:
        return [(e.valid, e.seq, e.src1_tag, e.src1_ready, e.src2_tag,
                 e.src2_ready, e.dst_tag, e.uses_src1, e.uses_src2, e.uop)
                for e in self.entries]

    def set_state(self, state: list[tuple]) -> None:
        mask = 0
        for entry, row in zip(self.entries, state):
            (entry.valid, entry.seq, entry.src1_tag, entry.src1_ready,
             entry.src2_tag, entry.src2_ready, entry.dst_tag,
             entry.uses_src1, entry.uses_src2, entry.uop) = row
            if entry.valid:
                mask |= 1 << entry.index
        self.valid_mask = mask


# ------------------------------------------------------------------ LQ/SQ

class LQEntry:
    __slots__ = ("valid", "seq", "uop", "addr", "addr_known", "dest_tag",
                 "size", "accessed")

    def __init__(self) -> None:
        self.valid = False
        self.seq = 0
        self.uop: MicroOp | None = None
        self.addr = 0
        self.addr_known = False
        self.dest_tag = 0
        self.size = 0
        self.accessed = False


class LoadQueue:
    """In-order load tracking; entry payload = address | dest tag."""

    def __init__(self, config: CoreConfig,
                 catalog: FieldCatalog | None = None) -> None:
        self.size = config.lq_entries
        self.xlen = config.xlen
        self.tag_bits = config.phys_tag_bits
        self.entries = [LQEntry() for _ in range(self.size)]
        self.valid_mask = 0
        self.full_mask = (1 << self.size) - 1
        if catalog is not None:
            catalog.register(LambdaField("lq", self.bit_count,
                                         self.flip_bit,
                                         self.live_bit_count,
                                         self.flip_live_bit))

    @property
    def occupancy(self) -> int:
        return self.valid_mask.bit_count()

    def has_space(self) -> bool:
        return self.valid_mask != self.full_mask

    def insert(self, uop: MicroOp) -> int:
        free = self.valid_mask ^ self.full_mask
        if not free:
            raise SimAssertError("load queue overflow")
        low = free & -free
        index = low.bit_length() - 1
        entry = self.entries[index]
        entry.valid = True
        entry.seq = uop.seq
        entry.uop = uop
        entry.addr = 0
        entry.addr_known = False
        entry.dest_tag = 0
        entry.size = 0
        entry.accessed = False
        self.valid_mask |= low
        return index

    def release(self, index: int, seq: int) -> None:
        entry = self.entries[index]
        if not entry.valid or entry.seq != seq:
            raise SimAssertError("load queue release mismatch")
        entry.valid = False
        entry.uop = None
        self.valid_mask &= ~(1 << index)

    def squash_younger(self, seq: int) -> None:
        entries = self.entries
        m = self.valid_mask
        while m:
            low = m & -m
            m ^= low
            entry = entries[low.bit_length() - 1]
            if entry.seq > seq:
                entry.valid = False
                entry.uop = None
                self.valid_mask ^= low

    def digest_into(self, out: list, base: int) -> None:
        """Append the LQ's canonical value state to ``out``."""
        entries = self.entries
        m = self.valid_mask
        out.append(m)
        while m:
            low = m & -m
            m ^= low
            e = entries[low.bit_length() - 1]
            out.extend((
                base - e.seq, e.addr, 1 if e.addr_known else 0,
                e.dest_tag, e.size, 1 if e.accessed else 0,
            ))

    def bit_count(self) -> int:
        return self.size * (self.xlen + self.tag_bits)

    def flip_bit(self, index: int) -> bool:
        per_entry = self.xlen + self.tag_bits
        slot, bit = divmod(index, per_entry)
        entry = self.entries[slot]
        if not entry.valid:
            return False
        if bit < self.xlen:
            entry.addr ^= 1 << bit
        else:
            entry.dest_tag ^= 1 << (bit - self.xlen)
        return True

    def live_bit_count(self) -> int:
        per_entry = self.xlen + self.tag_bits
        return self.valid_mask.bit_count() * per_entry

    def flip_live_bit(self, index: int) -> bool:
        per_entry = self.xlen + self.tag_bits
        which, bit = divmod(index, per_entry)
        slots = [i for i, e in enumerate(self.entries) if e.valid]
        return self.flip_bit(slots[which] * per_entry + bit)

    def get_state(self) -> list[tuple]:
        return [(e.valid, e.seq, e.addr, e.addr_known, e.dest_tag, e.size,
                 e.accessed, e.uop) for e in self.entries]

    def set_state(self, state: list[tuple]) -> None:
        mask = 0
        for index, (entry, row) in enumerate(zip(self.entries, state)):
            (entry.valid, entry.seq, entry.addr, entry.addr_known,
             entry.dest_tag, entry.size, entry.accessed, entry.uop) = row
            if entry.valid:
                mask |= 1 << index
        self.valid_mask = mask


class SQEntry:
    __slots__ = ("valid", "seq", "uop", "addr", "addr_known", "data",
                 "size", "ready")

    def __init__(self) -> None:
        self.valid = False
        self.seq = 0
        self.uop: MicroOp | None = None
        self.addr = 0
        self.addr_known = False
        self.data = 0
        self.size = 0
        self.ready = False


class StoreQueue:
    """In-order store buffer; entry payload = address | data.

    Kept as a circular FIFO so commit drains in program order.
    """

    def __init__(self, config: CoreConfig,
                 catalog: FieldCatalog | None = None) -> None:
        self.size = config.sq_entries
        self.xlen = config.xlen
        self.mask = (1 << config.xlen) - 1
        self.entries = [SQEntry() for _ in range(self.size)]
        self.head = 0
        self.tail = 0
        self.count = 0
        if catalog is not None:
            catalog.register(LambdaField("sq", self.bit_count,
                                         self.flip_bit,
                                         self.live_bit_count,
                                         self.flip_live_bit))

    @property
    def occupancy(self) -> int:
        return self.count

    def has_space(self) -> bool:
        return self.count < self.size

    def insert(self, uop: MicroOp) -> int:
        if self.count >= self.size:
            raise SimAssertError("store queue overflow")
        index = self.tail
        entry = self.entries[index]
        entry.valid = True
        entry.seq = uop.seq
        entry.uop = uop
        entry.addr = 0
        entry.addr_known = False
        entry.data = 0
        entry.size = 0
        entry.ready = False
        self.tail = (self.tail + 1) % self.size
        self.count += 1
        return index

    def pop_head(self, seq: int) -> SQEntry:
        if self.count == 0:
            raise SimAssertError("store queue underflow at commit")
        entry = self.entries[self.head]
        if not entry.valid or entry.seq != seq:
            raise SimAssertError(
                f"store queue head mismatch (head seq {entry.seq}, "
                f"committing {seq})")
        entry.valid = False
        entry.uop = None
        self.head = (self.head + 1) % self.size
        self.count -= 1
        return entry

    def squash_younger(self, seq: int) -> None:
        while self.count:
            last = (self.tail - 1) % self.size
            entry = self.entries[last]
            if entry.valid and entry.seq > seq:
                entry.valid = False
                entry.uop = None
                self.tail = last
                self.count -= 1
            else:
                break

    def digest_into(self, out: list, base: int) -> None:
        """Append the SQ's canonical value state, head-first.

        Rows are walked in FIFO order from ``head`` so the digest is
        invariant to the ring's physical rotation (``head``/``tail`` are
        deliberately excluded -- two runs that drained different numbers
        of wrong-path stores park identical pending stores at different
        physical slots).
        """
        out.append(self.count)
        entries = self.entries
        size = self.size
        index = self.head
        for _ in range(self.count):
            e = entries[index]
            out.extend((
                base - e.seq, e.addr, 1 if e.addr_known else 0,
                e.data, e.size, 1 if e.ready else 0,
            ))
            index += 1
            if index == size:
                index = 0

    def older_stores(self, seq: int) -> list[SQEntry]:
        """Valid entries older than ``seq``, youngest first."""
        out = []
        index = self.head
        for _ in range(self.count):
            entry = self.entries[index]
            if entry.valid and entry.seq < seq:
                out.append(entry)
            index = (index + 1) % self.size
        out.reverse()
        return out

    def bit_count(self) -> int:
        return self.size * 2 * self.xlen

    def flip_bit(self, index: int) -> bool:
        slot, bit = divmod(index, 2 * self.xlen)
        entry = self.entries[slot]
        if not entry.valid:
            return False
        if bit < self.xlen:
            entry.addr ^= 1 << bit
        else:
            entry.data = (entry.data ^ (1 << (bit - self.xlen))) & self.mask
        return True

    def live_bit_count(self) -> int:
        return sum(1 for e in self.entries if e.valid) * 2 * self.xlen

    def flip_live_bit(self, index: int) -> bool:
        per_entry = 2 * self.xlen
        which, bit = divmod(index, per_entry)
        slots = [i for i, e in enumerate(self.entries) if e.valid]
        return self.flip_bit(slots[which] * per_entry + bit)

    def get_state(self) -> dict:
        return {
            "rows": [(e.valid, e.seq, e.addr, e.addr_known, e.data, e.size,
                      e.ready, e.uop) for e in self.entries],
            "head": self.head, "tail": self.tail, "count": self.count,
        }

    def set_state(self, state: dict) -> None:
        for entry, row in zip(self.entries, state["rows"]):
            (entry.valid, entry.seq, entry.addr, entry.addr_known,
             entry.data, entry.size, entry.ready, entry.uop) = row
        self.head = state["head"]
        self.tail = state["tail"]
        self.count = state["count"]


# -------------------------------------------------------------------- ROB

FLAG_DONE = 0
FLAG_STORE = 1
FLAG_SYSCALL = 2
FLAG_EXCEPTION = 3
FLAG_HAS_DEST = 4
FLAG_BRANCH = 5
NUM_FLAGS = 6

PC_FIELD_BITS = 32
ARCH_FIELD_BITS = 6


class ROBEntry:
    __slots__ = ("valid", "seq", "uop", "pc", "arch_dest", "new_phys",
                 "old_phys", "flags")

    def __init__(self) -> None:
        self.valid = False
        self.seq = 0
        self.uop: MicroOp | None = None
        self.pc = 0
        self.arch_dest = 0
        self.new_phys = 0
        self.old_phys = 0
        self.flags = 0

    def flag(self, bit: int) -> bool:
        return bool(self.flags & (1 << bit))

    def set_flag(self, bit: int, value: bool = True) -> None:
        if value:
            self.flags |= 1 << bit
        else:
            self.flags &= ~(1 << bit)


class ReorderBuffer:
    """Circular in-order retirement buffer with four injectable fields."""

    def __init__(self, config: CoreConfig,
                 catalog: FieldCatalog | None = None) -> None:
        self.size = config.rob_entries
        self.tag_bits = config.phys_tag_bits
        self.seq_bits = config.seq_bits
        self.entries = [ROBEntry() for _ in range(self.size)]
        self.head = 0
        self.tail = 0
        self.count = 0
        if catalog is not None:
            catalog.register(LambdaField(
                "rob.pc", self.pc_bit_count, self.flip_pc_bit,
                lambda: self._live_count(PC_FIELD_BITS),
                lambda k: self._flip_live(k, PC_FIELD_BITS,
                                          self.flip_pc_bit)))
            dest_bits = ARCH_FIELD_BITS + 2 * self.tag_bits
            catalog.register(LambdaField(
                "rob.dest", self.dest_bit_count, self.flip_dest_bit,
                lambda: self._live_count(dest_bits),
                lambda k: self._flip_live(k, dest_bits,
                                          self.flip_dest_bit)))
            catalog.register(LambdaField(
                "rob.flags", self.flags_bit_count, self.flip_flags_bit,
                lambda: self._live_count(NUM_FLAGS),
                lambda k: self._flip_live(k, NUM_FLAGS,
                                          self.flip_flags_bit)))
            catalog.register(LambdaField(
                "rob.seq", self.seq_bit_count, self.flip_seq_bit,
                lambda: self._live_count(self.seq_bits),
                lambda k: self._flip_live(k, self.seq_bits,
                                          self.flip_seq_bit)))

    @property
    def occupancy(self) -> int:
        return self.count

    def has_space(self) -> bool:
        return self.count < self.size

    def allocate(self, uop: MicroOp) -> int:
        if self.count >= self.size:
            raise SimAssertError("reorder buffer overflow")
        index = self.tail
        entry = self.entries[index]
        entry.valid = True
        entry.seq = uop.seq & ((1 << self.seq_bits) - 1)
        entry.uop = uop
        entry.pc = uop.pc & ((1 << PC_FIELD_BITS) - 1)
        entry.flags = 0
        if uop.arch_dest is not None:
            entry.set_flag(FLAG_HAS_DEST)
            entry.arch_dest = uop.arch_dest
            entry.new_phys = uop.phys_dest or 0
            entry.old_phys = uop.old_phys_dest or 0
        else:
            entry.arch_dest = 0
            entry.new_phys = 0
            entry.old_phys = 0
        entry.set_flag(FLAG_STORE, uop.is_store)
        entry.set_flag(FLAG_SYSCALL, uop.is_syscall)
        entry.set_flag(FLAG_BRANCH, uop.is_branch)
        self.tail = (self.tail + 1) % self.size
        self.count += 1
        return index

    def head_entry(self) -> ROBEntry | None:
        if self.count == 0:
            return None
        return self.entries[self.head]

    def pop_head(self) -> None:
        entry = self.entries[self.head]
        entry.valid = False
        entry.uop = None
        self.head = (self.head + 1) % self.size
        self.count -= 1

    def walk_from_tail(self):
        """Yield entries youngest-first (for squash walks)."""
        index = (self.tail - 1) % self.size
        for _ in range(self.count):
            yield self.entries[index]
            index = (index - 1) % self.size

    def pop_tail(self) -> None:
        self.tail = (self.tail - 1) % self.size
        entry = self.entries[self.tail]
        entry.valid = False
        entry.uop = None
        self.count -= 1

    def digest_into(self, out: list, base: int) -> None:
        """Append the ROB's canonical value state, head-first.

        Each row combines the in-flight micro-op's private results with
        the entry's injectable copies -- the latter as deltas against the
        micro-op (zero when uncorrupted), so that a corrupted-but-
        matching pair digests differently from a clean pair while seq
        renumbering between runs cancels out.
        """
        out.append(self.count)
        entries = self.entries
        size = self.size
        seq_mask = (1 << self.seq_bits) - 1
        pc_mask = (1 << PC_FIELD_BITS) - 1
        index = self.head
        for _ in range(self.count):
            e = entries[index]
            u = e.uop
            exc = u.exception
            result = u.result
            actual = u.actual_next
            wb_tag = u.wb_tag
            out.extend((
                base - u.seq, u.pc, u.raw, u.predicted_next,
                0 if result is None else result + result + 1,
                0 if actual is None else actual + actual + 1,
                0 if wb_tag is None else wb_tag + wb_tag + 1,
                u.syscall_arg,
                1 if u.done else 0,
                0 if exc is None else exception_digest(exc),
                e.flags,
                (e.seq - u.seq) & seq_mask,
                (e.pc - u.pc) & pc_mask,
                e.arch_dest, e.new_phys, e.old_phys,
            ))
            index += 1
            if index == size:
                index = 0

    # ------------------------------------------------------- fault surface

    def _live_count(self, per_entry: int) -> int:
        return self.count * per_entry

    def _flip_live(self, index: int, per_entry: int, flipper) -> bool:
        which, bit = divmod(index, per_entry)
        slots = [i for i, e in enumerate(self.entries) if e.valid]
        return flipper(slots[which] * per_entry + bit)

    def _entry_field_flip(self, index: int, per_entry: int):
        slot, bit = divmod(index, per_entry)
        entry = self.entries[slot]
        return (entry, bit) if entry.valid else (None, bit)

    def pc_bit_count(self) -> int:
        return self.size * PC_FIELD_BITS

    def flip_pc_bit(self, index: int) -> bool:
        entry, bit = self._entry_field_flip(index, PC_FIELD_BITS)
        if entry is None:
            return False
        entry.pc ^= 1 << bit
        return True

    def dest_bit_count(self) -> int:
        return self.size * (ARCH_FIELD_BITS + 2 * self.tag_bits)

    def flip_dest_bit(self, index: int) -> bool:
        per_entry = ARCH_FIELD_BITS + 2 * self.tag_bits
        entry, bit = self._entry_field_flip(index, per_entry)
        if entry is None:
            return False
        if bit < ARCH_FIELD_BITS:
            entry.arch_dest ^= 1 << bit
        elif bit < ARCH_FIELD_BITS + self.tag_bits:
            entry.new_phys ^= 1 << (bit - ARCH_FIELD_BITS)
        else:
            entry.old_phys ^= 1 << (bit - ARCH_FIELD_BITS - self.tag_bits)
        return True

    def flags_bit_count(self) -> int:
        return self.size * NUM_FLAGS

    def flip_flags_bit(self, index: int) -> bool:
        entry, bit = self._entry_field_flip(index, NUM_FLAGS)
        if entry is None:
            return False
        entry.flags ^= 1 << bit
        return True

    def seq_bit_count(self) -> int:
        return self.size * self.seq_bits

    def flip_seq_bit(self, index: int) -> bool:
        entry, bit = self._entry_field_flip(index, self.seq_bits)
        if entry is None:
            return False
        entry.seq ^= 1 << bit
        return True

    # ------------------------------------------------------------ snapshot

    def get_state(self) -> dict:
        return {
            "rows": [(e.valid, e.seq, e.pc, e.arch_dest, e.new_phys,
                      e.old_phys, e.flags, e.uop) for e in self.entries],
            "head": self.head, "tail": self.tail, "count": self.count,
        }

    def set_state(self, state: dict) -> None:
        for entry, row in zip(self.entries, state["rows"]):
            (entry.valid, entry.seq, entry.pc, entry.arch_dest,
             entry.new_phys, entry.old_phys, entry.flags, entry.uop) = row
        self.head = state["head"]
        self.tail = state["tail"]
        self.count = state["count"]
