"""In-flight micro-op bookkeeping.

A :class:`MicroOp` carries the *simulator's* private knowledge about an
instruction (decoded form, assigned resources, computed results). The
*injectable* copies of architectural metadata live in the hardware
structures (ROB/IQ/LQ/SQ entries); cross-checking those against the
micro-op is how the simulator detects states it cannot adjudicate.
"""

from __future__ import annotations

from zlib import crc32

from ..errors import SimulationError
from ..isa.instructions import Instruction


def exception_digest(exc: BaseException) -> int:
    """Non-zero digest of a pending exception (type, kind, message)."""
    kind = getattr(exc, "kind", "")
    return crc32(f"{type(exc).__name__}|{kind}|{exc}".encode()) + 1


def uop_digest_into(out: list, uop: "MicroOp", base: int) -> None:
    """Append a pre-rename micro-op's value state, seq-translated.

    Sequence numbers are stored relative to ``base`` (the core's
    ``next_seq``), so two runs whose wrong-path fetch counts differ --
    and whose absolute seq numbering is therefore permanently offset --
    still digest equal once their architectural states match. Decoded
    attributes (``instr``, ``is_load``, ...) are pure functions of
    ``raw`` and are not digested separately.
    """
    exc = uop.exception
    actual = uop.actual_next
    out.extend((
        base - uop.seq, uop.pc, uop.raw, uop.predicted_next,
        0 if actual is None else actual + actual + 1,
        1 if uop.illegal else 0,
        0 if exc is None else exception_digest(exc),
    ))


class MicroOp:
    """One instruction in flight."""

    __slots__ = (
        "seq", "pc", "raw", "instr", "illegal", "predicted_next",
        "actual_next", "arch_dest", "arch_srcs", "phys_dest",
        "old_phys_dest",
        "src_tags", "src_imm", "uses_imm", "rob_index", "lq_index",
        "sq_index", "exception", "done", "squashed", "issued",
        "result", "wb_tag", "mem_addr", "mem_size", "store_data",
        "syscall_arg", "finish_at", "is_load", "is_store", "is_branch",
        "is_syscall",
    )

    def __init__(self, seq: int, pc: int, raw: int) -> None:
        self.seq = seq
        self.pc = pc
        self.raw = raw
        self.instr: Instruction | None = None
        self.illegal = False
        self.predicted_next = pc + 4
        self.actual_next: int | None = None
        self.arch_dest: int | None = None
        self.arch_srcs: tuple[int, ...] = ()
        self.phys_dest: int | None = None
        self.old_phys_dest: int | None = None
        self.src_tags: list[int] = []
        self.src_imm: int = 0
        self.uses_imm = False
        self.rob_index: int | None = None
        self.lq_index: int | None = None
        self.sq_index: int | None = None
        self.exception: SimulationError | None = None
        self.done = False
        self.squashed = False
        self.issued = False
        self.result: int | None = None
        self.wb_tag: int | None = None
        self.mem_addr: int | None = None
        self.mem_size: int = 0
        self.store_data: int | None = None
        self.syscall_arg: int = 0
        self.finish_at: int | None = None
        self.is_load = False
        self.is_store = False
        self.is_branch = False
        self.is_syscall = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        what = str(self.instr) if self.instr else f"raw=0x{self.raw:08x}"
        return f"<uop #{self.seq} pc=0x{self.pc:x} {what}>"
