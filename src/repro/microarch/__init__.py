"""Cycle-driven out-of-order microarchitecture simulator.

Two core models reproduce the paper's Table I geometries:
:data:`~repro.microarch.config.CORTEX_A15` (armlet-32) and
:data:`~repro.microarch.config.CORTEX_A72` (armlet-64). The
:class:`~repro.microarch.simulator.Simulator` runs a compiled
:class:`~repro.isa.program.Program` full-system (with the kernel layer)
and exposes the fifteen injectable structure fields through
:class:`~repro.microarch.faults.FieldCatalog`.
"""

from .branch import BranchPredictor
from .caches import CacheHierarchy, SetAssocCache
from .config import CONFIGS, CORTEX_A15, CORTEX_A72, CoreConfig, get_config
from .core import OoOCore
from .faults import ALL_FIELDS, COMPONENT_FIELDS, FieldCatalog
from .regfile import PhysRegFile
from .simulator import SimResult, Simulator

__all__ = [
    "ALL_FIELDS",
    "BranchPredictor",
    "CONFIGS",
    "COMPONENT_FIELDS",
    "CORTEX_A15",
    "CORTEX_A72",
    "CacheHierarchy",
    "CoreConfig",
    "FieldCatalog",
    "OoOCore",
    "PhysRegFile",
    "SetAssocCache",
    "SimResult",
    "Simulator",
    "get_config",
]
