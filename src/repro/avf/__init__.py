"""AVF analytics: weighted AVF (eq. 1), FIT (eq. 2), FPE (eq. 3), ECC,
an ACE-style analytic estimator for pessimism comparisons, a fully
static (simulation-free) per-structure vulnerability bound, and a
bit-level static SDC/DUE predictor calibrated against dynamic
injection."""

from .ace import AceResult, ace_estimate
from .ads import ads, ads_ranking, normalized_ads
from .static_ace import (
    InstructionVulnerability,
    StaticAceResult,
    instruction_report,
    static_ace_estimate,
)
from .static_sdc import (
    CalibrationReport,
    PREDICTED_CLASSES,
    StaticSdcPredictor,
    calibrate_results,
    calibrate_workload,
    calibration_report,
    outcome_group,
)
from .protection import (
    ProtectionPlan,
    fit_contributions,
    plan_protection,
)
from .fit import (
    ECC_L1D_L2,
    ECC_L2_ONLY,
    ECC_NONE,
    ECC_SCHEMES,
    ECCScheme,
    cpu_fit,
    cpu_fit_by_class,
    field_bit_counts,
    structure_fit,
)
from .fpe import (
    DEFAULT_CLOCK_HZ,
    execution_hours,
    failures_per_execution,
    normalized_fpe,
)
from .weighted import BenchmarkAVF, weighted_avf, weighted_class_avf

__all__ = [
    "AceResult",
    "BenchmarkAVF",
    "CalibrationReport",
    "InstructionVulnerability",
    "PREDICTED_CLASSES",
    "StaticAceResult",
    "StaticSdcPredictor",
    "ace_estimate",
    "calibrate_results",
    "calibrate_workload",
    "calibration_report",
    "instruction_report",
    "outcome_group",
    "static_ace_estimate",
    "ads",
    "ads_ranking",
    "normalized_ads",
    "ProtectionPlan",
    "fit_contributions",
    "plan_protection",
    "DEFAULT_CLOCK_HZ",
    "ECCScheme",
    "ECC_L1D_L2",
    "ECC_L2_ONLY",
    "ECC_NONE",
    "ECC_SCHEMES",
    "cpu_fit",
    "cpu_fit_by_class",
    "execution_hours",
    "failures_per_execution",
    "field_bit_counts",
    "normalized_fpe",
    "structure_fit",
    "weighted_avf",
    "weighted_class_avf",
]
