"""Failures per Execution (paper equation 3).

    FPE = FIT x ExecutionTime / 1e9

FPE is the probability-scale expected failure count over one complete
program execution: it rewards optimization levels whose speedup outweighs
their vulnerability increase. The paper reports FPE normalized to O0, so
the clock frequency cancels; we still expose it as a parameter.
"""

from __future__ import annotations

HOURS_PER_SECOND = 1.0 / 3600.0
DEFAULT_CLOCK_HZ = 1.0e9


def execution_hours(cycles: int, clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Wall-clock hours of a run of ``cycles`` at ``clock_hz``."""
    if cycles < 0 or clock_hz <= 0:
        raise ValueError("cycles must be >= 0 and clock_hz positive")
    return cycles / clock_hz * HOURS_PER_SECOND


def failures_per_execution(fit: float, cycles: int,
                           clock_hz: float = DEFAULT_CLOCK_HZ) -> float:
    """Equation (3): expected failures during one program execution."""
    return fit * execution_hours(cycles, clock_hz) / 1.0e9


def normalized_fpe(fit_by_level: dict[str, float],
                   cycles_by_level: dict[str, int],
                   baseline: str = "O0",
                   clock_hz: float = DEFAULT_CLOCK_HZ) -> dict[str, float]:
    """FPE of every optimization level normalized to ``baseline``."""
    if baseline not in fit_by_level or baseline not in cycles_by_level:
        raise ValueError(f"baseline {baseline!r} missing from inputs")
    base = failures_per_execution(fit_by_level[baseline],
                                  cycles_by_level[baseline], clock_hz)
    if base == 0:
        raise ValueError("baseline FPE is zero; cannot normalize")
    return {
        level: failures_per_execution(fit_by_level[level],
                                      cycles_by_level[level],
                                      clock_hz) / base
        for level in fit_by_level
    }
