"""ACE-style analytic AVF estimation (the paper's foil, Section II-B).

Mukherjee et al.'s ACE analysis estimates AVF as the fraction of
bit-cycles holding *Architecturally Correct Execution* state. Without
fine-grained un-ACE reasoning, every live bit counts as ACE, making the
estimate a (often very pessimistic) upper bound -- exactly the criticism
the paper levels at ACE-based studies ([11], [23]) and the reason it
uses statistical fault injection instead.

We reproduce that comparison honestly: :func:`ace_estimate` samples each
structure field's *live* bit occupancy over a fault-free run,

    AVF_ACE(field) = mean_t(live_bits(field, t)) / total_bits(field),

which the benchmarks contrast against the SFI-measured AVF. The expected
relation (checked by the test suite) is ``AVF_ACE >= AVF_SFI`` for
structures whose live state is frequently dead-on-arrival (caches, ROB
metadata never consulted again), with the gap quantifying architectural
masking that ACE analysis cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..isa.program import Program
from ..kernel.syscalls import ProgramExit
from ..microarch.config import CoreConfig
from ..microarch.simulator import Simulator


@dataclass
class AceResult:
    """Occupancy-based AVF upper bounds for one program."""

    config_name: str
    program_name: str
    cycles: int
    samples: int
    estimates: dict[str, float] = dataclass_field(default_factory=dict)
    mean_live_bits: dict[str, float] = dataclass_field(
        default_factory=dict)

    def pessimism_vs(self, sfi_avf: dict[str, float]) -> dict[str, float]:
        """ACE estimate minus the SFI-measured AVF, per field."""
        return {
            name: self.estimates[name] - sfi_avf[name]
            for name in self.estimates if name in sfi_avf
        }


def ace_estimate(program: Program, config: CoreConfig,
                 fields: tuple[str, ...] | None = None,
                 sample_every: int = 25,
                 max_cycles: int = 50_000_000) -> AceResult:
    """Run fault-free and sample live-bit occupancy per structure field."""
    if sample_every < 1:
        raise ValueError("sample_every must be >= 1")
    sim = Simulator(program, config)
    if fields is None:
        fields = tuple(sim.fault_fields())
    totals = {name: sim.bit_count(name) for name in fields}
    live_sums = {name: 0 for name in fields}
    samples = 0
    try:
        while sim.cycle < max_cycles:
            target = sim.cycle + sample_every
            while sim.cycle < target:
                sim.step()
            for name in fields:
                live_sums[name] += sim.catalog.live_bit_count(name)
            samples += 1
    except ProgramExit:
        pass
    if samples == 0:  # program shorter than one sampling interval
        for name in fields:
            live_sums[name] = sim.catalog.live_bit_count(name)
        samples = 1
    return AceResult(
        config_name=config.name,
        program_name=program.name,
        cycles=sim.cycle,
        samples=samples,
        estimates={
            name: (live_sums[name] / samples) / totals[name]
            for name in fields
        },
        mean_live_bits={
            name: live_sums[name] / samples for name in fields
        },
    )
