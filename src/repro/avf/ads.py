"""AVF-delay-square product (ADS), after Jones et al. [11].

The paper's related work (Section II-B) discusses evaluating compiler
optimizations by minimizing ADS = AVF x delay^2, a metric that weights
reliability against (squared) execution time -- a harsher performance
weighting than the paper's own FPE. We provide it for cross-comparison:
rankings under ADS vs FPE quantify how much the conclusion depends on
the chosen trade-off metric.
"""

from __future__ import annotations


def ads(avf: float, delay: float) -> float:
    """AVF-delay-square product for one configuration."""
    if not 0 <= avf <= 1:
        raise ValueError(f"AVF must be in [0, 1], got {avf}")
    if delay <= 0:
        raise ValueError("delay must be positive")
    return avf * delay * delay


def ads_ranking(avf_by_level: dict[str, float],
                cycles_by_level: dict[str, int]) -> list[str]:
    """Optimization levels sorted best-first under ADS."""
    if set(avf_by_level) != set(cycles_by_level):
        raise ValueError("AVF and cycle maps must cover the same levels")
    return sorted(avf_by_level,
                  key=lambda lvl: ads(avf_by_level[lvl],
                                      float(cycles_by_level[lvl])))


def normalized_ads(avf_by_level: dict[str, float],
                   cycles_by_level: dict[str, int],
                   baseline: str = "O0") -> dict[str, float]:
    """ADS of each level normalized to ``baseline``."""
    if baseline not in avf_by_level:
        raise ValueError(f"baseline {baseline!r} missing")
    base = ads(avf_by_level[baseline], float(cycles_by_level[baseline]))
    if base == 0:
        raise ValueError("baseline ADS is zero; cannot normalize")
    return {
        level: ads(avf_by_level[level],
                   float(cycles_by_level[level])) / base
        for level in avf_by_level
    }
