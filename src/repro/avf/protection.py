"""Selective-protection exploration.

Section VII of the paper examines fixed protection configurations (ECC
on L1D+L2, ECC on L2 only). Real designs choose *which* structures to
protect under an area/energy budget; this module turns the measured AVFs
into that decision: rank structures by FIT contribution and greedily
build the smallest protection set reaching a target FIT reduction.

The cost model is deliberately simple -- protecting a field costs its
bit count (ECC area scales with protected bits) -- and can be replaced
by passing explicit per-field costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..microarch.config import CoreConfig
from .fit import field_bit_counts, structure_fit


@dataclass(frozen=True)
class ProtectionPlan:
    """Result of a selective-protection search."""

    protected: tuple[str, ...]
    baseline_fit: float
    residual_fit: float
    protected_bits: int

    @property
    def fit_reduction(self) -> float:
        if self.baseline_fit == 0:
            return 0.0
        return 1.0 - self.residual_fit / self.baseline_fit


def fit_contributions(config: CoreConfig,
                      field_avfs: dict[str, float]) -> dict[str, float]:
    """Per-field FIT contribution, descending-sorted."""
    contributions = {
        field: structure_fit(config, field, avf)
        for field, avf in field_avfs.items()
    }
    return dict(sorted(contributions.items(), key=lambda kv: -kv[1]))


def plan_protection(config: CoreConfig, field_avfs: dict[str, float],
                    target_reduction: float,
                    costs: dict[str, int] | None = None) -> ProtectionPlan:
    """Smallest-cost greedy protection set reaching ``target_reduction``.

    Greedy by FIT-per-cost ratio; with the default bit-count costs this
    protects the structures with the highest vulnerability density
    first. ``target_reduction`` is a fraction of the unprotected FIT
    (e.g. 0.9 = remove 90% of the failure rate).
    """
    if not 0 < target_reduction <= 1:
        raise ValueError("target_reduction must be in (0, 1]")
    if costs is None:
        costs = field_bit_counts(config)
    contributions = fit_contributions(config, field_avfs)
    baseline = sum(contributions.values())
    if baseline == 0:
        return ProtectionPlan((), 0.0, 0.0, 0)

    ranked = sorted(
        (field for field in contributions),
        key=lambda f: (contributions[f] / max(1, costs.get(f, 1))),
        reverse=True)
    protected: list[str] = []
    removed = 0.0
    bits = 0
    for field in ranked:
        if removed / baseline >= target_reduction:
            break
        if contributions[field] == 0:
            break
        protected.append(field)
        removed += contributions[field]
        bits += costs.get(field, 0)
    return ProtectionPlan(
        protected=tuple(protected),
        baseline_fit=baseline,
        residual_fit=baseline - removed,
        protected_bits=bits,
    )
