"""Static ACE-style vulnerability bounds -- no simulation required.

:func:`static_ace_estimate` derives, for every injectable structure
field, an upper bound on the occupancy-based live-bit fraction that the
dynamic :func:`~repro.avf.ace.ace_estimate` measures over a fault-free
run. Where the dynamic estimator needs a full simulation per program,
the static analyzer needs only the linked binary and the core geometry,
making it cheap enough to gate every campaign on.

Soundness argument per field class (the tests enforce the resulting
``static >= dynamic-ACE >= SFI`` pessimism ordering):

capacity bounds (``rob.*``, ``iq.*``, ``lq``, ``sq``, ``prf``)
    a queue can never be more than full, so occupancy is bounded by 1.0
    -- refined to 0.0 when the program provably cannot allocate an entry
    (e.g. a load queue with no load instructions), and for the PRF by
    ``(arch regs + ROB entries) / phys regs``: every allocated physical
    register beyond the 32 architecturally mapped ones belongs to an
    in-flight instruction, of which there are at most ``rob_entries``;

footprint bounds (``l1i.*``, ``l1d.*``, ``l2.*``)
    a cache line becomes resident only when its address is touched, and
    a memory-safe armlet program can only touch the text segment
    (fetch), its data segment, the kernel block (syscall state), and the
    stack down to the statically derived worst-case depth (recursion
    widens this to the whole user stack region). The bound is the
    line-count of that reachable footprint over the cache's capacity.

The per-register liveness analysis (:mod:`repro.compiler.lifetimes`)
additionally yields a per-instruction vulnerability report -- live
architectural registers at each slot, Jaulmes-style lifetime intervals,
and register-pressure statistics -- exposed via ``repro lint``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from ..compiler import lifetimes as lifetimes_mod
from ..isa import registers
from ..isa.program import Program
from ..kernel.layout import SystemMap
from ..microarch.config import CacheGeometry, CoreConfig


@dataclass
class StaticAceResult:
    """Per-structure static AVF upper bounds for one program."""

    config_name: str
    program_name: str
    estimates: dict[str, float] = dataclass_field(default_factory=dict)
    derivations: dict[str, str] = dataclass_field(default_factory=dict)
    lifetimes: lifetimes_mod.Lifetimes | None = None

    def pessimism_vs(self, dynamic: dict[str, float]) -> dict[str, float]:
        """Static bound minus a dynamic estimate, per shared field."""
        return {
            name: self.estimates[name] - dynamic[name]
            for name in self.estimates if name in dynamic
        }


def _span_lines(lo: int, hi: int, line_bytes: int) -> int:
    """Distinct cache lines covering the byte span ``[lo, hi)``."""
    if hi <= lo:
        return 0
    first = lo // line_bytes
    last = (hi - 1) // line_bytes
    return last - first + 1


def _footprint_fraction(geometry: CacheGeometry,
                        spans: list[tuple[int, int]]) -> float:
    lines = sum(_span_lines(lo, hi, geometry.line_bytes)
                for lo, hi in spans)
    return min(1.0, lines / geometry.num_lines)


def _data_spans(program: Program, system_map: SystemMap,
                stack_bound: int | None) -> list[tuple[int, int]]:
    """Byte spans a memory-safe run can touch through the data path."""
    spans = [
        (system_map.kernel_base, system_map.kernel_end),
        (system_map.data_base, system_map.data_base + len(program.data)),
    ]
    if stack_bound is None:
        # recursion: the stack may legally grow through the user region
        spans.append((system_map.heap_base, system_map.stack_top))
    else:
        spans.append((system_map.stack_top - stack_bound,
                      system_map.stack_top))
    return spans


def static_ace_estimate(program: Program, config: CoreConfig,
                        system_map: SystemMap | None = None
                        ) -> StaticAceResult:
    """Static per-structure AVF upper bounds for ``program`` on ``config``."""
    system_map = system_map or SystemMap()
    life = lifetimes_mod.analyze_program(program)

    has_dest = any(i.dest_reg() is not None for i in program.text)
    has_src = any(i.src_regs() for i in program.text)
    has_load = any(i.is_load for i in program.text)
    has_store = any(i.is_store for i in program.text)
    occupied = 1.0 if program.text else 0.0

    text_span = (system_map.text_base,
                 system_map.text_base + program.text_bytes)
    data_spans = _data_spans(program, system_map, life.stack.bound_bytes)

    prf_bound = min(1.0, (registers.NUM_REGS + config.rob_entries)
                    / config.phys_regs)

    result = StaticAceResult(config_name=config.name,
                             program_name=program.name,
                             lifetimes=life)

    def put(name: str, bound: float, how: str) -> None:
        result.estimates[name] = bound
        result.derivations[name] = how

    rob = f"capacity: <= {config.rob_entries} in-flight entries"
    put("rob.pc", occupied, rob)
    put("rob.seq", occupied, rob)
    put("rob.dest", occupied, rob)
    put("rob.flags", occupied, rob)
    put("iq.src", 1.0 if has_src else 0.0,
        "capacity, 0 if no instruction reads a register")
    put("iq.dst", 1.0 if has_dest else 0.0,
        "capacity, 0 if no instruction writes a register")
    put("lq", 1.0 if has_load else 0.0,
        "capacity, 0 if the program has no loads")
    put("sq", 1.0 if has_store else 0.0,
        "capacity, 0 if the program has no stores")
    put("prf", prf_bound,
        f"(arch {registers.NUM_REGS} + rob {config.rob_entries}) / "
        f"phys {config.phys_regs}")

    l1i_frac = _footprint_fraction(config.l1i, [text_span])
    put("l1i.data", l1i_frac,
        f"text footprint {program.text_bytes} B over "
        f"{config.l1i.num_lines} lines")
    put("l1i.tag", l1i_frac, "same resident-line bound as l1i.data")

    l1d_frac = _footprint_fraction(config.l1d, data_spans)
    put("l1d.data", l1d_frac,
        "data+stack+kernel footprint over L1D lines")
    put("l1d.tag", l1d_frac, "same resident-line bound as l1d.data")

    l2_frac = _footprint_fraction(config.l2, [text_span] + data_spans)
    put("l2.data", l2_frac,
        "text+data+stack+kernel footprint over L2 lines")
    put("l2.tag", l2_frac, "same resident-line bound as l2.data")

    return result


# --------------------------------------------------- per-instruction report

@dataclass(frozen=True)
class InstructionVulnerability:
    """Static vulnerability summary of one instruction slot."""

    index: int
    labels: tuple[str, ...]
    text: str
    live_regs: tuple[int, ...]

    @property
    def live_count(self) -> int:
        return len(self.live_regs)

    def reg_names(self) -> tuple[str, ...]:
        return tuple(registers.reg_name(r) for r in self.live_regs)


def instruction_report(life: lifetimes_mod.Lifetimes
                       ) -> list[InstructionVulnerability]:
    """Per-slot live-register exposure, program order.

    The live-register count entering a slot is the number of
    architectural registers whose corruption at that point can change
    the architecturally correct execution -- the per-instruction
    analogue of the register-file ACE bound.
    """
    program = life.program
    by_index = program.labels_by_index()
    rows = []
    for index, instr in enumerate(program.text):
        rows.append(InstructionVulnerability(
            index=index,
            labels=tuple(by_index.get(index, ())),
            text=str(instr),
            live_regs=life.live_regs_at(index),
        ))
    return rows
