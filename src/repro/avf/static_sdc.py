"""Static SDC/DUE prediction from bit-level propagation verdicts.

The bit-level propagation analysis (:mod:`repro.compiler.propagation`)
classifies every (instruction, register, bit) point as dead, control-
relevant, address-relevant, or data-flow-to-output. This module turns
those verdicts into a *simulation-free outcome predictor* for physical-
register-file faults and quantifies how well the static story matches
dynamic injection:

* ``masked``  -- the flip lands in a free / not-yet-written register or
  in statically dead bits of an architectural value.
* ``sdc``     -- the flipped bits flow into program output (silent data
  corruption is the expected failure mode).
* ``due``     -- the flipped bits steer control flow or memory
  addressing, so a crash, timeout, or assert (a detected unrecoverable
  error) is the expected failure mode.

Unlike the pruner (:mod:`repro.gefin.prune`), which only ever asserts
*provable* masking, the predictor commits to a best guess for every
fault. Its value is measured, not assumed: :func:`calibrate_workload`
runs a real campaign over the same fault set and folds prediction vs
ground truth into a :class:`CalibrationReport` (confusion matrix,
per-class precision/recall, accuracy). The paper characterizes
vulnerability purely dynamically; the calibration report is the repo's
measurement of how much of that dynamic structure is already visible to
a sound static analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..compiler.propagation import Propagation, analyze_propagation
from ..isa.program import Program
from ..kernel.layout import SystemMap
from ..microarch.config import CoreConfig

if TYPE_CHECKING:  # avoid a module cycle: gefin.prune imports repro.avf
    from ..gefin.fault import GoldenRun
    from ..gefin.injector import InjectionResult

#: Prediction vocabulary, in increasing severity. A multi-bit fault is
#: predicted as the most severe class among its per-bit predictions.
PREDICTED_CLASSES = ("masked", "sdc", "due")

_SEVERITY = {name: rank for rank, name in enumerate(PREDICTED_CLASSES)}

#: Dynamic outcome value -> predicted-class vocabulary. Infrastructure
#: outcomes describe the host, not the fault, and are excluded.
OUTCOME_GROUPS = {
    "masked": "masked",
    "sdc": "sdc",
    "timeout": "due",
    "crash_process": "due",
    "crash_system": "due",
    "assert": "due",
}


def outcome_group(outcome_value: str) -> str | None:
    """Fold a dynamic :class:`~repro.gefin.outcomes.Outcome` value into
    the predictor's three-class vocabulary (``None`` = not comparable).
    """
    return OUTCOME_GROUPS.get(outcome_value)


class StaticSdcPredictor:
    """Per-(program, config, golden-trace) PRF fault-outcome predictor.

    Queries follow the pruner's commit-point convention: a fault at
    cycle ``c`` strikes the machine state recorded *after* cycle ``c``,
    and the architectural program point it perturbs is the oldest
    uncommitted instruction at that moment.
    """

    def __init__(self, program: Program, config: CoreConfig,
                 golden: "GoldenRun") -> None:
        self.program = program
        self.config = config
        self.golden = golden
        self.propagation: Propagation = analyze_propagation(program)
        self._text_base = SystemMap().text_base
        trace = golden.trace
        usable = (trace is not None and len(trace)
                  and getattr(trace, "mask_words", 0) > 0
                  and len(trace.commit_pc) == len(trace))
        self._trace = trace if usable else None

    # ------------------------------------------------------------ queries

    def _verdict_class(self, slot: int, arch: int, bit: int) -> str:
        fate = self.propagation.fate(slot, arch, bit)
        if fate.dead:
            return "masked"
        if fate.control or fate.address:
            return "due"
        return "sdc"

    def predict(self, cycle: int, bit_index: int, burst: int = 1) -> str:
        """Predicted outcome class of one uniform-mode PRF fault."""
        golden = self.golden
        if cycle >= golden.cycles:
            # The program finishes during (or before) the injection
            # cycle; the injector classifies these Masked outright.
            return "masked"
        trace = self._trace
        if trace is None or cycle > len(trace):
            return "due"  # no rename view recorded: no basis to predict
        rename, alloc, ready, inflight, commit_pc = \
            trace.rename_state(cycle)
        slot, misaligned = divmod(commit_pc - self._text_base, 4)
        if misaligned or not 0 <= slot < len(self.program.text):
            return "due"
        xlen = self.config.xlen
        total_bits = self.config.phys_regs * xlen
        worst = "masked"
        for offset in range(burst):
            index = bit_index + offset
            if index >= total_bits:
                continue  # clipped by the injector
            reg, bit = divmod(index, xlen)
            if not (alloc >> reg) & 1 or not (ready >> reg) & 1:
                continue  # free or awaiting full-width writeback
            arch = rename.find(reg)
            if arch < 0:
                if (inflight >> reg) & 1:
                    continue  # renamed-over intermediate, producer live
                # Committed old mapping awaiting retirement free: its
                # remaining readers are in-flight stragglers; usually
                # none are left.
                continue
            prediction = self._verdict_class(slot, arch, bit)
            if _SEVERITY[prediction] > _SEVERITY[worst]:
                worst = prediction
        return worst

    def predict_result(self, result: "InjectionResult") -> str | None:
        """Prediction for one dynamic trial (``None`` if not a uniform
        PRF fault with a concrete bit index)."""
        spec = result.spec
        if spec.field != "prf" or spec.mode != "uniform":
            return None
        bit = result.bit_index if result.bit_index is not None \
            else spec.bit_index
        if bit is None:
            return None
        return self.predict(spec.cycle, bit, spec.burst)


# ------------------------------------------------------------ calibration

@dataclass
class CalibrationReport:
    """Static-vs-dynamic agreement for one (workload, core, level) cell.

    ``confusion[predicted][actual]`` counts trials; precision/recall are
    per predicted class (absent classes report 0.0). ``n`` counts the
    comparable trials (infrastructure outcomes are dropped).
    """

    workload: str
    config_name: str
    opt_level: str
    n: int
    confusion: dict[str, dict[str, int]]
    accuracy: float
    precision: dict[str, float] = field(default_factory=dict)
    recall: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "config": self.config_name,
            "opt_level": self.opt_level,
            "n": self.n,
            "confusion": {p: dict(row) for p, row in
                          self.confusion.items()},
            "accuracy": self.accuracy,
            "precision": dict(self.precision),
            "recall": dict(self.recall),
        }


def score_pairs(pairs: list[tuple[str, str]], workload: str,
                config_name: str, opt_level: str) -> CalibrationReport:
    """Fold (predicted, actual) pairs into a :class:`CalibrationReport`."""
    confusion: dict[str, dict[str, int]] = {
        p: {a: 0 for a in PREDICTED_CLASSES} for p in PREDICTED_CLASSES}
    hits = 0
    for predicted, actual in pairs:
        confusion[predicted][actual] += 1
        if predicted == actual:
            hits += 1
    n = len(pairs)
    precision: dict[str, float] = {}
    recall: dict[str, float] = {}
    for name in PREDICTED_CLASSES:
        predicted_n = sum(confusion[name].values())
        actual_n = sum(confusion[p][name] for p in PREDICTED_CLASSES)
        precision[name] = (confusion[name][name] / predicted_n
                           if predicted_n else 0.0)
        recall[name] = (confusion[name][name] / actual_n
                        if actual_n else 0.0)
    return CalibrationReport(
        workload=workload, config_name=config_name, opt_level=opt_level,
        n=n, confusion=confusion, accuracy=(hits / n if n else 0.0),
        precision=precision, recall=recall)


def calibrate_results(program: Program, config: CoreConfig,
                      golden: "GoldenRun",
                      results: list["InjectionResult"], *,
                      workload: str = "", opt_level: str = "",
                      ) -> CalibrationReport:
    """Score static predictions against already-run dynamic trials."""
    predictor = StaticSdcPredictor(program, config, golden)
    pairs: list[tuple[str, str]] = []
    for result in results:
        predicted = predictor.predict_result(result)
        actual = outcome_group(result.outcome.value)
        if predicted is None or actual is None:
            continue
        pairs.append((predicted, actual))
    return score_pairs(pairs, workload or program.name, config.name,
                       opt_level)


def calibrate_workload(name: str, core: str = "cortex-a15",
                       opt_level: str = "O2", n: int = 200,
                       seed: int = 2021, scale: str = "micro",
                       ) -> CalibrationReport:
    """Run a uniform PRF campaign on one workload and calibrate.

    The campaign runs with early exit enabled -- tier-3 pruned trials
    are Masked by a theorem the predictor shares, so they calibrate
    exactly as their fully-simulated selves would.
    """
    from ..gefin.campaign import run_campaign
    from ..gefin.fault import run_golden_auto
    from ..microarch.config import get_config
    from ..workloads.registry import build_program

    config = get_config(core)
    target = "armlet32" if config.xlen == 32 else "armlet64"
    program = build_program(name, scale, opt_level, target)
    golden = run_golden_auto(program, config)
    outcome = run_campaign(
        program, config, "prf", n, seed=seed, mode="uniform",
        golden=golden, keep_results=True)
    assert isinstance(outcome, tuple)  # keep_results=True contract
    _summary, results = outcome
    return calibrate_results(program, config, golden, results,
                             workload=name, opt_level=opt_level)


def calibration_report(workloads: tuple[str, ...],
                       core: str = "cortex-a15",
                       opt_levels: tuple[str, ...] = ("O0", "O2"),
                       n: int = 200, seed: int = 2021,
                       scale: str = "micro") -> dict[str, object]:
    """Static-vs-dynamic calibration across workloads and O-levels.

    Returns a JSON-ready nested dict (figure-style, see
    :mod:`repro.experiments.figures`): per (workload, level) cell the
    full :class:`CalibrationReport`, plus a pooled aggregate row.
    """
    cells: dict[str, dict[str, dict[str, object]]] = {}
    pooled: list[tuple[str, str]] = []
    for workload in workloads:
        cells[workload] = {}
        for level in opt_levels:
            report = calibrate_workload(workload, core=core,
                                        opt_level=level, n=n, seed=seed,
                                        scale=scale)
            cells[workload][level] = report.to_dict()
            for predicted, row in report.confusion.items():
                pooled.extend((predicted, actual)
                              for actual, count in row.items()
                              for _ in range(count))
    overall = score_pairs(pooled, "all", core, "all")
    return {"core": core, "n_per_cell": n, "seed": seed,
            "cells": cells, "overall": overall.to_dict()}


__all__ = [
    "CalibrationReport",
    "OUTCOME_GROUPS",
    "PREDICTED_CLASSES",
    "StaticSdcPredictor",
    "calibrate_results",
    "calibrate_workload",
    "calibration_report",
    "outcome_group",
    "score_pairs",
]
