"""Execution-time-weighted AVF aggregation (paper equation 1).

Different benchmarks run for very different times, so the per-component
AVF reported across a workload suite weights each benchmark's AVF by its
execution time:

    wAVF(c) = sum_k AVF_k(c) * t_k / sum_k t_k
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkAVF:
    """One benchmark's AVF sample for some component."""

    benchmark: str
    avf: float
    execution_time: float

    def __post_init__(self) -> None:
        if self.execution_time <= 0:
            raise ValueError("execution time must be positive")
        if not 0 <= self.avf <= 1:
            raise ValueError(f"AVF must be within [0, 1], got {self.avf}")


def weighted_avf(samples: list[BenchmarkAVF]) -> float:
    """Equation (1): execution-time-weighted mean AVF."""
    if not samples:
        raise ValueError("weighted AVF of an empty sample set")
    total_time = sum(s.execution_time for s in samples)
    return sum(s.avf * s.execution_time for s in samples) / total_time


def weighted_class_avf(samples: dict[str, tuple[dict[str, float], float]],
                       ) -> dict[str, float]:
    """Weighted per-fault-class AVF.

    ``samples`` maps benchmark -> (avf_by_class, execution_time); the
    result maps fault class -> weighted AVF contribution, so the sum over
    classes equals the weighted total AVF.
    """
    if not samples:
        raise ValueError("weighted AVF of an empty sample set")
    total_time = sum(t for _, t in samples.values())
    classes: set[str] = set()
    for avf_by_class, _ in samples.values():
        classes.update(avf_by_class)
    return {
        cls: sum(avf_by_class.get(cls, 0.0) * t
                 for avf_by_class, t in samples.values()) / total_time
        for cls in sorted(classes)
    }
