"""Failures-in-Time computation (paper equation 2) and ECC protection.

    FIT(structure) = FIT_bit x bits(structure) x AVF(structure)

The whole-CPU FIT is the sum over structures; ECC-protected structures
contribute zero (SECDED corrects every single-bit upset, and this study's
fault model is single-bit).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..microarch.config import CoreConfig
from ..microarch.queues import ARCH_FIELD_BITS, NUM_FLAGS, PC_FIELD_BITS


def field_bit_counts(config: CoreConfig) -> dict[str, int]:
    """Storage bits of every injectable field of ``config``.

    Must agree exactly with the live simulator's fault catalog; the test
    suite asserts this invariant.
    """
    tag = config.phys_tag_bits
    xlen = config.xlen
    counts: dict[str, int] = {}
    for cache in (config.l1i, config.l1d, config.l2):
        counts[f"{cache.name}.data"] = cache.data_bits
        counts[f"{cache.name}.tag"] = (
            cache.num_lines * cache.tag_bits(config.phys_addr_bits))
    counts["prf"] = config.phys_regs * xlen
    counts["lq"] = config.lq_entries * (xlen + tag)
    counts["sq"] = config.sq_entries * 2 * xlen
    counts["iq.src"] = config.iq_entries * 2 * (tag + 1)
    counts["iq.dst"] = config.iq_entries * tag
    counts["rob.pc"] = config.rob_entries * PC_FIELD_BITS
    counts["rob.dest"] = config.rob_entries * (ARCH_FIELD_BITS + 2 * tag)
    counts["rob.flags"] = config.rob_entries * NUM_FLAGS
    counts["rob.seq"] = config.rob_entries * config.seq_bits
    return counts


@dataclass(frozen=True)
class ECCScheme:
    """A protection configuration: fields whose faults are corrected."""

    name: str
    protected_fields: frozenset[str]

    def protects(self, field: str) -> bool:
        return field in self.protected_fields


ECC_NONE = ECCScheme("no-ecc", frozenset())
ECC_L1D_L2 = ECCScheme(
    "ecc-l1d-l2",
    frozenset({"l1d.data", "l1d.tag", "l2.data", "l2.tag"}))
ECC_L2_ONLY = ECCScheme("ecc-l2", frozenset({"l2.data", "l2.tag"}))

ECC_SCHEMES = (ECC_NONE, ECC_L1D_L2, ECC_L2_ONLY)


def structure_fit(config: CoreConfig, field: str, avf: float) -> float:
    """Equation (2) for one structure field."""
    bits = field_bit_counts(config)[field]
    return config.raw_fit_per_bit * bits * avf


def cpu_fit(config: CoreConfig, field_avfs: dict[str, float],
            ecc: ECCScheme = ECC_NONE) -> float:
    """Whole-CPU FIT: the sum over unprotected structure fields."""
    total = 0.0
    for field, avf in field_avfs.items():
        if ecc.protects(field):
            continue
        total += structure_fit(config, field, avf)
    return total


def cpu_fit_by_class(config: CoreConfig,
                     field_class_avfs: dict[str, dict[str, float]],
                     ecc: ECCScheme = ECC_NONE) -> dict[str, float]:
    """Whole-CPU FIT decomposed by fault class (for Fig. 10's stacks)."""
    bits = field_bit_counts(config)
    totals: dict[str, float] = {}
    for field, by_class in field_class_avfs.items():
        if ecc.protects(field):
            continue
        scale = config.raw_fit_per_bit * bits[field]
        for cls, avf in by_class.items():
            totals[cls] = totals.get(cls, 0.0) + scale * avf
    return totals
