"""Three-address intermediate representation with an explicit CFG.

The IR is deliberately *not* SSA: virtual registers may be redefined, as
in classic pre-SSA compilers. Optimization passes therefore use
conservative dataflow reasoning (block-local value numbering, liveness,
single-definition checks). This keeps the pass implementations honest and
mirrors the era of compiler the study's O-level contrasts descend from.

Instructions are mutable dataclasses; passes rewrite operands in place or
rebuild instruction lists. Block terminators are separate from the body.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Union

from ..errors import IRVerificationError


@dataclass(frozen=True, slots=True)
class VReg:
    """A virtual register; ``hint`` is a debug name only."""

    id: int
    hint: str = ""

    def __str__(self) -> str:
        return f"%{self.id}{'.' + self.hint if self.hint else ''}"


@dataclass(frozen=True, slots=True)
class Const:
    """An integer constant operand (already wrapped by the builder)."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


Value = Union[VReg, Const]

BIN_OPS = frozenset({
    "add", "sub", "mul", "div", "rem", "and", "or", "xor",
    "shl", "lshr", "ashr", "slt", "sltu",
})

COMMUTATIVE_OPS = frozenset({"add", "mul", "and", "or", "xor"})

COND_OPS = frozenset({"eq", "ne", "lt", "le", "gt", "ge",
                      "ltu", "leu", "gtu", "geu"})

NEGATED_COND = {
    "eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt",
    "gt": "le", "ltu": "geu", "geu": "ltu", "leu": "gtu", "gtu": "leu",
}

SWAPPED_COND = {
    "eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt", "le": "ge",
    "ge": "le", "ltu": "gtu", "gtu": "ltu", "leu": "geu", "geu": "leu",
}


# ------------------------------------------------------------ instructions

@dataclass
class Instr:
    """Base class for non-terminator IR instructions."""

    def defs(self) -> VReg | None:
        return None

    def uses(self) -> tuple[Value, ...]:
        return ()

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        """Substitute operand vregs according to ``mapping``."""

    @property
    def is_pure(self) -> bool:
        """True if the instruction can be removed when its result is dead."""
        return False


def _subst(value: Value, mapping: dict[VReg, Value]) -> Value:
    if isinstance(value, VReg) and value in mapping:
        return mapping[value]
    return value


@dataclass
class BinOp(Instr):
    dst: VReg
    op: str
    a: Value
    b: Value

    def defs(self) -> VReg:
        return self.dst

    def uses(self) -> tuple[Value, ...]:
        return (self.a, self.b)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    @property
    def is_pure(self) -> bool:
        # div/rem by zero traps, but C makes that UB, so DCE may drop them.
        return True

    def __str__(self) -> str:
        return f"{self.dst} = {self.op} {self.a}, {self.b}"


@dataclass
class Move(Instr):
    dst: VReg
    src: Value

    def defs(self) -> VReg:
        return self.dst

    def uses(self) -> tuple[Value, ...]:
        return (self.src,)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.src = _subst(self.src, mapping)

    @property
    def is_pure(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass
class Load(Instr):
    dst: VReg
    base: Value
    offset: int
    size: str = "word"  # "word" (xlen) or "byte"

    def defs(self) -> VReg:
        return self.dst

    def uses(self) -> tuple[Value, ...]:
        return (self.base,)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.base = _subst(self.base, mapping)

    @property
    def is_pure(self) -> bool:
        # A dead load can be removed: MinC has no volatile or MMIO.
        return True

    def __str__(self) -> str:
        return f"{self.dst} = load.{self.size} [{self.base}+{self.offset}]"


@dataclass
class Store(Instr):
    src: Value
    base: Value
    offset: int
    size: str = "word"

    def uses(self) -> tuple[Value, ...]:
        return (self.src, self.base)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.src = _subst(self.src, mapping)
        self.base = _subst(self.base, mapping)

    def __str__(self) -> str:
        return f"store.{self.size} {self.src} -> [{self.base}+{self.offset}]"


@dataclass
class La(Instr):
    """Materialize the address of a global data symbol."""

    dst: VReg
    symbol: str

    def defs(self) -> VReg:
        return self.dst

    @property
    def is_pure(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.dst} = la {self.symbol}"


@dataclass
class SlotAddr(Instr):
    """Materialize the address of a stack slot (local array)."""

    dst: VReg
    slot: int

    def defs(self) -> VReg:
        return self.dst

    @property
    def is_pure(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.dst} = slot_addr #{self.slot}"


@dataclass
class Call(Instr):
    dst: VReg | None
    func: str
    args: list[Value]

    def defs(self) -> VReg | None:
        return self.dst

    def uses(self) -> tuple[Value, ...]:
        return tuple(self.args)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.args = [_subst(a, mapping) for a in self.args]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst else ""
        return f"{prefix}call {self.func}({args})"


@dataclass
class Syscall(Instr):
    """Output / exit builtin lowered to an SVC at codegen."""

    number: int
    arg: Value

    def uses(self) -> tuple[Value, ...]:
        return (self.arg,)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.arg = _subst(self.arg, mapping)

    def __str__(self) -> str:
        return f"syscall {self.number}, {self.arg}"


# ------------------------------------------------------------- terminators

@dataclass
class Terminator:
    def successors(self) -> tuple[str, ...]:
        return ()

    def uses(self) -> tuple[Value, ...]:
        return ()

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        pass


@dataclass
class Jump(Terminator):
    target: str

    def successors(self) -> tuple[str, ...]:
        return (self.target,)

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class CondJump(Terminator):
    op: str
    a: Value
    b: Value
    if_true: str
    if_false: str

    def successors(self) -> tuple[str, ...]:
        return (self.if_true, self.if_false)

    def uses(self) -> tuple[Value, ...]:
        return (self.a, self.b)

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def __str__(self) -> str:
        return (f"if {self.op} {self.a}, {self.b} then {self.if_true}"
                f" else {self.if_false}")


@dataclass
class Ret(Terminator):
    value: Value | None = None

    def uses(self) -> tuple[Value, ...]:
        return (self.value,) if self.value is not None else ()

    def replace_uses(self, mapping: dict[VReg, Value]) -> None:
        if self.value is not None:
            self.value = _subst(self.value, mapping)

    def __str__(self) -> str:
        return f"ret {self.value}" if self.value is not None else "ret"


# ------------------------------------------------------------- containers

@dataclass
class StackSlot:
    """A stack-allocated object (local array); offsets assigned at codegen."""

    index: int
    size_bytes: int
    align: int


@dataclass
class Block:
    name: str
    instrs: list[Instr] = field(default_factory=list)
    terminator: Terminator | None = None

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines += [f"  {i}" for i in self.instrs]
        lines.append(f"  {self.terminator}")
        return "\n".join(lines)


class Function:
    """An IR function: ordered blocks (entry first), params, stack slots."""

    def __init__(self, name: str, params: list[VReg],
                 returns_value: bool) -> None:
        self.name = name
        self.params = params
        self.returns_value = returns_value
        self.blocks: list[Block] = []
        self.slots: list[StackSlot] = []
        self._next_vreg = max((p.id for p in params), default=-1) + 1
        self._next_block = 0

    def new_vreg(self, hint: str = "") -> VReg:
        reg = VReg(self._next_vreg, hint)
        self._next_vreg += 1
        return reg

    def new_block(self, hint: str = "bb") -> Block:
        block = Block(f"{hint}{self._next_block}")
        self._next_block += 1
        self.blocks.append(block)
        return block

    def new_slot(self, size_bytes: int, align: int) -> StackSlot:
        slot = StackSlot(len(self.slots), size_bytes, align)
        self.slots.append(slot)
        return slot

    def block_map(self) -> dict[str, Block]:
        return {b.name: b for b in self.blocks}

    def predecessors(self) -> dict[str, list[str]]:
        preds: dict[str, list[str]] = {b.name: [] for b in self.blocks}
        for block in self.blocks:
            term = block.terminator
            if term is None:
                raise IRVerificationError(
                    "cfg", "block has no terminator",
                    function=self.name, block=block.name)
            for succ in term.successors():
                preds[succ].append(block.name)
        return preds

    def instructions(self) -> Iterable[Instr]:
        for block in self.blocks:
            yield from block.instrs

    def dump(self) -> str:
        header = f"func {self.name}({', '.join(map(str, self.params))})"
        return "\n".join([header] + [str(b) for b in self.blocks])


@dataclass
class GlobalData:
    """An initialized global object in the data segment."""

    name: str
    size_bytes: int
    init: bytes
    align: int


class Module:
    """A compiled translation unit: functions plus global data."""

    def __init__(self, name: str, word_size: int) -> None:
        self.name = name
        self.word_size = word_size
        self.functions: dict[str, Function] = {}
        self.globals: list[GlobalData] = []

    @property
    def xlen(self) -> int:
        return self.word_size * 8

    def add_global(self, name: str, size_bytes: int, init: bytes,
                   align: int) -> None:
        self.globals.append(GlobalData(name, size_bytes, init, align))

    def dump(self) -> str:
        parts = [f"module {self.name} (word={self.word_size})"]
        parts += [f"global {g.name}: {g.size_bytes} bytes"
                  for g in self.globals]
        parts += [f.dump() for f in self.functions.values()]
        return "\n\n".join(parts)


def clone_instr(instr: Instr) -> Instr:
    """Shallow-copy an instruction (lists copied)."""
    if isinstance(instr, Call):
        return Call(instr.dst, instr.func, list(instr.args))
    return replace(instr)  # type: ignore[type-var]


def clone_terminator(term: Terminator) -> Terminator:
    return replace(term)  # type: ignore[type-var]
