"""CFG analyses shared by the optimization passes and register allocator:
reachability, dominators, liveness, and natural-loop discovery."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import IRVerificationError
from . import ir


def terminator_of(func: ir.Function, block: ir.Block) -> ir.Terminator:
    """The block's terminator, or a structured error naming the block.

    The CFG analyses are only well-defined on terminated blocks; a
    missing terminator is a compiler bug, reported as an
    :class:`~repro.errors.IRVerificationError` rather than a bare
    ``assert`` (which vanishes under ``python -O``).
    """
    term = block.terminator
    if term is None:
        raise IRVerificationError("cfg", "block has no terminator",
                                  function=func.name, block=block.name)
    return term


def reachable_blocks(func: ir.Function) -> set[str]:
    """Names of blocks reachable from the entry block."""
    if not func.blocks:
        return set()
    blocks = func.block_map()
    seen: set[str] = set()
    stack = [func.blocks[0].name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        term = terminator_of(func, blocks[name])
        stack.extend(s for s in term.successors() if s not in seen)
    return seen


def postorder(func: ir.Function) -> list[str]:
    """Blocks in CFG postorder (entry last)."""
    blocks = func.block_map()
    visited: set[str] = set()
    order: list[str] = []

    entry = func.blocks[0].name
    stack: list[tuple[str, int]] = [(entry, 0)]
    visited.add(entry)
    while stack:
        name, index = stack[-1]
        succs = terminator_of(func, blocks[name]).successors()
        if index < len(succs):
            stack[-1] = (name, index + 1)
            succ = succs[index]
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, 0))
        else:
            order.append(name)
            stack.pop()
    return order


def dominators(func: ir.Function) -> dict[str, set[str]]:
    """Classic iterative dominator sets over reachable blocks."""
    reachable = reachable_blocks(func)
    preds = {name: [p for p in plist if p in reachable]
             for name, plist in func.predecessors().items()
             if name in reachable}
    entry = func.blocks[0].name
    dom: dict[str, set[str]] = {name: set(reachable) for name in reachable}
    dom[entry] = {entry}
    rpo = [b for b in reversed(postorder(func))]
    changed = True
    while changed:
        changed = False
        for name in rpo:
            if name == entry:
                continue
            pred_doms = [dom[p] for p in preds[name]]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(name)
            if new != dom[name]:
                dom[name] = new
                changed = True
    return dom


@dataclass
class Loop:
    """A natural loop: ``header`` plus the set of ``body`` block names
    (header included) and the latch blocks that branch back to it."""

    header: str
    body: set[str]
    latches: list[str] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.body)


def find_loops(func: ir.Function) -> list[Loop]:
    """Discover natural loops via back edges (tail dominated by head).

    Loops sharing a header are merged. Results are sorted innermost-first
    (smaller body first), which is the order unrolling and LICM want.
    """
    dom = dominators(func)
    blocks = func.block_map()
    loops: dict[str, Loop] = {}
    preds = func.predecessors()
    for name in dom:  # reachable blocks only
        term = terminator_of(func, blocks[name])
        for succ in term.successors():
            if succ in dom.get(name, ()):  # back edge name -> succ
                loop = loops.setdefault(succ, Loop(succ, {succ}))
                loop.latches.append(name)
                # collect the natural loop body
                stack = [name]
                while stack:
                    node = stack.pop()
                    if node in loop.body:
                        continue
                    loop.body.add(node)
                    stack.extend(p for p in preds[node]
                                 if p not in loop.body)
    return sorted(loops.values(), key=lambda lp: lp.size)


def block_defs_uses(block: ir.Block) -> tuple[set[ir.VReg], set[ir.VReg]]:
    """(defs, upward-exposed uses) of a block, for liveness seeding."""
    defs: set[ir.VReg] = set()
    uses: set[ir.VReg] = set()
    for instr in block.instrs:
        for value in instr.uses():
            if isinstance(value, ir.VReg) and value not in defs:
                uses.add(value)
        dst = instr.defs()
        if dst is not None:
            defs.add(dst)
    term = block.terminator
    if term is None:
        raise IRVerificationError("cfg", "block has no terminator",
                                  block=block.name)
    for value in term.uses():
        if isinstance(value, ir.VReg) and value not in defs:
            uses.add(value)
    return defs, uses


def liveness(func: ir.Function) -> tuple[dict[str, set[ir.VReg]],
                                         dict[str, set[ir.VReg]]]:
    """Backward dataflow liveness: returns (live_in, live_out) per block."""
    blocks = func.block_map()
    defs: dict[str, set[ir.VReg]] = {}
    uses: dict[str, set[ir.VReg]] = {}
    for block in func.blocks:
        defs[block.name], uses[block.name] = block_defs_uses(block)
    live_in = {b.name: set(uses[b.name]) for b in func.blocks}
    live_out: dict[str, set[ir.VReg]] = {b.name: set() for b in func.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(func.blocks):
            term = terminator_of(func, block)
            out: set[ir.VReg] = set()
            for succ in term.successors():
                out |= live_in[succ]
            if out != live_out[block.name]:
                live_out[block.name] = out
                changed = True
            new_in = uses[block.name] | (out - defs[block.name])
            if new_in != live_in[block.name]:
                live_in[block.name] = new_in
                changed = True
    return live_in, live_out


def single_def_vregs(func: ir.Function) -> set[ir.VReg]:
    """Vregs defined exactly once in the whole function (params excluded:
    they are defined at entry, so a body definition makes them multi-def)."""
    counts: dict[ir.VReg, int] = {p: 1 for p in func.params}
    for instr in func.instructions():
        dst = instr.defs()
        if dst is not None:
            counts[dst] = counts.get(dst, 0) + 1
    return {reg for reg, count in counts.items() if count == 1}
