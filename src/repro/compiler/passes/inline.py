"""Function inlining (enabled at O3) -- the paper's signature O3 transform:
it removes call overhead and enlarges the text segment.

A call site is inlined when the callee is non-recursive and either small
(instruction count below ``INLINE_SIZE_LIMIT``) or called exactly once in
the whole module. Callee blocks are cloned with fresh vregs, slots are
re-homed into the caller's frame, and returns become moves plus jumps to
the continuation block. Functions left uncalled afterwards are dropped.
"""

from __future__ import annotations

from .. import ir

INLINE_SIZE_LIMIT = 40
CALLER_GROWTH_LIMIT = 600


def _function_size(func: ir.Function) -> int:
    return sum(len(b.instrs) + 1 for b in func.blocks)


def _call_graph(module: ir.Module) -> dict[str, set[str]]:
    graph: dict[str, set[str]] = {}
    for name, func in module.functions.items():
        callees: set[str] = set()
        for instr in func.instructions():
            if isinstance(instr, ir.Call):
                callees.add(instr.func)
        graph[name] = callees
    return graph


def _recursive_functions(graph: dict[str, set[str]]) -> set[str]:
    """Functions that can (transitively) call themselves."""
    recursive: set[str] = set()
    for start in graph:
        stack = list(graph.get(start, ()))
        seen: set[str] = set()
        while stack:
            name = stack.pop()
            if name == start:
                recursive.add(start)
                break
            if name in seen:
                continue
            seen.add(name)
            stack.extend(graph.get(name, ()))
    return recursive


def _call_counts(module: ir.Module) -> dict[str, int]:
    counts: dict[str, int] = {}
    for func in module.functions.values():
        for instr in func.instructions():
            if isinstance(instr, ir.Call):
                counts[instr.func] = counts.get(instr.func, 0) + 1
    return counts


def _inline_call(caller: ir.Function, block: ir.Block, index: int,
                 callee: ir.Function) -> None:
    call = block.instrs[index]
    assert isinstance(call, ir.Call)

    vreg_map: dict[ir.VReg, ir.VReg] = {}

    def remap(value: ir.Value) -> ir.Value:
        if isinstance(value, ir.Const):
            return value
        if value not in vreg_map:
            vreg_map[value] = caller.new_vreg(value.hint or "in")
        return vreg_map[value]

    slot_map: dict[int, int] = {}
    for slot in callee.slots:
        new_slot = caller.new_slot(slot.size_bytes, slot.align)
        slot_map[slot.index] = new_slot.index

    suffix = f".{callee.name}{caller._next_block}"
    name_map = {b.name: b.name + suffix for b in callee.blocks}
    caller._next_block += 1

    continuation = ir.Block(f"cont{suffix}")
    continuation.instrs = block.instrs[index + 1:]
    continuation.terminator = block.terminator

    prologue: list[ir.Instr] = []
    for param, arg in zip(callee.params, call.args):
        prologue.append(ir.Move(remap(param), arg))
    block.instrs = block.instrs[:index] + prologue
    block.terminator = ir.Jump(name_map[callee.blocks[0].name])

    cloned: list[ir.Block] = []
    for src in callee.blocks:
        dst_block = ir.Block(name_map[src.name])
        for instr in src.instrs:
            copy = ir.clone_instr(instr)
            if isinstance(copy, ir.SlotAddr):
                copy.slot = slot_map[copy.slot]
            old_dst = copy.defs()
            mapping = {v: remap(v) for v in copy.uses()
                       if isinstance(v, ir.VReg)}
            copy.replace_uses(mapping)
            if old_dst is not None:
                new_dst = remap(old_dst)
                if isinstance(copy, ir.BinOp):
                    copy.dst = new_dst
                elif isinstance(copy, (ir.Move, ir.Load, ir.La,
                                       ir.SlotAddr)):
                    copy.dst = new_dst
                elif isinstance(copy, ir.Call):
                    copy.dst = new_dst
            dst_block.instrs.append(copy)
        term = src.terminator
        assert term is not None
        if isinstance(term, ir.Ret):
            if call.dst is not None:
                value = (remap(term.value)
                         if isinstance(term.value, ir.VReg)
                         else term.value)
                if value is None:
                    value = ir.Const(0)
                dst_block.instrs.append(ir.Move(call.dst, value))
            dst_block.terminator = ir.Jump(continuation.name)
        elif isinstance(term, ir.Jump):
            dst_block.terminator = ir.Jump(name_map[term.target])
        elif isinstance(term, ir.CondJump):
            a = remap(term.a) if isinstance(term.a, ir.VReg) else term.a
            b = remap(term.b) if isinstance(term.b, ir.VReg) else term.b
            dst_block.terminator = ir.CondJump(
                term.op, a, b, name_map[term.if_true],
                name_map[term.if_false])
        cloned.append(dst_block)

    insert_at = caller.blocks.index(block) + 1
    caller.blocks[insert_at:insert_at] = cloned + [continuation]


def run_module(module: ir.Module) -> bool:
    """Inline eligible call sites across the module; prune dead functions."""
    changed = False
    for _round in range(4):
        graph = _call_graph(module)
        recursive = _recursive_functions(graph)
        counts = _call_counts(module)
        round_changed = False
        for caller in module.functions.values():
            if _function_size(caller) > CALLER_GROWTH_LIMIT:
                continue
            for block in list(caller.blocks):
                for index, instr in enumerate(block.instrs):
                    if not isinstance(instr, ir.Call):
                        continue
                    callee = module.functions.get(instr.func)
                    if callee is None or callee is caller:
                        continue
                    if instr.func in recursive:
                        continue
                    small = _function_size(callee) <= INLINE_SIZE_LIMIT
                    once = counts.get(instr.func, 0) == 1
                    if not (small or once):
                        continue
                    _inline_call(caller, block, index, callee)
                    round_changed = True
                    changed = True
                    break  # block structure changed; rescan caller
                else:
                    continue
                break
        if not round_changed:
            break
    _prune_dead_functions(module)
    return changed


def _prune_dead_functions(module: ir.Module) -> None:
    if "main" not in module.functions:
        return
    graph = _call_graph(module)
    live: set[str] = set()
    stack = ["main"]
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(c for c in graph.get(name, ()) if c in module.functions)
    for name in list(module.functions):
        if name not in live:
            del module.functions[name]
