"""Copy and constant propagation (enabled at O1+).

Two flavours, both sound on the non-SSA IR:

* **Global single-def propagation** -- if ``x`` is defined exactly once,
  by ``x = y`` where ``y`` is a constant or itself single-def, every use
  of ``x`` can read ``y`` directly. Soundness rests on a builder
  invariant: the IR builder emits each vreg's defining Move lexically
  before any use (MinC declarations dominate their scope), so a
  single-def source's one definition always precedes the copy and its
  value can never change between the copy and any use of the copy's
  destination. Passes preserve the invariant (unrolling clones defs,
  making them multi-def; inlining allocates fresh vregs).
* **Block-local propagation** -- within a block, track live copies
  ``dst -> src`` and rewrite uses until either side is redefined.
"""

from __future__ import annotations

from .. import analysis, ir


def _global_propagation(func: ir.Function) -> bool:
    single = analysis.single_def_vregs(func)
    mapping: dict[ir.VReg, ir.Value] = {}
    for instr in func.instructions():
        if isinstance(instr, ir.Move) and instr.dst in single:
            src = instr.src
            if isinstance(src, ir.Const) or (isinstance(src, ir.VReg)
                                             and src in single):
                mapping[instr.dst] = src
    if not mapping:
        return False
    # Resolve chains (a -> b -> const) with cycle safety.
    for key in list(mapping):
        seen = {key}
        value = mapping[key]
        while isinstance(value, ir.VReg) and value in mapping \
                and value not in seen:
            seen.add(value)
            value = mapping[value]
        mapping[key] = value
    changed = False
    for block in func.blocks:
        for instr in block.instrs:
            before = instr.uses()
            instr.replace_uses(mapping)
            if instr.uses() != before:
                changed = True
        assert block.terminator is not None
        before = block.terminator.uses()
        block.terminator.replace_uses(mapping)
        if block.terminator.uses() != before:
            changed = True
    return changed


def _local_propagation(func: ir.Function) -> bool:
    changed = False
    for block in func.blocks:
        copies: dict[ir.VReg, ir.Value] = {}
        for instr in block.instrs:
            if copies:
                live = {k: v for k, v in copies.items()}
                before = instr.uses()
                instr.replace_uses(live)
                if instr.uses() != before:
                    changed = True
            dst = instr.defs()
            if dst is not None:
                # Kill copies involving the redefined register.
                copies.pop(dst, None)
                for key in [k for k, v in copies.items() if v == dst]:
                    del copies[key]
                if isinstance(instr, ir.Move) and instr.src != dst:
                    copies[dst] = instr.src
        if copies and block.terminator is not None:
            before = block.terminator.uses()
            block.terminator.replace_uses(copies)
            if block.terminator.uses() != before:
                changed = True
    return changed


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = _global_propagation(func)
    changed |= _local_propagation(func)
    return changed
