"""Common-subexpression elimination via block-local value numbering
(enabled at O2+, and cheap enough that O1 also runs it, as GCC's
``-ftree-*-dce``/dominator opts do at O1).

Within a block, pure computations are keyed by (operation, value numbers
of operands); a repeated key is replaced by a copy from the first holder.
Redefinition of a register bumps its version, invalidating stale keys.
Loads are *not* value-numbered (no alias analysis)."""

from __future__ import annotations

from .. import ir


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = False
    for block in func.blocks:
        version: dict[ir.VReg, int] = {}
        available: dict[tuple[object, ...], ir.VReg] = {}
        holder_version: dict[tuple[object, ...], int] = {}

        def value_number(value: ir.Value) -> tuple[object, ...]:
            if isinstance(value, ir.Const):
                return ("c", value.value)
            return ("r", value.id, version.get(value, 0))

        new_instrs: list[ir.Instr] = []
        for instr in block.instrs:
            key: tuple[object, ...] | None = None
            if isinstance(instr, ir.BinOp):
                a, b = value_number(instr.a), value_number(instr.b)
                if instr.op in ir.COMMUTATIVE_OPS and b < a:
                    a, b = b, a
                key = (instr.op, a, b)
            elif isinstance(instr, ir.La):
                key = ("la", instr.symbol)
            elif isinstance(instr, ir.SlotAddr):
                key = ("slot", instr.slot)
            if key is not None:
                holder = available.get(key)
                if holder is not None and \
                        holder_version[key] == version.get(holder, 0):
                    new_instrs.append(ir.Move(instr.defs(), holder))
                    dst = instr.defs()
                    assert dst is not None
                    version[dst] = version.get(dst, 0) + 1
                    changed = True
                    continue
            dst = instr.defs()
            if dst is not None:
                version[dst] = version.get(dst, 0) + 1
            if key is not None:
                assert dst is not None
                available[key] = dst
                holder_version[key] = version.get(dst, 0)
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed
