"""Strength reduction (enabled at O2+).

Replaces expensive multiply/divide/remainder by cheap shift/add sequences
when one operand is a suitable constant:

* ``x * 2^k``      -> ``x << k``
* ``x * (2^k + 1)``-> ``(x << k) + x``
* ``x * (2^k - 1)``-> ``(x << k) - x``
* ``x / 2^k``      -> sign-corrected arithmetic shift (C truncation)
* ``x % 2^k``      -> via the reduced divide (``x - (x/2^k) << k``)
"""

from __future__ import annotations

from .. import ir
from .common import is_power_of_two, norm_const


def _signed_div_pow2(func: ir.Function, out: list[ir.Instr], dst: ir.VReg,
                     x: ir.Value, k: int, xlen: int) -> None:
    """dst = x / 2**k with C round-toward-zero semantics."""
    if k == 0:
        out.append(ir.Move(dst, x))
        return
    sign = func.new_vreg("sr")
    out.append(ir.BinOp(sign, "ashr", x, ir.Const(xlen - 1)))
    bias = func.new_vreg("sr")
    out.append(ir.BinOp(bias, "lshr", sign, ir.Const(xlen - k)))
    adjusted = func.new_vreg("sr")
    out.append(ir.BinOp(adjusted, "add", x, bias))
    out.append(ir.BinOp(dst, "ashr", adjusted, ir.Const(k)))


def _reduce(func: ir.Function, instr: ir.BinOp,
            xlen: int) -> list[ir.Instr] | None:
    if not isinstance(instr.b, ir.Const):
        return None
    value = norm_const(instr.b.value, xlen)
    if instr.op == "mul":
        if is_power_of_two(value):
            return [ir.BinOp(instr.dst, "shl", instr.a,
                             ir.Const(value.bit_length() - 1))]
        if value > 2 and is_power_of_two(value - 1):
            shifted = func.new_vreg("sr")
            return [
                ir.BinOp(shifted, "shl", instr.a,
                         ir.Const((value - 1).bit_length() - 1)),
                ir.BinOp(instr.dst, "add", shifted, instr.a),
            ]
        if value > 2 and is_power_of_two(value + 1):
            shifted = func.new_vreg("sr")
            return [
                ir.BinOp(shifted, "shl", instr.a,
                         ir.Const((value + 1).bit_length() - 1)),
                ir.BinOp(instr.dst, "sub", shifted, instr.a),
            ]
        return None
    if instr.op == "div" and is_power_of_two(value):
        out: list[ir.Instr] = []
        _signed_div_pow2(func, out, instr.dst, instr.a,
                         value.bit_length() - 1, xlen)
        return out
    if instr.op == "rem" and is_power_of_two(value):
        k = value.bit_length() - 1
        out = []
        quotient = func.new_vreg("sr")
        _signed_div_pow2(func, out, quotient, instr.a, k, xlen)
        scaled = func.new_vreg("sr")
        out.append(ir.BinOp(scaled, "shl", quotient, ir.Const(k)))
        out.append(ir.BinOp(instr.dst, "sub", instr.a, scaled))
        return out
    return None


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = False
    for block in func.blocks:
        new_instrs: list[ir.Instr] = []
        for instr in block.instrs:
            if isinstance(instr, ir.BinOp):
                reduced = _reduce(func, instr, module.xlen)
                if reduced is not None:
                    new_instrs.extend(reduced)
                    changed = True
                    continue
            new_instrs.append(instr)
        block.instrs = new_instrs
    return changed
