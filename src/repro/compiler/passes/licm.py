"""Loop-invariant code motion (enabled at O2+).

For each natural loop (innermost first) a preheader is created and pure,
non-trapping computations whose operands are loop-invariant are hoisted
into it. An instruction qualifies when:

* it is a BinOp (except div/rem, which can trap and must not be executed
  speculatively), Move, La, or SlotAddr;
* every vreg operand has **no definition inside the loop**;
* its destination is defined **exactly once in the whole function** (so
  hoisting cannot clobber another definition's value).
"""

from __future__ import annotations

from .. import analysis, ir


def _loop_defs(func: ir.Function, loop: analysis.Loop) -> set[ir.VReg]:
    defs: set[ir.VReg] = set()
    for block in func.blocks:
        if block.name in loop.body:
            for instr in block.instrs:
                dst = instr.defs()
                if dst is not None:
                    defs.add(dst)
    return defs


def _ensure_preheader(func: ir.Function, loop: analysis.Loop) -> ir.Block:
    """Create (or reuse) a block that is the unique non-latch entry."""
    preds = func.predecessors()
    outside = [p for p in preds[loop.header] if p not in loop.body]
    blocks = func.block_map()
    if len(outside) == 1:
        candidate = blocks[outside[0]]
        if isinstance(candidate.terminator, ir.Jump):
            return candidate
    pre = ir.Block(f"{loop.header}.pre{len(func.blocks)}")
    pre.terminator = ir.Jump(loop.header)
    for name in outside:
        term = blocks[name].terminator
        assert term is not None
        if isinstance(term, ir.Jump) and term.target == loop.header:
            term.target = pre.name
        elif isinstance(term, ir.CondJump):
            if term.if_true == loop.header:
                term.if_true = pre.name
            if term.if_false == loop.header:
                term.if_false = pre.name
    index = func.blocks.index(blocks[loop.header])
    func.blocks.insert(index, pre)
    return pre


def _hoistable(instr: ir.Instr) -> bool:
    if isinstance(instr, ir.BinOp):
        return instr.op not in ("div", "rem")
    return isinstance(instr, (ir.Move, ir.La, ir.SlotAddr))


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = False
    for loop in analysis.find_loops(func):
        single_def = analysis.single_def_vregs(func)
        preheader: ir.Block | None = None
        while True:
            loop_defs = _loop_defs(func, loop)
            hoisted_any = False
            for block in func.blocks:
                if block.name not in loop.body:
                    continue
                remaining: list[ir.Instr] = []
                for instr in block.instrs:
                    dst = instr.defs()
                    invariant = (
                        _hoistable(instr)
                        and dst is not None and dst in single_def
                        and all(not (isinstance(v, ir.VReg)
                                     and v in loop_defs)
                                for v in instr.uses()))
                    if invariant:
                        if preheader is None:
                            preheader = _ensure_preheader(func, loop)
                        preheader.instrs.append(instr)
                        loop_defs.discard(dst)
                        hoisted_any = True
                        changed = True
                    else:
                        remaining.append(instr)
                block.instrs = remaining
            if not hoisted_any:
                break
    return changed
