"""Optimization passes, one module per transform.

Function passes expose ``run(func, module) -> bool``; the inliner is a
module pass exposing ``run_module(module) -> bool``. Pipelines per
optimization level are assembled in :mod:`repro.compiler.pipeline`.
"""

from . import (
    addrfold,
    constfold,
    copyprop,
    cse,
    dce,
    inline,
    licm,
    schedule,
    simplify_cfg,
    strength,
    unroll,
)

__all__ = [
    "addrfold",
    "constfold",
    "copyprop",
    "cse",
    "dce",
    "inline",
    "licm",
    "schedule",
    "simplify_cfg",
    "strength",
    "unroll",
]
