"""Constant folding and algebraic simplification (enabled at O1+).

Folds binary ops over constant operands (with exact armlet wrap
semantics), applies algebraic identities, canonicalizes commutative ops to
put constants on the right, and folds conditional jumps whose operands are
both constant.
"""

from __future__ import annotations

from .. import ir
from .common import eval_binop, eval_cond, norm_const


def _simplify(instr: ir.BinOp, xlen: int) -> ir.Instr:
    op, a, b = instr.op, instr.a, instr.b
    if isinstance(a, ir.Const) and isinstance(b, ir.Const):
        folded = eval_binop(op, a.value, b.value, xlen)
        if folded is not None:
            return ir.Move(instr.dst, ir.Const(folded))
        return instr
    # Canonicalize: constant to the right for commutative ops.
    if isinstance(a, ir.Const) and op in ir.COMMUTATIVE_OPS:
        instr.a, instr.b = b, a
        a, b = instr.a, instr.b
    if isinstance(b, ir.Const):
        bv = norm_const(b.value, xlen)
        if op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") \
                and bv == 0:
            return ir.Move(instr.dst, a)
        if op == "and" and bv == 0:
            return ir.Move(instr.dst, ir.Const(0))
        if op == "and" and bv == -1:
            return ir.Move(instr.dst, a)
        if op == "mul" and bv == 1:
            return ir.Move(instr.dst, a)
        if op == "mul" and bv == 0:
            return ir.Move(instr.dst, ir.Const(0))
        if op == "div" and bv == 1:
            return ir.Move(instr.dst, a)
        if op == "rem" and bv == 1:
            return ir.Move(instr.dst, ir.Const(0))
    if isinstance(a, ir.Const):
        av = norm_const(a.value, xlen)
        if op in ("add", "or", "xor") and av == 0:
            return ir.Move(instr.dst, b)
        if op in ("mul", "and", "div", "rem", "shl", "lshr", "ashr") \
                and av == 0:
            return ir.Move(instr.dst, ir.Const(0))
    if isinstance(a, ir.VReg) and a == b:
        if op in ("sub", "xor"):
            return ir.Move(instr.dst, ir.Const(0))
        if op in ("and", "or"):
            return ir.Move(instr.dst, a)
        if op in ("slt", "sltu"):
            return ir.Move(instr.dst, ir.Const(0))
    return instr


def run(func: ir.Function, module: ir.Module) -> bool:
    """Fold constants in ``func``; returns True if anything changed."""
    xlen = module.xlen
    changed = False
    for block in func.blocks:
        new_instrs: list[ir.Instr] = []
        for instr in block.instrs:
            if isinstance(instr, ir.BinOp):
                simplified = _simplify(instr, xlen)
                if simplified is not instr:
                    changed = True
                new_instrs.append(simplified)
            else:
                new_instrs.append(instr)
        block.instrs = new_instrs
        term = block.terminator
        if isinstance(term, ir.CondJump) and isinstance(term.a, ir.Const) \
                and isinstance(term.b, ir.Const):
            taken = eval_cond(term.op, term.a.value, term.b.value, xlen)
            block.terminator = ir.Jump(
                term.if_true if taken else term.if_false)
            changed = True
        elif isinstance(term, ir.CondJump) and term.if_true == term.if_false:
            block.terminator = ir.Jump(term.if_true)
            changed = True
    return changed
