"""Loop unrolling (enabled at O3).

Because the IR is not SSA, a loop body can be replicated verbatim: the
clones reuse the same virtual registers, so dataflow is preserved by
construction. Each clone keeps its own exit test, which makes the
transform valid for *any* loop shape (it is iterated peeling inside the
loop): the dynamic instruction stream is unchanged except for the reduced
number of taken back-edge branches, while the static code grows by the
unroll factor -- precisely the O3 code-size signature the paper leans on.

Only innermost loops with a single latch and a bounded body size are
unrolled, by ``UNROLL_FACTOR``.
"""

from __future__ import annotations

from .. import analysis, ir

UNROLL_FACTOR = 2
MAX_BODY_BLOCKS = 6
MAX_BODY_INSTRS = 48


def _clone_body(func: ir.Function, body_blocks: list[ir.Block],
                suffix: str) -> tuple[list[ir.Block], dict[str, str]]:
    name_map = {b.name: b.name + suffix for b in body_blocks}
    clones: list[ir.Block] = []
    for src in body_blocks:
        clone = ir.Block(name_map[src.name])
        clone.instrs = [ir.clone_instr(i) for i in src.instrs]
        term = src.terminator
        assert term is not None
        clone.terminator = ir.clone_terminator(term)
        clones.append(clone)
    return clones, name_map


def _retarget(term: ir.Terminator, mapping: dict[str, str]) -> None:
    if isinstance(term, ir.Jump):
        term.target = mapping.get(term.target, term.target)
    elif isinstance(term, ir.CondJump):
        term.if_true = mapping.get(term.if_true, term.if_true)
        term.if_false = mapping.get(term.if_false, term.if_false)


def _unroll_loop(func: ir.Function, loop: analysis.Loop,
                 factor: int) -> None:
    blocks = func.block_map()
    body_blocks = [b for b in func.blocks if b.name in loop.body]
    latch = loop.latches[0]

    copies: list[tuple[list[ir.Block], dict[str, str]]] = []
    for _ in range(1, factor):
        # suffix from the function's block counter: unique even when the
        # same loop is unrolled again by an iterated custom pipeline
        suffix = f".u{func._next_block}"
        func._next_block += 1
        copies.append(_clone_body(func, body_blocks, suffix))

    # Rewire back edges: original latch -> copy 1, copy i -> copy i+1,
    # last copy -> original header. Internal edges stay within each copy.
    for i, (clones, name_map) in enumerate(copies):
        if i + 1 < len(copies):
            next_header = copies[i + 1][1][loop.header]
        else:
            next_header = loop.header
        for clone in clones:
            assert clone.terminator is not None
            internal = dict(name_map)
            internal[loop.header] = next_header
            # The clone of the header's *entry* is jumped to via back
            # edges; edges to the header from within this copy are the
            # copy's own back edge and must go to the next copy.
            _retarget(clone.terminator, internal)

    first_header = copies[0][1][loop.header]
    latch_term = blocks[latch].terminator
    assert latch_term is not None
    _retarget(latch_term, {loop.header: first_header})

    insert_at = max(func.blocks.index(b) for b in body_blocks) + 1
    new_blocks: list[ir.Block] = []
    for clones, _ in copies:
        new_blocks.extend(clones)
    func.blocks[insert_at:insert_at] = new_blocks


def run(func: ir.Function, module: ir.Module,
        factor: int = UNROLL_FACTOR) -> bool:
    if factor < 2:
        return False
    loops = analysis.find_loops(func)
    inner_headers: set[str] = set()
    # innermost = loop whose body contains no other loop's header
    headers = {loop.header for loop in loops}
    for loop in loops:
        if not (loop.body - {loop.header}) & headers:
            inner_headers.add(loop.header)
    changed = False
    for loop in loops:
        if loop.header not in inner_headers:
            continue
        if len(loop.latches) != 1 or loop.size > MAX_BODY_BLOCKS:
            continue
        total = sum(len(b.instrs) for b in func.blocks
                    if b.name in loop.body)
        if total > MAX_BODY_INSTRS:
            continue
        _unroll_loop(func, loop, factor)
        changed = True
    return changed
