"""Shared helpers for optimization passes: constant evaluation matching
the armlet datapath, condition evaluation for branch folding, and the
diagnostic naming hook the pipeline's verifier uses to attribute an
invariant violation to the pass that caused it."""

from __future__ import annotations

from collections.abc import Callable

from ...isa import semantics
from ...isa.instructions import Opcode
from .. import ir


def pass_label(pass_fn: Callable[..., object]) -> str:
    """Diagnostic name of a pass callable.

    Passes are module-level ``run`` functions, so the defining module's
    basename (``repro.compiler.passes.cse`` -> ``cse``) is the name the
    registry and the ablation CLI use; fall back to ``__name__`` for
    ad-hoc callables in tests.
    """
    module = getattr(pass_fn, "__module__", "") or ""
    label = module.rsplit(".", 1)[-1]
    if label in ("", "common"):
        label = getattr(pass_fn, "__name__", repr(pass_fn))
    return label

_IR_TO_OPCODE = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "rem": Opcode.REM, "and": Opcode.AND,
    "or": Opcode.ORR, "xor": Opcode.EOR, "shl": Opcode.LSL,
    "lshr": Opcode.LSR, "ashr": Opcode.ASR, "slt": Opcode.SLT,
    "sltu": Opcode.SLTU,
}


def norm_const(value: int, xlen: int) -> int:
    """Canonical (signed) representation of a constant at width ``xlen``."""
    return semantics.to_signed(semantics.wrap(value, xlen), xlen)


def eval_binop(op: str, a: int, b: int, xlen: int) -> int | None:
    """Fold a binary op over constants; None if it would trap (div by 0)."""
    if op in ("div", "rem") and semantics.wrap(b, xlen) == 0:
        return None
    result = semantics.alu(_IR_TO_OPCODE[op], semantics.wrap(a, xlen),
                           semantics.wrap(b, xlen), xlen)
    return norm_const(result, xlen)


def eval_cond(op: str, a: int, b: int, xlen: int) -> bool:
    """Evaluate an IR condition code over constants."""
    ua, ub = semantics.wrap(a, xlen), semantics.wrap(b, xlen)
    sa, sb = semantics.to_signed(ua, xlen), semantics.to_signed(ub, xlen)
    if op == "eq":
        return ua == ub
    if op == "ne":
        return ua != ub
    if op == "lt":
        return sa < sb
    if op == "le":
        return sa <= sb
    if op == "gt":
        return sa > sb
    if op == "ge":
        return sa >= sb
    if op == "ltu":
        return ua < ub
    if op == "leu":
        return ua <= ub
    if op == "gtu":
        return ua > ub
    if op == "geu":
        return ua >= ub
    raise ValueError(f"unknown condition {op!r}")


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0
