"""Addressing-mode folding (enabled at O1+).

armlet loads and stores take a base register plus a 16-bit immediate
offset. This peephole folds ``t = add base, C`` into the offset field of
loads/stores that use ``t`` as their base, letting DCE retire the add.
Only single-def address producers are folded (sound on non-SSA IR for the
same reason as global copy propagation)."""

from __future__ import annotations

from .. import analysis, ir
from .common import norm_const

_OFFSET_MIN, _OFFSET_MAX = -(1 << 15), (1 << 15) - 1


def run(func: ir.Function, module: ir.Module) -> bool:
    single = analysis.single_def_vregs(func)
    adds: dict[ir.VReg, tuple[ir.Value, int]] = {}
    for instr in func.instructions():
        if isinstance(instr, ir.BinOp) and instr.op == "add" \
                and instr.dst in single and isinstance(instr.b, ir.Const):
            base = instr.a
            if isinstance(base, ir.VReg) and base in single:
                adds[instr.dst] = (base, norm_const(instr.b.value,
                                                    module.xlen))
    if not adds:
        return False
    changed = False
    for block in func.blocks:
        for instr in block.instrs:
            if not isinstance(instr, (ir.Load, ir.Store)):
                continue
            base = instr.base
            if isinstance(base, ir.VReg) and base in adds:
                origin, delta = adds[base]
                if isinstance(origin, ir.Const):
                    continue
                folded = instr.offset + delta
                if _OFFSET_MIN <= folded <= _OFFSET_MAX:
                    instr.base = origin
                    instr.offset = folded
                    changed = True
    return changed
