"""Control-flow graph cleanup (enabled at O1+): unreachable-block removal,
empty-block jump threading, and straight-line block merging. This is the
"cross jumping"-style tidying the paper attributes to O1/O2."""

from __future__ import annotations

from .. import analysis, ir


def _remove_unreachable(func: ir.Function) -> bool:
    reachable = analysis.reachable_blocks(func)
    if len(reachable) == len(func.blocks):
        return False
    func.blocks = [b for b in func.blocks if b.name in reachable]
    return True


def _thread_empty_jumps(func: ir.Function) -> bool:
    """Redirect edges that pass through an empty block ending in a jump."""
    forward: dict[str, str] = {}
    entry = func.blocks[0].name
    for block in func.blocks:
        if not block.instrs and isinstance(block.terminator, ir.Jump) \
                and block.name != entry \
                and block.terminator.target != block.name:
            forward[block.name] = block.terminator.target

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    changed = False
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, ir.Jump):
            target = resolve(term.target)
            if target != term.target:
                term.target = target
                changed = True
        elif isinstance(term, ir.CondJump):
            if_true = resolve(term.if_true)
            if_false = resolve(term.if_false)
            if (if_true, if_false) != (term.if_true, term.if_false):
                term.if_true, term.if_false = if_true, if_false
                changed = True
            if term.if_true == term.if_false:
                block.terminator = ir.Jump(term.if_true)
                changed = True
    return changed


def _merge_straight_line(func: ir.Function) -> bool:
    """Merge A -> B when A jumps to B and B has no other predecessor."""
    changed = False
    while True:
        preds = func.predecessors()
        blocks = func.block_map()
        merged = False
        for block in func.blocks:
            term = block.terminator
            if not isinstance(term, ir.Jump):
                continue
            target = term.target
            if target == block.name or target == func.blocks[0].name:
                continue
            if len(preds[target]) != 1:
                continue
            succ = blocks[target]
            block.instrs.extend(succ.instrs)
            block.terminator = succ.terminator
            func.blocks.remove(succ)
            merged = True
            changed = True
            break
        if not merged:
            return changed


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = _remove_unreachable(func)
    changed |= _thread_empty_jumps(func)
    changed |= _remove_unreachable(func)
    changed |= _merge_straight_line(func)
    return changed
