"""Dead-code elimination (enabled at O1+).

Removes pure instructions whose results are never used, walking each block
backward against the liveness solution and iterating to a fixpoint.
"""

from __future__ import annotations

from .. import analysis, ir


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = False
    while True:
        _, live_out = analysis.liveness(func)
        removed = False
        for block in func.blocks:
            live = set(live_out[block.name])
            assert block.terminator is not None
            for value in block.terminator.uses():
                if isinstance(value, ir.VReg):
                    live.add(value)
            kept: list[ir.Instr] = []
            for instr in reversed(block.instrs):
                dst = instr.defs()
                if dst is not None and dst not in live and instr.is_pure:
                    removed = True
                    continue
                if dst is not None:
                    live.discard(dst)
                for value in instr.uses():
                    if isinstance(value, ir.VReg):
                        live.add(value)
                kept.append(instr)
            kept.reverse()
            if len(kept) != len(block.instrs):
                block.instrs = kept
        if not removed:
            return changed
        changed = True
