"""Local list scheduling (enabled at O2+).

Reorders instructions inside each basic block to hide load and multiply
latency, exactly the "instruction scheduling" ingredient the paper
attributes to O2. Dependences honoured: RAW/WAR/WAW on virtual registers,
loads/stores ordered against stores (no alias analysis), and calls /
syscalls acting as full barriers that split the block into regions.

Priority is critical-path height with latencies load=3, mul=3, div=12,
other=1; ties break toward original order, making the pass deterministic.
"""

from __future__ import annotations

from .. import ir


def _latency(instr: ir.Instr) -> int:
    if isinstance(instr, ir.Load):
        return 3
    if isinstance(instr, ir.BinOp):
        if instr.op == "mul":
            return 3
        if instr.op in ("div", "rem"):
            return 12
    return 1


def _is_barrier(instr: ir.Instr) -> bool:
    return isinstance(instr, (ir.Call, ir.Syscall))


def _schedule_region(region: list[ir.Instr]) -> list[ir.Instr]:
    n = len(region)
    if n < 3:
        return region
    succs: list[set[int]] = [set() for _ in range(n)]
    pred_count = [0] * n

    last_def: dict[ir.VReg, int] = {}
    last_uses: dict[ir.VReg, list[int]] = {}
    mem_ops: list[tuple[int, bool]] = []  # (index, is_store)

    def add_edge(src: int, dst: int) -> None:
        if src != dst and dst not in succs[src]:
            succs[src].add(dst)
            pred_count[dst] += 1

    for i, instr in enumerate(region):
        for value in instr.uses():
            if isinstance(value, ir.VReg):
                if value in last_def:
                    add_edge(last_def[value], i)      # RAW
                last_uses.setdefault(value, []).append(i)
        dst = instr.defs()
        if dst is not None:
            if dst in last_def:
                add_edge(last_def[dst], i)            # WAW
            for use in last_uses.get(dst, ()):
                add_edge(use, i)                      # WAR
            last_def[dst] = i
            last_uses[dst] = []
        if isinstance(instr, (ir.Load, ir.Store)):
            is_store = isinstance(instr, ir.Store)
            for j, j_store in mem_ops:
                if is_store or j_store:
                    add_edge(j, i)
            mem_ops.append((i, is_store))

    height = [0] * n
    for i in range(n - 1, -1, -1):
        tail = max((height[s] for s in succs[i]), default=0)
        height[i] = _latency(region[i]) + tail

    ready = [i for i in range(n) if pred_count[i] == 0]
    order: list[int] = []
    while ready:
        ready.sort(key=lambda i: (-height[i], i))
        chosen = ready.pop(0)
        order.append(chosen)
        for succ in succs[chosen]:
            pred_count[succ] -= 1
            if pred_count[succ] == 0:
                ready.append(succ)
    assert len(order) == n
    return [region[i] for i in order]


def run(func: ir.Function, module: ir.Module) -> bool:
    changed = False
    for block in func.blocks:
        regions: list[list[ir.Instr]] = [[]]
        for instr in block.instrs:
            if _is_barrier(instr):
                regions.append([instr])
                regions.append([])
            else:
                regions[-1].append(instr)
        scheduled: list[ir.Instr] = []
        for region in regions:
            if region and not _is_barrier(region[0]):
                scheduled.extend(_schedule_region(region))
            else:
                scheduled.extend(region)
        if scheduled != block.instrs:
            block.instrs = scheduled
            changed = True
    return changed
