"""armlet code generation from allocated IR.

One :class:`ProgramBuilder` assembles a whole module: a ``_start`` stub
(``bl main; svc 0``), then each function. Branch targets are symbolic
until :meth:`ProgramBuilder.finalize` patches displacement fields.

The generator has two personalities driven by the allocation mode:

* **stack mode (O0)** -- every operand is reloaded from its frame home
  into a scratch register before use and every result is stored back,
  faithfully mimicking ``-O0`` output;
* **linear mode (O1+)** -- operands live in allocated registers, spilled
  values round-trip through the reserved scratch registers t4-t6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError
from ..isa import registers
from ..isa.assembler import expand_li
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program
from . import ir
from .regalloc import SCRATCH, Allocation

_IMM_MIN, _IMM_MAX = -(1 << 15), (1 << 15) - 1

_RR_OPCODE = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "div": Opcode.DIV, "rem": Opcode.REM, "and": Opcode.AND,
    "or": Opcode.ORR, "xor": Opcode.EOR, "shl": Opcode.LSL,
    "lshr": Opcode.LSR, "ashr": Opcode.ASR, "slt": Opcode.SLT,
    "sltu": Opcode.SLTU,
}

_IMM_OPCODE = {
    "add": Opcode.ADDI, "and": Opcode.ANDI, "or": Opcode.ORI,
    "xor": Opcode.EORI, "shl": Opcode.LSLI, "lshr": Opcode.LSRI,
    "ashr": Opcode.ASRI, "slt": Opcode.SLTI,
}

# condition -> (opcode, swap_operands)
_COND_BRANCH = {
    "eq": (Opcode.BEQ, False), "ne": (Opcode.BNE, False),
    "lt": (Opcode.BLT, False), "ge": (Opcode.BGE, False),
    "ltu": (Opcode.BLTU, False), "geu": (Opcode.BGEU, False),
    "le": (Opcode.BGE, True), "gt": (Opcode.BLT, True),
    "leu": (Opcode.BGEU, True), "gtu": (Opcode.BLTU, True),
}


def _fits_imm(value: int) -> bool:
    return _IMM_MIN <= value <= _IMM_MAX


@dataclass
class _PendingBranch:
    opcode: Opcode
    rs1: int
    rs2: int
    label: str


class ProgramBuilder:
    """Accumulates instructions and symbolic branches for a module."""

    def __init__(self, xlen: int, name: str) -> None:
        self.xlen = xlen
        self.word = xlen // 8
        self.items: list[Instruction | _PendingBranch] = []
        self.labels: dict[str, int] = {}
        self.name = name

    def here(self) -> int:
        return len(self.items)

    def label(self, name: str) -> None:
        if name in self.labels:
            raise CompileError(f"duplicate code label {name!r}")
        self.labels[name] = len(self.items)

    def emit(self, instr: Instruction) -> None:
        self.items.append(instr)

    def emit_branch(self, opcode: Opcode, label: str, rs1: int = 0,
                    rs2: int = 0) -> None:
        self.items.append(_PendingBranch(opcode, rs1, rs2, label))

    def load_const(self, rd: int, value: int) -> None:
        """Materialize ``value`` into ``rd`` with the shortest sequence."""
        mask = (1 << self.xlen) - 1
        value &= mask
        signed = value - (1 << self.xlen) if value >> (self.xlen - 1) \
            else value
        if _fits_imm(signed):
            self.emit(Instruction(Opcode.ADDI, rd=rd, rs1=registers.ZERO,
                                  imm=signed))
            return
        for instr in expand_li(rd, value, self.xlen):
            self.emit(instr)

    def finalize(self, data: bytearray, data_symbols: dict[str, int],
                 text_symbols: dict[str, int] | None = None) -> Program:
        text: list[Instruction] = []
        for index, item in enumerate(self.items):
            if isinstance(item, _PendingBranch):
                if item.label not in self.labels:
                    raise CompileError(f"undefined label {item.label!r}")
                displacement = self.labels[item.label] - index
                text.append(Instruction(item.opcode, rs1=item.rs1,
                                        rs2=item.rs2, imm=displacement))
            else:
                text.append(item)
        symbols = dict(text_symbols or {})
        symbols.update(self.labels)
        return Program(text=text, data=data, text_symbols=symbols,
                       data_symbols=dict(data_symbols),
                       entry=self.labels.get("_start", 0), xlen=self.xlen,
                       name=self.name)


class FunctionCodegen:
    """Emits armlet code for one IR function."""

    def __init__(self, func: ir.Function, alloc: Allocation,
                 builder: ProgramBuilder,
                 data_offsets: dict[str, int]) -> None:
        self.func = func
        self.alloc = alloc
        self.builder = builder
        self.data_offsets = data_offsets
        self.word = builder.word
        self.save_lr = alloc.has_calls or alloc.mode == "stack"
        self.save_fp = alloc.mode == "stack"
        self._layout_frame()

    # ---------------------------------------------------------------- frame

    def _layout_frame(self) -> None:
        word = self.word
        offset = self.alloc.num_spill_slots * word
        self.slot_offsets: dict[int, int] = {}
        for slot in self.func.slots:
            align = max(slot.align, 1)
            offset = (offset + align - 1) // align * align
            self.slot_offsets[slot.index] = offset
            offset += slot.size_bytes
        offset = (offset + word - 1) // word * word
        saves = len(self.alloc.used_callee_saved)
        saves += 1 if self.save_lr else 0
        saves += 1 if self.save_fp else 0
        self.save_base = offset
        offset += saves * word
        self.frame_size = (offset + 15) // 16 * 16

    def _spill_offset(self, slot: int) -> int:
        return slot * self.word

    # -------------------------------------------------------------- operands

    def _reg_of(self, vreg: ir.VReg) -> int | None:
        return self.alloc.assignment.get(vreg)

    def _value_into(self, value: ir.Value, scratch: int) -> int:
        """Return a physical register holding ``value``.

        Uses ``scratch`` when the value is a constant or spilled.
        """
        emit = self.builder.emit
        if isinstance(value, ir.Const):
            if value.value == 0:
                return registers.ZERO
            self.builder.load_const(scratch, value.value)
            return scratch
        reg = self._reg_of(value)
        if reg is not None:
            return reg
        slot = self.alloc.spill_slots.get(value)
        if slot is None:
            # Value never defined on any path (dead code at O0); treat as 0.
            return registers.ZERO
        emit(Instruction(Opcode.LDR, rd=scratch, rs1=registers.SP,
                         imm=self._spill_offset(slot)))
        return scratch

    def _dest_reg(self, vreg: ir.VReg) -> tuple[int, bool]:
        """(register to compute into, needs_store_back)."""
        reg = self._reg_of(vreg)
        if reg is not None:
            return reg, False
        return SCRATCH[2], True

    def _store_dest(self, vreg: ir.VReg, reg: int) -> None:
        slot = self.alloc.spill_slots[vreg]
        self.builder.emit(Instruction(Opcode.STR, rs2=reg, rs1=registers.SP,
                                      imm=self._spill_offset(slot)))

    def _move_into(self, dst_phys: int, value: ir.Value) -> None:
        """Copy ``value`` into a specific physical register."""
        if isinstance(value, ir.Const):
            self.builder.load_const(dst_phys, value.value)
            return
        reg = self._reg_of(value)
        if reg is not None:
            if reg != dst_phys:
                self.builder.emit(Instruction(Opcode.ADDI, rd=dst_phys,
                                              rs1=reg, imm=0))
            return
        slot = self.alloc.spill_slots.get(value)
        if slot is None:
            self.builder.emit(Instruction(Opcode.ADDI, rd=dst_phys,
                                          rs1=registers.ZERO, imm=0))
            return
        self.builder.emit(Instruction(Opcode.LDR, rd=dst_phys,
                                      rs1=registers.SP,
                                      imm=self._spill_offset(slot)))

    # ------------------------------------------------------------ emission

    def generate(self) -> None:
        builder = self.builder
        builder.label(self.func.name)
        self._prologue()
        order = [b.name for b in self.func.blocks]
        next_of = {name: order[i + 1] if i + 1 < len(order) else None
                   for i, name in enumerate(order)}
        exit_label = f"{self.func.name}.$exit"
        for block in self.func.blocks:
            builder.label(self._block_label(block.name))
            for instr in block.instrs:
                self._gen_instr(instr)
            self._gen_terminator(block, next_of[block.name], exit_label)
        builder.label(exit_label)
        self._epilogue()

    def _block_label(self, name: str) -> str:
        return f"{self.func.name}.{name}"

    def _prologue(self) -> None:
        emit = self.builder.emit
        word = self.word
        if self.frame_size:
            emit(Instruction(Opcode.ADDI, rd=registers.SP, rs1=registers.SP,
                             imm=-self.frame_size))
        offset = self.save_base
        if self.save_lr:
            emit(Instruction(Opcode.STR, rs2=registers.LR, rs1=registers.SP,
                             imm=offset))
            offset += word
        if self.save_fp:
            emit(Instruction(Opcode.STR, rs2=registers.FP, rs1=registers.SP,
                             imm=offset))
            emit(Instruction(Opcode.ADDI, rd=registers.FP, rs1=registers.SP,
                             imm=self.frame_size))
            offset += word
        for reg in self.alloc.used_callee_saved:
            emit(Instruction(Opcode.STR, rs2=reg, rs1=registers.SP,
                             imm=offset))
            offset += word
        for index, param in enumerate(self.func.params):
            if index >= len(registers.ARG_REGS):
                raise CompileError(
                    f"{self.func.name}: more than "
                    f"{len(registers.ARG_REGS)} parameters")
            arg_reg = registers.ARG_REGS[index]
            phys = self._reg_of(param)
            if phys is not None:
                if phys != arg_reg:
                    emit(Instruction(Opcode.ADDI, rd=phys, rs1=arg_reg,
                                     imm=0))
            elif param in self.alloc.spill_slots:
                emit(Instruction(Opcode.STR, rs2=arg_reg, rs1=registers.SP,
                                 imm=self._spill_offset(
                                     self.alloc.spill_slots[param])))

    def _epilogue(self) -> None:
        emit = self.builder.emit
        word = self.word
        offset = self.save_base
        if self.save_lr:
            emit(Instruction(Opcode.LDR, rd=registers.LR, rs1=registers.SP,
                             imm=offset))
            offset += word
        if self.save_fp:
            emit(Instruction(Opcode.LDR, rd=registers.FP, rs1=registers.SP,
                             imm=offset))
            offset += word
        for reg in self.alloc.used_callee_saved:
            emit(Instruction(Opcode.LDR, rd=reg, rs1=registers.SP,
                             imm=offset))
            offset += word
        if self.frame_size:
            emit(Instruction(Opcode.ADDI, rd=registers.SP, rs1=registers.SP,
                             imm=self.frame_size))
        emit(Instruction(Opcode.BR, rs1=registers.LR))

    # ------------------------------------------------------- instructions

    def _gen_instr(self, instr: ir.Instr) -> None:
        if isinstance(instr, ir.BinOp):
            self._gen_binop(instr)
        elif isinstance(instr, ir.Move):
            dst, store = self._dest_reg(instr.dst)
            self._move_into(dst, instr.src)
            if store:
                self._store_dest(instr.dst, dst)
        elif isinstance(instr, ir.Load):
            self._gen_load(instr)
        elif isinstance(instr, ir.Store):
            self._gen_store(instr)
        elif isinstance(instr, ir.La):
            self._gen_la(instr)
        elif isinstance(instr, ir.SlotAddr):
            dst, store = self._dest_reg(instr.dst)
            self.builder.emit(Instruction(
                Opcode.ADDI, rd=dst, rs1=registers.SP,
                imm=self.slot_offsets[instr.slot]))
            if store:
                self._store_dest(instr.dst, dst)
        elif isinstance(instr, ir.Call):
            self._gen_call(instr)
        elif isinstance(instr, ir.Syscall):
            self._move_into(registers.ARG_REGS[0], instr.arg)
            self.builder.emit(Instruction(Opcode.SVC, imm=instr.number))
        else:
            raise CompileError(f"cannot generate {type(instr).__name__}")

    def _gen_binop(self, instr: ir.BinOp) -> None:
        emit = self.builder.emit
        dst, store = self._dest_reg(instr.dst)
        a, b, op = instr.a, instr.b, instr.op
        if isinstance(b, ir.Const):
            imm = b.value
            if op in _IMM_OPCODE and _fits_imm(imm):
                ra = self._value_into(a, SCRATCH[0])
                emit(Instruction(_IMM_OPCODE[op], rd=dst, rs1=ra, imm=imm))
                if store:
                    self._store_dest(instr.dst, dst)
                return
            if op == "sub" and _fits_imm(-imm):
                ra = self._value_into(a, SCRATCH[0])
                emit(Instruction(Opcode.ADDI, rd=dst, rs1=ra, imm=-imm))
                if store:
                    self._store_dest(instr.dst, dst)
                return
        ra = self._value_into(a, SCRATCH[0])
        rb = self._value_into(b, SCRATCH[1])
        emit(Instruction(_RR_OPCODE[op], rd=dst, rs1=ra, rs2=rb))
        if store:
            self._store_dest(instr.dst, dst)

    def _mem_operands(self, base: ir.Value, offset: int,
                      base_scratch: int) -> tuple[int, int]:
        """Resolve a (base reg, imm offset) pair that fits the encoding."""
        reg = self._value_into(base, base_scratch)
        if _fits_imm(offset):
            return reg, offset
        self.builder.load_const(SCRATCH[2], offset)
        self.builder.emit(Instruction(Opcode.ADD, rd=base_scratch, rs1=reg,
                                      rs2=SCRATCH[2]))
        return base_scratch, 0

    def _gen_load(self, instr: ir.Load) -> None:
        dst, store = self._dest_reg(instr.dst)
        base, offset = self._mem_operands(instr.base, instr.offset,
                                          SCRATCH[0])
        opcode = Opcode.LDRB if instr.size == "byte" else Opcode.LDR
        self.builder.emit(Instruction(opcode, rd=dst, rs1=base, imm=offset))
        if store:
            self._store_dest(instr.dst, dst)

    def _gen_store(self, instr: ir.Store) -> None:
        src = self._value_into(instr.src, SCRATCH[0])
        base, offset = self._mem_operands(instr.base, instr.offset,
                                          SCRATCH[1])
        opcode = Opcode.STRB if instr.size == "byte" else Opcode.STR
        self.builder.emit(Instruction(opcode, rs2=src, rs1=base, imm=offset))

    def _gen_la(self, instr: ir.La) -> None:
        dst, store = self._dest_reg(instr.dst)
        offset = self.data_offsets[instr.symbol]
        if _fits_imm(offset):
            self.builder.emit(Instruction(Opcode.ADDI, rd=dst,
                                          rs1=registers.GP, imm=offset))
        else:
            self.builder.load_const(SCRATCH[2], offset)
            self.builder.emit(Instruction(Opcode.ADD, rd=dst,
                                          rs1=registers.GP,
                                          rs2=SCRATCH[2]))
        if store:
            self._store_dest(instr.dst, dst)

    def _gen_call(self, instr: ir.Call) -> None:
        if len(instr.args) > len(registers.ARG_REGS):
            raise CompileError(f"call to {instr.func}: too many arguments")
        for index, arg in enumerate(instr.args):
            self._move_into(registers.ARG_REGS[index], arg)
        self.builder.emit_branch(Opcode.BL, instr.func)
        if instr.dst is not None:
            phys = self._reg_of(instr.dst)
            if phys is not None:
                if phys != registers.RETURN_REG:
                    self.builder.emit(Instruction(
                        Opcode.ADDI, rd=phys, rs1=registers.RETURN_REG,
                        imm=0))
            elif instr.dst in self.alloc.spill_slots:
                self._store_dest(instr.dst, registers.RETURN_REG)

    # -------------------------------------------------------- terminators

    def _gen_terminator(self, block: ir.Block, next_name: str | None,
                        exit_label: str) -> None:
        term = block.terminator
        builder = self.builder
        if isinstance(term, ir.Jump):
            if term.target != next_name:
                builder.emit_branch(Opcode.B, self._block_label(term.target))
            return
        if isinstance(term, ir.CondJump):
            opcode, swap = _COND_BRANCH[term.op]
            a = self._value_into(term.a, SCRATCH[0])
            b = self._value_into(term.b, SCRATCH[1])
            if swap:
                a, b = b, a
            builder.emit_branch(opcode, self._block_label(term.if_true),
                                rs1=a, rs2=b)
            if term.if_false != next_name:
                builder.emit_branch(Opcode.B,
                                    self._block_label(term.if_false))
            return
        if isinstance(term, ir.Ret):
            if term.value is not None:
                self._move_into(registers.RETURN_REG, term.value)
            if next_name is not None:
                builder.emit_branch(Opcode.B, exit_label)
            return
        raise CompileError(f"bad terminator {term!r}")


def layout_data(module: ir.Module) -> tuple[bytearray, dict[str, int]]:
    """Pack global objects into the data segment; returns (bytes, offsets)."""
    data = bytearray()
    offsets: dict[str, int] = {}
    for gobj in module.globals:
        align = max(gobj.align, 1)
        while len(data) % align:
            data.append(0)
        offsets[gobj.name] = len(data)
        data.extend(gobj.init)
        data.extend(b"\x00" * (gobj.size_bytes - len(gobj.init)))
    return data, offsets


def generate_program(module: ir.Module,
                     allocations: dict[str, Allocation],
                     opt_level: str) -> Program:
    """Emit a complete linked :class:`Program` for ``module``."""
    builder = ProgramBuilder(module.xlen, f"{module.name}.{opt_level}")
    data, data_offsets = layout_data(module)

    builder.label("_start")
    builder.emit_branch(Opcode.BL, "main")
    builder.emit(Instruction(Opcode.SVC, imm=0))

    for name, func in module.functions.items():
        FunctionCodegen(func, allocations[name], builder,
                        data_offsets).generate()

    symbols = {name: offset for name, offset in data_offsets.items()}
    program = builder.finalize(data, symbols)
    return program
