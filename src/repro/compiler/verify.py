"""IR verifier: pass-pipeline invariant checking for the MinC compiler.

Every AVF/FIT number in the reproduction rests on the compiler emitting
correct code at all four O-levels, so a silent miscompile at O2/O3 would
corrupt the central compiler-contrast result without any dynamic test
noticing. The verifier makes the IR contract explicit and checkable
between passes:

``cfg``
    every block carries exactly one terminator, the body holds only
    non-terminator instructions, and block names are unique;
``dangling-successor``
    every successor label named by a terminator resolves to a block;
``entry``
    the function has an entry block (``blocks[0]``);
``use-before-def``
    dominance-respecting definite assignment: on *every* path from the
    entry to a use of a virtual register there is a prior definition
    (parameters are defined at entry);
``operand`` / ``const-width`` / ``mem-size``
    operands are ``VReg``/``Const`` with constants representable at the
    module word width, opcodes drawn from the IR's closed op sets, and
    load/store sizes valid;
``stack-slot`` / ``unknown-global``
    address materialization refers to declared slots and globals;
``unknown-callee`` / ``call-arity`` / ``call-result`` / ``ret-value``
    the static call graph is sane: callees exist with matching arity,
    a result is only captured from value-returning callees, and returns
    match the function signature.

Violations raise :class:`~repro.errors.IRVerificationError` naming the
rule, function, block, and instruction index; the pipeline's
``verify_each_pass`` mode additionally names the offending pass.
"""

from __future__ import annotations

from ..errors import IRVerificationError
from . import ir

_VALID_MEM_SIZES = ("word", "byte")


def _fail(rule: str, detail: str, func: ir.Function | None = None,
          block: ir.Block | None = None,
          instr_index: int | None = None) -> IRVerificationError:
    return IRVerificationError(
        rule, detail,
        function=func.name if func is not None else None,
        block=block.name if block is not None else None,
        instr_index=instr_index)


class _FunctionVerifier:
    """Single-function verification state."""

    def __init__(self, func: ir.Function, module: ir.Module) -> None:
        self.func = func
        self.module = module
        self.globals = {g.name for g in module.globals}

    # ------------------------------------------------------------ structure

    def check_structure(self) -> None:
        func = self.func
        if not func.blocks:
            raise _fail("entry", "function has no blocks", func)
        seen: set[str] = set()
        for block in func.blocks:
            if block.name in seen:
                raise _fail("cfg", f"duplicate block name {block.name!r}",
                            func, block)
            seen.add(block.name)
            term = block.terminator
            if term is None:
                raise _fail("cfg", "block has no terminator", func, block)
            if not isinstance(term, ir.Terminator):
                raise _fail("cfg",
                            f"terminator slot holds {type(term).__name__}",
                            func, block)
            for index, instr in enumerate(block.instrs):
                if isinstance(instr, ir.Terminator):
                    raise _fail(
                        "cfg",
                        f"terminator {instr} in block body "
                        "(single-terminator discipline)",
                        func, block, index)
                if not isinstance(instr, ir.Instr):
                    raise _fail(
                        "cfg",
                        f"non-instruction {type(instr).__name__} in body",
                        func, block, index)
        names = seen
        for block in func.blocks:
            for succ in block.terminator.successors():  # type: ignore[union-attr]
                if succ not in names:
                    raise _fail("dangling-successor",
                                f"terminator targets unknown block {succ!r}",
                                func, block)

    # ------------------------------------------------------------- operands

    def _check_value(self, value: object, what: str, block: ir.Block,
                     index: int | None) -> None:
        if isinstance(value, ir.Const):
            xlen = self.module.xlen
            lo, hi = -(1 << (xlen - 1)), (1 << xlen) - 1
            if not lo <= value.value <= hi:
                raise _fail(
                    "const-width",
                    f"constant {value.value} not representable in "
                    f"{xlen} bits ({what})",
                    self.func, block, index)
        elif not isinstance(value, ir.VReg):
            raise _fail("operand",
                        f"{what} is {type(value).__name__}, "
                        "expected VReg or Const",
                        self.func, block, index)

    def check_instructions(self) -> None:
        for block in self.func.blocks:
            for index, instr in enumerate(block.instrs):
                self._check_instr(instr, block, index)
            self._check_terminator(block)

    def _check_instr(self, instr: ir.Instr, block: ir.Block,
                     index: int) -> None:
        func = self.func
        for pos, value in enumerate(instr.uses()):
            self._check_value(value, f"operand {pos} of {instr}", block,
                              index)
        if isinstance(instr, ir.BinOp):
            if instr.op not in ir.BIN_OPS:
                raise _fail("operand", f"unknown binary op {instr.op!r}",
                            func, block, index)
        elif isinstance(instr, (ir.Load, ir.Store)):
            if instr.size not in _VALID_MEM_SIZES:
                raise _fail("mem-size",
                            f"invalid access size {instr.size!r}",
                            func, block, index)
        elif isinstance(instr, ir.La):
            if instr.symbol not in self.globals:
                raise _fail("unknown-global",
                            f"la of undeclared global {instr.symbol!r}",
                            func, block, index)
        elif isinstance(instr, ir.SlotAddr):
            if not 0 <= instr.slot < len(func.slots):
                raise _fail("stack-slot",
                            f"slot_addr #{instr.slot} out of range "
                            f"(function has {len(func.slots)} slots)",
                            func, block, index)
        elif isinstance(instr, ir.Call):
            callee = self.module.functions.get(instr.func)
            if callee is None:
                raise _fail("unknown-callee",
                            f"call to undefined function {instr.func!r}",
                            func, block, index)
            if len(instr.args) != len(callee.params):
                raise _fail(
                    "call-arity",
                    f"call to {instr.func!r} passes {len(instr.args)} "
                    f"args, expected {len(callee.params)}",
                    func, block, index)
            if instr.dst is not None and not callee.returns_value:
                raise _fail(
                    "call-result",
                    f"result captured from void function {instr.func!r}",
                    func, block, index)

    def _check_terminator(self, block: ir.Block) -> None:
        term = block.terminator
        for pos, value in enumerate(term.uses()):  # type: ignore[union-attr]
            self._check_value(value, f"operand {pos} of {term}", block, None)
        if isinstance(term, ir.CondJump) and term.op not in ir.COND_OPS:
            raise _fail("operand", f"unknown condition {term.op!r}",
                        self.func, block)
        if isinstance(term, ir.Ret):
            if self.func.returns_value and term.value is None:
                raise _fail("ret-value",
                            "bare ret in value-returning function",
                            self.func, block)
            if not self.func.returns_value and term.value is not None:
                raise _fail("ret-value",
                            f"ret {term.value} in void function",
                            self.func, block)

    # ------------------------------------------------------ def-before-use

    def check_definite_assignment(self) -> None:
        """Every vreg use must be dominated by a definition.

        Forward must-assign dataflow over the reachable CFG: a register
        is *definitely assigned* at a point if every path from entry
        assigns it first. A use outside that set means some path reaches
        the use with the register undefined -- the non-SSA equivalent of
        SSA's "definition dominates use" rule.
        """
        func = self.func
        blocks = func.block_map()
        entry = func.blocks[0].name

        reachable: set[str] = set()
        stack = [entry]
        while stack:
            name = stack.pop()
            if name in reachable:
                continue
            reachable.add(name)
            stack.extend(blocks[name].terminator.successors())  # type: ignore[union-attr]

        preds: dict[str, list[str]] = {name: [] for name in reachable}
        for name in reachable:
            for succ in blocks[name].terminator.successors():  # type: ignore[union-attr]
                preds[succ].append(name)

        block_defs: dict[str, set[ir.VReg]] = {}
        universe: set[ir.VReg] = set(func.params)
        for name in reachable:
            defs: set[ir.VReg] = set()
            for instr in blocks[name].instrs:
                dst = instr.defs()
                if dst is not None:
                    defs.add(dst)
            block_defs[name] = defs
            universe |= defs

        assigned_in = {name: set(universe) for name in reachable}
        assigned_in[entry] = set(func.params)
        worklist = [b.name for b in func.blocks if b.name in reachable]
        while worklist:
            changed = False
            for name in worklist:
                if name == entry:
                    continue
                incoming = [assigned_in[p] | block_defs[p]
                            for p in preds[name]]
                new = set.intersection(*incoming) if incoming else set()
                if new != assigned_in[name]:
                    assigned_in[name] = new
                    changed = True
            if not changed:
                break

        for name in reachable:
            block = blocks[name]
            defined = set(assigned_in[name])
            for index, instr in enumerate(block.instrs):
                self._check_uses(instr.uses(), defined, block, index)
                dst = instr.defs()
                if dst is not None:
                    defined.add(dst)
            self._check_uses(block.terminator.uses(), defined, block, None)  # type: ignore[union-attr]

    def _check_uses(self, uses: tuple[ir.Value, ...],
                    defined: set[ir.VReg], block: ir.Block,
                    index: int | None) -> None:
        for value in uses:
            if isinstance(value, ir.VReg) and value not in defined:
                raise _fail(
                    "use-before-def",
                    f"{value} used without a dominating definition",
                    self.func, block, index)


def verify_function(func: ir.Function, module: ir.Module) -> None:
    """Check one function against every IR invariant; raise on violation."""
    checker = _FunctionVerifier(func, module)
    checker.check_structure()
    checker.check_instructions()
    checker.check_definite_assignment()


def verify_module(module: ir.Module) -> None:
    """Verify every function plus module-level invariants."""
    seen_globals: set[str] = set()
    for g in module.globals:
        if g.name in seen_globals:
            raise IRVerificationError(
                "unknown-global", f"duplicate global {g.name!r}")
        seen_globals.add(g.name)
        if g.size_bytes <= 0:
            raise IRVerificationError(
                "unknown-global",
                f"global {g.name!r} has non-positive size {g.size_bytes}")
    for name, func in module.functions.items():
        if func.name != name:
            raise IRVerificationError(
                "cfg",
                f"module maps name {name!r} to function {func.name!r}",
                function=func.name)
        verify_function(func, module)
