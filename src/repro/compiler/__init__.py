"""The MinC -> armlet optimizing compiler.

Public entry points: :func:`~repro.compiler.driver.compile_source` /
:func:`~repro.compiler.driver.compile_module` with targets
:data:`~repro.compiler.driver.ARMLET32` (Cortex-A15 analogue) and
:data:`~repro.compiler.driver.ARMLET64` (Cortex-A72 analogue), and
optimization levels ``O0``-``O3`` (see :mod:`repro.compiler.pipeline`).
"""

from . import analysis, ir, lifetimes, propagation, verify
from .driver import (
    ARMLET32,
    ARMLET64,
    TARGETS,
    CompileResult,
    Target,
    compile_custom,
    compile_module,
    compile_source,
)
from .pipeline import (
    OPT_LEVELS,
    PASS_REGISTRY,
    normalize_level,
    optimize_custom,
)
from .verify import verify_function, verify_module

__all__ = [
    "ARMLET32",
    "ARMLET64",
    "CompileResult",
    "OPT_LEVELS",
    "PASS_REGISTRY",
    "TARGETS",
    "Target",
    "analysis",
    "compile_custom",
    "compile_module",
    "compile_source",
    "ir",
    "lifetimes",
    "normalize_level",
    "optimize_custom",
    "propagation",
    "verify",
    "verify_function",
    "verify_module",
]
