"""Lowering from the type-checked MinC AST to three-address IR.

The builder is deliberately naive: every AST operation becomes the obvious
IR sequence with no on-the-fly simplification. All cleverness lives in the
optimization passes, so the O0 pipeline (which runs no passes) really is
the unoptimized translation -- just as ``gcc -O0`` emits the direct
statement-by-statement lowering the paper's baseline binaries use.
"""

from __future__ import annotations

from ..errors import CompileError
from ..lang import ast_nodes as ast
from ..lang.sema import SemanticInfo
from . import ir

_SYSCALL_BUILTINS = {"exit": 0, "putint": 1, "putchar": 2, "puthex": 3}

_CMP_TO_COND = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
                ">": "gt", ">=": "ge"}

_ARITH_TO_IROP = {"+": "add", "-": "sub", "*": "mul", "/": "div",
                  "%": "rem", "&": "and", "|": "or", "^": "xor",
                  "<<": "shl", ">>": "ashr"}


class _FunctionBuilder:
    def __init__(self, func_ast: ast.FuncDef, info: SemanticInfo,
                 module: ir.Module) -> None:
        self.ast = func_ast
        self.info = info
        self.module = module
        self.word = module.word_size
        params = [ir.VReg(i, p.name) for i, p in enumerate(func_ast.params)]
        self.func = ir.Function(func_ast.name, params,
                                func_ast.ret.kind != "void")
        # unique local symbol -> vreg (scalars) or stack slot (arrays)
        self.scalar_vregs: dict[str, ir.VReg] = {}
        self.array_slots: dict[str, ir.StackSlot] = {}
        for index, param in enumerate(func_ast.params):
            self.scalar_vregs[f"{param.name}.p{index}"] = params[index]
        self.block = self.func.new_block("entry")
        self.loop_stack: list[tuple[str, str]] = []  # (continue, break)

    # ------------------------------------------------------------- helpers

    def emit(self, instr: ir.Instr) -> None:
        self.block.instrs.append(instr)

    def terminate(self, term: ir.Terminator) -> None:
        if self.block.terminator is None:
            self.block.terminator = term

    def start_block(self, block: ir.Block) -> None:
        self.block = block

    def new_vreg(self, hint: str = "t") -> ir.VReg:
        return self.func.new_vreg(hint)

    def elem_size(self, ty: ast.Type) -> int:
        return 1 if ty.base == "char" else self.word

    # ---------------------------------------------------------------- build

    def build(self) -> ir.Function:
        self.build_block(self.ast.body)
        self.terminate(ir.Ret(ir.Const(0) if self.func.returns_value
                              else None))
        self._seal_unterminated()
        return self.func

    def _seal_unterminated(self) -> None:
        """Give every block a terminator (unreachable join blocks)."""
        for block in self.func.blocks:
            if block.terminator is None:
                block.terminator = ir.Ret(
                    ir.Const(0) if self.func.returns_value else None)

    def build_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.build_stmt(stmt)

    # ------------------------------------------------------------ statements

    def build_stmt(self, stmt: ast.Stmt) -> None:
        if self.block.terminator is not None:
            # Dead code after return/break: still lower into a fresh,
            # unreachable block so later passes can discard it.
            self.start_block(self.func.new_block("dead"))
        if isinstance(stmt, ast.Block):
            self.build_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self.build_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self.build_expr(stmt.expr, want_value=False)
        elif isinstance(stmt, ast.If):
            self.build_if(stmt)
        elif isinstance(stmt, ast.While):
            self.build_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.build_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.build_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self.terminate(ir.Jump(self.loop_stack[-1][1]))
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.terminate(ir.Jump(self.loop_stack[-1][0]))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self.build_expr(stmt.value)
                self.terminate(ir.Ret(value))
            else:
                self.terminate(ir.Ret(None))
        else:
            raise CompileError(
                f"cannot lower {type(stmt).__name__}", stmt.line)

    def build_decl(self, decl: ast.VarDecl) -> None:
        symbol = decl.resolved  # type: ignore[attr-defined]
        if decl.ty.kind == "array":
            elem = self.elem_size(decl.ty)
            assert decl.ty.size is not None
            slot = self.func.new_slot(decl.ty.size * elem, elem)
            self.array_slots[symbol] = slot
            if decl.init_list:
                addr = self.new_vreg("arr")
                self.emit(ir.SlotAddr(addr, slot.index))
                size = "byte" if elem == 1 else "word"
                for index, value in enumerate(decl.init_list):
                    self.emit(ir.Store(ir.Const(value), addr, index * elem,
                                       size))
            return
        vreg = self.new_vreg(decl.name)
        self.scalar_vregs[symbol] = vreg
        init = (self.build_expr(decl.init) if decl.init is not None
                else ir.Const(0))
        self.emit(ir.Move(vreg, init))

    def build_if(self, stmt: ast.If) -> None:
        assert stmt.cond is not None and stmt.then is not None
        then_block = self.func.new_block("then")
        join_block = self.func.new_block("endif")
        else_block = (self.func.new_block("else") if stmt.other is not None
                      else join_block)
        self.build_branch(stmt.cond, then_block.name, else_block.name)
        self.start_block(then_block)
        self.build_stmt(stmt.then)
        self.terminate(ir.Jump(join_block.name))
        if stmt.other is not None:
            self.start_block(else_block)
            self.build_stmt(stmt.other)
            self.terminate(ir.Jump(join_block.name))
        self.start_block(join_block)

    def build_while(self, stmt: ast.While) -> None:
        assert stmt.cond is not None and stmt.body is not None
        head = self.func.new_block("while_head")
        body = self.func.new_block("while_body")
        done = self.func.new_block("while_done")
        self.terminate(ir.Jump(head.name))
        self.start_block(head)
        self.build_branch(stmt.cond, body.name, done.name)
        self.loop_stack.append((head.name, done.name))
        self.start_block(body)
        self.build_stmt(stmt.body)
        self.terminate(ir.Jump(head.name))
        self.loop_stack.pop()
        self.start_block(done)

    def build_do_while(self, stmt: ast.DoWhile) -> None:
        assert stmt.cond is not None and stmt.body is not None
        body = self.func.new_block("do_body")
        cond = self.func.new_block("do_cond")
        done = self.func.new_block("do_done")
        self.terminate(ir.Jump(body.name))
        self.loop_stack.append((cond.name, done.name))
        self.start_block(body)
        self.build_stmt(stmt.body)
        self.terminate(ir.Jump(cond.name))
        self.loop_stack.pop()
        self.start_block(cond)
        self.build_branch(stmt.cond, body.name, done.name)
        self.start_block(done)

    def build_for(self, stmt: ast.For) -> None:
        assert stmt.body is not None
        if stmt.init is not None:
            self.build_stmt(stmt.init)
        head = self.func.new_block("for_head")
        body = self.func.new_block("for_body")
        step = self.func.new_block("for_step")
        done = self.func.new_block("for_done")
        self.terminate(ir.Jump(head.name))
        self.start_block(head)
        if stmt.cond is not None:
            self.build_branch(stmt.cond, body.name, done.name)
        else:
            self.terminate(ir.Jump(body.name))
        self.loop_stack.append((step.name, done.name))
        self.start_block(body)
        self.build_stmt(stmt.body)
        self.terminate(ir.Jump(step.name))
        self.loop_stack.pop()
        self.start_block(step)
        if stmt.step is not None:
            self.build_expr(stmt.step, want_value=False)
        self.terminate(ir.Jump(head.name))
        self.start_block(done)

    # ---------------------------------------------------------- branch form

    def build_branch(self, cond: ast.Expr, true_name: str,
                     false_name: str) -> None:
        """Lower ``cond`` directly into control flow."""
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            assert cond.left is not None and cond.right is not None
            middle = self.func.new_block("and_rhs")
            self.build_branch(cond.left, middle.name, false_name)
            self.start_block(middle)
            self.build_branch(cond.right, true_name, false_name)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            assert cond.left is not None and cond.right is not None
            middle = self.func.new_block("or_rhs")
            self.build_branch(cond.left, true_name, middle.name)
            self.start_block(middle)
            self.build_branch(cond.right, true_name, false_name)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            assert cond.operand is not None
            self.build_branch(cond.operand, false_name, true_name)
            return
        if isinstance(cond, ast.Binary) and cond.op in _CMP_TO_COND:
            assert cond.left is not None and cond.right is not None
            a = self.build_expr(cond.left)
            b = self.build_expr(cond.right)
            self.terminate(ir.CondJump(_CMP_TO_COND[cond.op], a, b,
                                       true_name, false_name))
            return
        value = self.build_expr(cond)
        self.terminate(ir.CondJump("ne", value, ir.Const(0),
                                   true_name, false_name))

    # ---------------------------------------------------------- expressions

    def build_expr(self, expr: ast.Expr,
                   want_value: bool = True) -> ir.Value:
        if isinstance(expr, ast.Num):
            return ir.Const(expr.value)
        if isinstance(expr, ast.Var):
            return self.build_var_read(expr)
        if isinstance(expr, ast.Index):
            addr, offset, size = self.build_address(expr)
            dst = self.new_vreg("ld")
            self.emit(ir.Load(dst, addr, offset, size))
            return dst
        if isinstance(expr, ast.Unary):
            return self.build_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.build_binary(expr)
        if isinstance(expr, ast.Cond):
            return self.build_conditional(expr)
        if isinstance(expr, ast.Assign):
            return self.build_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self.build_incdec(expr)
        if isinstance(expr, ast.Call):
            return self.build_call(expr, want_value)
        raise CompileError(f"cannot lower {type(expr).__name__}", expr.line)

    def build_var_read(self, expr: ast.Var) -> ir.Value:
        kind, name = expr.binding  # type: ignore[attr-defined]
        if kind == "local":
            if name in self.array_slots:
                dst = self.new_vreg("arr")
                self.emit(ir.SlotAddr(dst, self.array_slots[name].index))
                return dst
            return self.scalar_vregs[name]
        gvar = self.info.globals[name]
        addr = self.new_vreg("ga")
        self.emit(ir.La(addr, name))
        if gvar.ty.kind == "array":
            return addr
        dst = self.new_vreg(name)
        size = "byte" if gvar.ty.kind == "char" else "word"
        self.emit(ir.Load(dst, addr, 0, size))
        return dst

    def build_address(self, expr: ast.Index) -> tuple[ir.Value, int, str]:
        """Compute (base, offset, size) for an indexed access."""
        assert expr.base is not None and expr.index is not None
        base = self.build_expr(expr.base)
        elem = self.elem_size(expr.base.ty)
        size = "byte" if elem == 1 else "word"
        index = self.build_expr(expr.index)
        scaled = self.new_vreg("ofs")
        self.emit(ir.BinOp(scaled, "mul", index, ir.Const(elem)))
        addr = self.new_vreg("addr")
        self.emit(ir.BinOp(addr, "add", base, scaled))
        return addr, 0, size

    def build_unary(self, expr: ast.Unary) -> ir.Value:
        assert expr.operand is not None
        value = self.build_expr(expr.operand)
        dst = self.new_vreg("u")
        if expr.op == "-":
            self.emit(ir.BinOp(dst, "sub", ir.Const(0), value))
        elif expr.op == "~":
            self.emit(ir.BinOp(dst, "xor", value, ir.Const(-1)))
        elif expr.op == "!":
            self.emit(ir.BinOp(dst, "sltu", value, ir.Const(1)))
        else:
            raise CompileError(f"bad unary {expr.op}", expr.line)
        return dst

    def build_binary(self, expr: ast.Binary) -> ir.Value:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op in ("&&", "||"):
            return self.build_bool_value(expr)
        if op in _CMP_TO_COND:
            return self.build_comparison(op, expr.left, expr.right)
        a = self.build_expr(expr.left)
        b = self.build_expr(expr.right)
        lt, rt = expr.left.ty, expr.right.ty
        if op in ("+", "-") and (lt.is_pointerish or rt.is_pointerish):
            return self.build_pointer_arith(op, a, b, lt, rt)
        dst = self.new_vreg("b")
        self.emit(ir.BinOp(dst, _ARITH_TO_IROP[op], a, b))
        return dst

    def build_pointer_arith(self, op: str, a: ir.Value, b: ir.Value,
                            lt: ast.Type, rt: ast.Type) -> ir.Value:
        if rt.is_pointerish:  # int + ptr
            a, b = b, a
            lt, rt = rt, lt
        elem = self.elem_size(lt)
        scaled = self.new_vreg("sc")
        self.emit(ir.BinOp(scaled, "mul", b, ir.Const(elem)))
        dst = self.new_vreg("pa")
        self.emit(ir.BinOp(dst, "add" if op == "+" else "sub", a, scaled))
        return dst

    def build_comparison(self, op: str, left: ast.Expr,
                         right: ast.Expr) -> ir.Value:
        a = self.build_expr(left)
        b = self.build_expr(right)
        dst = self.new_vreg("cmp")
        unsigned = left.ty.is_pointerish or right.ty.is_pointerish
        slt = "sltu" if unsigned else "slt"
        if op == "<":
            self.emit(ir.BinOp(dst, slt, a, b))
        elif op == ">":
            self.emit(ir.BinOp(dst, slt, b, a))
        elif op == "<=":
            tmp = self.new_vreg("cmp")
            self.emit(ir.BinOp(tmp, slt, b, a))
            self.emit(ir.BinOp(dst, "xor", tmp, ir.Const(1)))
        elif op == ">=":
            tmp = self.new_vreg("cmp")
            self.emit(ir.BinOp(tmp, slt, a, b))
            self.emit(ir.BinOp(dst, "xor", tmp, ir.Const(1)))
        elif op == "==":
            tmp = self.new_vreg("cmp")
            self.emit(ir.BinOp(tmp, "xor", a, b))
            self.emit(ir.BinOp(dst, "sltu", tmp, ir.Const(1)))
        else:  # !=
            tmp = self.new_vreg("cmp")
            self.emit(ir.BinOp(tmp, "xor", a, b))
            self.emit(ir.BinOp(dst, "sltu", ir.Const(0), tmp))
        return dst

    def build_bool_value(self, expr: ast.Binary) -> ir.Value:
        """Materialize a short-circuit expression as 0/1."""
        dst = self.new_vreg("bool")
        true_block = self.func.new_block("bool_true")
        false_block = self.func.new_block("bool_false")
        join = self.func.new_block("bool_join")
        self.build_branch(expr, true_block.name, false_block.name)
        self.start_block(true_block)
        self.emit(ir.Move(dst, ir.Const(1)))
        self.terminate(ir.Jump(join.name))
        self.start_block(false_block)
        self.emit(ir.Move(dst, ir.Const(0)))
        self.terminate(ir.Jump(join.name))
        self.start_block(join)
        return dst

    def build_conditional(self, expr: ast.Cond) -> ir.Value:
        assert expr.cond and expr.then and expr.other
        dst = self.new_vreg("sel")
        then_block = self.func.new_block("sel_then")
        else_block = self.func.new_block("sel_else")
        join = self.func.new_block("sel_join")
        self.build_branch(expr.cond, then_block.name, else_block.name)
        self.start_block(then_block)
        self.emit(ir.Move(dst, self.build_expr(expr.then)))
        self.terminate(ir.Jump(join.name))
        self.start_block(else_block)
        self.emit(ir.Move(dst, self.build_expr(expr.other)))
        self.terminate(ir.Jump(join.name))
        self.start_block(join)
        return dst

    def build_assign(self, expr: ast.Assign) -> ir.Value:
        assert expr.target is not None and expr.value is not None
        if isinstance(expr.target, ast.Var):
            return self.build_scalar_assign(expr)
        assert isinstance(expr.target, ast.Index)
        addr, offset, size = self.build_address(expr.target)
        if expr.op is None:
            value = self.build_expr(expr.value)
        else:
            old = self.new_vreg("old")
            self.emit(ir.Load(old, addr, offset, size))
            rhs = self.build_expr(expr.value)
            value = self.apply_compound(expr.op, old, rhs,
                                        expr.target.ty)
        self.emit(ir.Store(value, addr, offset, size))
        return value

    def build_scalar_assign(self, expr: ast.Assign) -> ir.Value:
        target = expr.target
        assert isinstance(target, ast.Var)
        kind, name = target.binding  # type: ignore[attr-defined]
        if kind == "local":
            vreg = self.scalar_vregs[name]
            if expr.op is None:
                value = self.build_expr(expr.value)  # type: ignore[arg-type]
            else:
                rhs = self.build_expr(expr.value)  # type: ignore[arg-type]
                value = self.apply_compound(expr.op, vreg, rhs, target.ty)
            self.emit(ir.Move(vreg, value))
            return vreg
        gvar = self.info.globals[name]
        size = "byte" if gvar.ty.kind == "char" else "word"
        addr = self.new_vreg("ga")
        self.emit(ir.La(addr, name))
        if expr.op is None:
            value = self.build_expr(expr.value)  # type: ignore[arg-type]
        else:
            old = self.new_vreg("old")
            self.emit(ir.Load(old, addr, 0, size))
            rhs = self.build_expr(expr.value)  # type: ignore[arg-type]
            value = self.apply_compound(expr.op, old, rhs, target.ty)
        self.emit(ir.Store(value, addr, 0, size))
        return value

    def apply_compound(self, op: str, old: ir.Value, rhs: ir.Value,
                       target_ty: ast.Type) -> ir.Value:
        if target_ty.kind == "ptr" and op in ("+", "-"):
            scaled = self.new_vreg("sc")
            self.emit(ir.BinOp(scaled, "mul", rhs,
                               ir.Const(self.elem_size(target_ty))))
            rhs = scaled
        dst = self.new_vreg("ca")
        self.emit(ir.BinOp(dst, _ARITH_TO_IROP[op], old, rhs))
        return dst

    def build_incdec(self, expr: ast.IncDec) -> ir.Value:
        assert expr.target is not None
        delta = 1
        if expr.target.ty.kind == "ptr":
            delta = self.elem_size(expr.target.ty)
        op = "add" if expr.op == "++" else "sub"
        if isinstance(expr.target, ast.Var):
            kind, name = expr.target.binding  # type: ignore[attr-defined]
            if kind == "local":
                vreg = self.scalar_vregs[name]
                old = None
                if not expr.prefix:
                    old = self.new_vreg("post")
                    self.emit(ir.Move(old, vreg))
                new = self.new_vreg("inc")
                self.emit(ir.BinOp(new, op, vreg, ir.Const(delta)))
                self.emit(ir.Move(vreg, new))
                return old if old is not None else vreg
            gvar = self.info.globals[name]
            size = "byte" if gvar.ty.kind == "char" else "word"
            addr = self.new_vreg("ga")
            self.emit(ir.La(addr, name))
            old = self.new_vreg("old")
            self.emit(ir.Load(old, addr, 0, size))
            new = self.new_vreg("inc")
            self.emit(ir.BinOp(new, op, old, ir.Const(delta)))
            self.emit(ir.Store(new, addr, 0, size))
            return old if not expr.prefix else new
        assert isinstance(expr.target, ast.Index)
        addr, offset, size = self.build_address(expr.target)
        old = self.new_vreg("old")
        self.emit(ir.Load(old, addr, offset, size))
        new = self.new_vreg("inc")
        self.emit(ir.BinOp(new, op, old, ir.Const(delta)))
        self.emit(ir.Store(new, addr, offset, size))
        return old if not expr.prefix else new

    def build_call(self, expr: ast.Call, want_value: bool) -> ir.Value:
        args = [self.build_expr(a) for a in expr.args]
        if expr.name == "ushr":
            dst = self.new_vreg("ushr")
            self.emit(ir.BinOp(dst, "lshr", args[0], args[1]))
            return dst
        if expr.name in _SYSCALL_BUILTINS:
            self.emit(ir.Syscall(_SYSCALL_BUILTINS[expr.name], args[0]))
            return ir.Const(0)
        sig = self.info.functions[expr.name]
        dst = None
        if sig.ret.kind != "void" and want_value:
            dst = self.new_vreg("ret")
        self.emit(ir.Call(dst, expr.name, args))
        return dst if dst is not None else ir.Const(0)


def _encode_global(gvar: ast.GlobalVar, word_size: int) -> tuple[int, bytes,
                                                                 int]:
    """Return (size_bytes, init_bytes, align) for a global."""
    if gvar.ty.kind == "array":
        elem = 1 if gvar.ty.base == "char" else word_size
        assert gvar.ty.size is not None
        size = gvar.ty.size * elem
        init = bytearray()
        values = gvar.init if isinstance(gvar.init, list) else []
        mask = (1 << (elem * 8)) - 1
        for value in values:
            init.extend((value & mask).to_bytes(elem, "little"))
        return size, bytes(init), elem
    elem = 1 if gvar.ty.kind == "char" else word_size
    value = gvar.init if isinstance(gvar.init, int) else 0
    mask = (1 << (elem * 8)) - 1
    return elem, (value & mask).to_bytes(elem, "little"), elem


def build_module(module_ast: ast.Module, info: SemanticInfo,
                 word_size: int, name: str = "module") -> ir.Module:
    """Lower a type-checked AST module into IR."""
    module = ir.Module(name, word_size)
    for gvar in module_ast.globals:
        size, init, align = _encode_global(gvar, word_size)
        module.add_global(gvar.name, size, init, align)
    for func_ast in module_ast.functions:
        builder = _FunctionBuilder(func_ast, info, module)
        module.functions[func_ast.name] = builder.build()
    return module
