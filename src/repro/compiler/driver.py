"""Top-level compiler driver: MinC source -> linked armlet Program.

    from repro.compiler import compile_source, ARMLET32
    program = compile_source(source, opt_level="O2", target=ARMLET32)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.program import Program
from ..lang import analyze, parse
from . import codegen, ir, irbuilder, pipeline, regalloc, verify


@dataclass(frozen=True)
class Target:
    """A compilation target: the data width of the core family."""

    name: str
    xlen: int

    @property
    def word_size(self) -> int:
        return self.xlen // 8


ARMLET32 = Target("armlet32", 32)
ARMLET64 = Target("armlet64", 64)

TARGETS = {t.name: t for t in (ARMLET32, ARMLET64)}


@dataclass
class CompileResult:
    """A compiled program plus the post-optimization IR for inspection."""

    program: Program
    module: ir.Module
    opt_level: str
    target: Target

    @property
    def text_size(self) -> int:
        return len(self.program.text)


def compile_module(source: str, opt_level: str | int,
                   target: Target, name: str = "prog",
                   verify_ir: bool = False) -> CompileResult:
    """Compile MinC ``source`` and keep the IR around.

    With ``verify_ir`` the IR verifier checks the freshly built module,
    re-checks after every optimization pass (attributing violations to
    the pass that caused them), and checks the final pre-allocation IR.
    """
    level = pipeline.normalize_level(opt_level)
    module_ast = parse(source)
    info = analyze(module_ast)
    module = irbuilder.build_module(module_ast, info, target.word_size,
                                    name=name)
    if verify_ir:
        verify.verify_module(module)
    pipeline.optimize(module, level, verify_each_pass=verify_ir)
    if verify_ir:
        verify.verify_module(module)
    allocations = {
        fname: regalloc.allocate(func, level)
        for fname, func in module.functions.items()
    }
    program = codegen.generate_program(module, allocations, level)
    program.name = f"{name}.{level}.{target.name}"
    return CompileResult(program=program, module=module, opt_level=level,
                         target=target)


def compile_source(source: str, opt_level: str | int = "O0",
                   target: Target = ARMLET32,
                   name: str = "prog", verify_ir: bool = False) -> Program:
    """Compile MinC ``source`` to a linked :class:`Program`."""
    return compile_module(source, opt_level, target, name,
                          verify_ir=verify_ir).program


def compile_custom(source: str, pass_names: list[str],
                   target: Target = ARMLET32, name: str = "prog",
                   regalloc_mode: str = "O1",
                   verify_ir: bool = False) -> CompileResult:
    """Compile with an explicit pass list (ablation studies).

    ``regalloc_mode`` picks the allocator personality: ``"O0"`` for
    stack-homed locals, anything else for linear scan. The result's
    ``opt_level`` records the pass list for provenance.
    """
    module_ast = parse(source)
    info = analyze(module_ast)
    module = irbuilder.build_module(module_ast, info, target.word_size,
                                    name=name)
    if verify_ir:
        verify.verify_module(module)
    pipeline.optimize_custom(module, pass_names,
                             verify_each_pass=verify_ir)
    if verify_ir:
        verify.verify_module(module)
    level = "O0" if regalloc_mode == "O0" else "O1"
    allocations = {
        fname: regalloc.allocate(func, level)
        for fname, func in module.functions.items()
    }
    tag = "+".join(pass_names) if pass_names else "none"
    program = codegen.generate_program(module, allocations, level)
    program.name = f"{name}.custom[{tag}].{target.name}"
    return CompileResult(program=program, module=module,
                         opt_level=f"custom[{tag}]", target=target)
