"""Register allocation.

Two allocators implement the paper's key O0-vs-O1+ contrast:

* :func:`allocate_stack` (O0) -- every virtual register gets a stack home;
  the code generator reloads operands before each use and stores results
  after each definition. This reproduces the load/store-heavy pattern of
  ``gcc -O0`` binaries that drives their distinctive cache/RF utilization.
* :func:`allocate_linear` (O1+) -- classic linear-scan over live
  intervals. Intervals that span a call are placed in callee-saved
  registers (or spilled); others prefer caller-saved temporaries.

Allocatable registers: t0-t3 (caller-saved) and s0-s11 (callee-saved).
t4-t6 are reserved as code-generator scratch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import registers
from . import analysis, ir

CALLER_SAVED_POOL = (9, 10, 11, 12)            # t0-t3
CALLEE_SAVED_POOL = tuple(registers.SAVED_REGS)  # s0-s11
SCRATCH = (13, 14, 15)                         # t4-t6


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    mode: str                                   # "stack" or "linear"
    assignment: dict[ir.VReg, int] = field(default_factory=dict)
    spill_slots: dict[ir.VReg, int] = field(default_factory=dict)
    used_callee_saved: list[int] = field(default_factory=list)
    has_calls: bool = False

    @property
    def num_spill_slots(self) -> int:
        return len(set(self.spill_slots.values()))

    def location(self, reg: ir.VReg) -> tuple[str, int]:
        """('reg', phys) or ('slot', index) for an allocated vreg."""
        if reg in self.assignment:
            return ("reg", self.assignment[reg])
        return ("slot", self.spill_slots[reg])


def _function_has_calls(func: ir.Function) -> bool:
    return any(isinstance(i, ir.Call) for i in func.instructions())


def _all_vregs(func: ir.Function) -> list[ir.VReg]:
    seen: dict[ir.VReg, None] = {}
    for param in func.params:
        seen[param] = None
    for block in func.blocks:
        for instr in block.instrs:
            dst = instr.defs()
            if dst is not None:
                seen.setdefault(dst, None)
            for value in instr.uses():
                if isinstance(value, ir.VReg):
                    seen.setdefault(value, None)
        assert block.terminator is not None
        for value in block.terminator.uses():
            if isinstance(value, ir.VReg):
                seen.setdefault(value, None)
    return list(seen)


def allocate_stack(func: ir.Function) -> Allocation:
    """O0 allocator: a frame home for every virtual register."""
    alloc = Allocation(mode="stack", has_calls=_function_has_calls(func))
    for index, reg in enumerate(_all_vregs(func)):
        alloc.spill_slots[reg] = index
    return alloc


@dataclass
class _Interval:
    reg: ir.VReg
    start: int
    end: int
    crosses_call: bool = False
    assigned: int | None = None


def _build_intervals(func: ir.Function) -> list[_Interval]:
    live_in, live_out = analysis.liveness(func)
    position = 0
    ranges: dict[ir.VReg, list[int]] = {}
    call_positions: list[int] = []

    def touch(reg: ir.VReg, pos: int) -> None:
        bounds = ranges.setdefault(reg, [pos, pos])
        bounds[0] = min(bounds[0], pos)
        bounds[1] = max(bounds[1], pos)

    for param in func.params:
        touch(param, 0)

    for block in func.blocks:
        block_start = position
        for reg in live_in[block.name]:
            touch(reg, block_start)
        for instr in block.instrs:
            position += 1
            for value in instr.uses():
                if isinstance(value, ir.VReg):
                    touch(value, position)
            dst = instr.defs()
            if dst is not None:
                touch(dst, position)
            if isinstance(instr, ir.Call):
                call_positions.append(position)
        position += 1
        assert block.terminator is not None
        for value in block.terminator.uses():
            if isinstance(value, ir.VReg):
                touch(value, position)
        for reg in live_out[block.name]:
            touch(reg, position)

    intervals = [
        _Interval(reg, bounds[0], bounds[1])
        for reg, bounds in ranges.items()
    ]
    for interval in intervals:
        interval.crosses_call = any(
            interval.start < call <= interval.end
            for call in call_positions)
    intervals.sort(key=lambda iv: (iv.start, iv.end))
    return intervals


def allocate_linear(func: ir.Function) -> Allocation:
    """Linear-scan allocation for O1 and above."""
    alloc = Allocation(mode="linear", has_calls=_function_has_calls(func))
    intervals = _build_intervals(func)
    active: list[_Interval] = []
    free_caller = list(CALLER_SAVED_POOL)
    free_callee = list(CALLEE_SAVED_POOL)
    next_spill = 0

    def release(interval: _Interval) -> None:
        assert interval.assigned is not None
        if interval.assigned in CALLER_SAVED_POOL:
            free_caller.append(interval.assigned)
        else:
            free_callee.append(interval.assigned)

    for interval in intervals:
        for done in [iv for iv in active if iv.end < interval.start]:
            active.remove(done)
            release(done)
        pools = ([free_callee] if interval.crosses_call
                 else [free_caller, free_callee])
        chosen: int | None = None
        for pool in pools:
            if pool:
                chosen = pool.pop(0)
                break
        if chosen is None:
            # Try to steal from the active interval with the furthest end
            # whose register satisfies this interval's constraint.
            candidates = [
                iv for iv in active
                if not interval.crosses_call
                or iv.assigned in CALLEE_SAVED_POOL
            ]
            candidates.sort(key=lambda iv: iv.end, reverse=True)
            if candidates and candidates[0].end > interval.end:
                victim = candidates[0]
                chosen = victim.assigned
                victim.assigned = None
                active.remove(victim)
                alloc.spill_slots[victim.reg] = next_spill
                alloc.assignment.pop(victim.reg, None)
                next_spill += 1
        if chosen is None:
            alloc.spill_slots[interval.reg] = next_spill
            next_spill += 1
            continue
        interval.assigned = chosen
        alloc.assignment[interval.reg] = chosen
        active.append(interval)

    used = {reg for reg in alloc.assignment.values()
            if reg in CALLEE_SAVED_POOL}
    alloc.used_callee_saved = sorted(used)
    return alloc


def allocate(func: ir.Function, opt_level: str) -> Allocation:
    """Select the allocator for ``opt_level`` ('O0' -> stack homes)."""
    if opt_level == "O0":
        return allocate_stack(func)
    return allocate_linear(func)
