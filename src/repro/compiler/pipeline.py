"""Optimization pipelines mirroring GCC's O-level structure.

==  ==========================================================
O0  no optimization; every virtual register lives in a stack home
O1  register allocation + local/global cleanups: constant folding,
    copy propagation, CSE, addressing-mode folding, DCE, CFG simplify
O2  O1 + loop-invariant code motion, strength reduction and local
    instruction scheduling
O3  O2 + function inlining and loop unrolling (code-size-increasing)
==  ==========================================================

Each scalar pipeline is iterated until a fixpoint (bounded), because the
passes enable each other (e.g. strength reduction exposes folds).

With ``verify_each_pass=True`` the IR verifier (:mod:`.verify`) runs
after every pass application, so a pass that breaks a CFG or def-use
invariant is *named* in the raised
:class:`~repro.errors.IRVerificationError` instead of surfacing later as
a miscompiled program and a corrupted AVF number.
"""

from __future__ import annotations

from typing import Callable

from ..errors import IRVerificationError
from . import ir, verify
from .passes import (
    addrfold,
    constfold,
    copyprop,
    cse,
    dce,
    inline,
    licm,
    schedule,
    simplify_cfg,
    strength,
    unroll,
)
from .passes.common import pass_label

OPT_LEVELS = ("O0", "O1", "O2", "O3")

FuncPass = Callable[[ir.Function, ir.Module], bool]

_O1_SCALAR: list[FuncPass] = [
    constfold.run,
    copyprop.run,
    cse.run,
    addrfold.run,
    dce.run,
    simplify_cfg.run,
]

_O2_SCALAR: list[FuncPass] = [
    constfold.run,
    copyprop.run,
    cse.run,
    licm.run,
    strength.run,
    addrfold.run,
    constfold.run,
    copyprop.run,
    cse.run,
    dce.run,
    simplify_cfg.run,
]

_MAX_ITERATIONS = 6

# Named transforms for ablation studies (the paper's stated future work:
# characterizing the impact of *individual* optimizations). Module-level
# passes are marked so optimize_custom dispatches them correctly.
PASS_REGISTRY: dict[str, FuncPass] = {
    "constfold": constfold.run,
    "copyprop": copyprop.run,
    "cse": cse.run,
    "addrfold": addrfold.run,
    "dce": dce.run,
    "simplify_cfg": simplify_cfg.run,
    "licm": licm.run,
    "strength": strength.run,
    "schedule": schedule.run,
    "unroll": unroll.run,
}

MODULE_PASSES = {"inline"}


def optimize_custom(module: ir.Module, pass_names: list[str],
                    iterate: bool = True,
                    verify_each_pass: bool = False) -> None:
    """Run an explicit pass list (ablation mode).

    ``pass_names`` may include ``"inline"`` (a module pass, applied once
    in sequence position) and any :data:`PASS_REGISTRY` name. With
    ``iterate`` the scalar suffix after the last module pass is repeated
    to a bounded fixpoint, as the standard pipelines do. With
    ``verify_each_pass`` the IR verifier runs after every application and
    attributes any invariant violation to the offending pass.
    """
    unknown = [n for n in pass_names
               if n not in PASS_REGISTRY and n not in MODULE_PASSES]
    if unknown:
        raise ValueError(f"unknown passes {unknown}; available "
                         f"{sorted(PASS_REGISTRY) + sorted(MODULE_PASSES)}")
    scalar: list[FuncPass] = []
    for name in pass_names:
        if name == "inline":
            if scalar:
                _run_scalar_once(module, scalar, verify_each_pass)
            _run_inline(module, verify_each_pass)
            continue
        scalar.append(PASS_REGISTRY[name])
    if not scalar:
        return
    if iterate:
        _run_scalar(module, scalar, verify_each_pass)
    else:
        _run_scalar_once(module, scalar, verify_each_pass)


def _apply(pass_fn: FuncPass, func: ir.Function, module: ir.Module,
           verify_each_pass: bool) -> bool:
    """Run one pass on one function, verifying the result if asked."""
    changed = pass_fn(func, module)
    if verify_each_pass:
        try:
            verify.verify_function(func, module)
        except IRVerificationError as err:
            raise err.with_pass(pass_label(pass_fn)) from None
    return changed


def _run_inline(module: ir.Module, verify_each_pass: bool) -> None:
    inline.run_module(module)
    if verify_each_pass:
        try:
            verify.verify_module(module)
        except IRVerificationError as err:
            raise err.with_pass("inline") from None


def _run_scalar_once(module: ir.Module, pipeline: list[FuncPass],
                     verify_each_pass: bool = False) -> None:
    for func in module.functions.values():
        for pass_fn in pipeline:
            _apply(pass_fn, func, module, verify_each_pass)


def normalize_level(level: str | int) -> str:
    """Accept 'O2', 'o2', 2, '-O2' and return canonical 'O2'."""
    if isinstance(level, int):
        text = f"O{level}"
    else:
        text = level.strip().lstrip("-").upper()
        if text.isdigit():
            text = f"O{text}"
    if text not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    return text


def _run_scalar(module: ir.Module, pipeline: list[FuncPass],
                verify_each_pass: bool = False) -> None:
    for func in module.functions.values():
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for pass_fn in pipeline:
                changed |= _apply(pass_fn, func, module, verify_each_pass)
            if not changed:
                break


def optimize(module: ir.Module, level: str | int,
             verify_each_pass: bool = False) -> str:
    """Run the pass pipeline for ``level`` on ``module``; returns the
    canonical level name. With ``verify_each_pass`` every pass
    application is followed by a full IR verification, and a violation
    is raised naming the offending pass."""
    level = normalize_level(level)
    if level == "O0":
        return level
    if level == "O1":
        _run_scalar(module, _O1_SCALAR, verify_each_pass)
        return level
    if level == "O2":
        _run_scalar(module, _O2_SCALAR, verify_each_pass)
        for func in module.functions.values():
            _apply(schedule.run, func, module, verify_each_pass)
        return level
    # O3
    _run_inline(module, verify_each_pass)
    _run_scalar(module, _O2_SCALAR, verify_each_pass)
    for func in module.functions.values():
        _apply(unroll.run, func, module, verify_each_pass)
    _run_scalar(module, _O2_SCALAR, verify_each_pass)
    for func in module.functions.values():
        _apply(schedule.run, func, module, verify_each_pass)
    return level
