"""Optimization pipelines mirroring GCC's O-level structure.

==  ==========================================================
O0  no optimization; every virtual register lives in a stack home
O1  register allocation + local/global cleanups: constant folding,
    copy propagation, CSE, addressing-mode folding, DCE, CFG simplify
O2  O1 + loop-invariant code motion, strength reduction and local
    instruction scheduling
O3  O2 + function inlining and loop unrolling (code-size-increasing)
==  ==========================================================

Each scalar pipeline is iterated until a fixpoint (bounded), because the
passes enable each other (e.g. strength reduction exposes folds).
"""

from __future__ import annotations

from typing import Callable

from . import ir
from .passes import (
    addrfold,
    constfold,
    copyprop,
    cse,
    dce,
    inline,
    licm,
    schedule,
    simplify_cfg,
    strength,
    unroll,
)

OPT_LEVELS = ("O0", "O1", "O2", "O3")

FuncPass = Callable[[ir.Function, ir.Module], bool]

_O1_SCALAR: list[FuncPass] = [
    constfold.run,
    copyprop.run,
    cse.run,
    addrfold.run,
    dce.run,
    simplify_cfg.run,
]

_O2_SCALAR: list[FuncPass] = [
    constfold.run,
    copyprop.run,
    cse.run,
    licm.run,
    strength.run,
    addrfold.run,
    constfold.run,
    copyprop.run,
    cse.run,
    dce.run,
    simplify_cfg.run,
]

_MAX_ITERATIONS = 6

# Named transforms for ablation studies (the paper's stated future work:
# characterizing the impact of *individual* optimizations). Module-level
# passes are marked so optimize_custom dispatches them correctly.
PASS_REGISTRY: dict[str, FuncPass] = {
    "constfold": constfold.run,
    "copyprop": copyprop.run,
    "cse": cse.run,
    "addrfold": addrfold.run,
    "dce": dce.run,
    "simplify_cfg": simplify_cfg.run,
    "licm": licm.run,
    "strength": strength.run,
    "schedule": schedule.run,
    "unroll": unroll.run,
}

MODULE_PASSES = {"inline"}


def optimize_custom(module: ir.Module, pass_names: list[str],
                    iterate: bool = True) -> None:
    """Run an explicit pass list (ablation mode).

    ``pass_names`` may include ``"inline"`` (a module pass, applied once
    in sequence position) and any :data:`PASS_REGISTRY` name. With
    ``iterate`` the scalar suffix after the last module pass is repeated
    to a bounded fixpoint, as the standard pipelines do.
    """
    unknown = [n for n in pass_names
               if n not in PASS_REGISTRY and n not in MODULE_PASSES]
    if unknown:
        raise ValueError(f"unknown passes {unknown}; available "
                         f"{sorted(PASS_REGISTRY) + sorted(MODULE_PASSES)}")
    scalar: list[FuncPass] = []
    for name in pass_names:
        if name == "inline":
            if scalar:
                _run_scalar_once(module, scalar)
            inline.run_module(module)
            continue
        scalar.append(PASS_REGISTRY[name])
    if not scalar:
        return
    if iterate:
        _run_scalar(module, scalar)
    else:
        _run_scalar_once(module, scalar)


def _run_scalar_once(module: ir.Module, pipeline: list[FuncPass]) -> None:
    for func in module.functions.values():
        for pass_fn in pipeline:
            pass_fn(func, module)


def normalize_level(level: str | int) -> str:
    """Accept 'O2', 'o2', 2, '-O2' and return canonical 'O2'."""
    if isinstance(level, int):
        text = f"O{level}"
    else:
        text = level.strip().lstrip("-").upper()
        if text.isdigit():
            text = f"O{text}"
    if text not in OPT_LEVELS:
        raise ValueError(f"unknown optimization level {level!r}")
    return text


def _run_scalar(module: ir.Module, pipeline: list[FuncPass]) -> None:
    for func in module.functions.values():
        for _ in range(_MAX_ITERATIONS):
            changed = False
            for pass_fn in pipeline:
                changed |= pass_fn(func, module)
            if not changed:
                break


def optimize(module: ir.Module, level: str | int) -> str:
    """Run the pass pipeline for ``level`` on ``module``; returns the
    canonical level name."""
    level = normalize_level(level)
    if level == "O0":
        return level
    if level == "O1":
        _run_scalar(module, _O1_SCALAR)
        return level
    if level == "O2":
        _run_scalar(module, _O2_SCALAR)
        for func in module.functions.values():
            schedule.run(func, module)
        return level
    # O3
    inline.run_module(module)
    _run_scalar(module, _O2_SCALAR)
    for func in module.functions.values():
        unroll.run(func, module)
    _run_scalar(module, _O2_SCALAR)
    for func in module.functions.values():
        schedule.run(func, module)
    return level
