"""Static register/stack lifetime analysis over linked armlet programs.

Works directly on the compiled ISA text -- no simulation -- in the style
of ARMORY's exhaustive static fault reasoning and Jaulmes et al.'s
liveness-interval vulnerability metrics:

* an instruction-level CFG is recovered from branch displacements;
* backward dataflow computes, per instruction slot, the set of
  architectural registers that are *live* (may be read before being
  overwritten on some path);
* live sets are folded into per-register live intervals and
  register-pressure statistics;
* function frames are discovered from prologue ``sp`` adjustments and
  the ``bl`` call graph, giving a worst-case static stack bound (or
  ``None`` when recursion makes the depth unbounded).

Calls are modelled interprocedurally by union (a ``bl`` flows both into
the callee and to its return point) and returns conservatively keep the
ABI-visible registers (return value, callee-saved, ``sp``/``gp``/``fp``)
alive, so the computed live sets *over*-approximate true liveness --
the direction a vulnerability upper bound needs.

All register sets are 32-bit masks over the architectural register file;
the hardwired zero register is excluded (its value is immutable
architecturally, so it carries no live interval).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import registers
from ..isa.instructions import Format, Instruction, Opcode
from ..isa.program import Program

# Registers the ABI keeps meaningful across a return (modelled as live at
# every indirect jump, which codegen emits only as `br lr`): the return
# value, the callee-saved file, and the frame/global/stack pointers.
_RETURN_LIVE_MASK = (
    (1 << registers.RETURN_REG)
    | (1 << registers.SP)
    | (1 << registers.GP)
    | (1 << registers.FP)
    | sum(1 << r for r in registers.SAVED_REGS)
)

_ZERO_MASK = ~(1 << registers.ZERO)


def _mask_of(regs: tuple[int, ...]) -> int:
    mask = 0
    for reg in regs:
        mask |= 1 << reg
    return mask & _ZERO_MASK


def _regs_of(mask: int) -> tuple[int, ...]:
    return tuple(r for r in range(registers.NUM_REGS) if mask >> r & 1)


@dataclass(frozen=True)
class LiveInterval:
    """One maximal span of instruction slots where a register is live."""

    reg: int
    start: int
    end: int  # inclusive

    @property
    def length(self) -> int:
        return self.end - self.start + 1


@dataclass
class StackModel:
    """Static stack usage recovered from prologues and the call graph."""

    frame_bytes: dict[int, int] = field(default_factory=dict)
    call_edges: dict[int, set[int]] = field(default_factory=dict)
    recursive: bool = False
    bound_bytes: int | None = None


@dataclass
class Lifetimes:
    """Full static lifetime analysis of one program."""

    program: Program
    successors: list[tuple[int, ...]]
    live_in: list[int]   # register bitmask per instruction slot
    live_out: list[int]
    intervals: list[LiveInterval]
    stack: StackModel

    @property
    def live_counts(self) -> list[int]:
        """Number of live registers entering each instruction slot."""
        return [mask.bit_count() for mask in self.live_in]

    @property
    def max_pressure(self) -> int:
        return max(self.live_counts, default=0)

    @property
    def mean_pressure(self) -> float:
        counts = self.live_counts
        return sum(counts) / len(counts) if counts else 0.0

    def live_regs_at(self, index: int) -> tuple[int, ...]:
        """Architectural registers live entering slot ``index``."""
        return _regs_of(self.live_in[index])

    def intervals_of(self, reg: int) -> list[LiveInterval]:
        return [iv for iv in self.intervals if iv.reg == reg]

    @property
    def ever_live_mask(self) -> int:
        mask = 0
        for live in self.live_in:
            mask |= live
        return mask


def instruction_flow(instr: Instruction, index: int,
                     size: int) -> tuple[int, ...]:
    """Successor slots of ``instr`` at ``index`` in a ``size``-slot text.

    ``br`` (used only for returns) has no static successors; the return
    convention is modelled in the liveness transfer instead. Targets
    outside the text (a toolchain bug) are dropped rather than crashing
    so the analyzer can still report on a damaged binary.
    """
    fmt = instr.format
    succs: list[int] = []
    if fmt is Format.J:
        succs.append(index + instr.imm)
        if instr.opcode is Opcode.BL:
            succs.append(index + 1)  # return point
    elif fmt is Format.BC:
        succs.append(index + instr.imm)
        succs.append(index + 1)
    elif fmt is Format.JR:
        pass
    else:
        succs.append(index + 1)
    return tuple(s for s in succs if 0 <= s < size)


def _uses_mask(instr: Instruction) -> int:
    mask = _mask_of(instr.src_regs())
    if instr.format is Format.JR:
        mask |= _RETURN_LIVE_MASK
    elif instr.is_syscall:
        mask |= 1 << registers.ARG_REGS[0]  # SVC argument in a0
    return mask


def _defs_mask(instr: Instruction) -> int:
    dest = instr.dest_reg()
    return (1 << dest) & _ZERO_MASK if dest is not None else 0


def _liveness(text: list[Instruction],
              successors: list[tuple[int, ...]]) -> tuple[list[int],
                                                          list[int]]:
    size = len(text)
    uses = [_uses_mask(i) for i in text]
    defs = [_defs_mask(i) for i in text]
    live_in = [0] * size
    live_out = [0] * size
    preds: list[list[int]] = [[] for _ in range(size)]
    for index, succs in enumerate(successors):
        for succ in succs:
            preds[succ].append(index)
    worklist = list(reversed(range(size)))
    in_worklist = [True] * size
    while worklist:
        index = worklist.pop()
        in_worklist[index] = False
        out = 0
        for succ in successors[index]:
            out |= live_in[succ]
        live_out[index] = out
        new_in = uses[index] | (out & ~defs[index])
        if new_in != live_in[index]:
            live_in[index] = new_in
            for pred in preds[index]:
                if not in_worklist[pred]:
                    in_worklist[pred] = True
                    worklist.append(pred)
    return live_in, live_out


def _intervals(live_in: list[int]) -> list[LiveInterval]:
    intervals: list[LiveInterval] = []
    for reg in range(1, registers.NUM_REGS):
        start: int | None = None
        for index, mask in enumerate(live_in):
            if mask >> reg & 1:
                if start is None:
                    start = index
            elif start is not None:
                intervals.append(LiveInterval(reg, start, index - 1))
                start = None
        if start is not None:
            intervals.append(LiveInterval(reg, start, len(live_in) - 1))
    intervals.sort(key=lambda iv: (iv.start, iv.reg))
    return intervals


# ------------------------------------------------------------------ stack

def _function_entries(program: Program) -> list[int]:
    entries = {program.entry}
    for index, instr in enumerate(program.text):
        if instr.opcode is Opcode.BL:
            target = index + instr.imm
            if 0 <= target < len(program.text):
                entries.add(target)
    return sorted(entries)


def analyze_stack(program: Program) -> StackModel:
    """Worst-case stack depth from prologues and the ``bl`` call graph.

    Frame bytes per function are the negative ``addi sp, sp, imm``
    adjustments observed in its extent; the bound is the longest
    frame-weighted path through the call DAG. A cycle (recursion) makes
    the depth statically unbounded (``bound_bytes=None``).
    """
    model = StackModel()
    entries = _function_entries(program)
    if not entries:
        return model
    size = len(program.text)
    extent_end = {entry: size for entry in entries}
    for prev, nxt in zip(entries, entries[1:]):
        extent_end[prev] = nxt

    def owner(index: int) -> int:
        best = entries[0]
        for entry in entries:
            if entry <= index:
                best = entry
            else:
                break
        return best

    for entry in entries:
        frame = 0
        for index in range(entry, extent_end[entry]):
            instr = program.text[index]
            if (instr.opcode is Opcode.ADDI and instr.rd == registers.SP
                    and instr.rs1 == registers.SP and instr.imm < 0):
                frame = max(frame, -instr.imm)
        model.frame_bytes[entry] = frame
        model.call_edges[entry] = set()

    for index, instr in enumerate(program.text):
        if instr.opcode is Opcode.BL:
            target = index + instr.imm
            if 0 <= target < size:
                model.call_edges[owner(index)].add(target)

    # longest frame-weighted path; cycle detection via DFS colors
    depth: dict[int, int | None] = {}
    on_path: set[int] = set()

    def longest(entry: int) -> int | None:
        if entry in on_path:
            return None  # recursion
        if entry in depth:
            return depth[entry]
        on_path.add(entry)
        best = 0
        for callee in model.call_edges.get(entry, ()):
            sub = longest(callee)
            if sub is None:
                model.recursive = True
                on_path.discard(entry)
                depth[entry] = None
                return None
            best = max(best, sub)
        on_path.discard(entry)
        total = model.frame_bytes.get(entry, 0) + best
        depth[entry] = total
        return total

    model.bound_bytes = longest(program.entry)
    return model


def analyze_program(program: Program) -> Lifetimes:
    """Run the full static lifetime analysis over ``program``."""
    size = len(program.text)
    successors = [instruction_flow(instr, index, size)
                  for index, instr in enumerate(program.text)]
    live_in, live_out = _liveness(program.text, successors)
    return Lifetimes(
        program=program,
        successors=successors,
        live_in=live_in,
        live_out=live_out,
        intervals=_intervals(live_in),
        stack=analyze_stack(program),
    )
