"""Bit-precise static fault-propagation analysis over linked binaries.

Where :mod:`repro.compiler.lifetimes` answers *"is register r live at
slot s?"* at whole-register granularity, this module answers the
bit-level question the fault injector actually poses: *if bit ``b`` of
architectural register ``r`` flips immediately before slot ``s``
executes, can the architectural outcome of the program change?*

Two cooperating dataflow passes over the instruction-level CFG
(recovered by :func:`~repro.compiler.lifetimes.instruction_flow`, so
calls are modelled interprocedurally by union exactly as the liveness
pass does):

* a **forward known-bits pass** computes, per (slot, register), which
  bits are pinned to a known constant value on *every* fault-free path
  (constant materialization through ``movw``/``movt`` chains, ``and``/
  ``or`` masking, shifts, byte loads, comparison results, and
  value-range narrowing on conditional-branch edges);
* a **backward demand pass** computes, per (slot, register), three bit
  masks -- *control*, *address*, and *data* -- of the bits whose
  corruption at that point may still reach an architectural sink of
  that class. The transfer functions are bit-precise for masking ops
  (``and``/``or``/``eor``, shifts, ``movt`` half-merges, ``strb``'s
  8-bit data width, comparison results' single significant bit) and
  conservative (carry-smear or full-width) for arithmetic; the forward
  pass's known bits narrow register-operand masking (``and x, y, m``
  kills the bits of ``y`` where ``m`` is provably zero).

A bit in none of the three demand masks is **provably dead**: flipping
it cannot change any architectural outcome -- not the output bytes, the
exit code, the memory image, nor whether/where the program faults.
Soundness of the DEAD verdict rests on three facts, spelled out in
DESIGN.md and enforced end-to-end by the differential test suite:

1. demand is an over-approximation (union CFG, ABI-conservative return
   and call modelling, full-width fallbacks for imprecise ops);
2. known-bits facts describe fault-free executions, and are only ever
   consulted about registers *other than* the flipped one -- valid under
   the single-fault model as long as control has not diverged, which a
   zero-demand verdict itself guarantees inductively;
3. every transfer rule is *positional* (whether a source bit is needed
   never depends on the value of another un-needed bit), so any subset
   of individually-dead bits of one register is jointly dead -- the
   property multi-bit burst pruning relies on.

Because known-bits facts are only valid for registers other than the
flipped one, a verdict for a flip spanning *several* registers must not
reuse per-register verdicts (fact 2 breaks); consumers prune multi-
register bursts only through fact-free rules.

Live bits are classified by their sink: **control** (branch/jump
operands, the indirect-return register, divisors -- whose corruption can
redirect or fault the instruction stream), **address** (load/store base
registers and the ABI pointer registers at returns), and **data**
(stored values, syscall operands, return values -- bits that can reach
observable output). The classification feeds the static SDC/DUE
predictor in :mod:`repro.avf.static_sdc`; the DEAD verdict feeds the
third :class:`~repro.gefin.prune.StaticPruner` tier.

The optional dead-frame-store refinement (:func:`dead_frame_stores`,
reusing the prologue/call-graph reasoning behind
:class:`~repro.compiler.lifetimes.StackModel`) identifies stores into a
provably private stack frame whose slot is never reloaded; it is used
for *classification* only, never for pruning.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..isa import registers
from ..isa.instructions import Format, Instruction, Opcode
from ..isa.program import Program
from .lifetimes import _RETURN_LIVE_MASK, instruction_flow

#: Demand class indices (list positions in :class:`Propagation`).
CONTROL, ADDRESS, DATA = 0, 1, 2

#: ABI registers conservatively demanded at an indirect return,
#: split by sink class (see `_RETURN_LIVE_MASK` for the union).
_RETURN_ADDRESS_REGS = (registers.SP, registers.GP, registers.FP)
_RETURN_DATA_REGS = (registers.RETURN_REG, *registers.SAVED_REGS)

_SHIFT_LEFT = (Opcode.LSL, Opcode.LSLI)
_SHIFT_RIGHT = (Opcode.LSR, Opcode.LSRI)
_SHIFT_ARITH = (Opcode.ASR, Opcode.ASRI)
_COMPARES = (Opcode.SLT, Opcode.SLTU, Opcode.SLTI)
_MOVT_SHIFT = {Opcode.MOVT: 16, Opcode.MOVT2: 32, Opcode.MOVT3: 48}


class Verdict(enum.Enum):
    """Fate of one (slot, register, bit) under a pre-slot flip."""

    DEAD = "dead"
    CONTROL = "control"
    ADDRESS = "address"
    DATA = "data"


@dataclass(frozen=True)
class BitFate:
    """Per-class reachability of one bit; ``verdict`` ranks the sinks."""

    control: bool
    address: bool
    data: bool

    @property
    def dead(self) -> bool:
        return not (self.control or self.address or self.data)

    @property
    def verdict(self) -> Verdict:
        if self.control:
            return Verdict.CONTROL
        if self.address:
            return Verdict.ADDRESS
        if self.data:
            return Verdict.DATA
        return Verdict.DEAD


@dataclass(frozen=True)
class SlotSlice:
    """Per-bit verdicts of one register entering one slot."""

    slot: int
    reg: int
    xlen: int
    control_mask: int
    address_mask: int
    data_mask: int
    known_mask: int
    known_value: int

    @property
    def dead_mask(self) -> int:
        live = self.control_mask | self.address_mask | self.data_mask
        return ~live & ((1 << self.xlen) - 1)

    def fate(self, bit: int) -> BitFate:
        probe = 1 << bit
        return BitFate(control=bool(self.control_mask & probe),
                       address=bool(self.address_mask & probe),
                       data=bool(self.data_mask & probe))

    def verdicts(self) -> tuple[Verdict, ...]:
        return tuple(self.fate(bit).verdict for bit in range(self.xlen))

    def to_dict(self) -> dict[str, object]:
        return {
            "slot": self.slot,
            "reg": self.reg,
            "reg_name": registers.reg_name(self.reg),
            "control_mask": self.control_mask,
            "address_mask": self.address_mask,
            "data_mask": self.data_mask,
            "dead_mask": self.dead_mask,
            "known_mask": self.known_mask,
            "known_value": self.known_value,
            "verdicts": [v.value for v in self.verdicts()],
        }


@dataclass(frozen=True)
class PropagationSummary:
    """Aggregate bit-fate census over every (slot, reg, bit) point."""

    points: int
    dead_bits: int
    control_bits: int
    address_bits: int
    data_bits: int

    @property
    def dead_fraction(self) -> float:
        return self.dead_bits / self.points if self.points else 0.0

    def to_dict(self) -> dict[str, float | int]:
        return {"points": self.points, "dead_bits": self.dead_bits,
                "control_bits": self.control_bits,
                "address_bits": self.address_bits,
                "data_bits": self.data_bits,
                "dead_fraction": self.dead_fraction}


def _smear_down(mask: int) -> int:
    """Bits at or below the highest set bit (carry/borrow cone)."""
    return (1 << mask.bit_length()) - 1 if mask else 0


class _KnownBits:
    """Forward known-constant-bits analysis (meet over realizable paths).

    ``kmask[s][r]`` has a bit set where register ``r`` provably holds
    the corresponding bit of ``kval[s][r]`` on entry to slot ``s`` in
    every fault-free execution. The zero register is pinned to zero
    everywhere; every fact is invalidated across a call's fall-through
    edge (the union CFG would otherwise leak pre-call facts past callee
    clobbers).
    """

    def __init__(self, program: Program,
                 successors: list[tuple[int, ...]]) -> None:
        self.xlen = program.xlen
        self.xmask = (1 << program.xlen) - 1
        size = len(program.text)
        self.kmask = [[0] * registers.NUM_REGS for _ in range(size)]
        self.kval = [[0] * registers.NUM_REGS for _ in range(size)]
        self._reached = [False] * size
        if size:
            self._solve(program, successors)

    # ------------------------------------------------------------- meet

    def _merge(self, slot: int, mask: list[int], val: list[int]) -> bool:
        """Meet edge facts into ``slot``; True if anything changed."""
        if not self._reached[slot]:
            self._reached[slot] = True
            self.kmask[slot] = list(mask)
            self.kval[slot] = list(val)
            self.kmask[slot][registers.ZERO] = self.xmask
            self.kval[slot][registers.ZERO] = 0
            return True
        changed = False
        kmask = self.kmask[slot]
        kval = self.kval[slot]
        for reg in range(registers.NUM_REGS):
            if reg == registers.ZERO:
                continue
            agree = kmask[reg] & mask[reg] & ~(kval[reg] ^ val[reg])
            if agree != kmask[reg]:
                kmask[reg] = agree
                kval[reg] &= agree
                changed = True
        return changed

    # --------------------------------------------------------- transfer

    def _apply(self, instr: Instruction, mask: list[int],
               val: list[int]) -> None:
        """Destructively update edge facts with ``instr``'s effect."""
        xmask = self.xmask
        xlen = self.xlen
        op = instr.opcode
        dest = instr.dest_reg()
        if dest is None:
            return
        a_mask, a_val = mask[instr.rs1], val[instr.rs1]
        b_mask, b_val = mask[instr.rs2], val[instr.rs2]
        immv = instr.imm & xmask
        dmask, dval = 0, 0
        if op is Opcode.MOVW:
            dmask, dval = xmask, instr.imm & 0xFFFF
        elif op in _MOVT_SHIFT:
            shift = _MOVT_SHIFT[op]
            if shift < xlen:
                half = 0xFFFF << shift
                old_mask, old_val = mask[instr.rd], val[instr.rd]
                dmask = (old_mask & ~half) | half
                dval = (old_val & ~half) | ((instr.imm & 0xFFFF) << shift)
        elif op is Opcode.ADDI:
            if instr.imm == 0:
                dmask, dval = a_mask, a_val
            elif a_mask == xmask:
                dmask, dval = xmask, (a_val + immv) & xmask
        elif op in (Opcode.ADD, Opcode.SUB):
            if a_mask == xmask and b_mask == xmask:
                total = a_val + b_val if op is Opcode.ADD else a_val - b_val
                dmask, dval = xmask, total & xmask
            elif op is Opcode.ADD and b_mask == xmask and b_val == 0:
                dmask, dval = a_mask, a_val
            elif b_mask == xmask and b_val == 0:
                dmask, dval = a_mask, a_val  # sub x, y, zero
            elif op is Opcode.ADD and a_mask == xmask and a_val == 0:
                dmask, dval = b_mask, b_val
        elif op is Opcode.ANDI:
            dmask = (~immv & xmask) | (a_mask & immv)
            dval = a_val & immv & dmask
        elif op is Opcode.ORI:
            dmask = immv | a_mask
            dval = (a_val | immv) & dmask
        elif op is Opcode.EORI:
            dmask = a_mask
            dval = (a_val ^ immv) & a_mask
        elif op is Opcode.AND:
            zero_a, one_a = a_mask & ~a_val, a_mask & a_val
            zero_b, one_b = b_mask & ~b_val, b_mask & b_val
            dmask = zero_a | zero_b | (one_a & one_b)
            dval = one_a & one_b
        elif op is Opcode.ORR:
            zero_a, one_a = a_mask & ~a_val, a_mask & a_val
            zero_b, one_b = b_mask & ~b_val, b_mask & b_val
            dmask = one_a | one_b | (zero_a & zero_b)
            dval = one_a | one_b
        elif op is Opcode.EOR:
            dmask = a_mask & b_mask
            dval = (a_val ^ b_val) & dmask
        elif op in (*_SHIFT_LEFT, *_SHIFT_RIGHT, *_SHIFT_ARITH):
            if instr.format is Format.I:
                amount = immv & (xlen - 1)
            elif b_mask == xmask:
                amount = b_val & (xlen - 1)
            else:
                amount = None
            if amount is not None:
                if op in _SHIFT_LEFT:
                    dmask = ((a_mask << amount) | ((1 << amount) - 1)) \
                        & xmask
                    dval = (a_val << amount) & dmask
                elif op in _SHIFT_RIGHT:
                    dmask = (a_mask >> amount) | (
                        xmask & ~(xmask >> amount))
                    dval = a_val >> amount
                else:  # arithmetic: high fill known only with the sign
                    dmask = (a_mask >> amount) & (xmask >> amount)
                    dval = (a_val >> amount) & dmask
                    if a_mask >> (xlen - 1) & 1:
                        fill = xmask & ~(xmask >> amount)
                        dmask |= fill
                        if a_val >> (xlen - 1) & 1:
                            dval |= fill
        elif op in _COMPARES:
            dmask = xmask & ~1  # results are 0/1: upper bits pinned
        elif op is Opcode.MUL:
            if a_mask == xmask and b_mask == xmask:
                dmask, dval = xmask, (a_val * b_val) & xmask
        elif op is Opcode.LDRB:
            dmask = xmask & ~0xFF  # byte load zero-extends
        # LDR, MULH, DIV, REM, BL(lr): no facts (dmask stays 0).
        mask[dest] = dmask
        val[dest] = dval

    def _refine_edge(self, instr: Instruction, succ_is_taken: bool,
                     mask: list[int], val: list[int]) -> None:
        """Value-range narrowing on a conditional branch's out-edge."""
        xmask = self.xmask
        op = instr.opcode
        facts: list[tuple[int, int, int]] = []  # (reg, add_mask, add_val)
        for this, other in ((instr.rs1, instr.rs2),
                            (instr.rs2, instr.rs1)):
            if mask[other] != xmask:
                continue
            known = val[other]
            if (op is Opcode.BEQ and succ_is_taken) or (
                    op is Opcode.BNE and not succ_is_taken):
                facts.append((this, xmask, known))
            elif op in (Opcode.BLTU, Opcode.BGEU) and this == instr.rs1:
                # rs1 < known on BLTU-taken / BGEU-fallthrough: the
                # bits above the bound's width are provably zero.
                below = (op is Opcode.BLTU) == succ_is_taken
                if below and known > 0:
                    width = (known - 1).bit_length()
                    facts.append((this, xmask & ~((1 << width) - 1), 0))
        for reg, add_mask, add_val in facts:
            if reg == registers.ZERO:
                continue
            agree_old = mask[reg]
            mask[reg] = agree_old | add_mask
            val[reg] = (val[reg] & agree_old & ~add_mask) | add_val

    # ------------------------------------------------------------ solve

    def _solve(self, program: Program,
               successors: list[tuple[int, ...]]) -> None:
        text = program.text
        xmask = self.xmask
        entry = program.entry
        seed_mask = [0] * registers.NUM_REGS
        seed_mask[registers.ZERO] = xmask
        seed_val = [0] * registers.NUM_REGS
        self._merge(entry, seed_mask, seed_val)
        worklist = [entry]
        queued = [False] * len(text)
        queued[entry] = True
        while worklist:
            slot = worklist.pop()
            queued[slot] = False
            instr = text[slot]
            base_mask = list(self.kmask[slot])
            base_val = list(self.kval[slot])
            self._apply(instr, base_mask, base_val)
            for succ in successors[slot]:
                mask = list(base_mask)
                val = list(base_val)
                if instr.format is Format.BC:
                    self._refine_edge(instr, succ == slot + instr.imm,
                                      mask, val)
                elif instr.opcode is Opcode.BL and succ == slot + 1:
                    # Fall-through past a call: the callee may clobber
                    # anything, so no fact survives the union edge.
                    mask = [0] * registers.NUM_REGS
                    mask[registers.ZERO] = xmask
                    val = [0] * registers.NUM_REGS
                if self._merge(succ, mask, val) and not queued[succ]:
                    queued[succ] = True
                    worklist.append(succ)


@dataclass
class Propagation:
    """Full bit-level fault-propagation analysis of one program.

    ``control_in`` / ``address_in`` / ``data_in`` are per-slot lists of
    per-register demand masks *entering* the slot: a set bit means a
    flip of that register bit immediately before the slot executes may
    reach a sink of that class. ``known_mask`` / ``known_value`` are
    the forward pass's pinned-bit facts at the same program points.
    """

    program: Program
    successors: list[tuple[int, ...]]
    control_in: list[list[int]]
    address_in: list[list[int]]
    data_in: list[list[int]]
    known_mask: list[list[int]]
    known_value: list[list[int]]
    dead_stores: frozenset[int]

    @property
    def xlen(self) -> int:
        return self.program.xlen

    def demand_masks(self, slot: int, reg: int) -> tuple[int, int, int]:
        """(control, address, data) demand masks for ``reg`` at ``slot``."""
        return (self.control_in[slot][reg], self.address_in[slot][reg],
                self.data_in[slot][reg])

    def dead_mask(self, slot: int, reg: int) -> int:
        """Bits of ``reg`` provably dead entering ``slot``."""
        control, address, data = self.demand_masks(slot, reg)
        return ~(control | address | data) & ((1 << self.xlen) - 1)

    def fate(self, slot: int, reg: int, bit: int) -> BitFate:
        probe = 1 << bit
        control, address, data = self.demand_masks(slot, reg)
        return BitFate(control=bool(control & probe),
                       address=bool(address & probe),
                       data=bool(data & probe))

    def slot_slice(self, slot: int, reg: int) -> SlotSlice:
        control, address, data = self.demand_masks(slot, reg)
        return SlotSlice(slot=slot, reg=reg, xlen=self.xlen,
                         control_mask=control, address_mask=address,
                         data_mask=data,
                         known_mask=self.known_mask[slot][reg],
                         known_value=self.known_value[slot][reg])

    def summary(self) -> PropagationSummary:
        """Census of every (slot, live-register, bit) analysis point.

        The zero register is excluded (immutable, carries no faults),
        matching the convention of the word-level liveness pass.
        """
        xlen = self.xlen
        points = dead = control = address = data = 0
        for slot in range(len(self.program.text)):
            row_c = self.control_in[slot]
            row_a = self.address_in[slot]
            row_d = self.data_in[slot]
            for reg in range(1, registers.NUM_REGS):
                c, a, d = row_c[reg], row_a[reg], row_d[reg]
                points += xlen
                control += c.bit_count()
                address += (a & ~c).bit_count()
                data += (d & ~c & ~a).bit_count()
                dead += xlen - (c | a | d).bit_count()
        return PropagationSummary(points=points, dead_bits=dead,
                                  control_bits=control,
                                  address_bits=address, data_bits=data)


def dead_frame_stores(program: Program) -> frozenset[int]:
    """Slots of stores into a private frame slot that is never reloaded.

    A function's frame is *private* when ``sp`` is only ever used as an
    ``addi sp, sp, imm`` adjustment or as a load/store base inside the
    function's extent -- no copy, no escape, no derived pointer -- and
    every frame access stays inside the prologue-declared frame. Then a
    ``str``/``strb`` at a frame offset never overlapped by any load in
    the same function is architecturally silent: callees address only
    their own (lower) frames, and the slot dies when the frame pops.

    Used for classification/prediction only -- a later function reusing
    the popped region could observe the stale bytes through an
    uninitialized read, which is exactly why the pruning tier never
    consumes this refinement.
    """
    from .lifetimes import _function_entries

    sp = registers.SP
    entries = _function_entries(program)
    if not entries:
        return frozenset()
    size = len(program.text)
    extent_end = {entry: size for entry in entries}
    for prev, nxt in zip(entries, entries[1:]):
        extent_end[prev] = nxt

    dead: set[int] = set()
    for entry in entries:
        frame = 0
        private = True
        stores: list[tuple[int, int, int]] = []  # (slot, offset, size)
        loads: list[tuple[int, int]] = []        # (offset, size)
        for slot in range(entry, extent_end[entry]):
            instr = program.text[slot]
            op = instr.opcode
            if (op is Opcode.ADDI and instr.rd == sp
                    and instr.rs1 == sp):
                frame = max(frame, -instr.imm)
                continue
            width = 1 if op in (Opcode.LDRB, Opcode.STRB) \
                else program.xlen // 8
            if instr.is_load and instr.rs1 == sp:
                loads.append((instr.imm, width))
                continue
            if instr.is_store and instr.rs1 == sp:
                if instr.rs2 == sp:
                    private = False  # sp escapes through memory
                    break
                stores.append((slot, instr.imm, width))
                continue
            if sp in instr.src_regs() or instr.dest_reg() == sp:
                private = False  # copied, derived, or rewritten
                break
        if not private:
            continue
        for slot, offset, width in stores:
            if not 0 <= offset <= frame - width:
                continue  # outside the declared frame: stay conservative
            overlapped = any(offset < lo + lw and lo < offset + width
                             for lo, lw in loads)
            if not overlapped:
                dead.add(slot)
    return frozenset(dead)


def _gen_demands(instr: Instruction, xmask: int,
                 xlen: int) -> list[tuple[int, int, int]]:
    """(class, reg, mask) demands the instruction generates itself."""
    gens: list[tuple[int, int, int]] = []
    op = instr.opcode
    fmt = instr.format
    if fmt is Format.LOAD:
        gens.append((ADDRESS, instr.rs1, xmask))
    elif fmt is Format.STORE:
        gens.append((ADDRESS, instr.rs1, xmask))
        gens.append((DATA, instr.rs2,
                     0xFF if op is Opcode.STRB else xmask))
    elif fmt is Format.BC:
        gens.append((CONTROL, instr.rs1, xmask))
        gens.append((CONTROL, instr.rs2, xmask))
    elif fmt is Format.JR:
        gens.append((CONTROL, instr.rs1, xmask))
        for reg in _RETURN_ADDRESS_REGS:
            gens.append((ADDRESS, reg, xmask))
        for reg in _RETURN_DATA_REGS:
            gens.append((DATA, reg, xmask))
    elif op is Opcode.SVC:
        gens.append((DATA, registers.ARG_REGS[0], xmask))
    elif op in (Opcode.DIV, Opcode.REM):
        # A corrupted divisor can become zero and fault the stream.
        gens.append((CONTROL, instr.rs2, xmask))
    return gens


def _needed_sources(instr: Instruction, demand: int, xlen: int,
                    known_mask: list[int],
                    known_val: list[int]) -> list[tuple[int, int]]:
    """(source reg, needed bits) to produce ``demand`` bits of the dest.

    ``known_mask``/``known_val`` are the forward facts entering the
    slot, consulted only about the *other* operand of an op (sound
    under the single-register-fault model; see module docstring).
    """
    xmask = (1 << xlen) - 1
    if not demand:
        return []
    op = instr.opcode
    fmt = instr.format
    immv = instr.imm & xmask

    def known_zero(reg: int) -> int:
        return known_mask[reg] & ~known_val[reg]

    def known_one(reg: int) -> int:
        return known_mask[reg] & known_val[reg]

    def is_known_zero(reg: int) -> bool:
        return known_mask[reg] == xmask and known_val[reg] == 0

    if op is Opcode.MOVW:
        return []
    if op in _MOVT_SHIFT:
        shift = _MOVT_SHIFT[op]
        keep = ~(0xFFFF << shift) & xmask
        return [(instr.rd, demand & keep)]
    if op is Opcode.ADDI:
        return [(instr.rs1,
                 demand if immv == 0 else _smear_down(demand))]
    if op in (Opcode.ADD, Opcode.SUB):
        need_a = demand if is_known_zero(instr.rs2) \
            else _smear_down(demand)
        need_b = demand if (op is Opcode.ADD
                            and is_known_zero(instr.rs1)) \
            else _smear_down(demand)
        return [(instr.rs1, need_a), (instr.rs2, need_b)]
    if op is Opcode.ANDI:
        return [(instr.rs1, demand & immv)]
    if op is Opcode.ORI:
        return [(instr.rs1, demand & ~immv)]
    if op is Opcode.EORI:
        return [(instr.rs1, demand)]
    if op is Opcode.AND:
        return [(instr.rs1, demand & ~known_zero(instr.rs2)),
                (instr.rs2, demand & ~known_zero(instr.rs1))]
    if op is Opcode.ORR:
        return [(instr.rs1, demand & ~known_one(instr.rs2)),
                (instr.rs2, demand & ~known_one(instr.rs1))]
    if op is Opcode.EOR:
        return [(instr.rs1, demand), (instr.rs2, demand)]
    if op in (*_SHIFT_LEFT, *_SHIFT_RIGHT, *_SHIFT_ARITH):
        if fmt is Format.I:
            amount: int | None = immv & (xlen - 1)
        elif known_mask[instr.rs2] == xmask:
            amount = known_val[instr.rs2] & (xlen - 1)
        else:
            amount = None
        if amount is None:
            need_a = xmask
        elif op in _SHIFT_LEFT:
            need_a = demand >> amount
        elif op in _SHIFT_RIGHT:
            need_a = (demand << amount) & xmask
        else:
            need_a = (demand << amount) & xmask
            if amount and demand & (xmask & ~(xmask >> amount)):
                need_a |= 1 << (xlen - 1)
        needs = [(instr.rs1, need_a)]
        if fmt is Format.R:
            # Hardware shifters read only the low log2(xlen) bits.
            needs.append((instr.rs2, xlen - 1))
        return needs
    if op in _COMPARES:
        if demand & 1:  # upper result bits are constant zero
            needs = [(instr.rs1, xmask)]
            if fmt is Format.R:
                needs.append((instr.rs2, xmask))
            return needs
        return []
    if op is Opcode.MUL:
        cone = _smear_down(demand)
        return [(instr.rs1, cone), (instr.rs2, cone)]
    if op in (Opcode.MULH, Opcode.DIV, Opcode.REM):
        return [(instr.rs1, xmask), (instr.rs2, xmask)]
    if fmt is Format.LOAD:
        return []  # the loaded value owes nothing to rs1 beyond address
    return [(reg, xmask) for reg in instr.src_regs()]


def analyze_propagation(program: Program, *,
                        with_dead_stores: bool = True) -> Propagation:
    """Run both passes and return the full :class:`Propagation`."""
    size = len(program.text)
    xlen = program.xlen
    xmask = (1 << xlen) - 1
    successors = [instruction_flow(instr, index, size)
                  for index, instr in enumerate(program.text)]
    known = _KnownBits(program, successors)

    num_regs = registers.NUM_REGS
    demand_in = [[[0] * num_regs for _ in range(size)] for _ in range(3)]
    preds: list[list[int]] = [[] for _ in range(size)]
    for index, succs in enumerate(successors):
        for succ in succs:
            preds[succ].append(index)

    gens = [_gen_demands(instr, xmask, xlen) for instr in program.text]
    worklist = list(range(size))
    queued = [True] * size
    while worklist:
        slot = worklist.pop()
        queued[slot] = False
        instr = program.text[slot]
        dest = instr.dest_reg()
        kmask_row = known.kmask[slot]
        kval_row = known.kval[slot]
        changed = False
        for cls in range(3):
            rows = demand_in[cls]
            out = [0] * num_regs
            for succ in successors[slot]:
                succ_row = rows[succ]
                for reg in range(num_regs):
                    out[reg] |= succ_row[reg]
            new_in = out
            if dest is not None:
                dest_demand = new_in[dest]
                new_in[dest] = 0
                for reg, needed in _needed_sources(
                        instr, dest_demand, xlen, kmask_row, kval_row):
                    if reg != registers.ZERO:
                        new_in[reg] |= needed
            for cls_gen, reg, add in gens[slot]:
                if cls_gen == cls and reg != registers.ZERO:
                    new_in[reg] |= add
            if new_in != rows[slot]:
                rows[slot] = new_in
                changed = True
        if changed:
            for pred in preds[slot]:
                if not queued[pred]:
                    queued[pred] = True
                    worklist.append(pred)

    return Propagation(
        program=program,
        successors=successors,
        control_in=demand_in[CONTROL],
        address_in=demand_in[ADDRESS],
        data_in=demand_in[DATA],
        known_mask=known.kmask,
        known_value=known.kval,
        dead_stores=dead_frame_stores(program) if with_dead_stores
        else frozenset(),
    )
