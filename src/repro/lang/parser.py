"""Recursive-descent parser for MinC with C operator precedence."""

from __future__ import annotations

from ..errors import CompileError
from . import ast_nodes as ast
from .tokens import Token, TokenKind, tokenize

# Binary operator precedence (higher binds tighter); all left-associative.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                    "<<=", ">>="}


class Parser:
    """Parses one MinC translation unit into an :class:`ast.Module`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------- helpers

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def expect_punct(self, text: str) -> Token:
        if not self.tok.is_punct(text):
            raise CompileError(f"expected {text!r}, got {self.tok.text!r}",
                               self.tok.line)
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind is not TokenKind.IDENT:
            raise CompileError(f"expected identifier, got {self.tok.text!r}",
                               self.tok.line)
        return self.advance()

    def accept_punct(self, text: str) -> bool:
        if self.tok.is_punct(text):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------ top level

    def parse_module(self) -> ast.Module:
        module = ast.Module()
        while self.tok.kind is not TokenKind.EOF:
            while self.tok.is_keyword("const"):
                self.advance()
            base = self._parse_base_type()
            is_ptr = self.accept_punct("*")
            name = self.expect_ident()
            if self.tok.is_punct("("):
                ret = ast.Type("ptr", base) if is_ptr else ast.Type(base)
                if base == "void" and not is_ptr:
                    ret = ast.VOID
                module.functions.append(self._parse_function(name.text, ret))
            else:
                if base == "void":
                    raise CompileError("void variable", name.line)
                module.globals.append(
                    self._parse_global(base, is_ptr, name))
        return module

    def _parse_base_type(self) -> str:
        token = self.tok
        if token.is_keyword("int") or token.is_keyword("char") \
                or token.is_keyword("void"):
            self.advance()
            return token.text
        raise CompileError(f"expected type, got {token.text!r}", token.line)

    def _parse_global(self, base: str, is_ptr: bool,
                      name: Token) -> ast.GlobalVar:
        if is_ptr:
            raise CompileError("global pointers are not supported",
                               name.line)
        if self.accept_punct("["):
            size_tok = self.tok
            size = None
            if not size_tok.is_punct("]"):
                if size_tok.kind is not TokenKind.NUMBER:
                    raise CompileError("array size must be a constant",
                                       size_tok.line)
                size = self.advance().value
            self.expect_punct("]")
            init: list[int] | None = None
            if self.accept_punct("="):
                init = self._parse_init_list()
            if size is None:
                if init is None:
                    raise CompileError("unsized array needs initializer",
                                       name.line)
                size = len(init)
            if init is not None and len(init) > size:
                raise CompileError("too many initializers", name.line)
            self.expect_punct(";")
            return ast.GlobalVar(name.text, ast.Type("array", base, size),
                                 init, name.line)
        init_value: int | None = None
        if self.accept_punct("="):
            init_value = self._parse_const_expr()
        self.expect_punct(";")
        return ast.GlobalVar(name.text, ast.Type(base), init_value,
                             name.line)

    def _parse_init_list(self) -> list[int]:
        self.expect_punct("{")
        values: list[int] = []
        if not self.tok.is_punct("}"):
            values.append(self._parse_const_expr())
            while self.accept_punct(","):
                if self.tok.is_punct("}"):  # trailing comma
                    break
                values.append(self._parse_const_expr())
        self.expect_punct("}")
        return values

    def _parse_const_expr(self) -> int:
        """Constant expression for initializers: literals with unary minus."""
        negate = False
        while self.tok.is_punct("-"):
            self.advance()
            negate = not negate
        token = self.tok
        if token.kind is not TokenKind.NUMBER:
            raise CompileError("initializer must be a constant", token.line)
        self.advance()
        return -token.value if negate else token.value

    def _parse_function(self, name: str, ret: ast.Type) -> ast.FuncDef:
        line = self.tok.line
        self.expect_punct("(")
        params: list[ast.Param] = []
        if not self.tok.is_punct(")"):
            if self.tok.is_keyword("void") and \
                    self.tokens[self.pos + 1].is_punct(")"):
                self.advance()
            else:
                params.append(self._parse_param())
                while self.accept_punct(","):
                    params.append(self._parse_param())
        self.expect_punct(")")
        body = self._parse_block()
        return ast.FuncDef(name, ret, params, body, line)

    def _parse_param(self) -> ast.Param:
        while self.tok.is_keyword("const"):
            self.advance()
        base = self._parse_base_type()
        if base == "void":
            raise CompileError("void parameter", self.tok.line)
        is_ptr = self.accept_punct("*")
        name = self.expect_ident()
        if self.accept_punct("["):
            self.expect_punct("]")
            is_ptr = True
        ty = ast.Type("ptr", base) if is_ptr else ast.Type(base)
        return ast.Param(name.text, ty, name.line)

    # ------------------------------------------------------------ statements

    def _parse_block(self) -> ast.Block:
        start = self.expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self.tok.is_punct("}"):
            if self.tok.kind is TokenKind.EOF:
                raise CompileError("unterminated block", start.line)
            stmts.append(self._parse_statement())
        self.expect_punct("}")
        return ast.Block(start.line, stmts)

    def _parse_statement(self) -> ast.Stmt:
        token = self.tok
        if token.is_punct("{"):
            return self._parse_block()
        if token.is_keyword("int") or token.is_keyword("char") \
                or token.is_keyword("const"):
            return self._parse_var_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("do"):
            return self._parse_do_while()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("break"):
            self.advance()
            self.expect_punct(";")
            return ast.Break(token.line)
        if token.is_keyword("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.Continue(token.line)
        if token.is_keyword("return"):
            self.advance()
            value = None
            if not self.tok.is_punct(";"):
                value = self._parse_expression()
            self.expect_punct(";")
            return ast.Return(token.line, value)
        if token.is_punct(";"):
            self.advance()
            return ast.Block(token.line, [])
        expr = self._parse_expression()
        self.expect_punct(";")
        return ast.ExprStmt(token.line, expr)

    def _parse_var_decl(self) -> ast.Stmt:
        while self.tok.is_keyword("const"):
            self.advance()
        line = self.tok.line
        base = self._parse_base_type()
        if base == "void":
            raise CompileError("void variable", line)
        decls: list[ast.Stmt] = []
        while True:
            is_ptr = self.accept_punct("*")
            name = self.expect_ident()
            if self.accept_punct("["):
                if is_ptr:
                    raise CompileError("array of pointers not supported",
                                       name.line)
                size_tok = self.tok
                if size_tok.kind is not TokenKind.NUMBER:
                    raise CompileError("local array size must be constant",
                                       size_tok.line)
                size = self.advance().value
                self.expect_punct("]")
                init_list = None
                if self.accept_punct("="):
                    init_list = self._parse_init_list()
                decls.append(ast.VarDecl(
                    name.line, name.text, ast.Type("array", base, size),
                    None, init_list))
            else:
                ty = ast.Type("ptr", base) if is_ptr else ast.Type(base)
                init = None
                if self.accept_punct("="):
                    init = self._parse_expression()
                decls.append(ast.VarDecl(name.line, name.text, ty, init))
            if not self.accept_punct(","):
                break
        self.expect_punct(";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(line, decls)

    def _parse_if(self) -> ast.If:
        line = self.advance().line
        self.expect_punct("(")
        cond = self._parse_expression()
        self.expect_punct(")")
        then = self._parse_statement()
        other = None
        if self.tok.is_keyword("else"):
            self.advance()
            other = self._parse_statement()
        return ast.If(line, cond, then, other)

    def _parse_while(self) -> ast.While:
        line = self.advance().line
        self.expect_punct("(")
        cond = self._parse_expression()
        self.expect_punct(")")
        body = self._parse_statement()
        return ast.While(line, cond, body)

    def _parse_do_while(self) -> ast.DoWhile:
        line = self.advance().line
        body = self._parse_statement()
        if not self.tok.is_keyword("while"):
            raise CompileError("expected 'while' after do-body",
                               self.tok.line)
        self.advance()
        self.expect_punct("(")
        cond = self._parse_expression()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhile(line, body, cond)

    def _parse_for(self) -> ast.For:
        line = self.advance().line
        self.expect_punct("(")
        init: ast.Stmt | None = None
        if not self.tok.is_punct(";"):
            if self.tok.is_keyword("int") or self.tok.is_keyword("char"):
                init = self._parse_var_decl()
            else:
                init = ast.ExprStmt(self.tok.line, self._parse_expression())
                self.expect_punct(";")
        else:
            self.advance()
        cond = None
        if not self.tok.is_punct(";"):
            cond = self._parse_expression()
        self.expect_punct(";")
        step = None
        if not self.tok.is_punct(")"):
            step = self._parse_expression()
        self.expect_punct(")")
        body = self._parse_statement()
        return ast.For(line, init, cond, step, body)

    # ----------------------------------------------------------- expressions

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_conditional()
        token = self.tok
        if token.is_punct("="):
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(token.line, ast.INT, left, value)
        if token.kind is TokenKind.PUNCT and token.text in _COMPOUND_ASSIGN:
            self.advance()
            value = self._parse_assignment()
            return ast.Assign(token.line, ast.INT, left, value,
                              token.text[:-1])
        return left

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.tok.is_punct("?"):
            line = self.advance().line
            then = self._parse_expression()
            self.expect_punct(":")
            other = self._parse_conditional()
            return ast.Cond(line, ast.INT, cond, then, other)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self.tok
            if token.kind is not TokenKind.PUNCT:
                return left
            prec = _PRECEDENCE.get(token.text, 0)
            if prec < min_prec:
                return left
            self.advance()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(token.line, ast.INT, token.text, left, right)

    def _parse_unary(self) -> ast.Expr:
        token = self.tok
        if token.kind is TokenKind.PUNCT and token.text in ("-", "!", "~"):
            self.advance()
            return ast.Unary(token.line, ast.INT, token.text,
                             self._parse_unary())
        if token.is_punct("+"):
            self.advance()
            return self._parse_unary()
        if token.kind is TokenKind.PUNCT and token.text in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            return ast.IncDec(token.line, ast.INT, token.text, True, target)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.tok
            if token.is_punct("["):
                self.advance()
                index = self._parse_expression()
                self.expect_punct("]")
                expr = ast.Index(token.line, ast.INT, expr, index)
            elif token.kind is TokenKind.PUNCT and token.text in ("++",
                                                                  "--"):
                self.advance()
                expr = ast.IncDec(token.line, ast.INT, token.text, False,
                                  expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.tok
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.Num(token.line, ast.INT, token.value)
        if token.kind is TokenKind.IDENT:
            self.advance()
            if self.tok.is_punct("("):
                self.advance()
                args: list[ast.Expr] = []
                if not self.tok.is_punct(")"):
                    args.append(self._parse_expression())
                    while self.accept_punct(","):
                        args.append(self._parse_expression())
                self.expect_punct(")")
                return ast.Call(token.line, ast.INT, token.text, args)
            return ast.Var(token.line, ast.INT, token.text)
        if token.is_punct("("):
            self.advance()
            expr = self._parse_expression()
            self.expect_punct(")")
            return expr
        raise CompileError(f"unexpected token {token.text!r}", token.line)


def parse(source: str) -> ast.Module:
    """Parse MinC ``source`` into an AST module."""
    return Parser(source).parse_module()
