"""Semantic analysis for MinC.

Resolves names against lexical scopes (rewriting each variable reference
to a unique symbol so later stages never deal with shadowing), checks
types, and annotates every expression node with its :class:`~repro.lang.
ast_nodes.Type`. The result is a :class:`SemanticInfo` consumed by the IR
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CompileError
from . import ast_nodes as ast

BUILTINS: dict[str, tuple[ast.Type, list[ast.Type]]] = {
    "putint": (ast.VOID, [ast.INT]),
    "putchar": (ast.VOID, [ast.INT]),
    "puthex": (ast.VOID, [ast.INT]),
    "exit": (ast.VOID, [ast.INT]),
    "ushr": (ast.INT, [ast.INT, ast.INT]),
}


@dataclass
class FuncSig:
    name: str
    ret: ast.Type
    params: list[ast.Type]


@dataclass
class SemanticInfo:
    """Symbol tables produced by :func:`analyze`."""

    globals: dict[str, ast.GlobalVar] = field(default_factory=dict)
    functions: dict[str, FuncSig] = field(default_factory=dict)
    # unique local symbol -> declared type, per function
    locals: dict[str, dict[str, ast.Type]] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: "_Scope | None" = None) -> None:
        self.parent = parent
        self.names: dict[str, str] = {}

    def lookup(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class _FunctionChecker:
    def __init__(self, func: ast.FuncDef, info: SemanticInfo) -> None:
        self.func = func
        self.info = info
        self.local_types: dict[str, ast.Type] = {}
        self.counter = 0
        self.loop_depth = 0

    def unique(self, name: str) -> str:
        self.counter += 1
        return f"{name}.{self.counter}"

    def check(self) -> None:
        scope = _Scope()
        for index, param in enumerate(self.func.params):
            if param.name in scope.names:
                raise CompileError(f"duplicate parameter {param.name!r}",
                                   param.line)
            symbol = f"{param.name}.p{index}"
            scope.names[param.name] = symbol
            self.local_types[symbol] = param.ty
        self._check_block(self.func.body, _Scope(scope))
        self.info.locals[self.func.name] = self.local_types

    # -- statements ------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> None:
        if isinstance(stmt, ast.Block):
            self._check_block(stmt, _Scope(scope))
        elif isinstance(stmt, ast.VarDecl):
            self._check_decl(stmt, scope)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, ast.If):
            assert stmt.cond is not None and stmt.then is not None
            self._check_expr(stmt.cond, scope)
            self._check_stmt(stmt.then, scope)
            if stmt.other is not None:
                self._check_stmt(stmt.other, scope)
        elif isinstance(stmt, ast.While):
            assert stmt.cond is not None and stmt.body is not None
            self._check_expr(stmt.cond, scope)
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            assert stmt.cond is not None and stmt.body is not None
            self.loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._check_expr(stmt.cond, scope)
        elif isinstance(stmt, ast.For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_expr(stmt.cond, inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            assert stmt.body is not None
            self.loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kind = "break" if isinstance(stmt, ast.Break) else "continue"
                raise CompileError(f"{kind} outside loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                if self.func.ret.kind == "void":
                    raise CompileError("void function returns a value",
                                       stmt.line)
                ty = self._check_expr(stmt.value, scope)
                self._require_scalar_or_ptr(ty, self.func.ret, stmt.line)
            elif self.func.ret.kind != "void":
                raise CompileError("non-void function returns nothing",
                                   stmt.line)
        else:
            raise CompileError(f"unhandled statement {type(stmt).__name__}",
                               stmt.line)

    def _check_block(self, block: ast.Block, scope: _Scope) -> None:
        for stmt in block.stmts:
            self._check_stmt(stmt, scope)

    def _check_decl(self, decl: ast.VarDecl, scope: _Scope) -> None:
        if decl.name in scope.names:
            raise CompileError(
                f"redeclaration of {decl.name!r} in the same scope",
                decl.line)
        symbol = self.unique(decl.name)
        if decl.init is not None:
            ty = self._check_expr(decl.init, scope)
            self._require_scalar_or_ptr(ty, decl.ty, decl.line)
        if decl.init_list is not None:
            assert decl.ty.kind == "array"
            if decl.ty.size is not None and \
                    len(decl.init_list) > decl.ty.size:
                raise CompileError("too many initializers", decl.line)
        scope.names[decl.name] = symbol
        self.local_types[symbol] = decl.ty
        decl.resolved = symbol  # type: ignore[attr-defined]

    # -- expressions -----------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: _Scope) -> ast.Type:
        ty = self._infer(expr, scope)
        expr.ty = ty
        return ty

    def _infer(self, expr: ast.Expr, scope: _Scope) -> ast.Type:
        if isinstance(expr, ast.Num):
            return ast.INT
        if isinstance(expr, ast.Var):
            symbol = scope.lookup(expr.name)
            if symbol is not None:
                expr.binding = ("local", symbol)  # type: ignore
                return self.local_types[symbol]
            gvar = self.info.globals.get(expr.name)
            if gvar is not None:
                expr.binding = ("global", expr.name)  # type: ignore
                return gvar.ty
            raise CompileError(f"undefined variable {expr.name!r}",
                               expr.line)
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base_ty = self._check_expr(expr.base, scope)
            if not base_ty.is_pointerish:
                raise CompileError(f"cannot index {base_ty}", expr.line)
            index_ty = self._check_expr(expr.index, scope)
            if not index_ty.is_scalar:
                raise CompileError("array index must be a scalar",
                                   expr.line)
            return base_ty.element()
        if isinstance(expr, ast.Unary):
            assert expr.operand is not None
            ty = self._check_expr(expr.operand, scope)
            if not ty.is_scalar:
                raise CompileError(
                    f"unary {expr.op} needs a scalar, got {ty}", expr.line)
            return ast.INT
        if isinstance(expr, ast.IncDec):
            assert expr.target is not None
            self._check_lvalue(expr.target, scope)
            ty = self._check_expr(expr.target, scope)
            if not (ty.is_scalar or ty.kind == "ptr"):
                raise CompileError(f"cannot {expr.op} a {ty}", expr.line)
            return ty
        if isinstance(expr, ast.Binary):
            assert expr.left is not None and expr.right is not None
            lt = self._check_expr(expr.left, scope)
            rt = self._check_expr(expr.right, scope)
            if expr.op in ("+", "-") and (lt.is_pointerish
                                          or rt.is_pointerish):
                if lt.is_pointerish and rt.is_scalar:
                    return lt.decayed()
                if rt.is_pointerish and lt.is_scalar and expr.op == "+":
                    return rt.decayed()
                raise CompileError(
                    f"bad pointer arithmetic: {lt} {expr.op} {rt}",
                    expr.line)
            if expr.op in ("==", "!=", "<", "<=", ">", ">=") and \
                    lt.is_pointerish and rt.is_pointerish:
                return ast.INT
            if not (lt.is_scalar and rt.is_scalar):
                raise CompileError(
                    f"operator {expr.op} needs scalars, got {lt}, {rt}",
                    expr.line)
            return ast.INT
        if isinstance(expr, ast.Cond):
            assert expr.cond and expr.then and expr.other
            self._check_expr(expr.cond, scope)
            tt = self._check_expr(expr.then, scope)
            ot = self._check_expr(expr.other, scope)
            if tt.is_pointerish != ot.is_pointerish:
                raise CompileError("mismatched ?: arms", expr.line)
            return tt.decayed()
        if isinstance(expr, ast.Assign):
            assert expr.target is not None and expr.value is not None
            self._check_lvalue(expr.target, scope)
            target_ty = self._check_expr(expr.target, scope)
            value_ty = self._check_expr(expr.value, scope)
            if expr.op is not None:
                if not (target_ty.is_scalar or target_ty.kind == "ptr"):
                    raise CompileError("bad compound assignment target",
                                       expr.line)
                if target_ty.kind == "ptr":
                    # p += n / p -= n: the operand is an element delta.
                    if expr.op not in ("+", "-") or not value_ty.is_scalar:
                        raise CompileError(
                            "bad pointer compound assignment", expr.line)
                    return target_ty
            self._require_scalar_or_ptr(value_ty, target_ty, expr.line)
            return target_ty
        if isinstance(expr, ast.Call):
            return self._check_call(expr, scope)
        raise CompileError(f"unhandled expression {type(expr).__name__}",
                           expr.line)

    def _check_lvalue(self, expr: ast.Expr, scope: _Scope) -> None:
        if isinstance(expr, ast.Var):
            ty = self._infer(expr, scope)
            if ty.kind == "array":
                raise CompileError("cannot assign to an array", expr.line)
            return
        if isinstance(expr, ast.Index):
            return
        raise CompileError("expression is not assignable", expr.line)

    def _check_call(self, call: ast.Call, scope: _Scope) -> ast.Type:
        if call.name in BUILTINS:
            ret, params = BUILTINS[call.name]
        elif call.name in self.info.functions:
            sig = self.info.functions[call.name]
            ret, params = sig.ret, sig.params
        else:
            raise CompileError(f"undefined function {call.name!r}",
                               call.line)
        if len(call.args) != len(params):
            raise CompileError(
                f"{call.name} expects {len(params)} arguments,"
                f" got {len(call.args)}", call.line)
        for arg, param_ty in zip(call.args, params):
            arg_ty = self._check_expr(arg, scope)
            self._require_scalar_or_ptr(arg_ty, param_ty, call.line)
        return ret

    @staticmethod
    def _require_scalar_or_ptr(actual: ast.Type, expected: ast.Type,
                               line: int) -> None:
        actual = actual.decayed()
        expected = expected.decayed()
        if expected.is_scalar and actual.is_scalar:
            return
        if expected.kind == "ptr" and actual.kind == "ptr" \
                and expected.base == actual.base:
            return
        raise CompileError(f"type mismatch: expected {expected},"
                           f" got {actual}", line)


def analyze(module: ast.Module) -> SemanticInfo:
    """Type-check ``module`` and return its symbol tables."""
    info = SemanticInfo()
    for gvar in module.globals:
        if gvar.name in info.globals:
            raise CompileError(f"duplicate global {gvar.name!r}", gvar.line)
        info.globals[gvar.name] = gvar
    for func in module.functions:
        if func.name in info.functions or func.name in BUILTINS:
            raise CompileError(f"duplicate function {func.name!r}",
                               func.line)
        if func.name in info.globals:
            raise CompileError(
                f"{func.name!r} is both a global and a function", func.line)
        info.functions[func.name] = FuncSig(
            func.name, func.ret, [p.ty for p in func.params])
    if "main" not in info.functions:
        raise CompileError("program has no main function")
    for func in module.functions:
        _FunctionChecker(func, info).check()
    return info
