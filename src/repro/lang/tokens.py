"""Lexer for MinC, the small C dialect the workloads are written in.

MinC keeps C's surface syntax for the constructs the MiBench-analog
benchmarks need: ``int``/``char`` scalars, arrays, pointers (as function
parameters), the usual operators with C precedence, control flow
(``if``/``while``/``for``/``do``/``break``/``continue``/``return``), and
function definitions. Output is via the builtins ``putint``, ``putchar``,
``puthex``; logical-shift-right is the builtin ``ushr`` (``>>`` on ``int``
is arithmetic, as in C on signed operands).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import CompileError

KEYWORDS = frozenset({
    "int", "char", "void", "if", "else", "while", "for", "do", "break",
    "continue", "return", "const",
})

# Longest-match first.
_PUNCTUATION = [
    "<<=", ">>=", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "+", "-", "*",
    "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "(", ")", "{", "}",
    "[", "]", ";", ",", "?", ":",
]


class TokenKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    value: int
    line: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text


_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


def tokenize(source: str) -> list[Token]:
    """Tokenize MinC source, raising :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            tokens.append(Token(TokenKind.NUMBER, source[i:j], value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, 0, line))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise CompileError("bad character escape", line)
                value = _ESCAPES[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise CompileError("unterminated character literal", line)
            if j >= n or source[j] != "'":
                raise CompileError("unterminated character literal", line)
            tokens.append(Token(TokenKind.NUMBER, source[i:j + 1], value,
                                line))
            i = j + 1
            continue
        for punct in _PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(TokenKind.PUNCT, punct, 0, line))
                i += len(punct)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token(TokenKind.EOF, "", 0, line))
    return tokens
