"""Abstract syntax tree for MinC.

Every node carries the source line for diagnostics. Expression nodes gain
a ``ty`` attribute (a :class:`Type`) during semantic analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Type:
    """MinC type: ``int``, ``char``, pointer-to-base, or array-of-base.

    ``kind`` is one of ``int``, ``char``, ``ptr``, ``array``, ``void``.
    ``base`` (for ptr/array) is ``int`` or ``char``. ``size`` is the array
    element count.
    """

    kind: str
    base: str | None = None
    size: int | None = None

    @property
    def is_scalar(self) -> bool:
        return self.kind in ("int", "char")

    @property
    def is_pointerish(self) -> bool:
        return self.kind in ("ptr", "array")

    def element(self) -> "Type":
        if not self.is_pointerish:
            raise ValueError(f"{self} has no element type")
        return Type(self.base)  # type: ignore[arg-type]

    def decayed(self) -> "Type":
        """Array-to-pointer decay."""
        if self.kind == "array":
            return Type("ptr", self.base)
        return self

    def __str__(self) -> str:
        if self.kind == "ptr":
            return f"{self.base}*"
        if self.kind == "array":
            return f"{self.base}[{self.size}]"
        return self.kind


INT = Type("int")
CHAR = Type("char")
VOID = Type("void")


# --------------------------------------------------------------- expressions

@dataclass
class Expr:
    line: int = 0
    ty: Type = field(default=INT, compare=False)


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Unary(Expr):
    op: str = ""          # - ! ~
    operand: Expr | None = None


@dataclass
class IncDec(Expr):
    op: str = ""          # ++ or --
    prefix: bool = True
    target: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class Cond(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    other: Expr | None = None


@dataclass
class Assign(Expr):
    target: Expr | None = None
    value: Expr | None = None
    op: str | None = None  # compound-assignment operator, e.g. "+" for +=


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------- statements

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ty: Type = INT
    init: Expr | None = None
    init_list: list[int] | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    other: Stmt | None = None


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhile(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


# --------------------------------------------------------------- top level

@dataclass
class Param:
    name: str
    ty: Type
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret: Type
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    ty: Type
    init: int | list[int] | None
    line: int = 0


@dataclass
class Module:
    globals: list[GlobalVar] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
