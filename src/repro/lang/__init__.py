"""MinC: the small C dialect the benchmark workloads are written in.

Pipeline: :func:`~repro.lang.parser.parse` produces an AST,
:func:`~repro.lang.sema.analyze` type-checks it and resolves names; the
result feeds :mod:`repro.compiler.irbuilder`.
"""

from . import ast_nodes
from .parser import parse
from .sema import BUILTINS, SemanticInfo, analyze
from .tokens import Token, TokenKind, tokenize

__all__ = [
    "BUILTINS",
    "SemanticInfo",
    "Token",
    "TokenKind",
    "analyze",
    "ast_nodes",
    "parse",
    "tokenize",
]
