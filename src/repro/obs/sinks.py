"""Structured event sinks.

:class:`JsonlSink` appends one JSON document per line to a file or
text stream -- the machine-readable side channel for campaign trial
records and simulator events (the human side goes through
:mod:`repro.obs.log` to stderr).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

__all__ = ["JsonlSink"]


class JsonlSink:
    """Append-only JSON-lines writer over a path or an open stream.

    When constructed from a path the file is opened lazily on the first
    :meth:`emit` and truncated (a sink is one run's event stream, not a
    log to accumulate across runs). Streams passed in are borrowed:
    :meth:`close` flushes but never closes them.
    """

    def __init__(self, target: str | Path | IO[str]) -> None:
        self._path: Path | None = None
        self._stream: IO[str] | None = None
        self._owns_stream = False
        if isinstance(target, (str, Path)):
            self._path = Path(target)
        else:
            self._stream = target

    @property
    def path(self) -> Path | None:
        return self._path

    def _handle(self) -> IO[str]:
        if self._stream is None:
            assert self._path is not None
            self._stream = self._path.open("w")
            self._owns_stream = True
        return self._stream

    def emit(self, record: dict) -> None:
        """Write one event as a compact, sorted-key JSON line."""
        handle = self._handle()
        handle.write(json.dumps(record, sort_keys=True,
                                separators=(",", ":")) + "\n")

    def close(self) -> None:
        if self._stream is None:
            return
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
