"""Structured diagnostic logger for the CLI and library internals.

All diagnostic output (progress notes, checkpoint notices, golden-run
chatter) goes through here to **stderr**, leaving stdout clean for
machine-readable results (``--json`` emits exactly one JSON document on
stdout). Lines are ``logfmt``-flavoured::

    repro: resuming campaign checkpoint=".../x.ckpt.jsonl" shards=3

Values that need quoting (spaces, quotes, empties) are JSON-escaped, so
the lines stay grep- and machine-friendly without a JSON parser.
"""

from __future__ import annotations

import json
import sys
from typing import IO

__all__ = ["StructuredLogger", "get_logger"]


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    text = str(value)
    if text and all(c.isprintable() and not c.isspace() and c != '"'
                    for c in text):
        return text
    return json.dumps(text)


class StructuredLogger:
    """Writes ``name: message key=value ...`` lines to one stream."""

    def __init__(self, name: str = "repro",
                 stream: IO[str] | None = None) -> None:
        self.name = name
        self._stream = stream

    @property
    def stream(self) -> IO[str]:
        # Resolved lazily so pytest's capsys (which swaps sys.stderr)
        # and CLI tests see the lines.
        return self._stream if self._stream is not None else sys.stderr

    def _write(self, level: str, message: str, fields: dict) -> None:
        parts = [f"{self.name}:"]
        if level != "info":
            parts.append(f"[{level}]")
        parts.append(message)
        parts.extend(f"{key}={_format_value(value)}"
                     for key, value in fields.items())
        print(" ".join(parts), file=self.stream, flush=True)

    def info(self, message: str, **fields: object) -> None:
        self._write("info", message, fields)

    def warning(self, message: str, **fields: object) -> None:
        self._write("warn", message, fields)

    def error(self, message: str, **fields: object) -> None:
        self._write("error", message, fields)


def get_logger(name: str = "repro",
               stream: IO[str] | None = None) -> StructuredLogger:
    """A stderr structured logger (no global registry: loggers are
    cheap, stateless line formatters)."""
    return StructuredLogger(name, stream)
