"""Chrome trace-event exporter (Perfetto / ``chrome://tracing``).

Builds the JSON object format of the Trace Event specification: a
``{"traceEvents": [...]}`` document whose events carry ``ph`` (phase),
``ts``/``dur`` (microseconds), ``pid``/``tid`` (timeline rows), and
``args``. Open the written file at https://ui.perfetto.dev.

Two producers feed it:

* **pipeline activity within one trial** -- the simulator observer
  emits counter (``ph="C"``) tracks of structure occupancy and cache
  hit rates, using *1 simulated cycle = 1 µs* as the time base;
* **shard/worker timelines across a campaign** -- ``repro inject
  --trace-out`` lays each completed shard out as a complete
  (``ph="X"``) slice on its worker's row (wall-clock time base) and
  renders traced trials' provenance trails as instant (``ph="i"``)
  events on a per-trial track (cycle time base).
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # import for annotations only: obs must not pull gefin
    from ..gefin.campaign import CampaignResult
    from ..gefin.injector import InjectionResult

__all__ = [
    "ChromeTrace",
    "PID_CAMPAIGN",
    "PID_PIPELINE",
    "PID_TRIALS",
    "campaign_trace",
]

#: Conventional process rows used by the built-in producers.
PID_PIPELINE = 1
PID_CAMPAIGN = 2
PID_TRIALS = 3


class ChromeTrace:
    """Accumulates trace events and serializes the JSON object format."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    # -------------------------------------------------------------- events

    def counter(self, name: str, ts: float, values: dict[str, float],
                pid: int = PID_PIPELINE, tid: int = 0) -> None:
        """A multi-series counter sample (rendered as stacked tracks)."""
        self.events.append({"name": name, "ph": "C", "ts": ts,
                            "pid": pid, "tid": tid, "args": dict(values)})

    def complete(self, name: str, ts: float, dur: float,
                 pid: int = PID_CAMPAIGN, tid: int = 0,
                 args: dict | None = None) -> None:
        """A duration slice (``ph="X"``)."""
        event = {"name": name, "ph": "X", "ts": ts, "dur": dur,
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, name: str, ts: float, pid: int = PID_TRIALS,
                tid: int = 0, args: dict | None = None) -> None:
        """A zero-duration marker (``ph="i"``, thread scope)."""
        event = {"name": name, "ph": "i", "s": "t", "ts": ts,
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def process_name(self, pid: int, name: str) -> None:
        self.events.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": name}})

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        self.events.append({"name": "thread_name", "ph": "M", "pid": pid,
                            "tid": tid, "args": {"name": name}})

    # ----------------------------------------------------------- serialize

    def to_dict(self) -> dict:
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ms"}

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()))
        return path


def _trial_track(trace: ChromeTrace, trial: int,
                 result: "InjectionResult") -> None:
    """One traced trial's provenance trail as an instant-event row."""
    spec = result.spec
    trace.thread_name(
        PID_TRIALS, trial,
        f"trial {trial}: {spec.field} @{spec.cycle} "
        f"-> {result.outcome.value}")
    for event in result.trail or ():
        trace.instant(event.kind, float(event.cycle), pid=PID_TRIALS,
                      tid=trial, args={"detail": event.detail,
                                       "outcome": result.outcome.value})


def campaign_trace(result: "CampaignResult",
                   results: Iterable["InjectionResult"] | None = None,
                   ) -> ChromeTrace:
    """Chrome trace of one campaign: shard/worker slices (wall-clock
    µs since campaign start) plus, when ``results`` carry provenance
    trails, one instant-event row per traced trial (cycle time base).
    """
    trace = ChromeTrace()
    trace.process_name(
        PID_CAMPAIGN,
        f"campaign {result.program_name}/{result.config_name}/"
        f"{result.field} (n={result.n})")
    timeline = result.timeline
    if timeline:
        epoch = min(span["start"] for span in timeline)
        workers = sorted({span["worker"] for span in timeline})
        rows = {worker: row for row, worker in enumerate(workers)}
        for worker in workers:
            trace.thread_name(PID_CAMPAIGN, rows[worker],
                              f"worker {worker}")
        for span in timeline:
            trace.complete(
                f"shard {span['shard']} "
                f"[{span['first_trial']}:{span['stop_trial']})",
                ts=(span["start"] - epoch) * 1e6,
                dur=max(span["end"] - span["start"], 0.0) * 1e6,
                pid=PID_CAMPAIGN, tid=rows[span["worker"]],
                args={"trials": span["trials"]})
    if results is not None:
        trace.process_name(PID_TRIALS, "trial provenance (1 cycle = 1 us)")
        for trial, injection in enumerate(results):
            if injection.trail:
                _trial_track(trace, trial, injection)
    return trace
