"""Fault-propagation trail events.

A traced injection trial carries a *provenance trail*: the ordered
lifecycle of the corrupted bit, from the flip to the mechanism that
decided the trial's outcome class. Event kinds:

==================  ===================================================
kind                meaning
==================  ===================================================
injected            the fault struck (field, bit, burst, cycle)
state_divergence    corrupted state is resident in the machine
commit_divergence   the committed-instruction count first deviates from
                    the golden run's at the same cycle (fault effects
                    reached the commit stage or perturbed its timing)
output_divergence   the program's output stream first deviates from the
                    golden output
masked              terminal: the fault provably has no architectural
                    effect (dead storage, unchanged state, digest
                    reconvergence, or completion with golden output)
reached_output      terminal: the run completed with corrupted output
                    or exit code (the SDC mechanism)
exception           terminal: the run died (crash / assert / timeout)
quarantined         terminal: the *host* failed -- the campaign
                    supervisor gave up on the trial after its worker
                    repeatedly crashed or hung, and recorded an
                    infrastructure outcome instead
==================  ===================================================

Every trail starts with ``injected`` and ends with exactly one of the
terminal kinds; :func:`terminal_kinds` maps an outcome class to
the terminal kinds its trail may legally end with, and
:func:`trail_is_consistent` enforces the whole shape. The equivalence
tests assert these invariants over full campaigns on both core models.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EVENT_COMMIT_DIVERGENCE",
    "EVENT_EXCEPTION",
    "EVENT_INJECTED",
    "EVENT_MASKED",
    "EVENT_OUTPUT_DIVERGENCE",
    "EVENT_QUARANTINED",
    "EVENT_REACHED_OUTPUT",
    "EVENT_STATE_DIVERGENCE",
    "TERMINAL_KINDS",
    "TraceEvent",
    "terminal_kinds",
    "trail_is_consistent",
]

EVENT_INJECTED = "injected"
EVENT_STATE_DIVERGENCE = "state_divergence"
EVENT_COMMIT_DIVERGENCE = "commit_divergence"
EVENT_OUTPUT_DIVERGENCE = "output_divergence"
EVENT_MASKED = "masked"
EVENT_REACHED_OUTPUT = "reached_output"
EVENT_EXCEPTION = "exception"
EVENT_QUARANTINED = "quarantined"

#: Kinds that may only appear as a trail's final event.
TERMINAL_KINDS = frozenset(
    {EVENT_MASKED, EVENT_REACHED_OUTPUT, EVENT_EXCEPTION,
     EVENT_QUARANTINED})

_NON_TERMINAL_KINDS = frozenset(
    {EVENT_INJECTED, EVENT_STATE_DIVERGENCE, EVENT_COMMIT_DIVERGENCE,
     EVENT_OUTPUT_DIVERGENCE})


@dataclass(frozen=True)
class TraceEvent:
    """One step of a fault's lifecycle."""

    kind: str
    cycle: int
    detail: str = ""

    def to_dict(self) -> dict:
        return {"kind": self.kind, "cycle": self.cycle,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        return cls(kind=data["kind"], cycle=data["cycle"],
                   detail=data.get("detail", ""))


def terminal_kinds(outcome: object) -> frozenset[str]:
    """The terminal event kinds legal for ``outcome``.

    Accepts a :class:`repro.gefin.outcomes.Outcome` or its string value
    (this module deliberately does not import gefin -- gefin imports
    obs, and the layering is one-directional).
    """
    value = getattr(outcome, "value", outcome)
    if value == "masked":
        return frozenset({EVENT_MASKED})
    if value == "sdc":
        return frozenset({EVENT_REACHED_OUTPUT})
    if value == "infrastructure":
        return frozenset({EVENT_QUARANTINED})
    return frozenset({EVENT_EXCEPTION})


def trail_is_consistent(trail: list[TraceEvent] | None,
                        outcome: object) -> bool:
    """Does ``trail`` have the legal shape for ``outcome``?

    Requires: non-empty, opens with ``injected``, exactly one terminal
    event (the last), terminal kind drawn from
    :func:`terminal_kinds`, and non-decreasing cycles.
    """
    if not trail:
        return False
    if trail[0].kind != EVENT_INJECTED:
        return False
    if trail[-1].kind not in terminal_kinds(outcome):
        return False
    for event in trail[:-1]:
        if event.kind not in _NON_TERMINAL_KINDS:
            return False
    cycles = [event.cycle for event in trail]
    return all(a <= b for a, b in zip(cycles, cycles[1:]))
