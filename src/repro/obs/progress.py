"""Progress rendering that is safe on TTYs *and* captured streams.

The old ``repro inject`` progress printed a fresh stdout line per
update; a carriage-return rewrite would garble CI logs, while plain
prints pollute machine-readable output. :class:`ProgressRenderer`
writes to stderr and adapts:

* **TTY** -- a single line rewritten in place with ``\\r``, finalized
  with a newline by :meth:`close`;
* **non-TTY** (CI logs, pipes) -- complete, flushed,
  newline-terminated lines, rate-limited to one per
  ``min_interval`` seconds (the final state is always printed).
"""

from __future__ import annotations

import sys
import time
from collections.abc import Callable
from typing import IO

__all__ = ["ProgressRenderer"]


class ProgressRenderer:
    """Renders ``done/total`` with rate and ETA to a stream."""

    def __init__(self, total: int, label: str = "injections",
                 stream: IO[str] | None = None,
                 min_interval: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._clock = clock
        self._start = clock()
        self._last_emit: float | None = None
        self._last_line = ""
        self._done = 0
        self._closed = False
        isatty = getattr(self.stream, "isatty", None)
        self.interactive = bool(isatty()) if callable(isatty) else False

    # ------------------------------------------------------------- internals

    def _format(self, done: int) -> str:
        elapsed = self._clock() - self._start
        rate = done / elapsed if elapsed > 0 else 0.0
        eta = f"{(self.total - done) / rate:6.1f}s" if rate > 0 else "   ?"
        return (f"{done:5d}/{self.total} {self.label} | "
                f"{rate:7.1f}/s | ETA {eta}")

    def _emit(self, line: str) -> None:
        if self.interactive:
            pad = max(len(self._last_line) - len(line), 0)
            self.stream.write("\r" + line + " " * pad)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()
        self._last_line = line
        self._last_emit = self._clock()

    # -------------------------------------------------------------- updates

    def update(self, done: int) -> None:
        """Record progress; renders unless rate-limited (non-TTY)."""
        self._done = done
        now = self._clock()
        if (not self.interactive and self._last_emit is not None
                and now - self._last_emit < self.min_interval
                and done < self.total):
            return
        self._emit(self._format(done))

    def close(self) -> None:
        """Render the final state and terminate the line."""
        if self._closed:
            return
        self._closed = True
        line = self._format(self._done)
        if self.interactive:
            self._emit(line)
            self.stream.write("\n")
            self.stream.flush()
        elif line != self._last_line:
            self._emit(line)

    def __enter__(self) -> "ProgressRenderer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
