"""Metrics registry: counters, gauges, histograms, and timers.

Two backends share one interface:

* :class:`MetricsRegistry` -- the live backend. Instruments are plain
  ``__slots__`` objects mutated in place; reading a snapshot is a cold
  path.
* :class:`NullMetrics` (singleton :data:`NULL_METRICS`) -- the
  null-object backend. Every instrument it hands out is a shared no-op,
  so instrumented code can keep unconditional ``metrics.counter(...)``
  calls on cold paths. Hot loops should instead keep the *hook* itself
  conditional (the simulator samples only when an observer is attached,
  see :class:`repro.obs.observer.SimObserver`), which is what makes
  disabled observability cost one attribute check per sample window.

Instrument handles are interned by name: asking twice for
``counter("x")`` returns the same object, so call sites may cache the
handle and bypass the registry dictionary entirely.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "Timer",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value of a quantity that goes up and down."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution summary (count/sum/min/max/last).

    Deliberately bucket-free: the simulator observes thousands of
    samples per run and the consumers (``repro stats``, the Chrome
    exporter) want occupancy means and extremes, not quantiles.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: float = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.last: float = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {"type": "histogram", "count": self.count,
                "sum": self.total, "min": self.min, "max": self.max,
                "mean": self.mean, "last": self.last}


class Timer:
    """Wall-clock duration histogram with a context-manager front end."""

    __slots__ = ("name", "histogram", "_clock")

    def __init__(self, name: str,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.name = name
        self.histogram = Histogram(name)
        self._clock = clock

    def time(self) -> "_Timing":
        return _Timing(self)

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def snapshot(self) -> dict:
        out = self.histogram.snapshot()
        out["type"] = "timer"
        return out


class _Timing:
    """One in-flight measurement of a :class:`Timer`."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = self._timer._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._timer.observe(self._timer._clock() - self._start)


class MetricsRegistry:
    """Named instruments, interned by (kind, name)."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram | Timer]
        self._instruments = {}

    def _get(self, name: str, factory: type) -> object:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(name)
            self._instruments[name] = instrument
        elif type(instrument) is not factory:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {factory.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        return self._get(name, Timer)  # type: ignore[return-value]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._instruments))

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready ``{name: {type, ...summary}}``, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self}


class _NullInstrument:
    """Absorbs every instrument method as a no-op."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    total = 0.0
    min: float | None = None
    max: float | None = None
    last = 0.0
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> "_NullInstrument":
        return self

    def __enter__(self) -> "_NullInstrument":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Null-object registry: hands out shared no-op instruments."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def timer(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def __iter__(self) -> Iterator[str]:
        return iter(())

    def snapshot(self) -> dict[str, dict]:
        return {}


NULL_METRICS = NullMetrics()
