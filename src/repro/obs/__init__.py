"""Observability layer: metrics, fault-propagation traces, exporters.

This package is the instrumentation substrate for the simulator and the
injection engine. Layering is strictly one-directional: ``repro.obs``
imports nothing from ``repro.microarch`` or ``repro.gefin`` (those
import *us*), so every module here is usable standalone.

* :mod:`repro.obs.metrics` -- counter/gauge/histogram/timer registry
  with a null-object backend (:data:`NULL_METRICS`);
* :mod:`repro.obs.observer` -- :class:`SimObserver`, the periodic
  sampler the simulator calls from its cycle loop;
* :mod:`repro.obs.events` -- provenance-trail event vocabulary and the
  trail/outcome consistency predicate;
* :mod:`repro.obs.chrome` -- Chrome trace-event (Perfetto) exporter;
* :mod:`repro.obs.sinks` -- JSONL event sinks;
* :mod:`repro.obs.log` -- structured stderr diagnostics;
* :mod:`repro.obs.progress` -- TTY-aware progress rendering.
"""

from .chrome import (
    ChromeTrace,
    PID_CAMPAIGN,
    PID_PIPELINE,
    PID_TRIALS,
    campaign_trace,
)
from .events import (
    EVENT_COMMIT_DIVERGENCE,
    EVENT_EXCEPTION,
    EVENT_INJECTED,
    EVENT_MASKED,
    EVENT_OUTPUT_DIVERGENCE,
    EVENT_QUARANTINED,
    EVENT_REACHED_OUTPUT,
    EVENT_STATE_DIVERGENCE,
    TERMINAL_KINDS,
    TraceEvent,
    terminal_kinds,
    trail_is_consistent,
)
from .log import StructuredLogger, get_logger
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    Timer,
)
from .observer import DEFAULT_SAMPLE_INTERVAL, SimObserver
from .progress import ProgressRenderer
from .sinks import JsonlSink

__all__ = [
    "ChromeTrace",
    "Counter",
    "DEFAULT_SAMPLE_INTERVAL",
    "EVENT_COMMIT_DIVERGENCE",
    "EVENT_EXCEPTION",
    "EVENT_INJECTED",
    "EVENT_MASKED",
    "EVENT_OUTPUT_DIVERGENCE",
    "EVENT_QUARANTINED",
    "EVENT_REACHED_OUTPUT",
    "EVENT_STATE_DIVERGENCE",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "PID_CAMPAIGN",
    "PID_PIPELINE",
    "PID_TRIALS",
    "ProgressRenderer",
    "SimObserver",
    "StructuredLogger",
    "TERMINAL_KINDS",
    "Timer",
    "TraceEvent",
    "campaign_trace",
    "get_logger",
    "terminal_kinds",
    "trail_is_consistent",
]
